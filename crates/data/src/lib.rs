//! Implicit-feedback datasets for the `lkp` workspace.
//!
//! The paper evaluates on Amazon-Beauty, MovieLens-1M and Anime. Those raw
//! datasets are not redistributable here, so this crate provides:
//!
//! * [`dataset::Dataset`] — the in-memory representation the rest of the
//!   workspace consumes: per-user chronological interactions, item→category
//!   assignments, and the paper's 70/10/20 train/validation/test split.
//! * [`synthetic`] — a latent-factor + category-structured generator with
//!   three presets calibrated to the statistics in the paper's Table I
//!   (user/item/interaction/category counts, optionally scaled down). The
//!   generator preserves the properties LkP exploits: personalized relevance
//!   structure, category diversity structure, popularity skew, and sequential
//!   category coherence (which gives the S-vs-R instance-construction
//!   contrast its meaning).
//! * [`instances`] — ground-set samplers: each training instance is a user
//!   plus `k` observed items and `n` sampled unobserved items (Section
//!   III-B1), built either sequentially (S) or randomly (R).
//! * [`diverse`] — `(T⁺, T⁻)` set pairs for pre-training the diversity
//!   kernel (Eq. 3).
//! * [`stats`] — dataset statistics (Table I).

pub mod dataset;
pub mod diverse;
pub mod instances;
pub mod stats;
pub mod synthetic;

pub use dataset::{Dataset, Split};
pub use instances::{GroundSetInstance, InstanceSampler, TargetSelection};
pub use stats::DatasetStats;
pub use synthetic::{SyntheticConfig, SyntheticPreset};
