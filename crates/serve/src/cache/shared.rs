//! The sharded cross-worker kernel-cache backend.

use super::{evict_lru, CacheEntry, ShardStats};
use lkp_dpp::LowRankKernel;
use lkp_linalg::Matrix;
use std::collections::HashMap;
use std::sync::Mutex;

/// Mutable state of one hash shard, behind that shard's lock.
#[derive(Default)]
struct Shard {
    entries: HashMap<usize, CacheEntry>,
    evicted: Vec<(u64, usize)>,
    tick: u64,
    hits: u64,
    misses: u64,
    prewarmed: u64,
}

/// One kernel cache for the whole pool, sharded `N` ways by user hash with
/// one lock per shard.
///
/// Versus the per-worker backend this removes the `threads×` memory
/// multiplier (each resident user holds one `|C|²·8`-byte matrix total, not
/// one per worker) and the per-worker cold-start tax (a user's kernel is
/// assembled once per process, whichever worker gets there first). Lookups
/// copy the cached matrix into the worker's staging buffer under the shard
/// lock — an `O(|C|²)` copy, not the `O(|C|²·d)` assembly — and misses
/// assemble *outside* the lock, so concurrent misses on one shard never
/// serialize the expensive work (two racing workers may both assemble the
/// same entry; both produce identical bits, so whichever insert lands is
/// correct).
///
/// Entries are bit-exact copies of what a miss recomputes, so served lists
/// are pinned at any pool width and identical to the per-worker backend's.
pub(crate) struct SharedKernelCache {
    shards: Vec<Mutex<Shard>>,
}

impl SharedKernelCache {
    /// Creates a cache with `shards` shards (clamped to ≥ 1).
    pub(crate) fn new(shards: usize) -> Self {
        SharedKernelCache {
            shards: (0..shards.max(1)).map(|_| Mutex::default()).collect(),
        }
    }

    /// Fibonacci multiplicative hash of the user id → shard index. User ids
    /// are typically dense small integers; the multiply spreads consecutive
    /// ids across shards so hot user ranges don't pile onto one lock.
    fn shard_of(&self, user: usize) -> usize {
        let h = (user as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) as usize) % self.shards.len()
    }

    /// Per-shard entry bound for a total `capacity`: ceiling-divided so the
    /// shards together hold at least `capacity` entries (and at most
    /// `capacity + shards − 1` under adversarial skew).
    fn shard_bound(&self, capacity: usize) -> usize {
        capacity.div_ceil(self.shards.len()).max(1)
    }

    /// Copies the diversity submatrix for `(user, candidates)` into `out`
    /// and returns whether it was served from cache. `capacity` is the
    /// total entry budget across shards and must be non-zero (a disabled
    /// cache is handled by the caller's per-worker bypass path).
    pub(crate) fn get_or_assemble_into(
        &self,
        user: usize,
        candidates: &[usize],
        kernel: &LowRankKernel,
        capacity: usize,
        out: &mut Matrix,
    ) -> bool {
        debug_assert!(capacity > 0, "capacity 0 bypasses the shared cache");
        let bound = self.shard_bound(capacity);
        let shard = &self.shards[self.shard_of(user)];
        {
            let mut guard = shard.lock().expect("shard lock");
            guard.tick += 1;
            let tick = guard.tick;
            if let Some(entry) = guard.entries.get_mut(&user) {
                if entry.candidates == candidates {
                    entry.last_used = tick;
                    out.copy_from(&entry.k_sub);
                    guard.hits += 1;
                    return true;
                }
            }
            guard.misses += 1;
        }
        // Miss: assemble outside the lock, then publish a copy.
        kernel
            .submatrix_into(candidates, out)
            .expect("candidates validated by caller");
        let mut guard = shard.lock().expect("shard lock");
        guard.tick += 1;
        let tick = guard.tick;
        let entry = guard.entries.entry(user).or_insert_with(CacheEntry::empty);
        entry.candidates.clear();
        entry.candidates.extend_from_slice(candidates);
        entry.k_sub.copy_from(out);
        entry.last_used = tick;
        let Shard {
            entries, evicted, ..
        } = &mut *guard;
        evict_lru(entries, bound, evicted);
        false
    }

    /// Inserts `(user, candidates)` ahead of traffic. Counts as a prewarm,
    /// not a miss, and is strictly *monotone*: it only fills empty shard
    /// capacity (touching an already-resident matching entry), never
    /// evicting or overwriting a resident entry — a full shard refuses new
    /// users and a resident user with a different pool keeps its pool.
    /// Anything else would silently break the "first request hits"
    /// guarantee for a pair an earlier prewarm already reported warmed.
    /// Returns whether the pair is warm (resident with exactly these
    /// candidates) when the call returns — assembled now or already
    /// resident; only fresh assemblies bump the `prewarmed` counter.
    pub(crate) fn prewarm(
        &self,
        user: usize,
        candidates: &[usize],
        kernel: &LowRankKernel,
        capacity: usize,
    ) -> bool {
        if capacity == 0 {
            return false;
        }
        let bound = self.shard_bound(capacity);
        let mut guard = self.shards[self.shard_of(user)].lock().expect("shard lock");
        guard.tick += 1;
        let tick = guard.tick;
        if let Some(entry) = guard.entries.get_mut(&user) {
            if entry.candidates == candidates {
                entry.last_used = tick;
                return true;
            }
            return false;
        }
        if guard.entries.len() >= bound {
            return false;
        }
        guard.prewarmed += 1;
        guard
            .entries
            .entry(user)
            .or_insert_with(CacheEntry::empty)
            .fill(candidates, kernel, tick);
        let Shard {
            entries, evicted, ..
        } = &mut *guard;
        evict_lru(entries, bound, evicted);
        true
    }

    /// Folds the retiring `old` cache's traffic counters into this staged
    /// one — hit/miss/prewarm totals describe the service's lifetime, not
    /// one artifact generation, so reporting must survive a swap — and
    /// returns how many old-generation entries are being retired with it.
    /// Entries are *not* carried over: they were assembled from the old
    /// artifact's kernel.
    pub(crate) fn carry_stats_from(&self, old: &SharedKernelCache) -> usize {
        let mut retired = 0;
        for (i, shard) in old.shards.iter().enumerate() {
            let o = shard.lock().expect("shard lock");
            let mut n = self.shards[i % self.shards.len()]
                .lock()
                .expect("shard lock");
            n.hits += o.hits;
            n.misses += o.misses;
            n.prewarmed += o.prewarmed;
            n.tick = n.tick.max(o.tick);
            retired += o.entries.len();
        }
        retired
    }

    /// One counter row per shard (bypasses are always 0 here — a disabled
    /// cache never reaches the shared backend).
    pub(crate) fn stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|shard| {
                let guard = shard.lock().expect("shard lock");
                ShardStats {
                    hits: guard.hits,
                    misses: guard.misses,
                    bypasses: 0,
                    prewarmed: guard.prewarmed,
                    resident: guard.entries.len(),
                }
            })
            .collect()
    }
}

impl std::fmt::Debug for SharedKernelCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedKernelCache")
            .field("shards", &self.shards.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> LowRankKernel {
        let v = Matrix::from_fn(40, 3, |r, c| (((r * 7 + c * 5) % 9) as f64) * 0.3 - 1.0);
        LowRankKernel::new(v).normalized()
    }

    #[test]
    fn hit_is_bit_exact_across_shards() {
        let kern = kernel();
        let cache = SharedKernelCache::new(4);
        let mut out = Matrix::zeros(0, 0);
        for user in 0..16 {
            let cands = vec![user % 5, user % 5 + 3, user % 5 + 9];
            assert!(!cache.get_or_assemble_into(user, &cands, &kern, 64, &mut out));
            let fresh = kern.submatrix(&cands).unwrap();
            assert_eq!(out.as_slice(), fresh.as_slice());
            let mut again = Matrix::zeros(0, 0);
            assert!(cache.get_or_assemble_into(user, &cands, &kern, 64, &mut again));
            assert_eq!(again.as_slice(), fresh.as_slice());
        }
        let stats = super::super::CacheStats::from_shards(cache.stats());
        assert_eq!(stats.aggregate.hits, 16);
        assert_eq!(stats.aggregate.misses, 16);
        assert_eq!(stats.aggregate.resident, 16);
    }

    #[test]
    fn changed_candidates_invalidate_entry() {
        let kern = kernel();
        let cache = SharedKernelCache::new(2);
        let mut out = Matrix::zeros(0, 0);
        cache.get_or_assemble_into(7, &[1, 2], &kern, 8, &mut out);
        assert!(!cache.get_or_assemble_into(7, &[2, 3], &kern, 8, &mut out));
        assert_eq!(out.as_slice(), kern.submatrix(&[2, 3]).unwrap().as_slice());
    }

    #[test]
    fn capacity_is_distributed_and_enforced_per_shard() {
        let kern = kernel();
        let cache = SharedKernelCache::new(2);
        let mut out = Matrix::zeros(0, 0);
        // Total capacity 4 → 2 per shard; 20 distinct users can leave at
        // most 2 residents per shard.
        for user in 0..20 {
            cache.get_or_assemble_into(user, &[user % 7], &kern, 4, &mut out);
        }
        for s in cache.stats() {
            assert!(s.resident <= 2, "shard over bound: {s:?}");
        }
    }

    #[test]
    fn prewarmed_pairs_hit_on_first_lookup() {
        let kern = kernel();
        let cache = SharedKernelCache::new(3);
        let pairs: Vec<(usize, Vec<usize>)> = (0..6).map(|u| (u, vec![u, u + 2, u + 11])).collect();
        for (user, cands) in &pairs {
            assert!(cache.prewarm(*user, cands, &kern, 16));
            // Idempotent: a resident pair reports warm, no re-assembly.
            assert!(cache.prewarm(*user, cands, &kern, 16));
            // A resident user is never overwritten by a different pool.
            assert!(!cache.prewarm(*user, &[37, 38], &kern, 16));
        }
        let mut out = Matrix::zeros(0, 0);
        for (user, cands) in &pairs {
            assert!(
                cache.get_or_assemble_into(*user, cands, &kern, 16, &mut out),
                "prewarmed pair must hit on first traffic"
            );
            assert_eq!(out.as_slice(), kern.submatrix(cands).unwrap().as_slice());
        }
        let stats = super::super::CacheStats::from_shards(cache.stats());
        assert_eq!(stats.aggregate.misses, 0);
        assert_eq!(stats.aggregate.prewarmed, 6);
        assert_eq!(stats.aggregate.hits, 6);
    }

    #[test]
    fn prewarm_overflow_refuses_instead_of_evicting() {
        // Single shard → shard bound == total capacity: a 10-pair plan
        // against capacity 4 must warm the first 4 pairs and keep them.
        let kern = kernel();
        let cache = SharedKernelCache::new(1);
        let warmed = (0..10)
            .filter(|&u| cache.prewarm(u, &[u, u + 1], &kern, 4))
            .count();
        assert_eq!(warmed, 4, "only the first `capacity` pairs are accepted");
        let mut out = Matrix::zeros(0, 0);
        for u in 0..4 {
            assert!(
                cache.get_or_assemble_into(u, &[u, u + 1], &kern, 4, &mut out),
                "accepted pair {u} must keep its first-request hit"
            );
        }
        let stats = super::super::CacheStats::from_shards(cache.stats());
        assert_eq!(stats.aggregate.prewarmed, 4);
        assert_eq!(stats.aggregate.misses, 0);
    }

    #[test]
    fn concurrent_mixed_traffic_stays_bit_exact() {
        let kern = kernel();
        let cache = SharedKernelCache::new(4);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = &cache;
                let kern = &kern;
                scope.spawn(move || {
                    let mut out = Matrix::zeros(0, 0);
                    for round in 0..50 {
                        let user = (t * 13 + round * 7) % 10;
                        let cands = vec![user, user + 5, user + 20];
                        cache.get_or_assemble_into(user, &cands, kern, 8, &mut out);
                        let fresh = kern.submatrix(&cands).unwrap();
                        assert_eq!(out.as_slice(), fresh.as_slice());
                    }
                });
            }
        });
    }
}
