//! The request frontend: individually submitted requests, micro-batched
//! onto the pool — plus the production shell around that core.
//!
//! Production traffic arrives one request at a time, but the pool path is
//! batched. [`ServeFrontend`] bridges the two: [`ServeFrontend::submit`]
//! (or the admission-checked [`ServeFrontend::try_submit`]) enqueues a
//! request and returns a [`Ticket`] immediately; micro-batches are cut
//! when the queue reaches [`FrontendConfig::max_batch`] (throughput bound)
//! or when the oldest pending deadline passes (latency bound — `max_wait`,
//! or a tighter per-request [`crate::RankRequest::slo`]), and driven
//! through [`crate::Ranker::rank_batch_into`]. Responses are claimed by
//! ticket.
//!
//! Time is read through an injected [`Clock`], so deadline behavior is
//! deterministic in tests ([`ManualClock`]) and wall-clock in production
//! ([`MonotonicClock`], the default). Batch composition never affects
//! served lists — requests are independent — so frontend output is bitwise
//! identical to a direct [`crate::Ranker::rank_batch`] over the same
//! requests, in any submission/pump interleaving.
//!
//! The module splits along the production concerns:
//!
//! * `core` — the deterministic frontend above: clocks, cut policy, SLO
//!   expiry, degraded mode, TTL sweep, ticket redemption.
//! * `admission` — [`SubmitError`], the fixed-bucket [`LatencyHistogram`],
//!   and the [`FrontendStats`] counter block.
//! * `swap` — zero-downtime artifact replacement:
//!   [`ServeFrontend::swap_artifact`] / [`ServeFrontend::commit_swap`],
//!   [`SwapReport`], and the swap log.
//! * `driver` — the threaded shell: [`FrontendDriver`] owns the pump loop
//!   on a spawned thread; [`DriverClient`] handles submit/redeem/swap from
//!   any thread.

mod admission;
mod core;
mod driver;
mod swap;

pub use self::admission::{FrontendStats, LatencyHistogram, SubmitError, LATENCY_BUCKETS};
pub use self::core::{Clock, FrontendConfig, ManualClock, MonotonicClock, ServeFrontend, Ticket};
pub use self::driver::{DriverClient, FrontendDriver};
pub use self::swap::{SwapRecord, SwapReport};
