//! Suppression fixture: valid allows silence findings; malformed allows are
//! findings themselves AND suppress nothing. `tests/engine.rs` asserts the
//! exact `line` of every finding — renumbering this file breaks it.

pub fn suppressed_trailing(n: usize) -> Vec<f64> {
    vec![0.0; n] // lint:allow(hotpath-alloc): fixture — cold constructor
}

pub fn suppressed_above(n: usize) -> Vec<f64> {
    // lint:allow(hotpath-alloc): fixture — cold constructor, with a
    // continuation line between the allow and the code it covers.
    vec![0.0; n]
}

pub fn bare_allow(n: usize) -> Vec<f64> {
    // lint:allow(hotpath-alloc)
    vec![0.0; n] // lines 16+17: bad-allow AND the original finding survive
}

pub fn unknown_name(n: usize) -> Vec<f64> {
    // lint:allow(hotpath-allocs): typo'd lint name
    vec![0.0; n] // lines 21+22: bad-allow AND the original finding survive
}

pub fn not_adjacent(n: usize) -> Vec<f64> {
    // lint:allow(hotpath-alloc): too far away — a code line intervenes
    let _unused = n;
    vec![0.0; n] // line 28: finding survives (allow only reaches line 27)
}
