//! Plain-text matrix serialization.
//!
//! A deliberately simple, dependency-free format: one header line
//! `lkp-matrix <rows> <cols>` followed by one whitespace-separated row per
//! line, floats in Rust's shortest round-trippable form ("{:?}" / `{e}`),
//! so `write → read` is bit-exact. Used to persist pre-trained diversity
//! kernels and model embeddings between runs.

use crate::Matrix;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Magic header tag.
const MAGIC: &str = "lkp-matrix";

/// Writes a matrix in the text format described in the module docs.
pub fn write_matrix<W: Write>(matrix: &Matrix, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "{MAGIC} {} {}", matrix.rows(), matrix.cols())?;
    for r in 0..matrix.rows() {
        let row = matrix.row(r);
        for (c, v) in row.iter().enumerate() {
            if c > 0 {
                write!(w, " ")?;
            }
            // `{:?}` prints the shortest representation that round-trips.
            write!(w, "{v:?}")?;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Reads a matrix written by [`write_matrix`].
///
/// Shape mismatches, bad headers and unparsable floats surface as
/// `io::ErrorKind::InvalidData`.
pub fn read_matrix<R: Read>(reader: R) -> std::io::Result<Matrix> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines.next().ok_or_else(|| bad_data("empty input"))??;
    let mut parts = header.split_whitespace();
    if parts.next() != Some(MAGIC) {
        return Err(bad_data("missing lkp-matrix header"));
    }
    let rows: usize = parts
        .next()
        .ok_or_else(|| bad_data("missing row count"))?
        .parse()
        .map_err(bad)?;
    let cols: usize = parts
        .next()
        .ok_or_else(|| bad_data("missing col count"))?
        .parse()
        .map_err(bad)?;
    let mut data = Vec::with_capacity(rows * cols);
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        for tok in line.split_whitespace() {
            data.push(tok.parse::<f64>().map_err(bad)?);
        }
    }
    if data.len() != rows * cols {
        return Err(bad_data(&format!(
            "payload has {} values, header promises {}",
            data.len(),
            rows * cols
        )));
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

/// Writes a matrix to a filesystem path.
pub fn save_matrix(matrix: &Matrix, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    write_matrix(matrix, std::fs::File::create(path)?)
}

/// Reads a matrix from a filesystem path.
pub fn load_matrix(path: impl AsRef<std::path::Path>) -> std::io::Result<Matrix> {
    read_matrix(std::fs::File::open(path)?)
}

fn bad_data(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

fn bad<E: std::fmt::Display>(e: E) -> std::io::Error {
    bad_data(&e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_bit_exact() {
        let m = Matrix::from_fn(4, 3, |r, c| {
            (r as f64 + 1.0) / (c as f64 + 7.0) * if (r + c) % 2 == 0 { 1.0 } else { -1.0 }
        });
        let mut buf = Vec::new();
        write_matrix(&m, &mut buf).unwrap();
        let back = read_matrix(buf.as_slice()).unwrap();
        assert_eq!(m, back, "round-trip must be bit-exact");
    }

    #[test]
    fn roundtrip_preserves_special_magnitudes() {
        let m = Matrix::from_rows(&[
            &[1e-300, -1e300, 0.1 + 0.2],
            &[f64::MIN_POSITIVE, -0.0, std::f64::consts::PI],
        ]);
        let mut buf = Vec::new();
        write_matrix(&m, &mut buf).unwrap();
        let back = read_matrix(buf.as_slice()).unwrap();
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn empty_matrix_roundtrips() {
        let m = Matrix::zeros(0, 0);
        let mut buf = Vec::new();
        write_matrix(&m, &mut buf).unwrap();
        let back = read_matrix(buf.as_slice()).unwrap();
        assert_eq!(back.shape(), (0, 0));
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        assert!(read_matrix("".as_bytes()).is_err());
        assert!(read_matrix("not-a-header 2 2\n1 2\n3 4\n".as_bytes()).is_err());
        assert!(
            read_matrix("lkp-matrix 2 2\n1 2\n3\n".as_bytes()).is_err(),
            "short payload"
        );
        assert!(
            read_matrix("lkp-matrix 1 2\n1 banana\n".as_bytes()).is_err(),
            "bad float"
        );
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("lkp_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.tsv");
        let m = Matrix::identity(5);
        save_matrix(&m, &path).unwrap();
        let back = load_matrix(&path).unwrap();
        assert_eq!(m, back);
        std::fs::remove_file(path).ok();
    }
}
