//! Matrix factorization: `ŷ_{u,i} = ⟨p_u, q_i⟩`.

use crate::{ItemEmbeddings, Recommender};
use lkp_linalg::ops::dot;
use lkp_nn::{AdamConfig, EmbeddingTable};
use rand::Rng;

/// Plain inner-product matrix factorization (the paper's "basic MF").
#[derive(Debug, Clone)]
pub struct MatrixFactorization {
    users: EmbeddingTable,
    items: EmbeddingTable,
    /// Reused user-gradient row for [`Recommender::accumulate_score_grads`].
    scratch: Vec<f64>,
    /// Reused pre-update copy of `p_u` for [`Recommender::em_score_step`]
    /// (the simultaneous update reads old values on both sides).
    scratch_em: Vec<f64>,
}

impl MatrixFactorization {
    /// Creates a model with `N(0, 0.1²)` embeddings of dimension `dim`.
    pub fn new<R: Rng + ?Sized>(
        n_users: usize,
        n_items: usize,
        dim: usize,
        config: AdamConfig,
        rng: &mut R,
    ) -> Self {
        MatrixFactorization {
            users: EmbeddingTable::new(n_users, dim, 0.1, config, rng),
            items: EmbeddingTable::new(n_items, dim, 0.1, config, rng),
            scratch: Vec::new(),
            scratch_em: Vec::new(),
        }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.users.dim()
    }

    /// Borrow a user embedding.
    pub fn user_embedding(&self, user: usize) -> &[f64] {
        self.users.row(user)
    }

    /// Overwrites an item embedding, bypassing the optimizer.
    ///
    /// Diagnostic/test helper (finite-difference checks, case studies); not
    /// part of the training path.
    #[doc(hidden)]
    pub fn set_item_embedding_for_tests(&mut self, item: usize, values: &[f64]) {
        assert_eq!(values.len(), self.items.dim());
        for (c, &v) in values.iter().enumerate() {
            self.items.matrix_mut()[(item, c)] = v;
        }
    }

    /// Persists the embedding tables to `<stem>.users.tsv` and
    /// `<stem>.items.tsv` (optimizer state is not saved — a reloaded model
    /// serves, or fine-tunes with a fresh optimizer clock).
    pub fn save(&self, stem: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let stem = stem.as_ref();
        lkp_linalg::io::save_matrix(self.users.matrix(), with_suffix(stem, "users"))?;
        lkp_linalg::io::save_matrix(self.items.matrix(), with_suffix(stem, "items"))
    }

    /// Loads embeddings previously written by [`MatrixFactorization::save`]
    /// into a model with fresh optimizer state.
    pub fn load(stem: impl AsRef<std::path::Path>, config: AdamConfig) -> std::io::Result<Self> {
        let stem = stem.as_ref();
        let users = lkp_linalg::io::load_matrix(with_suffix(stem, "users"))?;
        let items = lkp_linalg::io::load_matrix(with_suffix(stem, "items"))?;
        if users.cols() != items.cols() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "dimension mismatch: users {} vs items {}",
                    users.cols(),
                    items.cols()
                ),
            ));
        }
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut model =
            MatrixFactorization::new(users.rows(), items.rows(), users.cols(), config, &mut rng);
        *model.users.matrix_mut() = users;
        *model.items.matrix_mut() = items;
        Ok(model)
    }
}

fn with_suffix(stem: &std::path::Path, part: &str) -> std::path::PathBuf {
    let mut os = stem.as_os_str().to_owned();
    os.push(format!(".{part}.tsv"));
    std::path::PathBuf::from(os)
}

impl Recommender for MatrixFactorization {
    fn n_users(&self) -> usize {
        self.users.rows()
    }

    fn n_items(&self) -> usize {
        self.items.rows()
    }

    fn score_items(&self, user: usize, items: &[usize]) -> Vec<f64> {
        let p = self.users.row(user);
        items.iter().map(|&i| dot(p, self.items.row(i))).collect()
    }

    fn score_items_into(&self, user: usize, items: &[usize], out: &mut Vec<f64>) {
        let p = self.users.row(user);
        out.clear();
        out.extend(items.iter().map(|&i| dot(p, self.items.row(i))));
    }

    fn accumulate_score_grads(&mut self, user: usize, items: &[usize], dscores: &[f64]) {
        debug_assert_eq!(items.len(), dscores.len());
        let dim = self.dim();
        self.scratch.clear();
        self.scratch.resize(dim, 0.0);
        for (&i, &ds) in items.iter().zip(dscores) {
            if ds == 0.0 {
                continue;
            }
            // ∂s/∂p_u = q_i, ∂s/∂q_i = p_u — accumulate the user part into
            // the reused scratch row and push the item part scaled in place.
            let q = self.items.row(i);
            for (a, &b) in self.scratch.iter_mut().zip(q) {
                *a += ds * b;
            }
            let (users, items_table) = (&self.users, &mut self.items);
            items_table.accumulate_scaled_grad(i, ds, users.row(user));
        }
        let (scratch, users) = (&self.scratch, &mut self.users);
        users.accumulate_grad(user, scratch);
    }

    fn step(&mut self) {
        self.users.step();
        self.items.step();
    }

    fn em_score_step(&mut self, user: usize, items: &[usize], dscores: &[f64], rate: f64) {
        debug_assert_eq!(items.len(), dscores.len());
        let dim = self.dim();
        // Simultaneous update: both sides read pre-step values, so copy
        // `p_u` out and accumulate its gradient before touching any row.
        self.scratch_em.clear();
        self.scratch_em.extend_from_slice(self.users.row(user));
        self.scratch.clear();
        self.scratch.resize(dim, 0.0);
        for (&i, &ds) in items.iter().zip(dscores) {
            if ds == 0.0 {
                continue;
            }
            // ŷ = ⟨p_u, q_i⟩: the damped step ŷ ← ŷ − rate·g is
            // p_u ← p_u − rate·g·q_i and q_i ← q_i − rate·g·p_u, applied
            // directly — no optimizer moments, `rate` is the EM damping.
            let q = self.items.row(i);
            for (a, &b) in self.scratch.iter_mut().zip(q) {
                *a += ds * b;
            }
            let item_matrix = self.items.matrix_mut();
            for (c, &p) in self.scratch_em.iter().enumerate() {
                item_matrix[(i, c)] -= rate * ds * p;
            }
        }
        let user_matrix = self.users.matrix_mut();
        for (c, &du) in self.scratch.iter().enumerate() {
            user_matrix[(user, c)] -= rate * du;
        }
    }
}

impl ItemEmbeddings for MatrixFactorization {
    fn item_dim(&self) -> usize {
        self.items.dim()
    }

    fn item_embedding(&self, item: usize) -> &[f64] {
        self.items.row(item)
    }

    fn accumulate_item_embedding_grad(&mut self, item: usize, grad: &[f64]) {
        self.items.accumulate_grad(item, grad);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> MatrixFactorization {
        let mut rng = StdRng::seed_from_u64(0);
        MatrixFactorization::new(
            4,
            6,
            8,
            AdamConfig {
                lr: 0.05,
                weight_decay: 0.0,
                ..Default::default()
            },
            &mut rng,
        )
    }

    #[test]
    fn scores_are_inner_products() {
        let m = model();
        let s = m.score_items(1, &[0, 3]);
        let manual0 = dot(m.user_embedding(1), m.item_embedding(0));
        assert!((s[0] - manual0).abs() < 1e-15);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn descending_negative_gradient_raises_score() {
        let mut m = model();
        let before = m.score_items(0, &[2])[0];
        for _ in 0..50 {
            // loss = -score → dloss/dscore = -1.
            m.accumulate_score_grads(0, &[2], &[-1.0]);
            m.step();
        }
        let after = m.score_items(0, &[2])[0];
        assert!(after > before + 0.5, "{before} -> {after}");
    }

    #[test]
    fn other_users_unaffected() {
        let mut m = model();
        let other_before = m.score_items(3, &[5])[0];
        m.accumulate_score_grads(0, &[2], &[-1.0]);
        m.step();
        let other_after = m.score_items(3, &[5])[0];
        assert_eq!(other_before, other_after);
    }

    #[test]
    fn score_gradient_matches_finite_difference_through_embeddings() {
        // Perturb an item embedding and compare score delta with the
        // accumulated gradient direction (chain through ItemEmbeddings).
        let mut m = model();
        let user = 2;
        let item = 4;
        let p = m.user_embedding(user).to_vec();
        // loss = score → dq = p.
        m.accumulate_score_grads(user, &[item], &[1.0]);
        // Finite difference.
        let h = 1e-6;
        let base = m.score_items(user, &[item])[0];
        let mut bumped = m.clone();
        let mut g = vec![0.0; m.item_dim()];
        g[0] = h;
        // Manually bump dim 0 of the item embedding.
        bumped.items.matrix_mut()[(item, 0)] += h;
        let fd = (bumped.score_items(user, &[item])[0] - base) / h;
        assert!((fd - p[0]).abs() < 1e-6, "fd {fd} vs analytic {}", p[0]);
    }

    #[test]
    fn em_score_step_is_the_simultaneous_plain_sgd_update() {
        let mut m = model();
        let user = 1;
        let items = [0usize, 3, 5];
        let dscores = [0.4, -1.0, 0.0];
        let rate = 0.07;
        let p_old = m.user_embedding(user).to_vec();
        let q_old: Vec<Vec<f64>> = items
            .iter()
            .map(|&i| m.item_embedding(i).to_vec())
            .collect();
        m.em_score_step(user, &items, &dscores, rate);
        // p_u ← p_u − rate·Σ ds_i·q_i, all reads against pre-step values.
        for c in 0..m.dim() {
            let du: f64 = dscores.iter().zip(&q_old).map(|(&ds, q)| ds * q[c]).sum();
            let expect = p_old[c] - rate * du;
            assert!((m.user_embedding(user)[c] - expect).abs() < 1e-15);
        }
        // q_i ← q_i − rate·ds_i·p_u (old); ds = 0 rows untouched bitwise.
        for ((&i, &ds), q) in items.iter().zip(&dscores).zip(&q_old) {
            for c in 0..m.dim() {
                let expect = q[c] - rate * ds * p_old[c];
                if ds == 0.0 {
                    assert_eq!(m.item_embedding(i)[c], q[c]);
                } else {
                    assert!((m.item_embedding(i)[c] - expect).abs() < 1e-15);
                }
            }
        }
        // No optimizer state was touched: a subsequent step() is a no-op.
        let snapshot = m.score_items(user, &items);
        m.step();
        assert_eq!(m.score_items(user, &items), snapshot);
    }

    #[test]
    fn em_score_step_damps_scores_toward_lower_loss() {
        let mut m = model();
        let before = m.score_items(2, &[1])[0];
        // loss = -score → g = -1 → ŷ must rise under ŷ ← ŷ − rate·g.
        m.em_score_step(2, &[1], &[-1.0], 0.1);
        let after = m.score_items(2, &[1])[0];
        assert!(after > before, "{before} -> {after}");
    }

    #[test]
    fn save_load_preserves_scores() {
        let m = model();
        let dir = std::env::temp_dir().join("lkp_mf_persist");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("model");
        m.save(&stem).unwrap();
        let loaded = MatrixFactorization::load(&stem, AdamConfig::default()).unwrap();
        for user in 0..m.n_users() {
            let a = m.score_items(user, &[0, 1, 2, 3, 4, 5]);
            let b = loaded.score_items(user, &[0, 1, 2, 3, 4, 5]);
            assert_eq!(a, b, "scores diverged after reload for user {user}");
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn score_all_matches_score_items() {
        let m = model();
        let mut all = Vec::new();
        m.score_all(1, &mut all);
        assert_eq!(all.len(), 6);
        let listed = m.score_items(1, &[0, 1, 2, 3, 4, 5]);
        assert_eq!(all, listed);
    }
}
