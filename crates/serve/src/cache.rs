//! Bounded caches of per-candidate-set kernel blocks, in two backends.
//!
//! The per-request kernel work depends only on the candidate set — `K_C =
//! V_C·V_Cᵀ` for the dense path, the raw factor rows `V_C` for the dual path
//! — so for the common serving shape (each user's candidate pool is stable
//! across requests) it is worth paying once and amortizing. Two backends
//! share the same entry layout and eviction policy:
//!
//! * [`per_worker::KernelCache`] — one private cache per pool worker, no
//!   locks (the PR-2 design, still the default). A user's block is rebuilt
//!   once *per worker* that serves them.
//! * [`shared::SharedKernelCache`] — one cache for the whole pool, sharded
//!   `N` ways by user hash with one lock per shard. A user's block is built
//!   once *per process*, whichever worker gets there first.
//!
//! An entry holds one of two [`EntryForm`]s: a `|C|×|C|` dense submatrix
//! (`O(|C|²)` bytes) or a `|C|×d` factor block (`O(|C|·d)` bytes). Because
//! the forms differ in size by orders of magnitude at catalog-scale `|C|`,
//! capacity is a **byte budget**, not an entry count: eviction shrinks the
//! resident set oldest-first until it fits the budget in bytes, so one dense
//! entry no longer costs the same as a factor entry ~`|C|/d` times smaller.
//!
//! Both backends store bit-exact copies of what a miss recomputes
//! ([`lkp_dpp::LowRankKernel::submatrix_into`] and
//! [`lkp_dpp::LowRankKernel::gather_rows_into`] are deterministic), so cache
//! hits — from either backend, at any pool width — can never change a
//! served list.

pub(crate) mod per_worker;
pub(crate) mod shared;

pub(crate) use per_worker::KernelCache;
pub(crate) use shared::SharedKernelCache;

use lkp_dpp::LowRankKernel;
use lkp_linalg::Matrix;
use std::collections::HashMap;

/// Which block a cache entry (or a lookup) carries. The form is part of hit
/// validation alongside the exact candidate list: a mode flip between
/// requests rebuilds the entry instead of serving the wrong shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EntryForm {
    /// Dense diversity submatrix `K_C = V_C·V_Cᵀ` (`|C| × |C|`).
    Dense,
    /// Raw factor rows `V_C` (`|C| × d`) for the dual MAP path.
    Factor,
}

/// Bytes an entry of `form` occupies for `c` candidates against a rank-`d`
/// kernel: the candidate list plus the block, both 8-byte elements. Used to
/// size prospective entries *before* paying the assembly (prewarm refusal).
pub(crate) fn entry_bytes(form: EntryForm, c: usize, d: usize) -> usize {
    let block = match form {
        EntryForm::Dense => c * c,
        EntryForm::Factor => c * d,
    };
    8 * (c + block)
}

/// One cached `(user, candidate-set)` block. Entries are keyed by user and
/// validated against the exact candidate list **and** form: a changed pool
/// (or a dense↔dual mode flip) replaces the entry instead of serving a
/// stale or wrong-shaped block.
#[derive(Clone)]
pub(crate) struct CacheEntry {
    pub(crate) candidates: Vec<usize>,
    pub(crate) form: EntryForm,
    /// `K_C` (Dense) or `V_C` (Factor).
    pub(crate) block: Matrix,
    pub(crate) last_used: u64,
}

impl CacheEntry {
    pub(crate) fn empty() -> Self {
        CacheEntry {
            // lint:allow(hotpath-alloc): empty placeholder built once per
            // cache slot; refills reuse the buffer via `fill`.
            candidates: Vec::new(),
            form: EntryForm::Dense,
            block: Matrix::zeros(0, 0),
            last_used: 0,
        }
    }

    /// Resident bytes of this entry (candidate list + block).
    pub(crate) fn bytes(&self) -> usize {
        8 * (self.candidates.len() + self.block.rows() * self.block.cols())
    }

    /// (Re)fills the entry for `candidates` in `form`, building into the
    /// reused matrix buffer.
    pub(crate) fn fill(
        &mut self,
        candidates: &[usize],
        kernel: &LowRankKernel,
        form: EntryForm,
        tick: u64,
    ) {
        self.candidates.clear();
        self.candidates.extend_from_slice(candidates);
        self.form = form;
        match form {
            EntryForm::Dense => kernel.submatrix_into(candidates, &mut self.block),
            EntryForm::Factor => kernel.gather_rows_into(candidates, &mut self.block),
        }
        .expect("candidates validated by caller");
        self.last_used = tick;
    }

    /// Fills the entry with a copy of an externally built block (the shared
    /// backend assembles outside the shard lock, then publishes).
    pub(crate) fn fill_from(
        &mut self,
        candidates: &[usize],
        block: &Matrix,
        form: EntryForm,
        tick: u64,
    ) {
        self.candidates.clear();
        self.candidates.extend_from_slice(candidates);
        self.form = form;
        self.block.copy_from(block);
        self.last_used = tick;
    }
}

/// Evicts least-recently-used entries until the resident set fits `bound`
/// bytes — in one pass over the map, not one scan per eviction. All
/// `(last_used, user)` pairs are collected into `scratch`, sorted ascending
/// (ticks are unique per cache, so the order is total), and removed
/// oldest-first until `*bytes ≤ bound` — except the single newest entry,
/// which always survives: the hit path touches an entry and then re-reads it
/// after the shrink, so the freshest tick must stay resident even when one
/// entry alone exceeds the budget. After the call `scratch` holds the
/// evicted pairs in eviction order (oldest first) and `*bytes` the resident
/// total.
pub(crate) fn evict_lru(
    entries: &mut HashMap<usize, CacheEntry>,
    bytes: &mut usize,
    bound: usize,
    scratch: &mut Vec<(u64, usize)>,
) {
    scratch.clear();
    if *bytes <= bound {
        return;
    }
    scratch.extend(entries.iter().map(|(&user, e)| (e.last_used, user)));
    scratch.sort_unstable();
    let mut removed = 0;
    for &(_, user) in scratch.iter() {
        if *bytes <= bound || entries.len() == 1 {
            break;
        }
        let entry = entries.remove(&user).expect("listed resident entry");
        *bytes -= entry.bytes();
        removed += 1;
    }
    scratch.truncate(removed);
}

/// Counters of one cache shard: a worker's private cache in
/// [`crate::CacheMode::PerWorker`] mode, one hash shard of the shared cache
/// in [`crate::CacheMode::Sharded`] mode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that paid the kernel-block build.
    pub misses: u64,
    /// Builds that deliberately bypassed a disabled cache
    /// (`kernel_cache_bytes = 0`) — counted separately so they cannot
    /// skew hit-rate reporting.
    pub bypasses: u64,
    /// Entries inserted by [`crate::Ranker::prewarm`] (not misses: the
    /// assembly was requested ahead of traffic, not forced by it).
    pub prewarmed: u64,
    /// Entries currently resident.
    pub resident: usize,
    /// Bytes currently resident (candidate lists + blocks); dense entries
    /// cost `O(|C|²)`, factor entries `O(|C|·d)`.
    pub resident_bytes: usize,
}

impl ShardStats {
    pub(crate) fn absorb(&mut self, other: &ShardStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.bypasses += other.bypasses;
        self.prewarmed += other.prewarmed;
        self.resident += other.resident;
        self.resident_bytes += other.resident_bytes;
    }
}

/// Kernel-cache counters, per shard plus aggregate, as reported by
/// [`crate::Ranker::cache_stats_detailed`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// One row per shard — per pool worker in `PerWorker` mode (index =
    /// worker index; idle workers report a zero row without being
    /// materialized), per hash shard in `Sharded` mode.
    pub per_shard: Vec<ShardStats>,
    /// Sum over `per_shard`.
    pub aggregate: ShardStats,
}

impl CacheStats {
    pub(crate) fn from_shards(per_shard: Vec<ShardStats>) -> Self {
        let mut aggregate = ShardStats::default();
        for s in &per_shard {
            aggregate.absorb(s);
        }
        CacheStats {
            per_shard,
            aggregate,
        }
    }

    /// `hits / (hits + misses)` over all shards (0 when no lookups ran).
    pub fn hit_rate(&self) -> f64 {
        let looked = self.aggregate.hits + self.aggregate.misses;
        if looked == 0 {
            0.0
        } else {
            self.aggregate.hits as f64 / looked as f64
        }
    }
}
