//! Low-rank diversity kernels `K = V·Vᵀ`.
//!
//! The paper's diversity kernel is learned in low-rank form "to reduce the
//! computational complexity of calculating an M × M matrix" (Section III-B,
//! around Eq. 3): `V ∈ R^{M×d}` holds one d-dimensional *row* per item, and
//! any required principal submatrix `K_T = V_T·V_Tᵀ` is materialized on
//! demand in `O(|T|²·d)` — the full M × M kernel never exists. The row-major
//! item layout matches the embedding tables in `lkp-nn`, so the kernel
//! trainer can reuse sparse per-row Adam updates.
//!
//! Because `K_T` is rank-deficient whenever `|T| > d`, all log-determinants
//! go through a jitter `K_T + ε·I`, and the gradient used for kernel
//! learning (Eq. 3) is `∂ log det(K_T + εI) / ∂V_T = 2·(K_T + εI)⁻¹·V_T`.

use crate::{DppError, Result};
use lkp_linalg::{Cholesky, Matrix};

/// A diversity kernel in factored form `K = V·Vᵀ`, `V: M × d` (row per item).
#[derive(Debug, Clone)]
pub struct LowRankKernel {
    v: Matrix,
}

impl LowRankKernel {
    /// Wraps an `M × d` factor matrix (one row per item).
    pub fn new(v: Matrix) -> Self {
        LowRankKernel { v }
    }

    /// Feature dimension `d`.
    pub fn dim(&self) -> usize {
        self.v.cols()
    }

    /// Number of items `M`.
    pub fn num_items(&self) -> usize {
        self.v.rows()
    }

    /// Borrow the factor matrix.
    pub fn factor(&self) -> &Matrix {
        &self.v
    }

    /// Mutably borrow the factor matrix (used by the kernel trainer).
    pub fn factor_mut(&mut self) -> &mut Matrix {
        &mut self.v
    }

    /// Single kernel entry `K_ij = ⟨v_i, v_j⟩`.
    pub fn entry(&self, i: usize, j: usize) -> f64 {
        lkp_linalg::ops::dot(self.v.row(i), self.v.row(j))
    }

    /// Materializes the principal submatrix `K_T = V_T·V_Tᵀ` for items `idx`.
    pub fn submatrix(&self, idx: &[usize]) -> Result<Matrix> {
        let mut out = Matrix::zeros(0, 0);
        self.submatrix_into(idx, &mut out)?;
        Ok(out)
    }

    /// [`LowRankKernel::submatrix`] into a reused buffer (allocation-free at
    /// steady state — the per-instance hot path).
    pub fn submatrix_into(&self, idx: &[usize], out: &mut Matrix) -> Result<()> {
        let m = self.num_items();
        for &i in idx {
            if i >= m {
                return Err(DppError::IndexOutOfBounds {
                    index: i,
                    ground_size: m,
                });
            }
        }
        let t = idx.len();
        out.reset(t, t);
        for a in 0..t {
            for b in a..t {
                let val = self.entry(idx[a], idx[b]);
                out[(a, b)] = val;
                out[(b, a)] = val;
            }
        }
        Ok(())
    }

    /// Gathers the factor rows for items `idx` into a reused `|T| × d`
    /// buffer — the dual-path input `V_T`.
    pub fn gather_rows_into(&self, idx: &[usize], out: &mut Matrix) -> Result<()> {
        self.v.gather_rows_into(idx, out).map_err(DppError::Linalg)
    }

    /// Materializes the full `M × M` kernel. Small item sets only.
    pub fn full_matrix(&self) -> Matrix {
        let idx: Vec<usize> = (0..self.num_items()).collect();
        self.submatrix(&idx).expect("all indices in bounds")
    }

    /// `log det(K_T + ε·I)` for the item subset `idx`.
    pub fn log_det_jittered(&self, idx: &[usize], eps: f64) -> Result<f64> {
        let mut sub = self.submatrix(idx)?;
        for i in 0..sub.rows() {
            sub[(i, i)] += eps;
        }
        Ok(Cholesky::new(&sub)?.log_det())
    }

    /// Gradient of `log det(K_T + ε·I)` with respect to the rows of `V`
    /// indexed by `idx`: returns a `|T| × d` matrix whose row `a` is the
    /// gradient for item `idx[a]`.
    ///
    /// Derivation: with `V_T` the `|T| × d` gathered factor,
    /// `∂/∂V_T = 2·(V_T·V_Tᵀ + εI)⁻¹·V_T`.
    ///
    /// `idx` must not contain duplicates (the trainer guarantees this).
    pub fn grad_log_det(&self, idx: &[usize], eps: f64) -> Result<Matrix> {
        let t = idx.len();
        let mut sub = self.submatrix(idx)?;
        for i in 0..t {
            sub[(i, i)] += eps;
        }
        let inv = Cholesky::new(&sub)?.inverse()?;
        let vt = self.v.gather_rows(idx)?;
        let mut g = inv.matmul(&vt)?;
        g.scale(2.0);
        Ok(g)
    }

    /// Persists the factor matrix to a path (text format of `lkp-linalg::io`).
    ///
    /// The paper pre-trains the diversity kernel once and freezes it; saving
    /// it lets every subsequent experiment skip the pre-training pass.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        lkp_linalg::io::save_matrix(&self.v, path)
    }

    /// Loads a kernel previously written by [`LowRankKernel::save`].
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(LowRankKernel::new(lkp_linalg::io::load_matrix(path)?))
    }

    /// Returns a copy with every row rescaled to unit norm, so the induced
    /// kernel has `K_ii = 1` (a correlation-style diversity kernel, making
    /// the quality/diversity decomposition identifiable). Rows with
    /// numerically zero norm are left untouched.
    pub fn normalized(&self) -> LowRankKernel {
        let mut v = self.v.clone();
        for r in 0..v.rows() {
            let norm = lkp_linalg::ops::norm2(v.row(r));
            if norm > 1e-12 {
                lkp_linalg::ops::scale(1.0 / norm, v.row_mut(r));
            }
        }
        LowRankKernel { v }
    }
}

/// Builds a Gaussian (RBF) similarity kernel from item feature rows:
/// `K_ij = exp(−‖f_i − f_j‖² / (2σ²))`.
///
/// This is the paper's E-type diversity factor ("following the calculation
/// manner of Gaussian kernel"), computed from trainable item embeddings. RBF
/// kernels are PSD for any σ > 0.
pub fn rbf_kernel(features: &Matrix, sigma: f64) -> Matrix {
    let mut k = Matrix::zeros(0, 0);
    rbf_kernel_into(features, sigma, &mut k);
    k
}

/// [`rbf_kernel`] into a reused buffer (allocation-free at steady state).
pub fn rbf_kernel_into(features: &Matrix, sigma: f64, out: &mut Matrix) {
    let n = features.rows();
    let denom = 2.0 * sigma * sigma;
    out.reset(n, n);
    for i in 0..n {
        out[(i, i)] = 1.0;
        for j in (i + 1)..n {
            let d2 = lkp_linalg::ops::sq_dist(features.row(i), features.row(j));
            let val = (-d2 / denom).exp();
            out[(i, j)] = val;
            out[(j, i)] = val;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> LowRankKernel {
        let v = Matrix::from_fn(6, 3, |r, c| (((r * 5 + c * 7) % 9) as f64) * 0.25 - 1.0);
        LowRankKernel::new(v)
    }

    #[test]
    fn submatrix_matches_full_matrix() {
        let k = example();
        let full = k.full_matrix();
        let idx = vec![1, 3, 5];
        let sub = k.submatrix(&idx).unwrap();
        for (a, &i) in idx.iter().enumerate() {
            for (b, &j) in idx.iter().enumerate() {
                assert!((sub[(a, b)] - full[(i, j)]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn entries_are_inner_products() {
        let k = example();
        let manual = lkp_linalg::ops::dot(k.factor().row(2), k.factor().row(4));
        assert!((k.entry(2, 4) - manual).abs() < 1e-15);
    }

    #[test]
    fn log_det_jittered_handles_rank_deficiency() {
        // |T| = 5 > d = 3: K_T is singular; jitter must rescue it.
        let k = example();
        let idx = vec![0, 1, 2, 3, 4];
        let ld = k.log_det_jittered(&idx, 1e-6).unwrap();
        assert!(ld.is_finite());
    }

    #[test]
    fn grad_log_det_matches_finite_difference() {
        let mut k = example();
        let idx = vec![0, 2, 5];
        let eps = 1e-3;
        let analytic = k.grad_log_det(&idx, eps).unwrap();
        let h = 1e-6;
        for (a, &item) in idx.iter().enumerate() {
            for c in 0..k.dim() {
                let orig = k.factor()[(item, c)];
                k.factor_mut()[(item, c)] = orig + h;
                let plus = k.log_det_jittered(&idx, eps).unwrap();
                k.factor_mut()[(item, c)] = orig - h;
                let minus = k.log_det_jittered(&idx, eps).unwrap();
                k.factor_mut()[(item, c)] = orig;
                let fd = (plus - minus) / (2.0 * h);
                assert!(
                    (fd - analytic[(a, c)]).abs() < 1e-5,
                    "item {item} dim {c}: fd {fd} vs {}",
                    analytic[(a, c)]
                );
            }
        }
    }

    #[test]
    fn normalized_kernel_has_unit_diagonal() {
        let k = example().normalized();
        for i in 0..k.num_items() {
            let kii = k.entry(i, i);
            assert!((kii - 1.0).abs() < 1e-12, "K_{i}{i} = {kii}");
        }
    }

    #[test]
    fn rbf_kernel_is_psd_with_unit_diagonal() {
        let f = Matrix::from_fn(5, 3, |r, c| ((r * 2 + c) % 4) as f64 * 0.5);
        let k = rbf_kernel(&f, 0.8);
        assert!(k.is_symmetric(1e-15));
        for i in 0..5 {
            assert_eq!(k[(i, i)], 1.0);
        }
        let eig = lkp_linalg::eigen::SymmetricEigen::new(&k).unwrap();
        for &l in &eig.values {
            assert!(l > -1e-10, "RBF kernel eigenvalue {l}");
        }
    }

    #[test]
    fn rbf_identical_features_give_similarity_one() {
        let f = Matrix::from_rows(&[&[1.0, 2.0], &[1.0, 2.0], &[5.0, 5.0]]);
        let k = rbf_kernel(&f, 1.0);
        assert!((k[(0, 1)] - 1.0).abs() < 1e-15);
        assert!(k[(0, 2)] < 0.01);
    }

    #[test]
    fn save_load_roundtrip() {
        let k = example();
        let dir = std::env::temp_dir().join("lkp_lowrank_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kernel.tsv");
        k.save(&path).unwrap();
        let back = LowRankKernel::load(&path).unwrap();
        assert_eq!(k.factor(), back.factor());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn out_of_bounds_submatrix_rejected() {
        let k = example();
        assert!(matches!(
            k.submatrix(&[0, 9]),
            Err(DppError::IndexOutOfBounds { index: 9, .. })
        ));
    }
}
