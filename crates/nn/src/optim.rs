//! Optimizers: Adam (the paper's choice) and plain SGD.

use lkp_linalg::Matrix;

/// Adam hyperparameters. Defaults match the paper's experimental setup
/// (Adam with grid-searched learning rate; standard betas).
#[derive(Debug, Clone, Copy)]
pub struct AdamConfig {
    /// Step size.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Denominator fuzz.
    pub eps: f64,
    /// Decoupled L2 weight decay.
    pub weight_decay: f64,
    /// Per-element gradient clip (absolute value); 0 disables.
    pub grad_clip: f64,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-2,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 1e-5,
            grad_clip: 5.0,
        }
    }
}

/// Adam moment state for one parameter tensor.
///
/// Supports both dense full-tensor steps (MLP weights) and sparse per-row
/// steps (embedding tables, where only rows touched by the batch update —
/// the standard "sparse Adam" behaviour that keeps embedding training
/// `O(batch)` instead of `O(table)`).
#[derive(Debug, Clone)]
pub struct AdamState {
    m: Matrix,
    v: Matrix,
    /// Per-row step counters (sparse mode); shared counter stored at t[0]
    /// for dense mode.
    t: Vec<u64>,
    config: AdamConfig,
}

impl AdamState {
    /// Creates a zeroed state for a `rows × cols` parameter.
    pub fn new(rows: usize, cols: usize, config: AdamConfig) -> Self {
        AdamState {
            m: Matrix::zeros(rows, cols),
            v: Matrix::zeros(rows, cols),
            t: vec![0; rows],
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AdamConfig {
        &self.config
    }

    /// Mutable access for schedules (e.g. grid-searched learning rates).
    pub fn config_mut(&mut self) -> &mut AdamConfig {
        &mut self.config
    }

    /// Dense step: applies `grad` to every entry of `param`.
    pub fn step_dense(&mut self, param: &mut Matrix, grad: &Matrix) {
        assert_eq!(param.shape(), grad.shape());
        assert_eq!(param.shape(), self.m.shape());
        self.t[0] += 1;
        let t = self.t[0];
        for r in 0..param.rows() {
            self.step_row_with_t(param, r, grad.row(r).to_vec().as_slice(), t);
        }
        // Keep per-row counters coherent for mixed use.
        for tr in self.t.iter_mut() {
            *tr = t;
        }
    }

    /// Sparse step: applies `grad_row` to row `row` only, with that row's own
    /// bias-correction clock.
    pub fn step_row(&mut self, param: &mut Matrix, row: usize, grad_row: &[f64]) {
        self.t[row] += 1;
        let t = self.t[row];
        self.step_row_with_t(param, row, grad_row, t);
    }

    fn step_row_with_t(&mut self, param: &mut Matrix, row: usize, grad_row: &[f64], t: u64) {
        let c = &self.config;
        let bc1 = 1.0 - c.beta1.powi(t as i32);
        let bc2 = 1.0 - c.beta2.powi(t as i32);
        let cols = param.cols();
        debug_assert_eq!(grad_row.len(), cols);
        for j in 0..cols {
            let mut g = grad_row[j];
            if c.grad_clip > 0.0 {
                g = g.clamp(-c.grad_clip, c.grad_clip);
            }
            if c.weight_decay > 0.0 {
                g += c.weight_decay * param[(row, j)];
            }
            let m = c.beta1 * self.m[(row, j)] + (1.0 - c.beta1) * g;
            let v = c.beta2 * self.v[(row, j)] + (1.0 - c.beta2) * g * g;
            self.m[(row, j)] = m;
            self.v[(row, j)] = v;
            let m_hat = m / bc1;
            let v_hat = v / bc2;
            param[(row, j)] -= c.lr * m_hat / (v_hat.sqrt() + c.eps);
        }
    }
}

/// Plain SGD step with optional clipping and weight decay; provided for
/// ablations against Adam.
pub fn sgd_step(param: &mut Matrix, grad: &Matrix, lr: f64, weight_decay: f64, grad_clip: f64) {
    assert_eq!(param.shape(), grad.shape());
    for r in 0..param.rows() {
        for c in 0..param.cols() {
            let mut g = grad[(r, c)];
            if grad_clip > 0.0 {
                g = g.clamp(-grad_clip, grad_clip);
            }
            g += weight_decay * param[(r, c)];
            param[(r, c)] -= lr * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizing f(x) = (x - 3)² with Adam should converge to 3.
    #[test]
    fn adam_minimizes_quadratic() {
        let cfg = AdamConfig {
            lr: 0.1,
            weight_decay: 0.0,
            ..Default::default()
        };
        let mut state = AdamState::new(1, 1, cfg);
        let mut x = Matrix::from_vec(1, 1, vec![-4.0]);
        for _ in 0..500 {
            let grad = Matrix::from_vec(1, 1, vec![2.0 * (x[(0, 0)] - 3.0)]);
            state.step_dense(&mut x, &grad);
        }
        assert!((x[(0, 0)] - 3.0).abs() < 1e-3, "x = {}", x[(0, 0)]);
    }

    #[test]
    fn sparse_rows_have_independent_clocks() {
        let cfg = AdamConfig {
            lr: 0.1,
            weight_decay: 0.0,
            ..Default::default()
        };
        let mut state = AdamState::new(2, 1, cfg);
        let mut x = Matrix::from_vec(2, 1, vec![0.0, 0.0]);
        // Only row 0 is ever updated.
        for _ in 0..50 {
            state.step_row(&mut x, 0, &[1.0]);
        }
        assert!(x[(0, 0)] < -1.0, "row 0 moved: {}", x[(0, 0)]);
        assert_eq!(x[(1, 0)], 0.0, "row 1 untouched");
    }

    #[test]
    fn gradient_clipping_bounds_step() {
        let cfg = AdamConfig {
            lr: 0.1,
            grad_clip: 1.0,
            weight_decay: 0.0,
            ..Default::default()
        };
        let mut state = AdamState::new(1, 1, cfg);
        let mut x = Matrix::from_vec(1, 1, vec![0.0]);
        state.step_row(&mut x, 0, &[1e9]);
        // First Adam step magnitude is at most lr regardless of gradient size.
        assert!(x[(0, 0)].abs() <= 0.1 + 1e-12);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut p = Matrix::from_vec(1, 1, vec![10.0]);
        let g = Matrix::zeros(1, 1);
        sgd_step(&mut p, &g, 0.1, 0.5, 0.0);
        assert!((p[(0, 0)] - 9.5).abs() < 1e-12);
    }

    #[test]
    fn sgd_descends() {
        let mut p = Matrix::from_vec(1, 2, vec![1.0, -2.0]);
        let g = Matrix::from_vec(1, 2, vec![0.5, -0.5]);
        sgd_step(&mut p, &g, 1.0, 0.0, 0.0);
        assert_eq!(p.as_slice(), &[0.5, -1.5]);
    }
}
