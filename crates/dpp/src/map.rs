//! Greedy MAP inference for DPPs.
//!
//! Finding the size-k subset maximizing `det(L_S)` is NP-hard; the standard
//! practical algorithm is the fast greedy of Chen, Zhang & Zhou (NeurIPS
//! 2018), which maintains an incremental Cholesky factorization so that each
//! greedy step costs `O(M·|S|)` instead of `O(M·|S|³)` — `O(M·k²)` overall.
//!
//! This is the inference-side counterpart of LkP: the paper's related-work
//! positioning (Chen et al. \[25\]) diversifies at *serving* time, while LkP
//! moves diversity into the *training* objective. Both are provided so the
//! benches can compare them.

use crate::{DppError, DppKernel, Result};
use lkp_linalg::Matrix;

/// Result of a greedy MAP run.
#[derive(Debug, Clone)]
pub struct MapResult {
    /// Selected items, in selection order (not sorted).
    pub items: Vec<usize>,
    /// `log det(L_S)` of the selected set, accumulated incrementally.
    pub log_det: f64,
}

/// Reusable scratch for [`greedy_map_with`] — the serving hot path.
///
/// One workspace per worker thread; buffers grow to the steady-state
/// `(m, k)` shape on first use and are clear-and-refilled afterwards, so a
/// steady-state MAP call performs no heap allocation. The selection and
/// incremental `log det` of the last call stay readable until the next one.
#[derive(Debug, Clone, Default)]
pub struct MapWorkspace {
    /// Residual squared norms (marginal gains) per candidate.
    d2: Vec<f64>,
    /// Incremental Cholesky rows, candidate-major: row `i` holds the first
    /// `selected.len()` coefficients of candidate `i`.
    c: Matrix,
    /// Contiguous copy of the newly selected row (borrow-splitting scratch).
    cj: Vec<f64>,
    in_set: Vec<bool>,
    selected: Vec<usize>,
    /// Marginal gain accepted at each greedy step, in selection order.
    gains: Vec<f64>,
    log_det: f64,
}

impl MapWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        MapWorkspace::default()
    }

    /// Selected indices of the last [`greedy_map_with`] call, in selection
    /// order.
    pub fn items(&self) -> &[usize] {
        &self.selected
    }

    /// Marginal gain accepted at each step of the last call, in selection
    /// order (`gains()[t]` is the `d²` of the item picked at step `t`).
    pub fn gains(&self) -> &[f64] {
        &self.gains
    }

    /// `log det(L_S)` of the last selection.
    pub fn log_det(&self) -> f64 {
        self.log_det
    }
}

/// Fast greedy MAP over a raw kernel matrix, reusing `ws` across calls.
///
/// This is the workspace entry point behind [`greedy_map`], exposed
/// separately so batched serving can run thousands of MAP calls without
/// per-call allocation, directly on a kernel assembled in a reused buffer
/// (no [`DppKernel`] construction). `l` must be square and symmetric PSD —
/// callers assembling `Diag(q)·K·Diag(q) + ε·I` satisfy this by
/// construction; the symmetry is **not** re-verified here.
///
/// The selection lands in [`MapWorkspace::items`]; the arithmetic (and hence
/// the result, bit for bit) is identical to [`greedy_map`].
pub fn greedy_map_with(l: &Matrix, k: usize, ws: &mut MapWorkspace) -> Result<()> {
    let m = l.rows();
    if !l.is_square() {
        return Err(DppError::Linalg(lkp_linalg::LinalgError::NotSquare {
            rows: l.rows(),
            cols: l.cols(),
        }));
    }
    if k > m {
        return Err(DppError::CardinalityTooLarge { k, ground_size: m });
    }
    ws.d2.clear();
    ws.d2.extend((0..m).map(|i| l[(i, i)]));
    ws.c.reset(m, k.max(1));
    ws.cj.clear();
    ws.cj.resize(k, 0.0);
    ws.in_set.clear();
    ws.in_set.resize(m, false);
    ws.selected.clear();
    ws.gains.clear();
    ws.log_det = 0.0;

    while ws.selected.len() < k {
        // argmax over remaining candidates.
        let mut best: Option<(usize, f64)> = None;
        for i in 0..m {
            if ws.in_set[i] {
                continue;
            }
            match best {
                Some((_, bd)) if ws.d2[i] <= bd => {}
                _ => best = Some((i, ws.d2[i])),
            }
        }
        let (j, gain) = best.ok_or(DppError::DegenerateKernel)?;
        if gain <= 1e-12 {
            // Kernel rank exhausted: no size-k subset with positive volume
            // extends the current one.
            break;
        }
        let dj = gain.sqrt();
        ws.log_det += gain.ln();
        ws.in_set[j] = true;
        let depth = ws.selected.len();

        // Update residuals of all remaining candidates against the newly
        // selected column j: e_i = (L_ji − ⟨c_j, c_i⟩) / d_j.
        ws.cj[..depth].copy_from_slice(&ws.c.row(j)[..depth]);
        for i in 0..m {
            if ws.in_set[i] {
                continue;
            }
            let ci = ws.c.row_mut(i);
            let mut dot = 0.0;
            for (a, b) in ws.cj[..depth].iter().zip(ci.iter()) {
                dot += a * b;
            }
            let e = (l[(j, i)] - dot) / dj;
            ci[depth] = e;
            ws.d2[i] -= e * e;
        }
        ws.selected.push(j);
        ws.gains.push(gain);
    }
    Ok(())
}

/// Fast greedy MAP: grows a subset one item at a time, always adding the item
/// with the largest marginal gain `det(L_{S∪{i}})/det(L_S)`, until `k` items
/// are selected or no item has positive gain.
///
/// Invariant maintained per candidate `i`: `d2[i]` is the squared norm of the
/// residual of column `i` against the subspace spanned by the selected items
/// (equivalently the marginal gain), and the workspace's Cholesky row `c_i`
/// realizes it. Allocating convenience wrapper over [`greedy_map_with`].
pub fn greedy_map(kernel: &DppKernel, k: usize) -> Result<MapResult> {
    let mut ws = MapWorkspace::new();
    greedy_map_with(kernel.matrix(), k, &mut ws)?;
    Ok(MapResult {
        items: ws.selected,
        log_det: ws.log_det,
    })
}

/// Naive greedy MAP that recomputes `log det` from scratch at each step.
/// `O(M·k⁴)` — reference implementation for tests and the ablation bench.
pub fn greedy_map_naive(kernel: &DppKernel, k: usize) -> Result<MapResult> {
    let m = kernel.size();
    if k > m {
        return Err(DppError::CardinalityTooLarge { k, ground_size: m });
    }
    let mut selected: Vec<usize> = Vec::with_capacity(k);
    let mut current_log_det = 0.0;
    while selected.len() < k {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..m {
            if selected.contains(&i) {
                continue;
            }
            let mut trial = selected.clone();
            trial.push(i);
            let ld = kernel.log_det_subset(&trial)?;
            if ld.is_finite() {
                match best {
                    Some((_, b)) if ld <= b => {}
                    _ => best = Some((i, ld)),
                }
            }
        }
        match best {
            Some((j, ld)) if ld - current_log_det > (1e-12_f64).ln() => {
                selected.push(j);
                current_log_det = ld;
            }
            _ => break,
        }
    }
    Ok(MapResult {
        items: selected,
        log_det: current_log_det,
    })
}

/// Exhaustive MAP: enumerates all size-k subsets. Exponential — tests only.
pub fn exhaustive_map(kernel: &DppKernel, k: usize) -> Result<MapResult> {
    let m = kernel.size();
    if k > m {
        return Err(DppError::CardinalityTooLarge { k, ground_size: m });
    }
    let mut best: Option<(Vec<usize>, f64)> = None;
    for s in crate::enumerate_subsets(m, k) {
        let ld = kernel.log_det_subset(&s)?;
        match &best {
            Some((_, b)) if ld <= *b => {}
            _ => best = Some((s, ld)),
        }
    }
    let (items, log_det) = best.ok_or(DppError::DegenerateKernel)?;
    Ok(MapResult { items, log_det })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkp_linalg::Matrix;

    fn random_like_kernel(n: usize, seed: usize) -> DppKernel {
        let v = Matrix::from_fn(n, n, |r, c| {
            (((r * 31 + c * 17 + seed * 13) % 11) as f64) * 0.2 - 1.0
        });
        let mut g = v.gram();
        for i in 0..n {
            g[(i, i)] += 0.3;
        }
        DppKernel::new(g).unwrap()
    }

    #[test]
    fn fast_greedy_matches_naive_greedy() {
        for seed in 0..5 {
            let kern = random_like_kernel(8, seed);
            for k in 1..=5 {
                let fast = greedy_map(&kern, k).unwrap();
                let naive = greedy_map_naive(&kern, k).unwrap();
                assert_eq!(fast.items, naive.items, "seed={seed} k={k}");
                assert!(
                    (fast.log_det - naive.log_det).abs() < 1e-8,
                    "seed={seed} k={k}: {} vs {}",
                    fast.log_det,
                    naive.log_det
                );
            }
        }
    }

    #[test]
    fn incremental_log_det_matches_direct_computation() {
        let kern = random_like_kernel(7, 9);
        let res = greedy_map(&kern, 4).unwrap();
        let direct = kern.log_det_subset(&res.items).unwrap();
        assert!((res.log_det - direct).abs() < 1e-8);
    }

    #[test]
    fn diagonal_kernel_selects_top_k() {
        let l = Matrix::from_diag(&[0.5, 9.0, 3.0, 7.0, 1.0]);
        let res = greedy_map(&DppKernel::new(l).unwrap(), 3).unwrap();
        let mut items = res.items.clone();
        items.sort_unstable();
        assert_eq!(items, vec![1, 2, 3]);
    }

    #[test]
    fn greedy_is_optimal_on_diagonal_and_near_optimal_generally() {
        for seed in 0..4 {
            let kern = random_like_kernel(7, seed);
            let greedy = greedy_map(&kern, 3).unwrap();
            let opt = exhaustive_map(&kern, 3).unwrap();
            // Greedy can be suboptimal, but never better than exhaustive.
            assert!(greedy.log_det <= opt.log_det + 1e-9, "seed={seed}");
        }
    }

    #[test]
    fn rank_deficient_kernel_stops_early() {
        // Rank-2 kernel: greedy with k=4 must stop at 2 items.
        let v = Matrix::from_fn(2, 5, |r, c| ((r + c) % 3) as f64 + 0.5);
        let kern = DppKernel::new(v.gram()).unwrap();
        let res = greedy_map(&kern, 4).unwrap();
        assert!(
            res.items.len() <= 2,
            "selected {:?} from a rank-2 kernel",
            res.items
        );
    }

    #[test]
    fn avoids_redundant_items() {
        // Items 0,1 near-duplicates with high quality; item 2 moderately
        // dissimilar. Greedy k=2 should pick one of {0,1} plus item 2.
        let k = Matrix::from_rows(&[&[1.0, 0.98, 0.1], &[0.98, 1.0, 0.1], &[0.1, 0.1, 1.0]]);
        let q = [2.0, 2.0, 1.0];
        let kern = DppKernel::from_quality_diversity(&q, &k).unwrap();
        let res = greedy_map(&kern, 2).unwrap();
        let mut items = res.items.clone();
        items.sort_unstable();
        assert!(items == vec![0, 2] || items == vec![1, 2], "got {items:?}");
    }

    #[test]
    fn workspace_reuse_matches_fresh_runs_bitwise() {
        // One workspace driven through kernels of different sizes must keep
        // matching the allocating wrapper exactly (items and log_det bits).
        let mut ws = MapWorkspace::new();
        for (n, seed, k) in [(8, 0, 3), (5, 4, 5), (12, 2, 6), (4, 1, 2)] {
            let kern = random_like_kernel(n, seed);
            greedy_map_with(kern.matrix(), k, &mut ws).unwrap();
            let fresh = greedy_map(&kern, k).unwrap();
            assert_eq!(ws.items(), &fresh.items[..], "n={n} seed={seed} k={k}");
            assert_eq!(ws.log_det().to_bits(), fresh.log_det.to_bits());
        }
    }

    #[test]
    fn workspace_rejects_rectangular_and_oversized() {
        let mut ws = MapWorkspace::new();
        let rect = Matrix::zeros(3, 4);
        assert!(greedy_map_with(&rect, 2, &mut ws).is_err());
        let kern = random_like_kernel(4, 0);
        assert!(matches!(
            greedy_map_with(kern.matrix(), 5, &mut ws),
            Err(crate::DppError::CardinalityTooLarge { .. })
        ));
    }

    #[test]
    fn k_zero_is_empty() {
        let kern = random_like_kernel(4, 0);
        let res = greedy_map(&kern, 0).unwrap();
        assert!(res.items.is_empty());
        assert_eq!(res.log_det, 0.0);
    }
}
