//! Table III — LkP-PS / LkP-NPS against the ranking baselines (BPR, SetRank,
//! S2SRank) on the **basic MF** backbone, three datasets.

use lkp_bench::{print_table_header, print_table_row, ExpArgs, Method, PRESETS};
use lkp_core::LkpVariant;
use lkp_eval::MetricSet;

fn main() {
    let args = ExpArgs::parse();
    let methods = [
        Method::Lkp(LkpVariant::Ps),
        Method::Lkp(LkpVariant::Nps),
        Method::Bpr,
        Method::SetRank,
        Method::S2SRank,
    ];

    for preset in PRESETS {
        println!(
            "== Table III [{}] (MF backbone, k=n={}) ==",
            preset.name(),
            args.k
        );
        let data = args.dataset(preset);
        let kernel = args.diversity_kernel(&data);
        print_table_header();
        let mut rows: Vec<(Method, MetricSet)> = Vec::new();
        for &method in &methods {
            let mut model = args.mf(&data);
            let out = lkp_bench::run_method(&args, &data, &kernel, &mut model, method);
            let label = match method {
                Method::Lkp(v) => format!("LkP{}-MF", v.name()),
                other => format!("{}-MF", other.name()),
            };
            print_table_row(&label, &out.metrics);
            rows.push((method, out.metrics));
        }
        let f10 = |m: &MetricSet| m.at(10).unwrap().f_score;
        let lkp_best = rows
            .iter()
            .filter(|(m, _)| matches!(m, Method::Lkp(_)))
            .map(|(_, s)| f10(s))
            .fold(f64::NEG_INFINITY, f64::max);
        let base_best = rows
            .iter()
            .filter(|(m, _)| !matches!(m, Method::Lkp(_)))
            .map(|(_, s)| f10(s))
            .fold(f64::NEG_INFINITY, f64::max);
        let base_worst = rows
            .iter()
            .filter(|(m, _)| !matches!(m, Method::Lkp(_)))
            .map(|(_, s)| f10(s))
            .fold(f64::INFINITY, f64::min);
        println!(
            "F@10: LkP best {:.4} | max-vs-max {:+.2}% | max-vs-min {:+.2}% (paper: ~+4-5% / ~+9-15%)",
            lkp_best,
            lkp_bench::improvement_pct(lkp_best, base_best),
            lkp_bench::improvement_pct(lkp_best, base_worst),
        );
        println!();
    }
}
