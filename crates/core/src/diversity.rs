//! Pre-training of the diversity kernel (paper Eq. 3).
//!
//! The kernel `K = V·Vᵀ` is learned by ascending
//!
//! ```text
//! J = Σ_{(T⁺,T⁻)} log det(K_{T⁺}) − log det(K_{T⁻})
//! ```
//!
//! over pairs of category-diverse observed sets `T⁺` and contaminated sets
//! `T⁻` (see `lkp-data::diverse`). After training, a set spanning more
//! categories has a larger determinant — which is exactly the property the
//! k-DPP comparison of Section III-B2 needs from `K`. The kernel "is not
//! related to users" and is frozen during LkP optimization.

use lkp_data::{diverse, Dataset};
use lkp_dpp::LowRankKernel;
use lkp_nn::optim::{AdamConfig, AdamState};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for diversity-kernel pre-training.
#[derive(Debug, Clone)]
pub struct DiversityKernelConfig {
    /// Low-rank dimension `d` of `V ∈ R^{M×d}`.
    pub dim: usize,
    /// Size of each `T⁺` / `T⁻` set.
    pub set_size: usize,
    /// Pairs sampled per epoch.
    pub pairs_per_epoch: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Jitter ε in `log det(K_T + εI)`.
    pub eps: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DiversityKernelConfig {
    fn default() -> Self {
        DiversityKernelConfig {
            dim: 16,
            set_size: 5,
            pairs_per_epoch: 256,
            epochs: 30,
            lr: 0.05,
            eps: 1e-2,
            seed: 7,
        }
    }
}

/// Trains the low-rank diversity kernel on a dataset.
///
/// Returns the kernel in raw (unnormalized) form; [`LowRankKernel::normalized`]
/// is applied by the LkP objective so `K_ii = 1`.
pub fn train_diversity_kernel(data: &Dataset, config: &DiversityKernelConfig) -> LowRankKernel {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let m = data.n_items();
    let v = lkp_nn::init::normal_matrix(m, config.dim, 0.3, &mut rng);
    let mut kernel = LowRankKernel::new(v);
    let adam_cfg = AdamConfig {
        lr: config.lr,
        weight_decay: 1e-6,
        ..Default::default()
    };
    let mut adam = AdamState::new(m, config.dim, adam_cfg);

    for _ in 0..config.epochs {
        let pairs = diverse::sample_pairs(data, config.set_size, config.pairs_per_epoch, &mut rng);
        for pair in pairs {
            // Ascend J: descend −J, i.e. gradient −∂logdet(T⁺) + ∂logdet(T⁻).
            apply_set_grad(&mut kernel, &mut adam, &pair.positive, config.eps, -1.0);
            apply_set_grad(&mut kernel, &mut adam, &pair.negative, config.eps, 1.0);
        }
    }
    kernel
}

fn apply_set_grad(
    kernel: &mut LowRankKernel,
    adam: &mut AdamState,
    set: &[usize],
    eps: f64,
    sign: f64,
) {
    let Ok(g) = kernel.grad_log_det(set, eps) else {
        return; // numerically degenerate set — skip
    };
    for (a, &item) in set.iter().enumerate() {
        let row: Vec<f64> = g.row(a).iter().map(|&x| sign * x).collect();
        adam.step_row(kernel.factor_mut(), item, &row);
    }
}

/// Mean `log det(K_T + εI)` gap between diverse and contaminated sets —
/// the quantity Eq. 3 maximizes; exposed for tests and diagnostics.
pub fn mean_logdet_gap(
    kernel: &LowRankKernel,
    data: &Dataset,
    set_size: usize,
    samples: usize,
    eps: f64,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let pairs = diverse::sample_pairs(data, set_size, samples, &mut rng);
    let mut gap = 0.0;
    let mut count = 0;
    for pair in pairs {
        let (Ok(p), Ok(n)) = (
            kernel.log_det_jittered(&pair.positive, eps),
            kernel.log_det_jittered(&pair.negative, eps),
        ) else {
            continue;
        };
        gap += p - n;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        gap / count as f64
    }
}

/// Diversity-ranking diagnostic: mean `log det` of the *normalized* kernel
/// over category-diverse vs. category-monotonous size-k sets of observed
/// items. A trained kernel must rank the diverse sets higher — this is the
/// "diversity ranking interpretation" of Section III-B2.
pub fn diverse_vs_monotonous_gap(
    kernel: &LowRankKernel,
    data: &Dataset,
    set_size: usize,
    samples: usize,
    seed: u64,
) -> (f64, f64) {
    use rand::Rng;
    let norm = kernel.normalized();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut diverse_sum = 0.0;
    let mut diverse_n = 0usize;
    let mut mono_sum = 0.0;
    let mut mono_n = 0usize;
    let mut attempts = 0;
    while (diverse_n < samples || mono_n < samples) && attempts < samples * 200 {
        attempts += 1;
        let user = rng.random_range(0..data.n_users());
        let train = data.user_items(user, lkp_data::Split::Train);
        if train.len() < set_size {
            continue;
        }
        // Random size-k subset of the user's items.
        let mut pool = train.to_vec();
        for i in (1..pool.len()).rev() {
            pool.swap(i, rng.random_range(0..=i));
        }
        let set: Vec<usize> = pool[..set_size].to_vec();
        let coverage = data.category_coverage(&set);
        let Ok(ld) = norm.log_det_jittered(&set, crate::KERNEL_JITTER) else {
            continue;
        };
        if coverage >= set_size.min(3) && diverse_n < samples {
            diverse_sum += ld;
            diverse_n += 1;
        } else if coverage <= 2 && mono_n < samples {
            mono_sum += ld;
            mono_n += 1;
        }
    }
    (
        if diverse_n > 0 {
            diverse_sum / diverse_n as f64
        } else {
            f64::NAN
        },
        if mono_n > 0 {
            mono_sum / mono_n as f64
        } else {
            f64::NAN
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkp_data::SyntheticConfig;

    fn data() -> Dataset {
        lkp_data::synthetic::generate(&SyntheticConfig {
            n_users: 60,
            n_items: 120,
            n_categories: 10,
            mean_interactions: 22.0,
            ..Default::default()
        })
    }

    #[test]
    fn training_increases_the_logdet_gap() {
        let data = data();
        let config = DiversityKernelConfig {
            epochs: 8,
            pairs_per_epoch: 64,
            dim: 8,
            ..Default::default()
        };
        // Untrained kernel: gap near zero.
        let mut rng = StdRng::seed_from_u64(config.seed);
        let v0 = lkp_nn::init::normal_matrix(data.n_items(), config.dim, 0.3, &mut rng);
        let untrained = LowRankKernel::new(v0);
        let gap_before = mean_logdet_gap(&untrained, &data, config.set_size, 100, config.eps, 99);

        let trained = train_diversity_kernel(&data, &config);
        let gap_after = mean_logdet_gap(&trained, &data, config.set_size, 100, config.eps, 99);
        assert!(
            gap_after > gap_before + 0.5,
            "gap did not open: {gap_before} -> {gap_after}"
        );
    }

    #[test]
    fn trained_kernel_ranks_diverse_sets_higher() {
        let data = data();
        let config = DiversityKernelConfig {
            epochs: 20,
            pairs_per_epoch: 128,
            dim: 8,
            ..Default::default()
        };
        let trained = train_diversity_kernel(&data, &config);
        let (diverse, mono) = diverse_vs_monotonous_gap(&trained, &data, 4, 60, 5);
        assert!(
            diverse > mono,
            "diverse sets ({diverse}) should out-determinant monotonous ones ({mono})"
        );
    }

    #[test]
    fn kernel_has_full_item_coverage_and_finite_entries() {
        let data = data();
        let config = DiversityKernelConfig {
            epochs: 2,
            pairs_per_epoch: 32,
            ..Default::default()
        };
        let k = train_diversity_kernel(&data, &config);
        assert_eq!(k.num_items(), data.n_items());
        for r in 0..k.num_items() {
            for &x in k.factor().row(r) {
                assert!(x.is_finite());
            }
        }
    }
}
