//! Lexer-noise fixture: every lint token appears here ONLY inside comments,
//! string literals, and raw strings. The engine test asserts this file
//! produces zero findings even when linted as a hot-path + deterministic
//! module — proving the analyzers run on the stripped code channel.
//!
//! Tokens in doc text: Vec::new() vec![] to_vec collect Box::new format!
//! String::from Instant::now SystemTime unsafe .lock() assemble compute

pub fn strings() -> (&'static str, &'static str, &'static str) {
    let cooked = "Vec::new() collect() unsafe { *p } Instant::now()";
    let raw = r#"vec![0.0; n] Box::new(x) SystemTime::now() .lock()"#;
    let escaped = "quote \" then unsafe and format! and String::from";
    (cooked, raw, escaped)
}

/* Block comment: let g = mutex.lock(); assemble_kernel(); compute_scores();
   /* nested: HashMap::new() .iter() .keys() to_vec() */
   still inside the outer comment: unsafe impl Send for T {} */
pub fn after_block_comment() -> usize {
    let bytes = b"unsafe collect vec![] .lock()";
    let raw_bytes = br##"format!("{}") Instant::now() "# not the end"##;
    bytes.len() + raw_bytes.len()
}

// Char literals and lifetimes must not derail the scanner.
pub fn chars<'a>(s: &'a str) -> (char, char, &'a str) {
    let brace = '{';
    let quote = '"';
    (brace, quote, s)
}
