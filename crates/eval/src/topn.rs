//! Top-N selection with exclusion.

/// Returns the indices of the `n` highest-scoring items, excluding any item
/// for which `exclude` returns true, in descending score order.
///
/// Linear scan with a small sorted buffer: `O(M · n)` worst case but with a
/// cheap early-out, which beats heap-based selection for the small `n`
/// (5–20) used in recommendation cutoffs.
pub fn top_n_excluding(scores: &[f64], n: usize, exclude: impl Fn(usize) -> bool) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    // buffer of (score, item), kept sorted descending.
    let mut buf: Vec<(f64, usize)> = Vec::with_capacity(n + 1);
    for (item, &s) in scores.iter().enumerate() {
        if let Some(&(last, _)) = buf.last() {
            if buf.len() == n && s <= last {
                continue;
            }
        }
        if exclude(item) {
            continue;
        }
        let pos = buf.partition_point(|&(bs, _)| bs > s);
        buf.insert(pos, (s, item));
        if buf.len() > n {
            buf.pop();
        }
    }
    buf.into_iter().map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_largest_in_order() {
        let scores = [0.1, 0.9, 0.5, 0.7, 0.2];
        assert_eq!(top_n_excluding(&scores, 3, |_| false), vec![1, 3, 2]);
    }

    #[test]
    fn exclusion_is_respected() {
        let scores = [0.1, 0.9, 0.5, 0.7, 0.2];
        assert_eq!(top_n_excluding(&scores, 2, |i| i == 1), vec![3, 2]);
    }

    #[test]
    fn n_larger_than_catalog() {
        let scores = [0.3, 0.1];
        assert_eq!(top_n_excluding(&scores, 10, |_| false), vec![0, 1]);
    }

    #[test]
    fn zero_n_is_empty() {
        assert!(top_n_excluding(&[1.0, 2.0], 0, |_| false).is_empty());
    }

    #[test]
    fn ties_are_stable_enough() {
        // All equal scores: first n items win.
        let scores = [1.0; 6];
        let top = top_n_excluding(&scores, 3, |_| false);
        assert_eq!(top.len(), 3);
        let mut sorted = top.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }

    #[test]
    fn matches_full_sort_reference() {
        let scores: Vec<f64> = (0..50).map(|i| ((i * 37 % 19) as f64) * 0.13).collect();
        let mut reference: Vec<usize> = (0..50).filter(|&i| i % 7 != 0).collect();
        reference.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());
        reference.truncate(10);
        let got = top_n_excluding(&scores, 10, |i| i % 7 == 0);
        // Compare score multisets (tie order may differ).
        let ref_scores: Vec<f64> = reference.iter().map(|&i| scores[i]).collect();
        let got_scores: Vec<f64> = got.iter().map(|&i| scores[i]).collect();
        assert_eq!(ref_scores, got_scores);
    }
}
