//! Bounded caches of assembled diversity submatrices, in two backends.
//!
//! The `O(|C|²·d)` candidate-kernel assembly is the dominant per-request
//! cost, and `K_C = V_C·V_Cᵀ` depends only on the candidate set — so for the
//! common serving shape (each user's candidate pool is stable across
//! requests) it is worth paying once and amortizing. Two backends share the
//! same entry layout and eviction policy:
//!
//! * [`per_worker::KernelCache`] — one private cache per pool worker, no
//!   locks (the PR-2 design, still the default). A user's kernel is
//!   re-assembled once *per worker* that serves them.
//! * [`shared::SharedKernelCache`] — one cache for the whole pool, sharded
//!   `N` ways by user hash with one lock per shard. A user's kernel is
//!   assembled once *per process*, whichever worker gets there first.
//!
//! Both store bit-exact copies of what a miss recomputes
//! ([`lkp_dpp::LowRankKernel::submatrix_into`] is deterministic), so cache
//! hits — from either backend, at any pool width — can never change a
//! served list.

pub(crate) mod per_worker;
pub(crate) mod shared;

pub(crate) use per_worker::KernelCache;
pub(crate) use shared::SharedKernelCache;

use lkp_dpp::LowRankKernel;
use lkp_linalg::Matrix;
use std::collections::HashMap;

/// One cached `(user, candidate-set)` kernel. Entries are keyed by user and
/// validated against the exact candidate list: a changed pool replaces the
/// entry instead of serving a stale kernel.
#[derive(Clone)]
pub(crate) struct CacheEntry {
    pub(crate) candidates: Vec<usize>,
    pub(crate) k_sub: Matrix,
    pub(crate) last_used: u64,
}

impl CacheEntry {
    pub(crate) fn empty() -> Self {
        CacheEntry {
            candidates: Vec::new(),
            k_sub: Matrix::zeros(0, 0),
            last_used: 0,
        }
    }

    /// (Re)fills the entry for `candidates`, assembling into the reused
    /// matrix buffer.
    pub(crate) fn fill(&mut self, candidates: &[usize], kernel: &LowRankKernel, tick: u64) {
        self.candidates.clear();
        self.candidates.extend_from_slice(candidates);
        kernel
            .submatrix_into(candidates, &mut self.k_sub)
            .expect("candidates validated by caller");
        self.last_used = tick;
    }
}

/// Evicts least-recently-used entries until at most `bound` remain — in one
/// pass over the map, not one scan per eviction. The `excess` oldest
/// `(last_used, user)` pairs are partial-selected into `scratch` and removed
/// oldest-first; ticks are unique per cache, so the order is total and the
/// survivor set is exactly the `bound` newest entries. After the call
/// `scratch` holds the evicted pairs in eviction order (oldest first).
pub(crate) fn evict_lru(
    entries: &mut HashMap<usize, CacheEntry>,
    bound: usize,
    scratch: &mut Vec<(u64, usize)>,
) {
    let excess = entries.len().saturating_sub(bound);
    if excess == 0 {
        scratch.clear();
        return;
    }
    scratch.clear();
    scratch.extend(entries.iter().map(|(&user, e)| (e.last_used, user)));
    if excess < scratch.len() {
        scratch.select_nth_unstable(excess - 1);
        scratch.truncate(excess);
    }
    scratch.sort_unstable();
    for &(_, user) in scratch.iter() {
        entries.remove(&user);
    }
}

/// Counters of one cache shard: a worker's private cache in
/// [`crate::CacheMode::PerWorker`] mode, one hash shard of the shared cache
/// in [`crate::CacheMode::Sharded`] mode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that paid the `O(|C|²·d)` assembly.
    pub misses: u64,
    /// Assemblies that deliberately bypassed a disabled cache
    /// (`kernel_cache_capacity = 0`) — counted separately so they cannot
    /// skew hit-rate reporting.
    pub bypasses: u64,
    /// Entries inserted by [`crate::Ranker::prewarm`] (not misses: the
    /// assembly was requested ahead of traffic, not forced by it).
    pub prewarmed: u64,
    /// Entries currently resident.
    pub resident: usize,
}

impl ShardStats {
    pub(crate) fn absorb(&mut self, other: &ShardStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.bypasses += other.bypasses;
        self.prewarmed += other.prewarmed;
        self.resident += other.resident;
    }
}

/// Kernel-cache counters, per shard plus aggregate, as reported by
/// [`crate::Ranker::cache_stats_detailed`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// One row per shard — per pool worker in `PerWorker` mode (index =
    /// worker index; idle workers report a zero row without being
    /// materialized), per hash shard in `Sharded` mode.
    pub per_shard: Vec<ShardStats>,
    /// Sum over `per_shard`.
    pub aggregate: ShardStats,
}

impl CacheStats {
    pub(crate) fn from_shards(per_shard: Vec<ShardStats>) -> Self {
        let mut aggregate = ShardStats::default();
        for s in &per_shard {
            aggregate.absorb(s);
        }
        CacheStats {
            per_shard,
            aggregate,
        }
    }

    /// `hits / (hits + misses)` over all shards (0 when no lookups ran).
    pub fn hit_rate(&self) -> f64 {
        let looked = self.aggregate.hits + self.aggregate.misses;
        if looked == 0 {
            0.0
        } else {
            self.aggregate.hits as f64 / looked as f64
        }
    }
}
