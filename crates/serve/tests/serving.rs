//! Serving-layer integration tests: the batched `Ranker` must reproduce
//! offline greedy MAP exactly, at any pool width, cache state, and batch
//! shape.

use lkp_core::objective::{LkpKind, LkpObjective};
use lkp_core::{train_diversity_kernel, DiversityKernelConfig, TrainConfig, Trainer};
use lkp_data::{Dataset, SyntheticConfig};
use lkp_dpp::{map, DppKernel, LowRankKernel};
use lkp_models::{MatrixFactorization, Recommender};
use lkp_nn::AdamConfig;
use lkp_serve::{RankRequest, RankResponse, Ranker, RankingArtifact, ServeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn data() -> Dataset {
    lkp_data::synthetic::generate(&SyntheticConfig {
        n_users: 30,
        n_items: 80,
        n_categories: 8,
        mean_interactions: 16.0,
        ..Default::default()
    })
}

/// A briefly-trained model + kernel — enough structure that scores are not
/// symmetric and ties cannot mask ordering bugs.
fn trained(data: &Dataset) -> (MatrixFactorization, LowRankKernel) {
    let kernel = train_diversity_kernel(
        data,
        &DiversityKernelConfig {
            epochs: 3,
            pairs_per_epoch: 48,
            dim: 6,
            ..Default::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(11);
    let mut model = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        12,
        AdamConfig {
            lr: 0.02,
            ..Default::default()
        },
        &mut rng,
    );
    let mut obj = LkpObjective::new(LkpKind::NegativeAware, kernel.clone());
    let trainer = Trainer::new(TrainConfig {
        epochs: 3,
        eval_every: 0,
        patience: 0,
        k: 4,
        n: 4,
        threads: 2,
        ..Default::default()
    });
    trainer.fit(&mut model, &mut obj, data);
    (model, kernel)
}

/// Deterministic pseudo-random candidate pool for a user.
fn candidates(user: usize, n_items: usize, count: usize) -> Vec<usize> {
    (0..count)
        .map(|j| (user * 31 + j * 17 + 7) % n_items)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect()
}

fn requests(data: &Dataset, top_n: usize) -> Vec<RankRequest> {
    (0..data.n_users())
        .map(|u| RankRequest::new(u, candidates(u, data.n_items(), 24), top_n))
        .collect()
}

/// The offline reference: assemble the tailored kernel through the training
/// side's own helper and run the allocating greedy MAP on it.
fn offline_reference(
    model: &MatrixFactorization,
    kernel: &LowRankKernel,
    req: &RankRequest,
) -> Vec<usize> {
    let normalized = kernel.normalized();
    let scores = model.score_items(req.user, &req.candidates);
    let k_sub = normalized.submatrix(&req.candidates).unwrap();
    let tailored: DppKernel = lkp_core::objective::tailored_kernel(&scores, &k_sub).unwrap();
    let result = map::greedy_map(&tailored, req.top_n.min(req.candidates.len())).unwrap();
    result
        .items
        .iter()
        .map(|&idx| req.candidates[idx])
        .collect()
}

#[test]
fn served_lists_match_offline_greedy_map() {
    // Acceptance: the lkp-serve path must produce top-N lists identical to
    // offline greedy_map over the same tailored kernels.
    let data = data();
    let (model, kernel) = trained(&data);
    let artifact = RankingArtifact::snapshot(&model, &kernel);
    let mut ranker = Ranker::new(
        artifact,
        ServeConfig {
            threads: 2,
            ..Default::default()
        },
    );
    let reqs = requests(&data, 8);
    let responses = ranker.rank_batch(&reqs);
    assert_eq!(responses.len(), reqs.len());
    for (req, resp) in reqs.iter().zip(&responses) {
        assert_eq!(resp.user, req.user);
        let expected = offline_reference(&model, &kernel, req);
        assert_eq!(
            resp.items, expected,
            "user {} served list diverged from offline MAP",
            req.user
        );
        assert!(
            !resp.items.is_empty(),
            "user {} got an empty list",
            req.user
        );
    }
}

#[test]
fn serving_is_identical_at_every_pool_width() {
    // Acceptance: pool determinism — 1, 2 and 4 worker threads must serve
    // byte-identical responses (items, log_det bits), cold and warm cache.
    let data = data();
    let (model, kernel) = trained(&data);
    let reqs = requests(&data, 6);
    let mut reference: Option<Vec<RankResponse>> = None;
    for threads in [1usize, 2, 4] {
        let artifact = RankingArtifact::snapshot(&model, &kernel);
        let mut ranker = Ranker::new(
            artifact,
            ServeConfig {
                threads,
                ..Default::default()
            },
        );
        for pass in 0..2 {
            let responses = ranker.rank_batch(&reqs);
            match &reference {
                None => reference = Some(responses),
                Some(want) => {
                    for (got, want) in responses.iter().zip(want) {
                        assert_eq!(
                            got.items, want.items,
                            "threads={threads} pass={pass}: items diverged"
                        );
                        assert_eq!(
                            got.log_det.to_bits(),
                            want.log_det.to_bits(),
                            "threads={threads} pass={pass}: log_det diverged"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn repeat_batches_hit_the_kernel_cache() {
    let data = data();
    let (model, kernel) = trained(&data);
    let mut ranker = Ranker::new(
        RankingArtifact::snapshot(&model, &kernel),
        ServeConfig {
            threads: 2,
            ..Default::default()
        },
    );
    let reqs = requests(&data, 5);
    let cold = ranker.rank_batch(&reqs);
    assert!(cold.iter().all(|r| !r.cache_hit));
    let warm = ranker.rank_batch(&reqs);
    assert!(warm.iter().all(|r| r.cache_hit));
    for (a, b) in cold.iter().zip(&warm) {
        assert_eq!(a.items, b.items);
        assert_eq!(a.log_det.to_bits(), b.log_det.to_bits());
    }
    let (hits, misses) = ranker.cache_stats();
    assert_eq!(hits as usize, reqs.len());
    assert_eq!(misses as usize, reqs.len());
    assert_eq!(
        ranker.cache_bypasses(),
        0,
        "an enabled cache never bypasses"
    );
}

#[test]
fn rank_one_matches_batch_path() {
    let data = data();
    let (model, kernel) = trained(&data);
    let mut ranker = Ranker::new(
        RankingArtifact::snapshot(&model, &kernel),
        ServeConfig {
            threads: 3,
            ..Default::default()
        },
    );
    let reqs = requests(&data, 7);
    let batch = ranker.rank_batch(&reqs);
    for (req, want) in reqs.iter().zip(&batch) {
        let got = ranker.rank_one(req);
        assert_eq!(got.items, want.items);
        assert_eq!(got.log_det.to_bits(), want.log_det.to_bits());
    }
}

#[test]
fn degenerate_requests_serve_empty_lists() {
    let data = data();
    let (model, kernel) = trained(&data);
    let mut ranker = Ranker::new(
        RankingArtifact::snapshot(&model, &kernel),
        ServeConfig {
            threads: 2,
            ..Default::default()
        },
    );
    let n_items = data.n_items();
    let reqs = vec![
        RankRequest::new(0, vec![], 5),                      // no candidates
        RankRequest::new(0, vec![1, 2, 3], 0),               // zero-length list
        RankRequest::new(data.n_users() + 5, vec![1, 2], 2), // unknown user
        RankRequest::new(0, vec![1, n_items + 3], 2),        // out-of-catalog item
        RankRequest::new(1, vec![4, 9, 2], 2),               // valid control
    ];
    let responses = ranker.rank_batch(&reqs);
    for resp in &responses[..4] {
        assert!(resp.items.is_empty());
        assert_eq!(resp.log_det, 0.0);
    }
    assert_eq!(responses[4].items.len(), 2);
}

#[test]
fn duplicate_candidates_never_produce_duplicate_items() {
    // A duplicated candidate row's residual decays only to the jitter
    // floor, which is above greedy's rank cutoff — without dedup the same
    // item could be recommended twice.
    let data = data();
    let (model, kernel) = trained(&data);
    let mut ranker = Ranker::new(
        RankingArtifact::snapshot(&model, &kernel),
        ServeConfig {
            threads: 1,
            ..Default::default()
        },
    );
    let resp = ranker.rank_one(&RankRequest::new(3, vec![5, 9, 5, 14, 9, 22], 4));
    let unique: std::collections::BTreeSet<_> = resp.items.iter().collect();
    assert_eq!(
        unique.len(),
        resp.items.len(),
        "duplicates in {:?}",
        resp.items
    );
    assert_eq!(resp.items.len(), 4);
    // Deduped request must serve exactly like its clean equivalent.
    let clean = ranker.rank_one(&RankRequest::new(3, vec![5, 9, 14, 22], 4));
    assert_eq!(resp.items, clean.items);
    assert_eq!(resp.log_det.to_bits(), clean.log_det.to_bits());
}

#[test]
fn top_n_larger_than_candidates_is_clamped() {
    let data = data();
    let (model, kernel) = trained(&data);
    let mut ranker = Ranker::new(
        RankingArtifact::snapshot(&model, &kernel),
        ServeConfig {
            threads: 1,
            ..Default::default()
        },
    );
    let resp = ranker.rank_one(&RankRequest::new(2, vec![3, 8, 13], 10));
    assert!(resp.items.len() <= 3);
    assert!(!resp.items.is_empty());
}
