//! Threaded-driver acceptance suite: the pump thread plus concurrent
//! submitters must lose no tickets, serve bitwise what a direct batch
//! serves, keep generations monotone in ticket order across a hot swap
//! under live traffic, and survive a panicking model without wedging the
//! pump.

use lkp_core::objective::{LkpKind, LkpObjective};
use lkp_core::{train_diversity_kernel, DiversityKernelConfig, TrainConfig, Trainer};
use lkp_data::{Dataset, SyntheticConfig};
use lkp_dpp::LowRankKernel;
use lkp_models::{MatrixFactorization, Recommender};
use lkp_nn::AdamConfig;
use lkp_serve::{
    FrontendConfig, FrontendDriver, RankOutcome, RankRequest, RankResponse, Ranker,
    RankingArtifact, ServeConfig, ServeFrontend, SubmitError, Ticket,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn data() -> Dataset {
    lkp_data::synthetic::generate(&SyntheticConfig {
        n_users: 24,
        n_items: 70,
        n_categories: 7,
        mean_interactions: 14.0,
        ..Default::default()
    })
}

fn trained(data: &Dataset) -> (MatrixFactorization, LowRankKernel) {
    let kernel = train_diversity_kernel(
        data,
        &DiversityKernelConfig {
            epochs: 3,
            pairs_per_epoch: 40,
            dim: 6,
            ..Default::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(5);
    let mut model = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        10,
        AdamConfig {
            lr: 0.02,
            ..Default::default()
        },
        &mut rng,
    );
    let mut obj = LkpObjective::new(LkpKind::NegativeAware, kernel.clone());
    let trainer = Trainer::new(TrainConfig {
        epochs: 2,
        eval_every: 0,
        patience: 0,
        k: 4,
        n: 4,
        threads: 2,
        ..Default::default()
    });
    trainer.fit(&mut model, &mut obj, data);
    (model, kernel)
}

fn requests(data: &Dataset, top_n: usize) -> Vec<RankRequest> {
    (0..data.n_users())
        .map(|u| {
            let candidates: Vec<usize> = (0..20)
                .map(|j| (u * 31 + j * 17 + 7) % data.n_items())
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            RankRequest::new(u, candidates, top_n)
        })
        .collect()
}

fn assert_same(got: &RankResponse, want: &RankResponse, context: &str) {
    assert_eq!(got.user, want.user, "{context}: user");
    assert_eq!(got.items, want.items, "{context}: items");
    assert_eq!(
        got.log_det.to_bits(),
        want.log_det.to_bits(),
        "{context}: log_det"
    );
}

fn ranker(model: &MatrixFactorization, kernel: &LowRankKernel) -> Ranker<MatrixFactorization> {
    Ranker::new(
        RankingArtifact::snapshot(model, kernel),
        ServeConfig {
            threads: 2,
            ..Default::default()
        },
    )
}

/// Submits with bounded-queue retry: QueueFull is backpressure, not an
/// error — the pump drains the queue, so retrying always terminates.
fn submit_retrying<M: Recommender + Send + Sync + 'static>(
    client: &lkp_serve::DriverClient<M>,
    request: &RankRequest,
) -> Ticket {
    loop {
        match client.submit(request.clone()) {
            Ok(ticket) => return ticket,
            Err(SubmitError::QueueFull { .. }) => std::thread::yield_now(),
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
}

/// Driver stress: four concurrent submitter threads, each pushing every
/// request in its own (seeded, distinct) order through a bounded queue,
/// with the pump thread cutting on the wall clock. Every ticket redeems,
/// every response is bitwise the direct batch's.
#[test]
fn driver_serves_bitwise_under_concurrent_submitters() {
    let data = data();
    let (model, kernel) = trained(&data);
    let reqs = requests(&data, 6);
    let want = ranker(&model, &kernel).rank_batch(&reqs);

    let frontend = ServeFrontend::new(
        ranker(&model, &kernel),
        FrontendConfig {
            max_batch: 8,
            max_wait: Duration::from_micros(500),
            queue_capacity: 16,
            ..Default::default()
        },
    );
    let driver = FrontendDriver::spawn(frontend);

    let n_threads = 4usize;
    let handles: Vec<_> = (0..n_threads)
        .map(|t| {
            let client = driver.client();
            let reqs = reqs.clone();
            std::thread::spawn(move || {
                // A per-thread rotation: distinct deterministic submission
                // orders without coordinating the threads.
                let n = reqs.len();
                let mut served = Vec::with_capacity(n);
                for i in 0..n {
                    let req = &reqs[(i * 7 + t * 5) % n];
                    let ticket = submit_retrying(&client, req);
                    served.push((req.user, ticket));
                }
                served
                    .into_iter()
                    .map(|(user, ticket)| {
                        let resp = client
                            .take_deadline(ticket, Duration::from_secs(30))
                            .expect("every accepted ticket completes");
                        (user, resp)
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();

    let mut redeemed = 0usize;
    for handle in handles {
        for (user, resp) in handle.join().expect("submitter thread") {
            assert_eq!(resp.outcome, RankOutcome::Served);
            assert_eq!(resp.generation, 1);
            assert_same(&resp, &want[user], "driver vs direct");
            redeemed += 1;
        }
    }
    assert_eq!(redeemed, n_threads * reqs.len());

    let stats = driver.client().stats();
    assert_eq!(stats.submitted, (n_threads * reqs.len()) as u64);
    assert_eq!(stats.served, stats.submitted, "no ticket lost");
    assert_eq!(stats.latency.count(), stats.served);

    let frontend = driver.shutdown().expect("no surviving clients");
    assert_eq!(frontend.pending_len(), 0);
    assert_eq!(frontend.completed_len(), 0);
}

/// Hot swap under live traffic: submitters keep streaming while the main
/// thread swaps to a second artifact. Every response matches the baseline
/// of the generation stamped on it, and — because batches are cut FIFO and
/// the swap commits between cuts — generations are non-decreasing in
/// ticket order.
#[test]
fn driver_swap_under_live_traffic_is_bitwise_per_generation() {
    let data = data();
    let (model_a, kernel) = trained(&data);
    let mut rng = StdRng::seed_from_u64(11);
    let model_b = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        10,
        AdamConfig::default(),
        &mut rng,
    );
    let reqs = requests(&data, 6);
    let plan: Vec<(usize, Vec<usize>)> = reqs
        .iter()
        .map(|r| (r.user, r.candidates.clone()))
        .collect();
    let want_a = ranker(&model_a, &kernel).rank_batch(&reqs);
    let want_b = ranker(&model_b, &kernel).rank_batch(&reqs);

    let frontend = ServeFrontend::new(
        ranker(&model_a, &kernel),
        FrontendConfig {
            max_batch: 8,
            max_wait: Duration::from_micros(500),
            queue_capacity: 32,
            ..Default::default()
        },
    );
    let driver = FrontendDriver::spawn(frontend);

    let rounds = 6usize;
    let handles: Vec<_> = (0..2usize)
        .map(|t| {
            let client = driver.client();
            let reqs = reqs.clone();
            std::thread::spawn(move || {
                let mut out = Vec::new();
                for round in 0..rounds {
                    for i in 0..reqs.len() {
                        let req = &reqs[(i + t * 11 + round) % reqs.len()];
                        let ticket = submit_retrying(&client, req);
                        out.push((req.user, ticket));
                    }
                }
                out.into_iter()
                    .map(|(user, ticket)| {
                        let resp = client
                            .take_deadline(ticket, Duration::from_secs(30))
                            .expect("every accepted ticket completes");
                        (user, ticket, resp)
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();

    // Swap mid-stream, from a third thread's client handle.
    std::thread::sleep(Duration::from_millis(5));
    let report = driver
        .client()
        .swap_artifact(RankingArtifact::snapshot(&model_b, &kernel), &plan);
    assert_eq!(report.generation, 2);
    assert_eq!(report.warmed, plan.len());

    let mut by_ticket: Vec<(Ticket, u64)> = Vec::new();
    for handle in handles {
        for (user, ticket, resp) in handle.join().expect("submitter thread") {
            assert_eq!(resp.outcome, RankOutcome::Served);
            let want = match resp.generation {
                1 => &want_a[user],
                2 => &want_b[user],
                g => panic!("unexpected generation {g}"),
            };
            assert_same(&resp, want, "per-generation bitwise");
            by_ticket.push((ticket, resp.generation));
        }
    }
    // FIFO cuts + between-cut commit ⇒ monotone generations by ticket.
    by_ticket.sort_unstable_by_key(|&(ticket, _)| ticket);
    for pair in by_ticket.windows(2) {
        assert!(
            pair[0].1 <= pair[1].1,
            "generation regressed in ticket order: {pair:?}"
        );
    }

    assert_eq!(driver.client().generation(), 2);
    let stats = driver.client().stats();
    assert_eq!(stats.swaps, 1);
    assert_eq!(stats.served, stats.submitted, "no ticket lost across swap");
    drop(driver);
}

/// Shutdown flushes everything pending (zero lost tickets), then refuses
/// new submissions; with clients still alive the frontend stays redeemable
/// behind them, and once they drop the frontend is returned intact.
#[test]
fn driver_shutdown_flushes_pending_and_refuses_new_work() {
    let data = data();
    let (model, kernel) = trained(&data);
    let reqs = requests(&data, 5);
    let want = ranker(&model, &kernel).rank_batch(&reqs);

    // A queue that will never cut on its own: shutdown must flush it.
    let frontend = ServeFrontend::new(
        ranker(&model, &kernel),
        FrontendConfig {
            max_batch: 1000,
            max_wait: Duration::from_secs(3600),
            ..Default::default()
        },
    );
    let driver = FrontendDriver::spawn(frontend);
    let client = driver.client();
    let tickets: Vec<_> = reqs
        .iter()
        .map(|r| client.submit(r.clone()).expect("admitted"))
        .collect();

    // A surviving client keeps the frontend alive behind the driver.
    assert!(driver.shutdown().is_none(), "client still holds a handle");
    assert_eq!(
        client.submit(reqs[0].clone()),
        Err(SubmitError::ShuttingDown)
    );
    for (ticket, want) in tickets.iter().zip(want.iter()) {
        let resp = client
            .take_deadline(*ticket, Duration::from_secs(30))
            .expect("shutdown flushed the queue");
        assert_eq!(resp.outcome, RankOutcome::Served);
        assert_same(&resp, want, "flushed at shutdown");
    }
    let stats = client.stats();
    assert_eq!(stats.served, reqs.len() as u64);
    assert!(stats.cuts_flush >= 1);

    // Without surviving clients, shutdown hands the frontend back.
    let driver = FrontendDriver::spawn(ServeFrontend::new(
        ranker(&model, &kernel),
        FrontendConfig {
            max_batch: 1000,
            max_wait: Duration::from_secs(3600),
            ..Default::default()
        },
    ));
    let ticket = {
        let client = driver.client();
        client.submit(reqs[0].clone()).expect("admitted")
    };
    let mut frontend = driver.shutdown().expect("no surviving clients");
    let resp = frontend.try_take(ticket).expect("flushed before join");
    assert_same(&resp, &want[0], "redeemed from the returned frontend");
}

/// A model that panics while scoring one user must not wedge the pump
/// thread: the poisoned ticket reports [`RankOutcome::Panicked`], siblings
/// serve bitwise clean, and the driver keeps serving afterwards.
#[test]
fn driver_survives_panicking_model() {
    #[derive(Clone)]
    struct PanickyModel {
        inner: MatrixFactorization,
        panic_user: usize,
    }

    impl Recommender for PanickyModel {
        fn n_users(&self) -> usize {
            self.inner.n_users()
        }
        fn n_items(&self) -> usize {
            self.inner.n_items()
        }
        fn score_items(&self, user: usize, items: &[usize]) -> Vec<f64> {
            assert_ne!(user, self.panic_user, "injected model fault");
            self.inner.score_items(user, items)
        }
        fn accumulate_score_grads(&mut self, _: usize, _: &[usize], _: &[f64]) {}
        fn step(&mut self) {}
    }

    let data = data();
    let (model, kernel) = trained(&data);
    let reqs = requests(&data, 5);
    let want = ranker(&model, &kernel).rank_batch(&reqs);
    let bad = 4usize;

    // Expected panics: silence the hook for the duration of the test.
    let saved = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let frontend = ServeFrontend::new(
        Ranker::new(
            RankingArtifact::snapshot(
                &PanickyModel {
                    inner: model.clone(),
                    panic_user: bad,
                },
                &kernel,
            ),
            ServeConfig {
                threads: 2,
                ..Default::default()
            },
        ),
        FrontendConfig {
            max_batch: 8,
            max_wait: Duration::from_micros(500),
            ..Default::default()
        },
    );
    let driver = FrontendDriver::spawn(frontend);
    let client = driver.client();

    for round in 0..2 {
        let tickets: Vec<_> = reqs.iter().map(|r| submit_retrying(&client, r)).collect();
        for (ticket, clean) in tickets.iter().zip(want.iter()) {
            let resp = client
                .take_deadline(*ticket, Duration::from_secs(30))
                .expect("every ticket completes");
            if resp.user == bad {
                assert_eq!(resp.outcome, RankOutcome::Panicked, "round {round}");
                assert!(resp.items.is_empty());
            } else {
                assert_eq!(resp.outcome, RankOutcome::Served, "round {round}");
                assert_same(&resp, clean, &format!("round {round} sibling"));
            }
        }
    }
    assert_eq!(client.stats().panicked, 2);
    drop(client);
    driver.shutdown();

    std::panic::set_hook(saved);
}
