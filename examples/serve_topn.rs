//! Serving: freeze a trained LkP model into an immutable artifact and serve
//! batched, diversity-aware top-N requests through the persistent runtime
//! pool.
//!
//! ```text
//! cargo run --release --example serve_topn
//! ```
//!
//! The pipeline is the paper's end product: after the LkP criterion learns
//! the kernel, personalized lists come from greedy MAP inference over each
//! user's candidate set under the same tailored kernel
//! `L = Diag(q)·K·Diag(q) + ε·I` the model was trained against.

use lkp::prelude::*;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    // A compact world so the example runs in seconds.
    let data = SyntheticConfig {
        n_users: 200,
        n_items: 500,
        n_categories: 12,
        mean_interactions: 20.0,
        seed: 21,
        ..Default::default()
    }
    .generate();

    // Train: diversity kernel, then LkP-NPS on MF (short budget — the point
    // here is serving, not leaderboard numbers).
    let kernel = train_diversity_kernel(
        &data,
        &DiversityKernelConfig {
            epochs: 6,
            pairs_per_epoch: 128,
            ..Default::default()
        },
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let mut model = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        32,
        AdamConfig::default(),
        &mut rng,
    );
    let mut objective = LkpObjective::new(LkpKind::NegativeAware, kernel);
    let trainer = Trainer::new(TrainConfig {
        epochs: 8,
        eval_every: 4,
        patience: 0,
        threads: 2,
        ..Default::default()
    });
    trainer.fit(&mut model, &mut objective, &data);

    // Freeze: the artifact snapshots model + kernel; the trainer could keep
    // mutating its live copies without touching served results.
    let artifact = RankingArtifact::from_trained(&model, &objective);
    let mut ranker = Ranker::new(
        artifact,
        ServeConfig {
            threads: 2,
            ..Default::default()
        },
    );

    // Serve: one batch of requests, 60-candidate pools, top-5 lists.
    let requests: Vec<RankRequest> = (0..data.n_users())
        .map(|user| {
            let candidates: Vec<usize> = (0..60)
                .map(|j| (user * 53 + j * 29 + 11) % data.n_items())
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            RankRequest::new(user, candidates, 5)
        })
        .collect();

    let t = Instant::now();
    let cold = ranker.rank_batch(&requests);
    let cold_us = t.elapsed().as_micros();
    let t = Instant::now();
    let warm = ranker.rank_batch(&requests);
    let warm_us = t.elapsed().as_micros();

    println!(
        "served {} requests: {} µs cold, {} µs warm (per-user kernel cache)",
        requests.len(),
        cold_us,
        warm_us
    );
    let (hits, misses) = ranker.cache_stats();
    println!("kernel cache: {hits} hits / {misses} misses");

    for resp in warm.iter().take(3) {
        let cats: std::collections::BTreeSet<usize> =
            resp.items.iter().map(|&i| data.category(i)).collect();
        println!(
            "user {:>3}: top-5 {:?}  ({} distinct categories, log_det {:.3})",
            resp.user,
            resp.items,
            cats.len(),
            resp.log_det
        );
    }

    // Sanity: warm lists must equal cold lists (cache changes nothing —
    // only the `cache_hit` flag differs between the passes).
    for (a, b) in cold.iter().zip(&warm) {
        assert_eq!(a.items, b.items, "cache must never change a served list");
        assert_eq!(a.log_det.to_bits(), b.log_det.to_bits());
    }
    println!("cold and warm lists identical ✓");
}
