//! Ground-set training instances (paper Section III-B1).
//!
//! A training instance is a user plus a `k + n` ground set: `k` observed
//! (target) items and `n` sampled unobserved items. The paper contrasts two
//! constructions of the k targets:
//!
//! * **S (sequential)** — "selecting of k observed items in the order they
//!   occurred using a sliding window": consecutive windows over the user's
//!   chronological train items, so targets carry the natural correlations of
//!   adjacent interactions.
//! * **R (random)** — "randomly selecting k + n items … from user's 1/0
//!   feedback": targets are drawn uniformly from the user's train items.
//!
//! Both modes guarantee every train item of every user appears as a target at
//! least once per epoch, which keeps the number of set-level instances no
//! greater than pointwise/BPR epochs use — the paper's fairness argument.

use crate::dataset::{Dataset, NegativeMask, Split};
use rand::Rng;

/// How the k targets of each instance are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetSelection {
    /// Sliding window over chronological interactions (the paper's S mode).
    Sequential,
    /// Uniformly random targets (the paper's R mode).
    Random,
}

/// One training instance: a user and its `k + n` ground set.
#[derive(Debug, Clone)]
pub struct GroundSetInstance {
    /// The user this ground set belongs to.
    pub user: usize,
    /// The k observed target items.
    pub positives: Vec<usize>,
    /// The n sampled unobserved items.
    pub negatives: Vec<usize>,
}

impl GroundSetInstance {
    /// The full ground set: positives followed by negatives. Positions
    /// `0..k` are the target subset, `k..k+n` the negatives — the index
    /// convention every objective in `lkp-core` relies on.
    pub fn ground_set(&self) -> Vec<usize> {
        let mut g = self.positives.clone();
        g.extend_from_slice(&self.negatives);
        g
    }

    /// `k`, the target-set cardinality.
    pub fn k(&self) -> usize {
        self.positives.len()
    }

    /// `n`, the negative count.
    pub fn n(&self) -> usize {
        self.negatives.len()
    }

    /// Borrowed view of this instance — the form the objective layer
    /// consumes, shared with instances resolved out of a
    /// [`crate::plan::EpochPlan`]'s flat arena.
    pub fn as_ref(&self) -> InstanceRef<'_> {
        InstanceRef {
            user: self.user,
            positives: &self.positives,
            negatives: &self.negatives,
        }
    }
}

/// Borrowed view of one training instance: a user plus target/negative item
/// slices. This is the common currency of the objective layer — produced
/// either from an owned [`GroundSetInstance`]
/// ([`GroundSetInstance::as_ref`]) or zero-copy from an
/// [`crate::plan::EpochPlan`]'s contiguous item arena
/// ([`crate::plan::EpochPlan::instance`]).
#[derive(Debug, Clone, Copy)]
pub struct InstanceRef<'a> {
    /// The user this ground set belongs to.
    pub user: usize,
    /// The k observed target items.
    pub positives: &'a [usize],
    /// The n sampled unobserved items.
    pub negatives: &'a [usize],
}

impl<'a> InstanceRef<'a> {
    /// `k`, the target-set cardinality.
    pub fn k(&self) -> usize {
        self.positives.len()
    }

    /// `n`, the negative count.
    pub fn n(&self) -> usize {
        self.negatives.len()
    }

    /// The ground-set size `m = k + n`.
    pub fn m(&self) -> usize {
        self.positives.len() + self.negatives.len()
    }

    /// Materializes an owned instance (tests and builders; the training hot
    /// path never needs one).
    pub fn to_owned(&self) -> GroundSetInstance {
        GroundSetInstance {
            user: self.user,
            positives: self.positives.to_vec(),
            negatives: self.negatives.to_vec(),
        }
    }
}

impl<'a> From<&'a GroundSetInstance> for InstanceRef<'a> {
    fn from(inst: &'a GroundSetInstance) -> Self {
        inst.as_ref()
    }
}

/// Epoch-level sampler of ground-set instances.
#[derive(Debug, Clone)]
pub struct InstanceSampler {
    /// Target-set cardinality `k` (the paper uses k = 5 by default).
    pub k: usize,
    /// Negatives per instance `n` (k = n for the NPS objective).
    pub n: usize,
    /// S or R construction.
    pub mode: TargetSelection,
}

impl InstanceSampler {
    /// Creates a sampler. `k >= 1`, `n >= 1`.
    pub fn new(k: usize, n: usize, mode: TargetSelection) -> Self {
        assert!(k >= 1 && n >= 1, "k and n must be positive");
        InstanceSampler { k, n, mode }
    }

    /// Builds one epoch's instances for a single user, covering every train
    /// item at least once. Users with fewer than `k` train items contribute
    /// no instances (their per-item signal still reaches baselines, which use
    /// k = 1 samplers).
    pub fn user_instances<R: Rng + ?Sized>(
        &self,
        data: &Dataset,
        user: usize,
        rng: &mut R,
    ) -> Vec<GroundSetInstance> {
        let train = data.user_items(user, Split::Train);
        if train.len() < self.k {
            return Vec::new();
        }
        let windows = match self.mode {
            TargetSelection::Sequential => sliding_windows(train, self.k),
            TargetSelection::Random => random_chunks(train, self.k, rng),
        };
        let mut mask = NegativeMask::new();
        windows
            .into_iter()
            .map(|positives| {
                let mut negatives = Vec::with_capacity(self.n);
                data.sample_negatives_avoiding_into(
                    user,
                    self.n,
                    &positives,
                    rng,
                    &mut mask,
                    &mut negatives,
                );
                GroundSetInstance {
                    user,
                    positives,
                    negatives,
                }
            })
            .collect()
    }

    /// Builds one epoch's instances across all users, in user order.
    /// Shuffling across users is the trainer's job.
    pub fn epoch_instances<R: Rng + ?Sized>(
        &self,
        data: &Dataset,
        rng: &mut R,
    ) -> Vec<GroundSetInstance> {
        let mut out = Vec::new();
        for user in 0..data.n_users() {
            out.extend(self.user_instances(data, user, rng));
        }
        out
    }
}

/// Stride-1 sliding windows of size k: one window starting at every
/// position, `len − k + 1` windows in total. This matches the paper's
/// instance budget ("not greater than the pointwise method or BPR"): one
/// set-level instance per observed item, with every item covered.
fn sliding_windows(items: &[usize], k: usize) -> Vec<Vec<usize>> {
    let len = items.len();
    debug_assert!(len >= k);
    (0..=len - k)
        .map(|start| items[start..start + k].to_vec())
        .collect()
}

/// One instance anchored at every item: the anchor plus `k − 1` other items
/// drawn uniformly without replacement. Guarantees each item appears as a
/// target at least once while keeping the instance count at `len`.
fn random_chunks<R: Rng + ?Sized>(items: &[usize], k: usize, rng: &mut R) -> Vec<Vec<usize>> {
    let mut flat = Vec::with_capacity(items.len() * k);
    random_chunks_into(items, k, rng, &mut flat);
    flat.chunks_exact(k).map(|c| c.to_vec()).collect()
}

/// [`random_chunks`] writing the `len` chunks of size `k` back-to-back into
/// a flat buffer — the form the epoch planner consumes (no per-chunk `Vec`).
/// Draw-for-draw identical to the nested form: within-chunk duplicate
/// candidates are rejected over the same RNG stream.
pub(crate) fn random_chunks_into<R: Rng + ?Sized>(
    items: &[usize],
    k: usize,
    rng: &mut R,
    out: &mut Vec<usize>,
) {
    let len = items.len();
    debug_assert!(len >= k);
    out.clear();
    for &anchor in items {
        let start = out.len();
        out.push(anchor);
        while out.len() - start < k {
            let cand = items[rng.random_range(0..len)];
            if !out[start..].contains(&cand) {
                out.push(cand);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, SyntheticConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_data() -> Dataset {
        generate(&SyntheticConfig {
            n_users: 30,
            n_items: 120,
            n_categories: 8,
            mean_interactions: 18.0,
            ..Default::default()
        })
    }

    #[test]
    fn sliding_windows_cover_every_item() {
        let items: Vec<usize> = (10..27).collect(); // 17 items
        let windows = sliding_windows(&items, 5);
        let mut covered: Vec<usize> = windows.iter().flatten().copied().collect();
        covered.sort_unstable();
        covered.dedup();
        assert_eq!(covered, items);
        for w in &windows {
            assert_eq!(w.len(), 5);
        }
    }

    #[test]
    fn sliding_windows_are_stride_one() {
        let items: Vec<usize> = (0..15).collect();
        let windows = sliding_windows(&items, 5);
        assert_eq!(windows.len(), 11, "len − k + 1 windows");
        for (start, w) in windows.iter().enumerate() {
            assert_eq!(w.as_slice(), &items[start..start + 5]);
        }
    }

    #[test]
    fn sequential_windows_preserve_order() {
        let items: Vec<usize> = vec![9, 4, 7, 1, 3, 8, 2];
        let windows = sliding_windows(&items, 3);
        assert_eq!(windows[0], vec![9, 4, 7]);
        assert_eq!(windows[1], vec![4, 7, 1]);
        assert_eq!(windows.last().unwrap(), &vec![3, 8, 2]);
    }

    #[test]
    fn random_chunks_cover_every_item_distinctly_within_chunk() {
        let mut rng = StdRng::seed_from_u64(9);
        let items: Vec<usize> = (0..17).collect();
        let chunks = random_chunks(&items, 5, &mut rng);
        let mut covered: Vec<usize> = chunks.iter().flatten().copied().collect();
        covered.sort_unstable();
        covered.dedup();
        assert_eq!(covered, items, "all items covered");
        for c in &chunks {
            assert_eq!(c.len(), 5);
            let mut s = c.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 5, "chunk has duplicates: {c:?}");
        }
    }

    #[test]
    fn instances_have_correct_shape_and_disjoint_sets() {
        let data = small_data();
        let mut rng = StdRng::seed_from_u64(4);
        for mode in [TargetSelection::Sequential, TargetSelection::Random] {
            let sampler = InstanceSampler::new(5, 5, mode);
            let instances = sampler.epoch_instances(&data, &mut rng);
            assert!(!instances.is_empty());
            for inst in &instances {
                assert_eq!(inst.k(), 5);
                assert_eq!(inst.n(), 5);
                // Positives are observed; negatives are not.
                for &p in &inst.positives {
                    assert!(data.is_observed(inst.user, p));
                }
                for &n in &inst.negatives {
                    assert!(!data.is_observed(inst.user, n));
                }
                // Ground set has k+n distinct entries.
                let mut g = inst.ground_set();
                g.sort_unstable();
                g.dedup();
                assert_eq!(g.len(), 10);
            }
        }
    }

    #[test]
    fn every_train_item_is_a_target_at_least_once() {
        let data = small_data();
        let mut rng = StdRng::seed_from_u64(8);
        for mode in [TargetSelection::Sequential, TargetSelection::Random] {
            let sampler = InstanceSampler::new(4, 4, mode);
            let instances = sampler.epoch_instances(&data, &mut rng);
            for user in 0..data.n_users() {
                let train = data.user_items(user, Split::Train);
                if train.len() < 4 {
                    continue;
                }
                for &item in train {
                    let covered = instances
                        .iter()
                        .any(|i| i.user == user && i.positives.contains(&item));
                    assert!(covered, "user {user} item {item} never a target ({mode:?})");
                }
            }
        }
    }

    #[test]
    fn users_with_too_few_items_are_skipped() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = Dataset::from_interactions(
            vec![vec![0, 1], (0..40).collect()],
            (0..50).map(|i| i % 3).collect(),
            3,
            &mut rng,
        );
        let sampler = InstanceSampler::new(5, 5, TargetSelection::Sequential);
        let instances = sampler.epoch_instances(&data, &mut rng);
        assert!(instances.iter().all(|i| i.user == 1));
    }

    #[test]
    fn instance_count_is_bounded_by_item_count() {
        // Fairness argument: #set instances ≤ #train items (pointwise count).
        let data = small_data();
        let mut rng = StdRng::seed_from_u64(2);
        let sampler = InstanceSampler::new(5, 5, TargetSelection::Sequential);
        let instances = sampler.epoch_instances(&data, &mut rng);
        let train_items: usize = (0..data.n_users())
            .map(|u| data.user_items(u, Split::Train).len())
            .sum();
        assert!(instances.len() <= train_items);
    }
}
