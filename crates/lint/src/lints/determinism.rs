//! L3 `determinism`: the bitwise-pinned core (`dpp`, `linalg`, `eval`, and
//! the frontend's pure state machine) must not read clocks or iterate hash
//! containers in unspecified order. The epoch-plan and golden-artifact gates
//! assume the same inputs always produce the same bytes; a `SipHash`-ordered
//! loop or a wall-clock read silently breaks that guarantee across runs and
//! across hosts.
//!
//! Two sub-rules:
//!
//! 1. **Clock reads** — any `Instant::now` call or `SystemTime` mention
//!    (including imports: the deterministic core has no business naming it).
//! 2. **Hash-order iteration** — identifiers declared as `HashMap`/`HashSet`
//!    (`name: HashMap<…>`, `name = HashMap::new()`, …) later used with an
//!    iteration method (`iter`, `keys`, `values`, `drain`, `retain`, …) or
//!    as a `for … in` source. Chains split across lines
//!    (`self.entries\n    .iter()`) are matched on the joined code text.

use super::{ident_before, is_ident, next_nonspace_in, token_matches};
use crate::{FileView, Finding, Lint, LintConfig};

/// Methods whose visit order follows the hasher.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "retain",
];

/// Runs L3 over one deterministic-core file.
pub fn check(view: &FileView<'_>, _config: &LintConfig, findings: &mut Vec<Finding>) {
    let code = &view.scanned.code;

    // Sub-rule 1: clock reads.
    for (idx, line) in code.iter().enumerate() {
        if view.in_test[idx] {
            continue;
        }
        for at in token_matches(line, "Instant::now") {
            if !next_nonspace_in(line, at + "Instant::now".len(), &['(']) {
                continue;
            }
            findings.push(finding(
                view,
                idx,
                "clock read `Instant::now()` in the deterministic core — inject a \
                 `Clock` instead, or justify with `lint:allow(determinism): <reason>`",
            ));
        }
        if !token_matches(line, "SystemTime").is_empty() {
            findings.push(finding(
                view,
                idx,
                "`SystemTime` in the deterministic core — wall-clock values are not \
                 reproducible; inject a `Clock` or justify with \
                 `lint:allow(determinism): <reason>`",
            ));
        }
    }

    // Sub-rule 2: hash-order iteration.
    let names = hash_container_names(code);
    if names.is_empty() {
        return;
    }

    // Joined code text with a start-offset per line, so `.iter()` on the
    // line after its receiver still matches.
    let mut joined = String::new();
    let mut line_starts = Vec::with_capacity(code.len());
    for line in code {
        line_starts.push(joined.len());
        joined.push_str(line);
        joined.push('\n');
    }
    let line_of = |offset: usize| match line_starts.binary_search(&offset) {
        Ok(i) => i,
        Err(i) => i - 1,
    };

    for name in &names {
        for at in token_matches(&joined, name) {
            let after = at + name.len();
            if let Some((method, method_off)) = chained_method(&joined, after) {
                if ITER_METHODS.contains(&method.as_str()) {
                    let idx = line_of(method_off);
                    if !view.in_test[idx] {
                        findings.push(finding(
                            view,
                            idx,
                            &format!(
                                "hash-order iteration `{name}.{method}()` in the \
                                 deterministic core — visit order follows the hasher; \
                                 sort keys first or justify with \
                                 `lint:allow(determinism): <reason>`"
                            ),
                        ));
                    }
                }
            }
        }
    }

    // `for … in &name` / `for … in name` — IntoIterator on the map itself.
    for (idx, line) in code.iter().enumerate() {
        if view.in_test[idx] {
            continue;
        }
        if token_matches(line, "for").is_empty() {
            continue;
        }
        let Some(in_at) = token_matches(line, "in").into_iter().next() else {
            continue;
        };
        for name in &names {
            if !token_matches(&line[in_at..], name).is_empty() {
                findings.push(finding(
                    view,
                    idx,
                    &format!(
                        "hash-order iteration `for … in {name}` in the deterministic \
                         core — visit order follows the hasher; sort keys first or \
                         justify with `lint:allow(determinism): <reason>`"
                    ),
                ));
            }
        }
    }
}

fn finding(view: &FileView<'_>, idx: usize, message: &str) -> Finding {
    Finding {
        path: view.rel_path.to_string(),
        line: idx + 1,
        lint: Lint::Determinism,
        message: message.to_string(),
    }
}

/// Identifiers declared in this file as `HashMap`/`HashSet`: the ident
/// before `: HashMap<…>` (field/binding type ascription) or before
/// `= HashMap::…` (constructor assignment).
fn hash_container_names(code: &[String]) -> Vec<String> {
    let mut names = Vec::new();
    for line in code {
        for ty in ["HashMap", "HashSet"] {
            for at in token_matches(line, ty) {
                let head = line[..at].trim_end();
                let name = if let Some(head) = head.strip_suffix(':') {
                    // `name: HashMap<…>`
                    ident_before(head, head.len())
                } else if let Some(head) = head.strip_suffix('=') {
                    // `let name = HashMap::new()` / `name = HashMap::new()`
                    ident_before(head, head.len())
                } else {
                    None
                };
                if let Some(name) = name {
                    if name != "mut" && name != "let" && !names.iter().any(|n| n == name) {
                        names.push(name.to_string());
                    }
                }
            }
        }
    }
    names
}

/// If the text at `from` (after skipping whitespace, including newlines) is
/// `.method` followed by `(`, returns the method name and its byte offset.
fn chained_method(joined: &str, from: usize) -> Option<(String, usize)> {
    let rest = &joined[from..];
    let dot_rel = rest.find(|c: char| !c.is_whitespace())?;
    if !rest[dot_rel..].starts_with('.') {
        return None;
    }
    let after_dot = from + dot_rel + 1;
    let rest = &joined[after_dot..];
    let name_rel = rest.find(|c: char| !c.is_whitespace())?;
    let start = after_dot + name_rel;
    let name: String = joined[start..]
        .chars()
        .take_while(|&c| is_ident(c))
        .collect();
    if name.is_empty() {
        return None;
    }
    let end = start + name.len();
    next_nonspace_in(joined, end, &['(']).then_some((name, start))
}
