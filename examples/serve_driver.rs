//! The production serving shell end to end: a [`FrontendDriver`] pump
//! thread, concurrent submitters with per-request SLOs and bounded-queue
//! admission, and a zero-downtime artifact swap committed under live
//! traffic.
//!
//! ```text
//! cargo run --release --example serve_driver
//! ```
//!
//! Three things are demonstrated and asserted:
//!
//! 1. **zero lost tickets** — every admitted request completes (served or
//!    explicitly expired), across shedding, a mid-run swap, and shutdown;
//! 2. **per-generation fidelity** — every response is bitwise identical to
//!    a direct batch on the artifact generation stamped on it;
//! 3. **monotone generations** — because micro-batches are cut FIFO and
//!    the swap commits between cuts, generations never regress in ticket
//!    order.

use lkp::prelude::*;
use lkp::serve::CacheMode;
use rand::SeedableRng;
use std::time::Duration;

fn main() {
    // A compact world so the example runs in seconds.
    let data = SyntheticConfig {
        n_users: 150,
        n_items: 400,
        n_categories: 10,
        mean_interactions: 18.0,
        seed: 33,
        ..Default::default()
    }
    .generate();

    let kernel = train_diversity_kernel(
        &data,
        &DiversityKernelConfig {
            epochs: 5,
            pairs_per_epoch: 96,
            ..Default::default()
        },
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let mut model = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        24,
        AdamConfig::default(),
        &mut rng,
    );
    let mut objective = LkpObjective::new(LkpKind::NegativeAware, kernel);
    let trainer = Trainer::new(TrainConfig {
        epochs: 5,
        eval_every: 0,
        patience: 0,
        threads: 2,
        ..Default::default()
    });
    trainer.fit(&mut model, &mut objective, &data);
    let artifact_v1 = RankingArtifact::from_trained(&model, &objective);

    // The "retrained" second generation: two more epochs on the live model.
    trainer.fit(&mut model, &mut objective, &data);
    let artifact_v2 = RankingArtifact::from_trained(&model, &objective);

    // A skewed stream over stable per-user candidate pools.
    let pool_for = |user: usize| -> Vec<usize> {
        (0..50)
            .map(|j| (user * 53 + j * 29 + 11) % data.n_items())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect()
    };
    let users: Vec<usize> = (0..120)
        .map(|i| {
            if i % 3 < 2 {
                (i * 7) % 20
            } else {
                20 + (i * 11) % (data.n_users() - 20)
            }
        })
        .collect();
    let stream: Vec<RankRequest> = users
        .iter()
        .map(|&u| RankRequest::new(u, pool_for(u), 5))
        .collect();
    let plan: Vec<(usize, Vec<usize>)> = (0..data.n_users()).map(|u| (u, pool_for(u))).collect();

    // Per-generation reference lists from direct batches.
    let serve_config = ServeConfig {
        threads: 2,
        cache_mode: CacheMode::Sharded { shards: 4 },
        ..Default::default()
    };
    let want_v1 = Ranker::new(artifact_v1.clone(), serve_config.clone()).rank_batch(&stream);
    let want_v2 = Ranker::new(artifact_v2.clone(), serve_config.clone()).rank_batch(&stream);

    // Spawn the driver: the pump thread owns all batch cuts against the
    // wall clock; clients only submit and redeem.
    let mut frontend = ServeFrontend::new(
        Ranker::new(artifact_v1, serve_config),
        FrontendConfig {
            max_batch: 16,
            max_wait: Duration::from_millis(1),
            queue_capacity: 64,
            ..Default::default()
        },
    );
    frontend.prewarm(&plan);
    let driver = FrontendDriver::spawn(frontend);
    println!("driver up: pump thread owns the cuts, generation 1 serving");

    // Two submitter threads stream mixed-SLO traffic (hot users get a
    // tight-ish budget, the tail a loose one), retrying on QueueFull.
    let rounds = 4usize;
    let submitters: Vec<_> = (0..2usize)
        .map(|t| {
            let client = driver.client();
            let stream = stream.clone();
            std::thread::spawn(move || {
                let mut tickets = Vec::new();
                for round in 0..rounds {
                    for i in 0..stream.len() {
                        let at = (i + t * 13 + round * 29) % stream.len();
                        let req = stream[at].clone().with_slo(if stream[at].user < 20 {
                            Duration::from_millis(250)
                        } else {
                            Duration::from_secs(2)
                        });
                        let ticket = loop {
                            match client.submit(req.clone()) {
                                Ok(ticket) => break ticket,
                                Err(SubmitError::QueueFull { .. }) => std::thread::yield_now(),
                                Err(e) => panic!("unexpected submit error: {e}"),
                            }
                        };
                        tickets.push((at, ticket));
                    }
                }
                tickets
                    .into_iter()
                    .map(|(at, ticket)| {
                        let resp = client
                            .take_deadline(ticket, Duration::from_secs(30))
                            .expect("every admitted ticket completes");
                        (at, ticket, resp)
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();

    // Mid-run, hot-swap to generation 2 — once a quarter of the traffic
    // has been served, so the commit demonstrably lands under load.
    // Staging (building + prewarming the new cache) runs off the serving
    // lock; only the commit pauses traffic.
    let total = (2 * rounds * stream.len()) as u64;
    while driver.client().stats().served < total / 4 {
        std::thread::sleep(Duration::from_millis(1));
    }
    let report = driver.client().swap_artifact(artifact_v2, &plan);
    println!(
        "swapped to generation {} under live traffic: {} pairs prewarmed, \
         {} old entries retired, commit pause {:?}",
        report.generation, report.warmed, report.retired, report.commit_pause
    );

    // Collect and verify.
    let mut by_ticket = Vec::new();
    let mut outcomes = (0u64, 0u64); // (served, expired)
    for handle in submitters {
        for (at, ticket, resp) in handle.join().expect("submitter thread") {
            match resp.outcome {
                RankOutcome::Served => {
                    outcomes.0 += 1;
                    let want = match resp.generation {
                        1 => &want_v1[at],
                        2 => &want_v2[at],
                        g => panic!("unexpected generation {g}"),
                    };
                    assert_eq!(resp.items, want.items, "list drifted from its generation");
                    assert_eq!(resp.log_det.to_bits(), want.log_det.to_bits());
                }
                RankOutcome::Expired => outcomes.1 += 1,
                other => panic!("unexpected outcome {other:?}"),
            }
            by_ticket.push((ticket, resp.generation));
        }
    }
    by_ticket.sort_unstable_by_key(|&(ticket, _)| ticket);
    for pair in by_ticket.windows(2) {
        assert!(pair[0].1 <= pair[1].1, "generation regressed: {pair:?}");
    }
    let gen2 = by_ticket.iter().filter(|&&(_, g)| g == 2).count();
    assert!(gen2 > 0, "the swap must land under live traffic");
    println!(
        "{} responses bitwise-verified against their stamped generation \
         ({} on generation 2); generations monotone in ticket order ✓",
        by_ticket.len(),
        gen2
    );

    let stats = driver.client().stats();
    assert_eq!(
        outcomes.0 + outcomes.1,
        total,
        "zero lost tickets: every admitted request served or expired"
    );
    assert_eq!(stats.served, outcomes.0);
    assert_eq!(stats.expired, outcomes.1);
    println!(
        "admission: {} submitted, {} shed at the bounded queue, {} expired past SLO",
        stats.submitted, stats.shed, stats.expired
    );
    println!(
        "queue wait: p50 {:?}, p95 {:?}, p99 {:?} over {} served",
        stats.latency.p50(),
        stats.latency.p95(),
        stats.latency.p99(),
        stats.latency.count()
    );
    println!(
        "cuts: {} full / {} deadline / {} flush across {} batches; {} swap(s)",
        stats.cuts_full, stats.cuts_deadline, stats.cuts_flush, stats.batches, stats.swaps
    );
    assert_eq!(stats.swaps, 1);

    // Clean shutdown: all clients dropped, so the frontend comes back.
    let frontend = driver.shutdown().expect("all clients dropped");
    assert_eq!(frontend.pending_len(), 0, "shutdown flushed the queue");
    println!("driver shut down cleanly: queue flushed, zero tickets pending ✓");

    for resp in want_v2.iter().take(3) {
        let cats: std::collections::BTreeSet<usize> =
            resp.items.iter().map(|&i| data.category(i)).collect();
        println!(
            "user {:>3} (gen 2): top-5 {:?}  ({} distinct categories, log_det {:.3})",
            resp.user,
            resp.items,
            cats.len(),
            resp.log_det
        );
    }
}
