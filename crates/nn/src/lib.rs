//! Minimal neural-network substrate with hand-written backpropagation.
//!
//! The paper trains its models with PyTorch/TensorFlow; here the gradients of
//! the LkP criterion are analytic (see `lkp-dpp::grad`), so all a model needs
//! is a way to push a per-item score gradient back into its parameters. This
//! crate supplies exactly that machinery:
//!
//! * [`embedding::EmbeddingTable`] — dense parameter tables with *sparse*
//!   gradient accumulation and sparse Adam updates (only touched rows pay).
//! * [`dense::Dense`] + [`activation::Activation`] + [`mlp::Mlp`] — small
//!   fully-connected stacks with explicit forward caches and backward passes
//!   (used by NeuMF's MLP tower and GCMC's encoder).
//! * [`optim`] — Adam and SGD with optional weight decay and gradient
//!   clipping.
//! * [`init`] — Xavier/He/normal initialization.
//!
//! Everything is `f64` and single-threaded per model instance; parallelism
//! happens one level up (across evaluation users).

pub mod activation;
pub mod dense;
pub mod embedding;
pub mod init;
pub mod mlp;
pub mod optim;

pub use activation::Activation;
pub use dense::Dense;
pub use embedding::EmbeddingTable;
pub use mlp::Mlp;
pub use optim::{AdamConfig, AdamState};
