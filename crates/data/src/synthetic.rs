//! Synthetic implicit-feedback generator calibrated to the paper's Table I.
//!
//! The generator is a latent-factor model with explicit category structure:
//!
//! 1. Categories get power-law sizes; each category has a latent centroid.
//! 2. Item vectors are noisy copies of their category centroid, plus a
//!    Zipf-distributed popularity boost.
//! 3. Users prefer a small set of categories; their latent vector mixes the
//!    preferred centroids.
//! 4. Interactions are drawn sequentially: with probability
//!    `sequence_coherence` the next item stays in the previous item's
//!    category (giving consecutive interactions the "clearer correlations"
//!    the paper attributes to S-mode windows), otherwise a fresh preferred
//!    category is drawn. Within the chosen category, items are drawn by
//!    softmax of user–item affinity times popularity.
//!
//! The three presets match the Table I row shapes (users/items/interactions/
//! categories) with an optional `scale` multiplier so experiments stay
//! CPU-sized while preserving per-user interaction counts and the relative
//! sparsity ordering (Beauty ≫ Anime > ML in sparsity).

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Configuration of the synthetic generator.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Number of users.
    pub n_users: usize,
    /// Number of items.
    pub n_items: usize,
    /// Number of item categories.
    pub n_categories: usize,
    /// Mean interactions per user (minimum enforced at 10, matching the
    /// paper's long-tail filtering).
    pub mean_interactions: f64,
    /// Latent dimensionality of the generating factors.
    pub latent_dim: usize,
    /// How many categories a user prefers, on average.
    pub categories_per_user: f64,
    /// Probability that consecutive interactions stay in the same category.
    pub sequence_coherence: f64,
    /// Exponent of the item-popularity Zipf distribution (0 = uniform).
    pub popularity_exponent: f64,
    /// Softmax temperature for item choice within a category.
    pub temperature: f64,
    /// RNG seed — generation is fully deterministic given the config.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            n_users: 500,
            n_items: 400,
            n_categories: 20,
            mean_interactions: 25.0,
            latent_dim: 8,
            categories_per_user: 3.0,
            sequence_coherence: 0.6,
            popularity_exponent: 0.8,
            temperature: 0.7,
            seed: 42,
        }
    }
}

/// The three dataset presets of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyntheticPreset {
    /// Amazon-Beauty: many categories, extremely sparse (52.0k users, 57.2k
    /// items, 0.4M interactions, 213 categories).
    Beauty,
    /// MovieLens-1M: few categories, dense (6.0k users, 3.4k items, 1.0M
    /// interactions, 18 categories).
    MovieLens,
    /// Anime: intermediate (73.5k users, 12.2k items, 1.0M interactions,
    /// 43 categories).
    Anime,
}

impl SyntheticPreset {
    /// Human-readable name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            SyntheticPreset::Beauty => "Beauty",
            SyntheticPreset::MovieLens => "ML",
            SyntheticPreset::Anime => "Anime",
        }
    }

    /// Builds the preset configuration at the given scale.
    ///
    /// `scale = 1.0` reproduces the Table I row; smaller scales shrink user
    /// and item counts proportionally (floors keep the data usable) while
    /// preserving per-user interaction counts, so density *ordering* across
    /// presets is preserved at any scale.
    pub fn config(self, scale: f64, seed: u64) -> SyntheticConfig {
        let scaled = |full: usize, floor: usize| ((full as f64 * scale) as usize).max(floor);
        match self {
            SyntheticPreset::Beauty => SyntheticConfig {
                n_users: scaled(52_000, 300),
                n_items: scaled(57_200, 330),
                n_categories: 213.min(scaled(213, 60)),
                // 0.4M / 52k ≈ 7.7 raw; the paper filters < 10 interactions.
                mean_interactions: 12.0,
                latent_dim: 8,
                categories_per_user: 4.0,
                sequence_coherence: 0.65,
                popularity_exponent: 1.0,
                temperature: 0.7,
                seed,
            },
            SyntheticPreset::MovieLens => SyntheticConfig {
                n_users: scaled(6_000, 250),
                n_items: scaled(3_400, 150),
                n_categories: 18,
                mean_interactions: (167.0 * scale.max(0.15)).clamp(25.0, 167.0),
                latent_dim: 8,
                categories_per_user: 4.0,
                sequence_coherence: 0.55,
                popularity_exponent: 0.8,
                temperature: 0.8,
                seed,
            },
            SyntheticPreset::Anime => SyntheticConfig {
                n_users: scaled(73_500, 350),
                n_items: scaled(12_200, 220),
                n_categories: 43,
                mean_interactions: 14.0,
                latent_dim: 8,
                categories_per_user: 3.0,
                sequence_coherence: 0.6,
                popularity_exponent: 0.9,
                temperature: 0.7,
                seed,
            },
        }
    }

    /// Generates the preset dataset at the given scale.
    pub fn generate(self, scale: f64, seed: u64) -> Dataset {
        generate(&self.config(scale, seed))
    }
}

/// Generates a dataset from a configuration.
pub fn generate(config: &SyntheticConfig) -> Dataset {
    assert!(config.n_categories >= 1 && config.n_items >= config.n_categories);
    assert!(config.n_users >= 1);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let d = config.latent_dim;

    // --- Categories: power-law sizes, latent centroids. ---
    let cat_weights: Vec<f64> = (0..config.n_categories)
        .map(|c| 1.0 / ((c + 1) as f64).powf(0.7))
        .collect();
    let item_category = assign_categories(config.n_items, &cat_weights, &mut rng);
    let centroids: Vec<Vec<f64>> = (0..config.n_categories)
        .map(|_| (0..d).map(|_| gaussian(&mut rng)).collect())
        .collect();

    // --- Items: centroid + noise, Zipf popularity. ---
    let item_vecs: Vec<Vec<f64>> = item_category
        .iter()
        .map(|&c| {
            centroids[c]
                .iter()
                .map(|&x| x + 0.45 * gaussian(&mut rng))
                .collect()
        })
        .collect();
    let mut popularity: Vec<f64> = (0..config.n_items).map(|_| rng.random::<f64>()).collect();
    popularity.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let popularity: Vec<f64> = {
        // Random rank permutation so popular items are spread over categories.
        let mut ranks: Vec<usize> = (0..config.n_items).collect();
        shuffle(&mut ranks, &mut rng);
        let mut p = vec![0.0; config.n_items];
        for (rank, &item) in ranks.iter().enumerate() {
            p[item] = 1.0 / ((rank + 1) as f64).powf(config.popularity_exponent);
        }
        p
    };

    // Items grouped per category for fast within-category sampling.
    let mut items_by_cat: Vec<Vec<usize>> = vec![Vec::new(); config.n_categories];
    for (item, &c) in item_category.iter().enumerate() {
        items_by_cat[c].push(item);
    }

    // --- Users: preferred categories + latent mix. ---
    let mut interactions: Vec<Vec<usize>> = Vec::with_capacity(config.n_users);
    for _ in 0..config.n_users {
        // Number of preferred categories: 2..=2*avg-2, mean ≈ avg.
        let span = (config.categories_per_user * 2.0 - 2.0).max(2.0) as usize;
        let n_prefs = 2 + rng.random_range(0..span.max(1) - 1);
        let mut prefs = Vec::with_capacity(n_prefs);
        while prefs.len() < n_prefs.min(config.n_categories) {
            let c = sample_weighted(&cat_weights, &mut rng);
            if !prefs.contains(&c) {
                prefs.push(c);
            }
        }
        let mut user_vec = vec![0.0; d];
        for &c in &prefs {
            for (uv, cv) in user_vec.iter_mut().zip(&centroids[c]) {
                *uv += cv / n_prefs as f64;
            }
        }
        for uv in &mut user_vec {
            *uv += 0.3 * gaussian(&mut rng);
        }

        // Interaction count: lognormal-ish around the mean, floor 10.
        let raw = config.mean_interactions * (0.45 * gaussian(&mut rng)).exp();
        let target = (raw.round() as usize).clamp(10, config.n_items / 2);

        let mut history: Vec<usize> = Vec::with_capacity(target);
        let mut last_cat: Option<usize> = None;
        let mut attempts = 0;
        while history.len() < target && attempts < target * 30 {
            attempts += 1;
            let cat = match last_cat {
                Some(c) if rng.random::<f64>() < config.sequence_coherence => c,
                _ => prefs[rng.random_range(0..prefs.len())],
            };
            let pool = &items_by_cat[cat];
            if pool.is_empty() {
                last_cat = None;
                continue;
            }
            // Softmax over affinity·popularity within the category, sampled by
            // Gumbel-max over a bounded candidate slate for O(1)-ish cost.
            let slate = 12.min(pool.len());
            let mut best_item = None;
            let mut best_score = f64::NEG_INFINITY;
            for _ in 0..slate {
                let item = pool[rng.random_range(0..pool.len())];
                let affinity: f64 = user_vec
                    .iter()
                    .zip(&item_vecs[item])
                    .map(|(a, b)| a * b)
                    .sum();
                let score =
                    affinity / config.temperature + popularity[item].ln() + gumbel(&mut rng);
                if score > best_score {
                    best_score = score;
                    best_item = Some(item);
                }
            }
            let item = best_item.expect("slate is non-empty");
            if !history.contains(&item) {
                history.push(item);
                last_cat = Some(cat);
            } else {
                last_cat = None; // stuck in an exhausted category: jump out
            }
        }
        interactions.push(history);
    }

    Dataset::from_interactions(interactions, item_category, config.n_categories, &mut rng)
}

/// Assigns items to categories proportionally to `weights`, guaranteeing each
/// category at least one item.
fn assign_categories<R: Rng + ?Sized>(n_items: usize, weights: &[f64], rng: &mut R) -> Vec<usize> {
    let n_categories = weights.len();
    let mut cats: Vec<usize> = (0..n_categories).collect(); // one each, guaranteed
    cats.extend((n_categories..n_items).map(|_| sample_weighted(weights, rng)));
    shuffle(&mut cats, rng);
    cats
}

fn sample_weighted<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    let total: f64 = weights.iter().sum();
    let mut t = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if t < w {
            return i;
        }
        t -= w;
    }
    weights.len() - 1
}

fn shuffle<R: Rng + ?Sized, T>(v: &mut [T], rng: &mut R) {
    for i in (1..v.len()).rev() {
        v.swap(i, rng.random_range(0..=i));
    }
}

/// Standard normal via Box–Muller.
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Standard Gumbel noise (for Gumbel-max categorical sampling).
fn gumbel<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u: f64 = rng.random::<f64>().max(1e-12);
    -(-u.ln()).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Split;

    #[test]
    fn generation_is_deterministic_given_seed() {
        let cfg = SyntheticConfig {
            n_users: 40,
            n_items: 60,
            ..Default::default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.n_interactions(), b.n_interactions());
        for u in 0..a.n_users() {
            assert_eq!(a.user_items(u, Split::Train), b.user_items(u, Split::Train));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SyntheticConfig {
            seed: 1,
            ..Default::default()
        });
        let b = generate(&SyntheticConfig {
            seed: 2,
            ..Default::default()
        });
        let same = (0..a.n_users())
            .all(|u| a.user_items(u, Split::Train) == b.user_items(u, Split::Train));
        assert!(!same);
    }

    #[test]
    fn every_user_has_at_least_min_interactions() {
        let d = generate(&SyntheticConfig::default());
        for u in 0..d.n_users() {
            let total = d.user_items(u, Split::Train).len()
                + d.user_items(u, Split::Validation).len()
                + d.user_items(u, Split::Test).len();
            assert!(total >= 10, "user {u} has only {total} interactions");
        }
    }

    #[test]
    fn presets_preserve_sparsity_ordering() {
        // Density = interactions / (users · items). The paper's Table I gives
        // ML ≫ Anime > Beauty.
        let scale = 0.004;
        let density = |p: SyntheticPreset| {
            let d = p.generate(scale, 7);
            d.n_interactions() as f64 / (d.n_users() as f64 * d.n_items() as f64)
        };
        let beauty = density(SyntheticPreset::Beauty);
        let ml = density(SyntheticPreset::MovieLens);
        let anime = density(SyntheticPreset::Anime);
        assert!(ml > anime, "ML {ml} should be denser than Anime {anime}");
        assert!(
            anime > beauty,
            "Anime {anime} should be denser than Beauty {beauty}"
        );
    }

    #[test]
    fn category_counts_match_presets() {
        let beauty = SyntheticPreset::Beauty.generate(0.004, 3);
        let ml = SyntheticPreset::MovieLens.generate(0.05, 3);
        assert_eq!(ml.n_categories(), 18);
        assert!(beauty.n_categories() > ml.n_categories());
    }

    #[test]
    fn sequential_interactions_are_category_coherent() {
        // With coherence 0.9, consecutive train items should share a category
        // far more often than random pairs would.
        let cfg = SyntheticConfig {
            sequence_coherence: 0.9,
            n_users: 60,
            n_items: 200,
            n_categories: 20,
            ..Default::default()
        };
        let d = generate(&cfg);
        let mut same = 0usize;
        let mut total = 0usize;
        for u in 0..d.n_users() {
            let items = d.user_items(u, Split::Train);
            for w in items.windows(2) {
                if d.category(w[0]) == d.category(w[1]) {
                    same += 1;
                }
                total += 1;
            }
        }
        let ratio = same as f64 / total.max(1) as f64;
        assert!(ratio > 0.4, "coherence ratio only {ratio}");
    }

    #[test]
    fn popularity_is_skewed() {
        let d = generate(&SyntheticConfig {
            n_users: 300,
            ..Default::default()
        });
        let mut counts = vec![0usize; d.n_items()];
        for u in 0..d.n_users() {
            for &i in d.user_items(u, Split::Train) {
                counts[i] += 1;
            }
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = counts.iter().sum();
        let top_decile: usize = counts.iter().take(d.n_items() / 10).sum();
        assert!(
            top_decile as f64 > 0.2 * total as f64,
            "top decile holds only {top_decile}/{total}"
        );
    }
}
