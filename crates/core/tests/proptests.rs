//! Property-based tests for the LkP criterion itself: gradient correctness
//! and probabilistic invariants over random scores and kernels.

use lkp_core::objective::{lkp_core_apply_for_tests, LkpKind};
use lkp_dpp::LowRankKernel;
use lkp_linalg::Matrix;
use proptest::prelude::*;

/// Random normalized low-rank diversity kernel over `m` items.
fn kernel_strategy(m: usize, d: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.0..1.0_f64, m * d).prop_map(move |data| {
        let v = Matrix::from_vec(m, d, data);
        LowRankKernel::new(v).normalized().full_matrix()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn ps_loss_is_nonnegative_and_finite(
        scores in proptest::collection::vec(-3.0..3.0_f64, 6),
        ksub in kernel_strategy(6, 4),
    ) {
        // -log P of a probability is >= 0.
        if let Some((loss, ds, _)) = lkp_core_apply_for_tests(LkpKind::PositiveOnly, &scores, &ksub, 3) {
            prop_assert!(loss >= -1e-9, "negative loss {loss}");
            prop_assert!(loss.is_finite());
            prop_assert!(ds.iter().all(|d| d.is_finite()));
        }
    }

    #[test]
    fn nps_loss_dominates_ps_loss(
        scores in proptest::collection::vec(-3.0..3.0_f64, 6),
        ksub in kernel_strategy(6, 4),
    ) {
        let ps = lkp_core_apply_for_tests(LkpKind::PositiveOnly, &scores, &ksub, 3);
        let nps = lkp_core_apply_for_tests(LkpKind::NegativeAware, &scores, &ksub, 3);
        if let (Some((ps_loss, _, _)), Some((nps_loss, _, _))) = (ps, nps) {
            prop_assert!(nps_loss >= ps_loss - 1e-9, "exclusion term went negative");
        }
    }

    #[test]
    fn ps_gradient_matches_finite_difference(
        scores in proptest::collection::vec(-2.0..2.0_f64, 6),
        ksub in kernel_strategy(6, 4),
        dim in 0usize..6,
    ) {
        let Some((_, ds, _)) = lkp_core_apply_for_tests(LkpKind::PositiveOnly, &scores, &ksub, 3) else {
            return Ok(());
        };
        let h = 1e-6;
        let mut plus = scores.clone();
        plus[dim] += h;
        let mut minus = scores.clone();
        minus[dim] -= h;
        let (lp, _, _) = lkp_core_apply_for_tests(LkpKind::PositiveOnly, &plus, &ksub, 3).unwrap();
        let (lm, _, _) = lkp_core_apply_for_tests(LkpKind::PositiveOnly, &minus, &ksub, 3).unwrap();
        let fd = (lp - lm) / (2.0 * h);
        prop_assert!((fd - ds[dim]).abs() < 1e-4, "dim {dim}: fd {fd} vs {}", ds[dim]);
    }

    #[test]
    fn raising_all_positive_scores_reduces_ps_loss(
        scores in proptest::collection::vec(-1.0..1.0_f64, 6),
        ksub in kernel_strategy(6, 4),
        bump in 0.1..1.0_f64,
    ) {
        // Monotonicity of the set-level objective in the targets' scores.
        let Some((before, _, _)) = lkp_core_apply_for_tests(LkpKind::PositiveOnly, &scores, &ksub, 3) else {
            return Ok(());
        };
        let mut raised = scores.clone();
        for s in raised.iter_mut().take(3) {
            *s += bump;
        }
        let Some((after, _, _)) = lkp_core_apply_for_tests(LkpKind::PositiveOnly, &raised, &ksub, 3) else {
            return Ok(());
        };
        prop_assert!(after <= before + 1e-9, "loss rose from {before} to {after}");
    }

    #[test]
    fn gradient_pushes_positives_up_at_symmetric_scores(
        ksub in kernel_strategy(8, 5),
    ) {
        // With all-equal scores, descending the gradient must raise targets
        // relative to negatives (averaged — individual items can differ due
        // to the diversity kernel).
        let scores = vec![0.0; 8];
        let Some((_, ds, _)) = lkp_core_apply_for_tests(LkpKind::PositiveOnly, &scores, &ksub, 4) else {
            return Ok(());
        };
        let pos: f64 = ds[..4].iter().sum();
        let neg: f64 = ds[4..].iter().sum();
        prop_assert!(pos < 0.0, "positive-set gradient {pos} not descending");
        prop_assert!(neg > 0.0, "negative-set gradient {neg} not ascending");
    }
}
