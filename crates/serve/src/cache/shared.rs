//! The sharded cross-worker kernel-cache backend.

use super::{entry_bytes, evict_lru, CacheEntry, EntryForm, ShardStats};
use lkp_dpp::LowRankKernel;
use lkp_linalg::Matrix;
use std::collections::HashMap;
use std::sync::Mutex;

/// Mutable state of one hash shard, behind that shard's lock.
#[derive(Default)]
struct Shard {
    entries: HashMap<usize, CacheEntry>,
    /// Resident bytes across `entries` (kept in lockstep by fill/evict).
    bytes: usize,
    evicted: Vec<(u64, usize)>,
    tick: u64,
    hits: u64,
    misses: u64,
    prewarmed: u64,
}

/// One kernel cache for the whole pool, sharded `N` ways by user hash with
/// one lock per shard.
///
/// Versus the per-worker backend this removes the `threads×` memory
/// multiplier (each resident user holds one block total — `|C|²·8` bytes
/// dense, `|C|·d·8` factor — not one per worker) and the per-worker
/// cold-start tax (a user's block is built once per process, whichever
/// worker gets there first). Lookups copy the cached block into the
/// worker's staging buffer under the shard lock — an `O(block)` copy, not
/// the build — and misses build *outside* the lock, so concurrent misses on
/// one shard never serialize the expensive work (two racing workers may
/// both build the same entry; both produce identical bits, so whichever
/// insert lands is correct).
///
/// Entries are bit-exact copies of what a miss recomputes, so served lists
/// are pinned at any pool width and identical to the per-worker backend's.
pub(crate) struct SharedKernelCache {
    shards: Vec<Mutex<Shard>>,
}

impl SharedKernelCache {
    /// Creates a cache with `shards` shards (clamped to ≥ 1).
    pub(crate) fn new(shards: usize) -> Self {
        SharedKernelCache {
            // lint:allow(hotpath-alloc): one-time cache construction.
            shards: (0..shards.max(1)).map(|_| Mutex::default()).collect(),
        }
    }

    /// Fibonacci multiplicative hash of the user id → shard index. User ids
    /// are typically dense small integers; the multiply spreads consecutive
    /// ids across shards so hot user ranges don't pile onto one lock.
    fn shard_of(&self, user: usize) -> usize {
        let h = (user as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) as usize) % self.shards.len()
    }

    /// Per-shard byte bound for a total `budget`: ceiling-divided so the
    /// shards together cover at least `budget` bytes.
    fn shard_bound(&self, budget: usize) -> usize {
        budget.div_ceil(self.shards.len()).max(1)
    }

    /// Copies the kernel block for `(user, candidates)` in `form` into
    /// `out` and returns whether it was served from cache. `budget` is the
    /// total byte budget across shards and must be non-zero (a disabled
    /// cache is handled by the caller's per-worker bypass path).
    pub(crate) fn get_or_build_into(
        &self,
        user: usize,
        candidates: &[usize],
        kernel: &LowRankKernel,
        budget: usize,
        form: EntryForm,
        out: &mut Matrix,
    ) -> bool {
        debug_assert!(budget > 0, "budget 0 bypasses the shared cache");
        let bound = self.shard_bound(budget);
        let shard = &self.shards[self.shard_of(user)];
        {
            let mut guard = shard.lock().expect("shard lock");
            guard.tick += 1;
            let tick = guard.tick;
            if let Some(entry) = guard.entries.get_mut(&user) {
                if entry.candidates == candidates && entry.form == form {
                    entry.last_used = tick;
                    out.copy_from(&entry.block);
                    guard.hits += 1;
                    return true;
                }
            }
            guard.misses += 1;
        }
        // Miss: build outside the lock, then publish a copy.
        match form {
            EntryForm::Dense => kernel.submatrix_into(candidates, out),
            EntryForm::Factor => kernel.gather_rows_into(candidates, out),
        }
        .expect("candidates validated by caller");
        let mut guard = shard.lock().expect("shard lock");
        guard.tick += 1;
        let tick = guard.tick;
        let entry = guard.entries.entry(user).or_insert_with(CacheEntry::empty);
        let old = entry.bytes();
        entry.fill_from(candidates, out, form, tick);
        let new = entry.bytes();
        guard.bytes = guard.bytes - old + new;
        let Shard {
            entries,
            bytes,
            evicted,
            ..
        } = &mut *guard;
        evict_lru(entries, bytes, bound, evicted);
        false
    }

    /// Inserts `(user, candidates)` ahead of traffic. Counts as a prewarm,
    /// not a miss, and is strictly *monotone*: it only fills empty shard
    /// budget (touching an already-resident matching entry), never
    /// evicting or overwriting a resident entry — a full shard refuses new
    /// users and a resident user with a different pool keeps its pool.
    /// Anything else would silently break the "first request hits"
    /// guarantee for a pair an earlier prewarm already reported warmed.
    /// The prospective entry is sized *before* assembly, so a refusal costs
    /// `O(1)` under the lock. Returns whether the pair is warm (resident
    /// with exactly these candidates in `form`) when the call returns —
    /// built now or already resident; only fresh builds bump the
    /// `prewarmed` counter.
    pub(crate) fn prewarm(
        &self,
        user: usize,
        candidates: &[usize],
        kernel: &LowRankKernel,
        budget: usize,
        form: EntryForm,
    ) -> bool {
        if budget == 0 {
            return false;
        }
        let bound = self.shard_bound(budget);
        let mut guard = self.shards[self.shard_of(user)].lock().expect("shard lock");
        guard.tick += 1;
        let tick = guard.tick;
        if let Some(entry) = guard.entries.get_mut(&user) {
            if entry.candidates == candidates && entry.form == form {
                entry.last_used = tick;
                return true;
            }
            return false;
        }
        let need = entry_bytes(form, candidates.len(), kernel.dim());
        if guard.bytes + need > bound {
            return false;
        }
        guard.prewarmed += 1;
        let entry = guard.entries.entry(user).or_insert_with(CacheEntry::empty);
        entry.fill(candidates, kernel, form, tick);
        let added = entry.bytes();
        guard.bytes += added;
        true
    }

    /// Folds the retiring `old` cache's traffic counters into this staged
    /// one — hit/miss/prewarm totals describe the service's lifetime, not
    /// one artifact generation, so reporting must survive a swap — and
    /// returns how many old-generation entries are being retired with it.
    /// Entries are *not* carried over: they were built from the old
    /// artifact's kernel.
    pub(crate) fn carry_stats_from(&self, old: &SharedKernelCache) -> usize {
        let mut retired = 0;
        for (i, shard) in old.shards.iter().enumerate() {
            let o = shard.lock().expect("shard lock");
            let mut n = self.shards[i % self.shards.len()]
                .lock()
                .expect("shard lock");
            n.hits += o.hits;
            n.misses += o.misses;
            n.prewarmed += o.prewarmed;
            n.tick = n.tick.max(o.tick);
            retired += o.entries.len();
        }
        retired
    }

    /// One counter row per shard (bypasses are always 0 here — a disabled
    /// cache never reaches the shared backend).
    pub(crate) fn stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|shard| {
                let guard = shard.lock().expect("shard lock");
                ShardStats {
                    hits: guard.hits,
                    misses: guard.misses,
                    bypasses: 0,
                    prewarmed: guard.prewarmed,
                    resident: guard.entries.len(),
                    resident_bytes: guard.bytes,
                }
            })
            // lint:allow(hotpath-alloc): observability endpoint, not on the
            // request path.
            .collect()
    }
}

impl std::fmt::Debug for SharedKernelCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedKernelCache")
            .field("shards", &self.shards.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> LowRankKernel {
        let v = Matrix::from_fn(40, 3, |r, c| (((r * 7 + c * 5) % 9) as f64) * 0.3 - 1.0);
        LowRankKernel::new(v).normalized()
    }

    /// Byte budget that fits exactly `n` dense entries of `c` candidates
    /// *per shard* of a `shards`-way cache.
    fn dense_budget(n: usize, c: usize, shards: usize) -> usize {
        n * entry_bytes(EntryForm::Dense, c, 0) * shards
    }

    #[test]
    fn hit_is_bit_exact_across_shards() {
        let kern = kernel();
        let cache = SharedKernelCache::new(4);
        let budget = dense_budget(16, 3, 4);
        let mut out = Matrix::zeros(0, 0);
        for user in 0..16 {
            let cands = vec![user % 5, user % 5 + 3, user % 5 + 9];
            assert!(!cache.get_or_build_into(
                user,
                &cands,
                &kern,
                budget,
                EntryForm::Dense,
                &mut out
            ));
            let fresh = kern.submatrix(&cands).unwrap();
            assert_eq!(out.as_slice(), fresh.as_slice());
            let mut again = Matrix::zeros(0, 0);
            assert!(cache.get_or_build_into(
                user,
                &cands,
                &kern,
                budget,
                EntryForm::Dense,
                &mut again
            ));
            assert_eq!(again.as_slice(), fresh.as_slice());
        }
        let stats = super::super::CacheStats::from_shards(cache.stats());
        assert_eq!(stats.aggregate.hits, 16);
        assert_eq!(stats.aggregate.misses, 16);
        assert_eq!(stats.aggregate.resident, 16);
        assert_eq!(
            stats.aggregate.resident_bytes,
            16 * entry_bytes(EntryForm::Dense, 3, 0)
        );
    }

    #[test]
    fn factor_hit_is_bit_exact() {
        let kern = kernel();
        let cache = SharedKernelCache::new(2);
        let mut out = Matrix::zeros(0, 0);
        let cands = vec![4, 17, 2, 30];
        assert!(!cache.get_or_build_into(5, &cands, &kern, 1 << 16, EntryForm::Factor, &mut out));
        assert_eq!((out.rows(), out.cols()), (4, kern.dim()));
        let first = out.clone();
        assert!(cache.get_or_build_into(5, &cands, &kern, 1 << 16, EntryForm::Factor, &mut out));
        assert_eq!(first.as_slice(), out.as_slice());
        for (r, &i) in cands.iter().enumerate() {
            assert_eq!(out.row(r), kern.factor().row(i));
        }
        // A form flip on the same pair rebuilds instead of serving V_C as K_C.
        assert!(!cache.get_or_build_into(5, &cands, &kern, 1 << 16, EntryForm::Dense, &mut out));
        assert_eq!(out.as_slice(), kern.submatrix(&cands).unwrap().as_slice());
    }

    #[test]
    fn changed_candidates_invalidate_entry() {
        let kern = kernel();
        let cache = SharedKernelCache::new(2);
        let budget = dense_budget(4, 2, 2);
        let mut out = Matrix::zeros(0, 0);
        cache.get_or_build_into(7, &[1, 2], &kern, budget, EntryForm::Dense, &mut out);
        assert!(!cache.get_or_build_into(7, &[2, 3], &kern, budget, EntryForm::Dense, &mut out));
        assert_eq!(out.as_slice(), kern.submatrix(&[2, 3]).unwrap().as_slice());
    }

    #[test]
    fn budget_is_distributed_and_enforced_per_shard() {
        let kern = kernel();
        let cache = SharedKernelCache::new(2);
        let mut out = Matrix::zeros(0, 0);
        // Total budget = 2 dense 1-candidate entries per shard; 20 distinct
        // users can leave at most 2 residents (32 bytes) per shard.
        let budget = dense_budget(2, 1, 2);
        for user in 0..20 {
            cache.get_or_build_into(user, &[user % 7], &kern, budget, EntryForm::Dense, &mut out);
        }
        let per_shard = entry_bytes(EntryForm::Dense, 1, 0) * 2;
        for s in cache.stats() {
            assert!(s.resident <= 2, "shard over bound: {s:?}");
            assert!(
                s.resident_bytes <= per_shard,
                "shard over byte bound: {s:?}"
            );
        }
    }

    #[test]
    fn prewarmed_pairs_hit_on_first_lookup() {
        let kern = kernel();
        let cache = SharedKernelCache::new(3);
        let budget = dense_budget(16, 3, 3);
        let pairs: Vec<(usize, Vec<usize>)> = (0..6).map(|u| (u, vec![u, u + 2, u + 11])).collect();
        for (user, cands) in &pairs {
            assert!(cache.prewarm(*user, cands, &kern, budget, EntryForm::Dense));
            // Idempotent: a resident pair reports warm, no re-assembly.
            assert!(cache.prewarm(*user, cands, &kern, budget, EntryForm::Dense));
            // A resident user is never overwritten by a different pool.
            assert!(!cache.prewarm(*user, &[37, 38], &kern, budget, EntryForm::Dense));
        }
        let mut out = Matrix::zeros(0, 0);
        for (user, cands) in &pairs {
            assert!(
                cache.get_or_build_into(*user, cands, &kern, budget, EntryForm::Dense, &mut out),
                "prewarmed pair must hit on first traffic"
            );
            assert_eq!(out.as_slice(), kern.submatrix(cands).unwrap().as_slice());
        }
        let stats = super::super::CacheStats::from_shards(cache.stats());
        assert_eq!(stats.aggregate.misses, 0);
        assert_eq!(stats.aggregate.prewarmed, 6);
        assert_eq!(stats.aggregate.hits, 6);
    }

    #[test]
    fn prewarm_overflow_refuses_instead_of_evicting() {
        // Single shard → shard bound == total budget: a 10-pair plan
        // against a 4-entry budget must warm the first 4 pairs and keep
        // them.
        let kern = kernel();
        let cache = SharedKernelCache::new(1);
        let budget = dense_budget(4, 2, 1);
        let warmed = (0..10)
            .filter(|&u| cache.prewarm(u, &[u, u + 1], &kern, budget, EntryForm::Dense))
            .count();
        assert_eq!(warmed, 4, "only the first `budget / entry` pairs fit");
        let mut out = Matrix::zeros(0, 0);
        for u in 0..4 {
            assert!(
                cache.get_or_build_into(u, &[u, u + 1], &kern, budget, EntryForm::Dense, &mut out),
                "accepted pair {u} must keep its first-request hit"
            );
        }
        let stats = super::super::CacheStats::from_shards(cache.stats());
        assert_eq!(stats.aggregate.prewarmed, 4);
        assert_eq!(stats.aggregate.misses, 0);
    }

    #[test]
    fn mixed_forms_share_the_byte_budget() {
        // Satellite regression, shared backend: a factor entry only charges
        // its own `8·(c + c·d)` bytes, so a budget sized for 2 dense
        // entries holds one dense + several factor entries at once.
        let kern = kernel();
        let cache = SharedKernelCache::new(1);
        let c = 10;
        let budget = 2 * entry_bytes(EntryForm::Dense, c, 0); // 1760
        let pool = |u: usize| -> Vec<usize> { (0..c).map(|i| (u * c + i) % 40).collect() };
        let mut out = Matrix::zeros(0, 0);
        cache.get_or_build_into(0, &pool(0), &kern, budget, EntryForm::Dense, &mut out);
        let spare = budget - entry_bytes(EntryForm::Dense, c, 0);
        let factor_fits = spare / entry_bytes(EntryForm::Factor, c, kern.dim());
        assert!(factor_fits >= 2, "budget math drifted: {factor_fits}");
        for u in 1..=factor_fits {
            cache.get_or_build_into(u, &pool(u), &kern, budget, EntryForm::Factor, &mut out);
        }
        let stats = super::super::CacheStats::from_shards(cache.stats());
        assert_eq!(stats.aggregate.resident, 1 + factor_fits);
        assert!(stats.aggregate.resident_bytes <= budget);
        // Everything still hits — nothing was evicted to "make room" in
        // entry-count terms.
        assert!(cache.get_or_build_into(0, &pool(0), &kern, budget, EntryForm::Dense, &mut out));
        for u in 1..=factor_fits {
            assert!(cache.get_or_build_into(
                u,
                &pool(u),
                &kern,
                budget,
                EntryForm::Factor,
                &mut out
            ));
        }
    }

    #[test]
    fn concurrent_mixed_traffic_stays_bit_exact() {
        let kern = kernel();
        let cache = SharedKernelCache::new(4);
        let budget = dense_budget(2, 3, 4);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = &cache;
                let kern = &kern;
                scope.spawn(move || {
                    let mut out = Matrix::zeros(0, 0);
                    for round in 0..50 {
                        let user = (t * 13 + round * 7) % 10;
                        let cands = vec![user, user + 5, user + 20];
                        let form = if round % 3 == 0 {
                            EntryForm::Factor
                        } else {
                            EntryForm::Dense
                        };
                        cache.get_or_build_into(user, &cands, kern, budget, form, &mut out);
                        match form {
                            EntryForm::Dense => {
                                let fresh = kern.submatrix(&cands).unwrap();
                                assert_eq!(out.as_slice(), fresh.as_slice());
                            }
                            EntryForm::Factor => {
                                for (r, &i) in cands.iter().enumerate() {
                                    assert_eq!(out.row(r), kern.factor().row(i));
                                }
                            }
                        }
                    }
                });
            }
        });
    }
}
