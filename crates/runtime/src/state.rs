//! Per-worker reusable state: a typed slot map that lives as long as its
//! worker thread.

use std::any::{Any, TypeId};
use std::collections::HashMap;

/// A typed slot map owned by one pool worker.
///
/// Consumers key their scratch by type: the trainer keeps a `DppWorkspace`
/// per worker, the evaluator a score buffer, the serving layer its kernel
/// cache — all in the same state object, none visible to the others. Slots
/// are created on first access and then reused across every subsequent job
/// the worker runs, which is what makes pool execution steady-state
/// allocation-free for consumers that pre-size their scratch.
#[derive(Default)]
pub struct WorkerState {
    slots: HashMap<TypeId, Box<dyn Any + Send>>,
}

impl WorkerState {
    /// Creates an empty state (slots materialize on first access).
    pub fn new() -> Self {
        WorkerState::default()
    }

    /// Borrows the worker's `T` slot, creating it with `init` on first use.
    pub fn get_or_insert_with<T: Any + Send, F: FnOnce() -> T>(&mut self, init: F) -> &mut T {
        self.slots
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Box::new(init()))
            .downcast_mut::<T>()
            .expect("slot type is keyed by TypeId")
    }

    /// Borrows the worker's `T` slot, creating it with `T::default()` on
    /// first use.
    pub fn get_or_default<T: Any + Send + Default>(&mut self) -> &mut T {
        self.get_or_insert_with(T::default)
    }

    /// Borrows two *distinct* slots simultaneously, creating either with its
    /// `Default` on first use — the shape consumers need when one job
    /// threads two pieces of persistent state through the same call (e.g.
    /// the trainer's `DppWorkspace` plus its `SpectralCache`).
    ///
    /// Panics if `A` and `B` are the same type (one slot cannot be borrowed
    /// mutably twice).
    pub fn get_or_default_pair<A, B>(&mut self) -> (&mut A, &mut B)
    where
        A: Any + Send + Default,
        B: Any + Send + Default,
    {
        let (ka, kb) = (TypeId::of::<A>(), TypeId::of::<B>());
        assert_ne!(ka, kb, "get_or_default_pair requires two distinct types");
        self.slots
            .entry(ka)
            .or_insert_with(|| Box::new(A::default()));
        self.slots
            .entry(kb)
            .or_insert_with(|| Box::new(B::default()));
        let [a, b] = self.slots.get_disjoint_mut([&ka, &kb]);
        (
            a.expect("slot A just ensured")
                .downcast_mut::<A>()
                .expect("slot type is keyed by TypeId"),
            b.expect("slot B just ensured")
                .downcast_mut::<B>()
                .expect("slot type is keyed by TypeId"),
        )
    }

    /// Borrows the worker's `T` slot if some earlier job created it —
    /// without materializing one. Used by post-run aggregation (e.g.
    /// collecting per-worker cache statistics) where creating empty state on
    /// workers that never ran the consumer would be misleading.
    pub fn get_mut<T: Any + Send>(&mut self) -> Option<&mut T> {
        self.slots
            .get_mut(&TypeId::of::<T>())
            .map(|b| b.downcast_mut::<T>().expect("slot type is keyed by TypeId"))
    }

    /// Whether a `T` slot already exists (i.e. some earlier job created it).
    pub fn contains<T: Any + Send>(&self) -> bool {
        self.slots.contains_key(&TypeId::of::<T>())
    }
}

impl std::fmt::Debug for WorkerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerState")
            .field("slots", &self.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_persist_and_are_typed() {
        let mut s = WorkerState::new();
        assert!(!s.contains::<Vec<f64>>());
        s.get_or_default::<Vec<f64>>().push(1.0);
        s.get_or_default::<Vec<f64>>().push(2.0);
        assert_eq!(s.get_or_default::<Vec<f64>>().len(), 2);
        // A different type gets its own slot.
        *s.get_or_insert_with::<usize, _>(|| 7) += 1;
        assert_eq!(*s.get_or_default::<usize>(), 8);
        assert!(s.contains::<Vec<f64>>());
    }

    #[test]
    fn pair_accessor_borrows_two_slots_at_once() {
        let mut s = WorkerState::new();
        // Creation on first use, both slots at once.
        let (v, n) = s.get_or_default_pair::<Vec<f64>, usize>();
        v.push(1.5);
        *n = 3;
        // Both survive and stay consistent with the single accessors.
        assert_eq!(s.get_or_default::<Vec<f64>>(), &vec![1.5]);
        assert_eq!(*s.get_or_default::<usize>(), 3);
        // Order of the type parameters does not matter.
        let (n, v) = s.get_or_default_pair::<usize, Vec<f64>>();
        *n += 1;
        v.push(2.5);
        assert_eq!(*s.get_or_default::<usize>(), 4);
        assert_eq!(s.get_or_default::<Vec<f64>>().len(), 2);
    }

    #[test]
    #[should_panic(expected = "distinct types")]
    fn pair_accessor_rejects_identical_types() {
        let mut s = WorkerState::new();
        let _ = s.get_or_default_pair::<usize, usize>();
    }

    #[test]
    fn get_mut_does_not_materialize_slots() {
        let mut s = WorkerState::new();
        assert!(s.get_mut::<Vec<f64>>().is_none());
        assert!(!s.contains::<Vec<f64>>());
        s.get_or_default::<Vec<f64>>().push(9.0);
        assert_eq!(s.get_mut::<Vec<f64>>().unwrap().len(), 1);
    }
}
