//! The persistent fork-join worker pool.

use crate::{TaskPlan, WorkerState};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A type-erased pointer to the job closure of the current dispatch.
///
/// `data` points at the caller's closure (a `&F` on [`WorkerPool::run`]'s
/// stack frame); `call` is the monomorphized trampoline that casts it back.
/// The pointer is only dereferenced between job publication and the
/// completion barrier inside `run`, which outlives neither the closure nor
/// anything it borrows.
#[derive(Clone, Copy)]
struct JobPtr {
    data: *const (),
    // SAFETY: callers of `call` must pass a `data` created from a live `&F`
    // whose `F` matches the trampoline's monomorphization (see `call_job`).
    call: unsafe fn(*const (), usize, &mut WorkerState),
}

// SAFETY: the pointee is `Sync` (enforced by `run`'s bounds), and the
// pointer's lifetime is bracketed by the dispatch barrier, so sending the
// pointer to worker threads cannot outlive the closure it points at.
unsafe impl Send for JobPtr {}

// SAFETY: contract — `data` must point at a live `F`; upheld by `run`,
// which builds the pair and blocks until every worker has finished.
unsafe fn call_job<F: Fn(usize, &mut WorkerState) + Sync>(
    data: *const (),
    worker: usize,
    state: &mut WorkerState,
) {
    // SAFETY: `data` was created from a live `&F` by `run`, which blocks
    // until every worker has finished with it.
    unsafe { (*(data as *const F))(worker, state) }
}

struct PoolState {
    /// The published job of the current dispatch generation.
    job: Option<JobPtr>,
    /// Dispatch generation counter; bumped once per `run`.
    epoch: u64,
    /// Spawned workers still executing the current job.
    remaining: usize,
    /// Spawned workers whose job closure panicked this dispatch.
    panicked: usize,
    /// The first panic payload captured from a spawned worker this
    /// dispatch, resumed on the caller after the barrier so the original
    /// panic message survives the pool boundary.
    payload: Option<Box<dyn std::any::Any + Send>>,
    /// Tells workers to exit their loop.
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Signaled when a new job is published (or on shutdown).
    start: Condvar,
    /// Signaled when the last spawned worker finishes the current job.
    done: Condvar,
}

/// A persistent pool of `n` fork-join workers (the caller is worker 0, so
/// `n − 1` threads are spawned; `n = 1` spawns none and runs inline).
///
/// [`WorkerPool::run`] is the primitive: it executes `job(worker_index,
/// &mut WorkerState)` once per worker and returns when all are done — a
/// drop-in replacement for the per-call `std::thread::scope` fork-join, with
/// the spawn cost paid once per pool instead of once per call. The safe
/// helpers [`WorkerPool::zip_chunks`] and [`WorkerPool::map_chunks`] cover
/// the two shapes every consumer in this workspace needs: disjoint
/// input/output chunk processing (trainer batches, serving batches) and
/// per-chunk result collection in chunk order (evaluation merge).
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Worker 0's (the caller's) persistent state.
    caller_state: WorkerState,
    threads: usize,
}

impl WorkerPool {
    /// Creates a pool with `threads` workers (0 resolves to the host's
    /// available parallelism). Spawns `threads − 1` background threads.
    pub fn new(threads: usize) -> Self {
        let threads = crate::resolve_threads(threads);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                job: None,
                epoch: 0,
                remaining: 0,
                panicked: 0,
                payload: None,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("lkp-pool-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            caller_state: WorkerState::new(),
            threads,
        }
    }

    /// The pool's worker count (including the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job(worker_index, state)` once on every worker and blocks until
    /// all have finished. Worker indices are `0..threads()`; the caller runs
    /// index 0 inline. Panics in any worker propagate to the caller after
    /// the barrier (the pool itself stays usable).
    pub fn run<F>(&mut self, job: F)
    where
        F: Fn(usize, &mut WorkerState) + Sync,
    {
        let spawned = self.handles.len();
        if spawned > 0 {
            let ptr = JobPtr {
                data: &job as *const F as *const (),
                call: call_job::<F>,
            };
            let mut guard = self.shared.state.lock().expect("pool lock");
            guard.job = Some(ptr);
            guard.epoch += 1;
            guard.remaining = spawned;
            guard.panicked = 0;
            guard.payload = None;
            drop(guard);
            self.shared.start.notify_all();
        }

        // The caller is worker 0. Even if its share panics, we must reach
        // the barrier first — returning early would free `job` while
        // spawned workers still hold a pointer into this frame.
        let caller_result = catch_unwind(AssertUnwindSafe(|| job(0, &mut self.caller_state)));

        let (worker_panics, worker_payload) = if spawned > 0 {
            let mut guard = self.shared.state.lock().expect("pool lock");
            while guard.remaining > 0 {
                guard = self.shared.done.wait(guard).expect("pool lock");
            }
            guard.job = None;
            (guard.panicked, guard.payload.take())
        } else {
            (0, None)
        };

        // Caller-side panics take precedence (they already carry the
        // original payload); otherwise re-raise the first spawned worker's
        // payload so the message is not lost at the pool boundary.
        if let Err(payload) = caller_result {
            resume_unwind(payload);
        }
        if let Some(payload) = worker_payload {
            resume_unwind(payload);
        }
        if worker_panics > 0 {
            panic!("{worker_panics} pool worker(s) panicked");
        }
    }

    /// Splits `input` and `out` into the same contiguous per-worker chunks
    /// and runs `f(chunk_offset, input_chunk, out_chunk, state)` on each
    /// non-empty pair. Chunk boundaries depend only on `input.len()` and the
    /// pool width; each output element is written by exactly one worker, so
    /// element values are independent of the thread count.
    pub fn zip_chunks<T, U, F>(&mut self, input: &[T], out: &mut [U], f: F)
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &[T], &mut [U], &mut WorkerState) + Sync,
    {
        self.zip_chunks_bounded(input, out, &[], f);
    }

    /// [`WorkerPool::zip_chunks`] with uniform-run dispatch: `bounds` are
    /// ascending split points strictly inside `(0, input.len())`, and `f` is
    /// invoked once per maximal sub-run of a worker's chunk that crosses no
    /// bound — so when bounds separate groups of like-shaped work (e.g.
    /// instances bucketed by ground-set size), every `f` call sees a slice
    /// drawn from exactly one group and can take a batched fast path over
    /// it. One pool dispatch covers all groups; with `bounds` empty this is
    /// exactly [`WorkerPool::zip_chunks`].
    ///
    /// Chunk boundaries (and therefore which worker computes which element)
    /// depend only on `input.len()` and the pool width, never on `bounds`,
    /// and each output element is still written by exactly one worker —
    /// element values remain independent of both the thread count and the
    /// grouping.
    pub fn zip_chunks_bounded<T, U, F>(
        &mut self,
        input: &[T],
        out: &mut [U],
        bounds: &[usize],
        f: F,
    ) where
        T: Sync,
        U: Send,
        F: Fn(usize, &[T], &mut [U], &mut WorkerState) + Sync,
    {
        assert_eq!(
            input.len(),
            out.len(),
            "zip_chunks input/output lengths differ"
        );
        debug_assert!(
            bounds.windows(2).all(|w| w[0] <= w[1]) && bounds.iter().all(|&b| b < input.len()),
            "bounds must ascend within (0, len)"
        );
        let len = input.len();
        let chunk = len.div_ceil(self.threads).max(1);
        let out_ptr = SendPtr(out.as_mut_ptr());
        self.run(move |worker, state| {
            let start = (worker * chunk).min(len);
            let end = ((worker + 1) * chunk).min(len);
            if start >= end {
                return;
            }
            let mut next_bound = bounds.partition_point(|&b| b <= start);
            let mut run_start = start;
            while run_start < end {
                while next_bound < bounds.len() && bounds[next_bound] <= run_start {
                    next_bound += 1;
                }
                let run_end = if next_bound < bounds.len() {
                    bounds[next_bound].min(end)
                } else {
                    end
                };
                // SAFETY: [run_start, run_end) sub-ranges are disjoint both
                // across workers (chunks) and within a worker (runs), and
                // `run` does not return before every worker is done, so each
                // sub-slice is exclusively borrowed for the dispatch.
                let out_chunk = unsafe {
                    std::slice::from_raw_parts_mut(
                        out_ptr.get().add(run_start),
                        run_end - run_start,
                    )
                };
                f(run_start, &input[run_start..run_end], out_chunk, state);
                run_start = run_end;
            }
        });
    }

    /// Splits `input` into contiguous per-worker chunks, runs
    /// `f(chunk_offset, input_chunk, state)` on each non-empty one, and
    /// returns the per-chunk results **in chunk order** (worker 0's chunk
    /// first). Empty chunks (when `input.len() < threads()`) yield no entry.
    pub fn map_chunks<T, R, F>(&mut self, input: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T], &mut WorkerState) -> R + Sync,
    {
        let len = input.len();
        let chunk = len.div_ceil(self.threads).max(1);
        let mut results: Vec<Option<R>> = (0..self.threads).map(|_| None).collect();
        let res_ptr = SendPtr(results.as_mut_ptr());
        self.run(move |worker, state| {
            let start = (worker * chunk).min(len);
            let end = ((worker + 1) * chunk).min(len);
            if start >= end {
                return;
            }
            let value = f(start, &input[start..end], state);
            // SAFETY: each worker writes only its own pre-allocated slot.
            unsafe { *res_ptr.get().add(worker) = Some(value) };
        });
        results.into_iter().flatten().collect()
    }

    /// Executes one planned dispatch: every task `t` of `plan` runs
    /// `f(t, &mut items[t], state)` on the worker the plan assigned it to.
    /// This is the uneven-work counterpart of [`WorkerPool::zip_chunks`] —
    /// the plan (built by deterministic LPT over declared costs, see
    /// [`TaskPlan::assign`]) decides placement, so heavy tasks spread across
    /// workers instead of landing in one contiguous chunk. Each item is
    /// still written by exactly one worker; consumers keep the `zip_chunks`
    /// contract that item *values* must not depend on worker identity.
    ///
    /// Panics if the plan's task count differs from `items.len()` or its
    /// worker count differs from the pool width.
    pub fn run_plan_mut<T, F>(&mut self, plan: &TaskPlan, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T, &mut WorkerState) + Sync,
    {
        assert_eq!(plan.len(), items.len(), "plan/items task counts differ");
        assert_eq!(
            plan.workers(),
            self.threads,
            "plan was built for a different pool width"
        );
        let ptr = SendPtr(items.as_mut_ptr());
        self.run(move |worker, state| {
            for &t in plan.assigned(worker) {
                // SAFETY: `TaskPlan::assign` places every task index in
                // exactly one worker's list, so across the whole dispatch
                // each `items[t]` is exclusively borrowed by one worker;
                // `run` does not return before every worker is done.
                let item = unsafe { &mut *ptr.get().add(t as usize) };
                f(t as usize, item, state);
            }
        });
    }

    /// Borrows the caller's (worker 0's) persistent state — useful for
    /// consumers that also run work outside pool dispatches and want to
    /// share the same scratch.
    pub fn caller_state(&mut self) -> &mut WorkerState {
        &mut self.caller_state
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut guard = self.shared.state.lock().expect("pool lock");
            guard.shutdown = true;
        }
        self.shared.start.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

/// Raw-pointer wrapper that may cross the dispatch boundary. Soundness is
/// argued at each construction site (disjoint ranges / exclusive slots).
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: the wrapped pointer is only dereferenced at construction-site
// argued disjoint offsets, never concurrently at the same location.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: shared references to the wrapper expose only the raw pointer
// value; all dereferences go through the per-site disjointness arguments.
unsafe impl<T> Sync for SendPtr<T> {}

fn worker_loop(shared: &Shared, index: usize) {
    let mut state = WorkerState::new();
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut guard = shared.state.lock().expect("pool lock");
            loop {
                if guard.shutdown {
                    return;
                }
                if guard.epoch != seen_epoch {
                    if let Some(job) = guard.job {
                        seen_epoch = guard.epoch;
                        break job;
                    }
                }
                guard = shared.start.wait(guard).expect("pool lock");
            }
        };
        // SAFETY: the job pointer stays valid until `run`'s barrier, which
        // cannot pass before the `remaining` decrement below.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe {
            (job.call)(job.data, index, &mut state)
        }));
        let mut guard = shared.state.lock().expect("pool lock");
        if let Err(payload) = result {
            guard.panicked += 1;
            if guard.payload.is_none() {
                guard.payload = Some(payload);
            }
        }
        guard.remaining -= 1;
        if guard.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_executes_once_per_worker() {
        for threads in [1, 2, 4, 7] {
            let mut pool = WorkerPool::new(threads);
            let count = AtomicUsize::new(0);
            let seen = Mutex::new(Vec::new());
            pool.run(|w, _| {
                count.fetch_add(1, Ordering::SeqCst);
                seen.lock().unwrap().push(w);
            });
            assert_eq!(count.load(Ordering::SeqCst), threads);
            let mut ids = seen.into_inner().unwrap();
            ids.sort_unstable();
            assert_eq!(ids, (0..threads).collect::<Vec<_>>());
        }
    }

    #[test]
    fn worker_state_persists_across_dispatches() {
        let mut pool = WorkerPool::new(4);
        for round in 1..=5usize {
            pool.run(|_, state| {
                *state.get_or_default::<usize>() += 1;
            });
            let counts = Mutex::new(Vec::new());
            pool.run(|_, state| {
                counts
                    .lock()
                    .unwrap()
                    .push(*state.get_or_default::<usize>());
            });
            let counts = counts.into_inner().unwrap();
            assert_eq!(counts, vec![round; 4], "round {round}");
        }
    }

    #[test]
    fn zip_chunks_covers_every_element_exactly_once() {
        for threads in [1, 2, 3, 4, 7] {
            for len in [0usize, 1, 5, 16, 33] {
                let input: Vec<usize> = (0..len).collect();
                let mut out = vec![usize::MAX; len];
                let mut pool = WorkerPool::new(threads);
                pool.zip_chunks(&input, &mut out, |offset, inp, outp, _| {
                    assert_eq!(inp[0], offset, "offset is the chunk's global start");
                    for (slot, &v) in outp.iter_mut().zip(inp) {
                        *slot = v * 10;
                    }
                });
                assert_eq!(
                    out,
                    input.iter().map(|v| v * 10).collect::<Vec<_>>(),
                    "threads={threads} len={len}"
                );
            }
        }
    }

    #[test]
    fn bounded_zip_runs_never_straddle_bounds_and_cover_once() {
        for threads in [1usize, 2, 3, 4, 7] {
            for len in [1usize, 5, 16, 33] {
                let input: Vec<usize> = (0..len).collect();
                let bounds: Vec<usize> = (1..len).filter(|b| b % 5 == 0).collect();
                let mut out = vec![usize::MAX; len];
                let mut pool = WorkerPool::new(threads);
                pool.zip_chunks_bounded(&input, &mut out, &bounds, |offset, inp, outp, _| {
                    assert_eq!(inp[0], offset);
                    // The run crosses no bound: all elements in one segment.
                    let seg = |i: usize| bounds.partition_point(|&b| b <= i);
                    assert!(
                        inp.iter().all(|&i| seg(i) == seg(offset)),
                        "run {offset}..{} straddles bounds {bounds:?}",
                        offset + inp.len()
                    );
                    for (slot, &v) in outp.iter_mut().zip(inp) {
                        *slot = v * 3 + 1;
                    }
                });
                assert_eq!(
                    out,
                    input.iter().map(|v| v * 3 + 1).collect::<Vec<_>>(),
                    "threads={threads} len={len}"
                );
            }
        }
    }

    #[test]
    fn bounded_zip_with_empty_bounds_equals_zip_chunks() {
        // zip_chunks delegates to the bounded form; the f-call pattern must
        // be one call per worker chunk in both spellings.
        let input: Vec<usize> = (0..20).collect();
        for threads in [1usize, 3, 4] {
            let mut pool = WorkerPool::new(threads);
            let mut out_a = vec![0usize; 20];
            let calls_a = Mutex::new(Vec::new());
            pool.zip_chunks(&input, &mut out_a, |offset, inp, outp, _| {
                calls_a.lock().unwrap().push((offset, inp.len()));
                for (slot, &v) in outp.iter_mut().zip(inp) {
                    *slot = v + 7;
                }
            });
            let mut out_b = vec![0usize; 20];
            let calls_b = Mutex::new(Vec::new());
            pool.zip_chunks_bounded(&input, &mut out_b, &[], |offset, inp, outp, _| {
                calls_b.lock().unwrap().push((offset, inp.len()));
                for (slot, &v) in outp.iter_mut().zip(inp) {
                    *slot = v + 7;
                }
            });
            assert_eq!(out_a, out_b);
            let mut a = calls_a.into_inner().unwrap();
            let mut b = calls_b.into_inner().unwrap();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "threads={threads}");
        }
    }

    #[test]
    fn bounded_zip_tolerates_duplicate_bounds() {
        let input: Vec<usize> = (0..10).collect();
        let mut out = vec![0usize; 10];
        let mut pool = WorkerPool::new(2);
        pool.zip_chunks_bounded(&input, &mut out, &[4, 4, 7], |_, inp, outp, _| {
            assert!(!inp.is_empty(), "no empty runs");
            for (slot, &v) in outp.iter_mut().zip(inp) {
                *slot = v * 2;
            }
        });
        assert_eq!(out, input.iter().map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_chunks_returns_results_in_chunk_order() {
        let input: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 4, 7] {
            let mut pool = WorkerPool::new(threads);
            let sums = pool.map_chunks(&input, |_, chunk, _| chunk.iter().sum::<usize>());
            assert_eq!(sums.iter().sum::<usize>(), 4950, "threads={threads}");
            // Chunk order: offsets strictly increase, so partial sums of the
            // contiguous chunks reconstruct the prefix structure.
            let offsets = pool.map_chunks(&input, |offset, _, _| offset);
            let mut sorted = offsets.clone();
            sorted.sort_unstable();
            assert_eq!(offsets, sorted);
        }
    }

    #[test]
    fn run_plan_mut_runs_every_task_once_on_its_worker() {
        for threads in [1, 2, 4, 7] {
            let mut pool = WorkerPool::new(threads);
            let costs: Vec<u64> = (0..23u64).map(|i| (i * 31) % 13 + 1).collect();
            let mut plan = TaskPlan::new();
            plan.assign(&costs, threads);
            let mut items: Vec<(usize, usize)> = vec![(usize::MAX, usize::MAX); costs.len()];
            pool.run_plan_mut(&plan, &mut items, |t, item, _| {
                *item = (t, t * 2);
            });
            for (t, item) in items.iter().enumerate() {
                assert_eq!(*item, (t, t * 2), "threads={threads}");
            }
            // Placement observability: re-running records worker identity
            // matching the plan's assignment.
            let mut seen: Vec<usize> = vec![usize::MAX; costs.len()];
            let seen_ptr = std::sync::Mutex::new(&mut seen);
            pool.run_plan_mut(&plan, &mut items, |t, _, _| {
                // worker index is recoverable from the plan itself
                let w = plan.worker_of(t);
                seen_ptr.lock().unwrap()[t] = w;
            });
            for (t, &w) in seen.iter().enumerate() {
                assert_eq!(w, plan.worker_of(t));
            }
        }
    }

    #[test]
    fn run_plan_mut_tasks_use_persistent_worker_state() {
        let mut pool = WorkerPool::new(3);
        let mut plan = TaskPlan::new();
        plan.assign(&[1; 9], 3);
        let mut items = vec![0usize; 9];
        for round in 1..=3usize {
            pool.run_plan_mut(&plan, &mut items, |_, item, state| {
                let counter = state.get_or_default::<usize>();
                *counter += 1;
                *item = *counter;
            });
            // Each worker's counter advanced by its task count this round.
            for (t, &v) in items.iter().enumerate() {
                let w = plan.worker_of(t);
                let tasks_per_round = plan.assigned(w).len();
                assert!(v <= round * tasks_per_round, "task {t}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "different pool width")]
    fn run_plan_mut_rejects_mismatched_width() {
        let mut pool = WorkerPool::new(2);
        let mut plan = TaskPlan::new();
        plan.assign(&[1, 2], 3);
        let mut items = vec![0usize; 2];
        pool.run_plan_mut(&plan, &mut items, |_, _, _| {});
    }

    #[test]
    fn pool_survives_worker_panics() {
        let mut pool = WorkerPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(|w, _| {
                if w == 2 {
                    panic!("worker boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool is still usable after a panic.
        let count = AtomicUsize::new(0);
        pool.run(|_, _| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn caller_panic_still_joins_barrier() {
        let mut pool = WorkerPool::new(3);
        let done = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(|w, _| {
                if w == 0 {
                    panic!("caller boom");
                }
                done.fetch_add(1, Ordering::SeqCst);
            });
        }));
        assert!(result.is_err());
        assert_eq!(done.load(Ordering::SeqCst), 2);
        pool.run(|_, _| {});
    }

    #[test]
    fn borrowed_data_is_visible_to_workers() {
        // The whole point of the scope-compatible API: jobs may borrow from
        // the caller's stack.
        let data: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let mut pool = WorkerPool::new(4);
        let total = Mutex::new(0.0);
        pool.run(|w, _| {
            let chunk = data.len().div_ceil(4);
            let start = (w * chunk).min(data.len());
            let end = ((w + 1) * chunk).min(data.len());
            let local: f64 = data[start..end].iter().sum();
            *total.lock().unwrap() += local;
        });
        assert_eq!(*total.lock().unwrap(), 499_500.0);
    }
}
