//! Epoch planning: persistent instance arenas, sampling policies, and the
//! size-bucketed batch schedule.
//!
//! The stock training loop drew a fresh `k + n` ground set per target window
//! every epoch, materialized as a `Vec<GroundSetInstance>` (two heap `Vec`s
//! per instance, rebuilt per epoch) and consumed inline by the trainer. That
//! coupling had two costs: the per-epoch allocation churn, and — more
//! importantly — it hard-coded *resample every epoch*, which defeats the
//! epoch-persistent spectral cache on full `fit` runs (its keys are
//! `(user, ground set)` and a never-repeating sampler never revisits a key).
//!
//! This module extracts instance generation into a planning layer:
//!
//! * [`EpochPlan`] — one epoch's instances in a single contiguous flat arena
//!   (an items buffer plus per-instance `(user, k, offset, len)`
//!   [`InstanceRecord`]s). Instances resolve to zero-copy
//!   [`InstanceRef`]s.
//! * [`SamplingPolicy`] — when plans are rebuilt:
//!   [`SamplingPolicy::ResampleEachEpoch`] (the stock behavior, bitwise
//!   identical trajectories to the historical inline sampler),
//!   [`SamplingPolicy::FrozenNegatives`] (sample once, reuse every epoch so
//!   every revisit hits the spectral cache), and
//!   [`SamplingPolicy::PeriodicRefresh`] (resample every `period` epochs —
//!   the middle ground between cache reuse and negative-set freshness).
//! * [`EpochPlanner`] — drives an [`InstanceSampler`] under a policy,
//!   owning the plan, its [`BatchSchedule`], and the sampling scratch
//!   (negative-mask bitset, window buffer) across epochs.
//! * [`BatchSchedule`] — cuts the (shuffled) plan into optimizer batches
//!   and, within each batch, buckets instances by ground-set size
//!   `m = k + n` so every pool dispatch run is uniform-`m` (the shape the
//!   batched eigen path needs). Scheduling reorders *computation* only:
//!   gradients are written to per-instance slots and accumulated in plan
//!   order, so results are bitwise independent of the bucketing.

use crate::dataset::{Dataset, NegativeMask, Split};
use crate::instances::{random_chunks_into, GroundSetInstance, InstanceRef, InstanceSampler};
use crate::TargetSelection;
use rand::Rng;

/// When an epoch's instances are (re)sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SamplingPolicy {
    /// Draw a fresh plan every epoch — the paper's stock behavior and the
    /// default. Trajectories are bitwise identical to the historical inline
    /// sampler.
    #[default]
    ResampleEachEpoch,
    /// Sample once at the first epoch and reuse the identical plan (same
    /// instances, same order) for the whole run, so every revisit from
    /// epoch 2 onward hits the per-worker spectral cache.
    FrozenNegatives,
    /// Resample every `period` epochs and reuse the plan in between —
    /// cache reuse within a refresh window, fresh negatives across windows.
    /// `period = 0` is clamped to 1 (identical to resampling each epoch).
    PeriodicRefresh {
        /// Epochs between resamples (≥ 1).
        period: usize,
    },
}

impl SamplingPolicy {
    /// Whether a plan sampled at some earlier epoch should be resampled for
    /// `epoch` (1-based). The first epoch always samples.
    pub fn resamples_at(&self, epoch: usize) -> bool {
        match *self {
            SamplingPolicy::ResampleEachEpoch => true,
            SamplingPolicy::FrozenNegatives => epoch <= 1,
            SamplingPolicy::PeriodicRefresh { period } => {
                epoch <= 1 || (epoch - 1).is_multiple_of(period.max(1))
            }
        }
    }

    /// Short name for probes and logs.
    pub fn name(&self) -> &'static str {
        match self {
            SamplingPolicy::ResampleEachEpoch => "resample",
            SamplingPolicy::FrozenNegatives => "frozen",
            SamplingPolicy::PeriodicRefresh { .. } => "periodic",
        }
    }
}

/// Locator of one instance inside an [`EpochPlan`]'s flat arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstanceRecord {
    /// The user this ground set belongs to.
    pub user: usize,
    /// Target-set cardinality: arena positions `offset..offset + k` are the
    /// positives, the rest of the instance's span the negatives.
    pub k: usize,
    /// Start of the instance's span in the items arena.
    pub offset: usize,
    /// Ground-set size `m = k + n` (the span's length).
    pub len: usize,
}

/// One epoch's training instances in a single contiguous arena.
///
/// All ground sets live back-to-back in one items buffer; per-instance
/// [`InstanceRecord`]s carry `(user, k, offset, len)`. Shuffling permutes
/// the records only — the arena is written once per (re)sample.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EpochPlan {
    items: Vec<usize>,
    records: Vec<InstanceRecord>,
}

impl EpochPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        EpochPlan::default()
    }

    /// Builds a plan holding copies of the given owned instances, in order
    /// (test/builder convenience; training plans come from [`EpochPlanner`]).
    pub fn from_instances(instances: &[GroundSetInstance]) -> Self {
        let mut plan = EpochPlan::new();
        for inst in instances {
            plan.push_instance(inst.user, &inst.positives, &inst.negatives);
        }
        plan
    }

    /// Appends one instance to the arena.
    pub fn push_instance(&mut self, user: usize, positives: &[usize], negatives: &[usize]) {
        let offset = self.items.len();
        self.items.extend_from_slice(positives);
        self.items.extend_from_slice(negatives);
        self.records.push(InstanceRecord {
            user,
            k: positives.len(),
            offset,
            len: positives.len() + negatives.len(),
        });
    }

    /// Drops every instance (arena capacity retained).
    pub fn clear(&mut self) {
        self.items.clear();
        self.records.clear();
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the plan holds no instances.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The per-instance records, in plan (iteration) order.
    pub fn records(&self) -> &[InstanceRecord] {
        &self.records
    }

    /// The full ground set of instance `idx` — positives then negatives, as
    /// one contiguous arena span (the identity the spectral cache keys on).
    pub fn ground_set(&self, idx: usize) -> &[usize] {
        let rec = self.records[idx];
        &self.items[rec.offset..rec.offset + rec.len]
    }

    /// Shuffles the record tail `[from..]` with the trainer's historical
    /// Fisher–Yates. With `from = 0` this is exactly the full-plan epoch
    /// shuffle; the delta planner uses it to shuffle only freshly sampled
    /// records while frozen records keep their base order.
    pub(crate) fn shuffle_records_from<R: Rng + ?Sized>(&mut self, from: usize, rng: &mut R) {
        shuffle(&mut self.records[from..], rng);
    }

    /// Resolves instance `idx` to a zero-copy view over the arena.
    pub fn instance(&self, idx: usize) -> InstanceRef<'_> {
        let rec = self.records[idx];
        let span = &self.items[rec.offset..rec.offset + rec.len];
        InstanceRef {
            user: rec.user,
            positives: &span[..rec.k],
            negatives: &span[rec.k..],
        }
    }

    /// Iterates the plan's instances in order.
    pub fn iter(&self) -> impl Iterator<Item = InstanceRef<'_>> {
        (0..self.len()).map(|i| self.instance(i))
    }

    /// Number of distinct ground-set sizes `m` across the plan.
    pub fn distinct_sizes(&self) -> usize {
        let mut sizes: Vec<usize> = self.records.iter().map(|r| r.len).collect();
        sizes.sort_unstable();
        sizes.dedup();
        sizes.len()
    }
}

/// A contiguous slice of plan instances addressed by record indices — the
/// unit handed to `Objective::compute_batch_into`. Every instance in a block
/// produced by [`BatchSchedule`] has the same ground-set size.
#[derive(Debug, Clone, Copy)]
pub struct InstanceBlock<'a> {
    plan: &'a EpochPlan,
    indices: &'a [usize],
}

impl<'a> InstanceBlock<'a> {
    /// Wraps a plan and a list of record indices.
    pub fn new(plan: &'a EpochPlan, indices: &'a [usize]) -> Self {
        InstanceBlock { plan, indices }
    }

    /// Number of instances in the block.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the block is empty.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Resolves the block's `i`-th instance.
    pub fn get(&self, i: usize) -> InstanceRef<'a> {
        self.plan.instance(self.indices[i])
    }
}

/// Per-batch dispatch layout produced by [`BatchSchedule`].
#[derive(Debug, Clone, Copy)]
pub struct ScheduledBatch<'a> {
    /// Record indices in dispatch order: uniform-`m` runs are contiguous.
    pub dispatch: &'a [usize],
    /// Split points (relative to `dispatch`, exclusive of `0` and `len`)
    /// between uniform-`m` runs. Empty when the whole batch shares one size.
    pub bounds: &'a [usize],
    /// For each *plan-order* position in the batch, its slot in `dispatch` —
    /// accumulation walks plan order through this map, so bucketing never
    /// changes the order gradients are applied in.
    pub slot_of: &'a [usize],
}

impl ScheduledBatch<'_> {
    /// Instances in the batch.
    pub fn len(&self) -> usize {
        self.dispatch.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.dispatch.is_empty()
    }
}

/// Optimizer-step batches over an [`EpochPlan`], each bucketed into
/// uniform-`m` dispatch runs.
///
/// Batches are the plan's records cut every `batch_size` in plan order —
/// exactly the historical `chunks(batch_size)` — and bucketing happens
/// *within* a batch only: the dispatch order groups a batch's instances by
/// ground-set size (ascending, stable), while [`ScheduledBatch::slot_of`]
/// preserves plan-order accumulation. Gradient values are pure functions of
/// their instance, so the bucketed schedule produces bitwise the results of
/// the unbucketed order.
#[derive(Debug, Clone, Default)]
pub struct BatchSchedule {
    dispatch: Vec<usize>,
    slot_of: Vec<usize>,
    bounds: Vec<usize>,
    /// Per batch: `(dispatch_start, dispatch_end, bounds_start, bounds_end)`.
    batches: Vec<(usize, usize, usize, usize)>,
}

impl BatchSchedule {
    /// Rebuilds the schedule for `plan` at the given batch size, reusing the
    /// schedule's buffers.
    pub fn rebuild(&mut self, plan: &EpochPlan, batch_size: usize) {
        let batch_size = batch_size.max(1);
        self.dispatch.clear();
        self.slot_of.clear();
        self.bounds.clear();
        self.batches.clear();
        let records = plan.records();
        let mut start = 0;
        while start < records.len() {
            let end = (start + batch_size).min(records.len());
            let d0 = self.dispatch.len();
            let b0 = self.bounds.len();
            let batch = &records[start..end];
            let uniform = batch.windows(2).all(|w| w[0].len == w[1].len);
            if uniform {
                // Fast path: dispatch order is plan order, no bounds.
                self.dispatch.extend(start..end);
                self.slot_of.extend(0..end - start);
            } else {
                // Distinct sizes ascending; stable within each size.
                let mut sizes: Vec<usize> = batch.iter().map(|r| r.len).collect();
                sizes.sort_unstable();
                sizes.dedup();
                self.slot_of.resize(self.slot_of.len() + batch.len(), 0);
                let slot_base = self.slot_of.len() - batch.len();
                for (si, &size) in sizes.iter().enumerate() {
                    if si > 0 {
                        self.bounds.push(self.dispatch.len() - d0);
                    }
                    for (pos, rec) in batch.iter().enumerate() {
                        if rec.len == size {
                            self.slot_of[slot_base + pos] = self.dispatch.len() - d0;
                            self.dispatch.push(start + pos);
                        }
                    }
                }
            }
            self.batches
                .push((d0, self.dispatch.len(), b0, self.bounds.len()));
            start = end;
        }
    }

    /// Builds a fresh schedule (see [`BatchSchedule::rebuild`]).
    pub fn build(plan: &EpochPlan, batch_size: usize) -> Self {
        let mut schedule = BatchSchedule::default();
        schedule.rebuild(plan, batch_size);
        schedule
    }

    /// Number of optimizer batches.
    pub fn n_batches(&self) -> usize {
        self.batches.len()
    }

    /// The `b`-th batch's dispatch layout.
    pub fn batch(&self, b: usize) -> ScheduledBatch<'_> {
        let (d0, d1, b0, b1) = self.batches[b];
        ScheduledBatch {
            dispatch: &self.dispatch[d0..d1],
            bounds: &self.bounds[b0..b1],
            slot_of: &self.slot_of[d0..d1],
        }
    }

    /// Iterates the batches in optimizer order.
    pub fn iter(&self) -> impl Iterator<Item = ScheduledBatch<'_>> {
        (0..self.n_batches()).map(|b| self.batch(b))
    }
}

/// Counters describing how an [`EpochPlanner`] resolved a run's epochs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Epochs that sampled a fresh plan.
    pub resamples: u64,
    /// Epochs that reused the frozen plan (no RNG consumed, identical
    /// instances and order — every revisit can hit the spectral cache).
    pub reuses: u64,
    /// Instances per epoch in the most recent plan.
    pub instances: usize,
    /// Distinct ground-set sizes in the most recent plan (1 for the stock
    /// uniform sampler — every batch is a single dispatch run).
    pub distinct_sizes: usize,
}

/// Sampling scratch shared across a planner's lifetime.
#[derive(Debug, Default)]
struct PlanScratch {
    mask: NegativeMask,
    windows: Vec<usize>,
}

/// Drives an [`InstanceSampler`] under a [`SamplingPolicy`], owning the
/// epoch plan, its batch schedule, and the sampling scratch across epochs.
#[derive(Debug)]
pub struct EpochPlanner {
    sampler: InstanceSampler,
    policy: SamplingPolicy,
    batch_size: usize,
    plan: EpochPlan,
    schedule: BatchSchedule,
    scratch: PlanScratch,
    planned: bool,
    resamples: u64,
    reuses: u64,
}

impl EpochPlanner {
    /// Creates a planner. `batch_size` fixes the optimizer-batch cut used by
    /// the schedule (clamped to ≥ 1).
    pub fn new(sampler: InstanceSampler, policy: SamplingPolicy, batch_size: usize) -> Self {
        EpochPlanner {
            sampler,
            policy,
            batch_size: batch_size.max(1),
            plan: EpochPlan::new(),
            schedule: BatchSchedule::default(),
            scratch: PlanScratch::default(),
            planned: false,
            resamples: 0,
            reuses: 0,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> SamplingPolicy {
        self.policy
    }

    /// Returns the plan and schedule for `epoch` (1-based), resampling when
    /// the policy calls for it and reusing the frozen plan (consuming no RNG)
    /// otherwise.
    ///
    /// Under [`SamplingPolicy::ResampleEachEpoch`] the produced instance
    /// sequence — including the epoch shuffle — consumes the RNG exactly as
    /// the historical `InstanceSampler::epoch_instances` + Fisher–Yates
    /// trainer path did, so trajectories built on the plan are bitwise
    /// identical to the inline sampler's.
    pub fn plan_for_epoch<R: Rng + ?Sized>(
        &mut self,
        data: &Dataset,
        epoch: usize,
        rng: &mut R,
    ) -> (&EpochPlan, &BatchSchedule) {
        if !self.planned || self.policy.resamples_at(epoch) {
            self.resample(data, rng);
            self.planned = true;
            self.resamples += 1;
        } else {
            self.reuses += 1;
        }
        (&self.plan, &self.schedule)
    }

    /// The most recent plan (empty until the first
    /// [`EpochPlanner::plan_for_epoch`] call). `Trainer::fit_state` snapshots
    /// this as the frozen base a later delta refresh replays.
    pub fn plan(&self) -> &EpochPlan {
        &self.plan
    }

    /// Counters accumulated since construction.
    pub fn stats(&self) -> PlanStats {
        PlanStats {
            resamples: self.resamples,
            reuses: self.reuses,
            instances: self.plan.len(),
            distinct_sizes: self.plan.distinct_sizes(),
        }
    }

    fn resample<R: Rng + ?Sized>(&mut self, data: &Dataset, rng: &mut R) {
        let (k, n) = (self.sampler.k, self.sampler.n);
        self.plan.clear();
        for user in 0..data.n_users() {
            let train = data.user_items(user, Split::Train);
            if train.len() < k {
                continue;
            }
            match self.sampler.mode {
                TargetSelection::Sequential => {
                    for start in 0..=train.len() - k {
                        push_window(
                            &mut self.plan,
                            data,
                            user,
                            &train[start..start + k],
                            n,
                            rng,
                            &mut self.scratch.mask,
                        );
                    }
                }
                TargetSelection::Random => {
                    // All of the user's chunks draw before any negative —
                    // the order the nested sampler consumes the RNG in.
                    random_chunks_into(train, k, rng, &mut self.scratch.windows);
                    for chunk in self.scratch.windows.chunks_exact(k) {
                        push_window(
                            &mut self.plan,
                            data,
                            user,
                            chunk,
                            n,
                            rng,
                            &mut self.scratch.mask,
                        );
                    }
                }
            }
        }
        shuffle(&mut self.plan.records, rng);
        self.schedule.rebuild(&self.plan, self.batch_size);
    }
}

/// Appends one `(window, fresh negatives)` instance to the plan, sampling
/// the negatives straight into the arena tail. Shared with the delta
/// planner, whose fresh-user path must consume the RNG draw-for-draw as a
/// full resample does.
pub(crate) fn push_window<R: Rng + ?Sized>(
    plan: &mut EpochPlan,
    data: &Dataset,
    user: usize,
    window: &[usize],
    n: usize,
    rng: &mut R,
    mask: &mut NegativeMask,
) {
    let offset = plan.items.len();
    mask.prepare(data.n_items());
    for &p in window {
        mask.mark(p);
    }
    plan.items.extend_from_slice(window);
    data.sample_negatives_masked_into(user, n, rng, mask, &mut plan.items);
    plan.records.push(InstanceRecord {
        user,
        k: window.len(),
        offset,
        len: plan.items.len() - offset,
    });
}

/// Backwards Fisher–Yates — byte-for-byte the shuffle the trainer has always
/// run on its epoch instances (the RNG stream must not move).
pub(crate) fn shuffle<T, R: Rng + ?Sized>(v: &mut [T], rng: &mut R) {
    for i in (1..v.len()).rev() {
        v.swap(i, rng.random_range(0..=i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, SyntheticConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_data() -> Dataset {
        generate(&SyntheticConfig {
            n_users: 30,
            n_items: 120,
            n_categories: 8,
            mean_interactions: 18.0,
            ..Default::default()
        })
    }

    /// The historical epoch pipeline: nested sampler + trainer shuffle.
    fn reference_epoch(
        data: &Dataset,
        sampler: &InstanceSampler,
        rng: &mut StdRng,
    ) -> Vec<GroundSetInstance> {
        let mut instances = sampler.epoch_instances(data, rng);
        shuffle(&mut instances, rng);
        instances
    }

    fn assert_plan_matches(plan: &EpochPlan, reference: &[GroundSetInstance]) {
        assert_eq!(plan.len(), reference.len());
        for (inst, want) in plan.iter().zip(reference) {
            assert_eq!(inst.user, want.user);
            assert_eq!(inst.positives, &want.positives[..]);
            assert_eq!(inst.negatives, &want.negatives[..]);
        }
    }

    #[test]
    fn planned_epoch_is_draw_identical_to_the_inline_sampler() {
        // Arena filling + record shuffle must consume the RNG exactly as
        // `epoch_instances` + Fisher–Yates did, for both target modes, over
        // several consecutive epochs (stream alignment compounds).
        let data = small_data();
        for mode in [TargetSelection::Sequential, TargetSelection::Random] {
            let sampler = InstanceSampler::new(4, 4, mode);
            let mut planner =
                EpochPlanner::new(sampler.clone(), SamplingPolicy::ResampleEachEpoch, 32);
            let mut rng_plan = StdRng::seed_from_u64(99);
            let mut rng_ref = StdRng::seed_from_u64(99);
            for epoch in 1..=3 {
                let (plan, _) = planner.plan_for_epoch(&data, epoch, &mut rng_plan);
                let reference = reference_epoch(&data, &sampler, &mut rng_ref);
                assert_plan_matches(plan, &reference);
            }
        }
    }

    #[test]
    fn frozen_plans_are_identical_across_epochs_and_consume_no_rng() {
        let data = small_data();
        let sampler = InstanceSampler::new(4, 4, TargetSelection::Sequential);
        let mut planner = EpochPlanner::new(sampler, SamplingPolicy::FrozenNegatives, 32);
        let mut rng = StdRng::seed_from_u64(7);
        let first = {
            let (plan, _) = planner.plan_for_epoch(&data, 1, &mut rng);
            plan.clone()
        };
        let probe_after_first: u64 = rng.random_range(0..u64::MAX);
        let mut rng = StdRng::seed_from_u64(7);
        let mut planner2 =
            EpochPlanner::new(planner.sampler.clone(), SamplingPolicy::FrozenNegatives, 32);
        for epoch in 1..=5 {
            let (plan, _) = planner2.plan_for_epoch(&data, epoch, &mut rng);
            assert_eq!(*plan, first, "epoch {epoch} drifted from the frozen plan");
        }
        // Epochs 2..=5 consumed no RNG: the stream sits where it sat after
        // epoch 1.
        assert_eq!(rng.random_range(0..u64::MAX), probe_after_first);
        let stats = planner2.stats();
        assert_eq!((stats.resamples, stats.reuses), (1, 4));
    }

    #[test]
    fn frozen_plans_are_deterministic_under_a_fixed_seed() {
        let data = small_data();
        let build = || {
            let sampler = InstanceSampler::new(3, 3, TargetSelection::Sequential);
            let mut planner = EpochPlanner::new(sampler, SamplingPolicy::FrozenNegatives, 16);
            let mut rng = StdRng::seed_from_u64(123);
            planner.plan_for_epoch(&data, 1, &mut rng).0.clone()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn periodic_refresh_resamples_on_schedule() {
        let data = small_data();
        let sampler = InstanceSampler::new(3, 3, TargetSelection::Sequential);
        let mut planner =
            EpochPlanner::new(sampler, SamplingPolicy::PeriodicRefresh { period: 3 }, 16);
        let mut rng = StdRng::seed_from_u64(5);
        let mut plans = Vec::new();
        for epoch in 1..=7 {
            plans.push(planner.plan_for_epoch(&data, epoch, &mut rng).0.clone());
        }
        // Epochs 1-3 share a plan, 4-6 share the next, 7 starts a third.
        assert_eq!(plans[0], plans[1]);
        assert_eq!(plans[0], plans[2]);
        assert_ne!(plans[0], plans[3], "epoch 4 must resample");
        assert_eq!(plans[3], plans[4]);
        assert_eq!(plans[3], plans[5]);
        assert_ne!(plans[3], plans[6], "epoch 7 must resample");
        let stats = planner.stats();
        assert_eq!((stats.resamples, stats.reuses), (3, 4));
    }

    #[test]
    fn resamples_at_covers_the_policy_table() {
        let resample = SamplingPolicy::ResampleEachEpoch;
        let frozen = SamplingPolicy::FrozenNegatives;
        let periodic = SamplingPolicy::PeriodicRefresh { period: 2 };
        for epoch in 1..=6 {
            assert!(resample.resamples_at(epoch));
            assert_eq!(frozen.resamples_at(epoch), epoch == 1);
            assert_eq!(periodic.resamples_at(epoch), epoch % 2 == 1);
        }
        // period 0 clamps to 1.
        assert!(SamplingPolicy::PeriodicRefresh { period: 0 }.resamples_at(5));
    }

    #[test]
    fn uniform_plans_schedule_to_plan_order_single_runs() {
        let data = small_data();
        let sampler = InstanceSampler::new(3, 3, TargetSelection::Sequential);
        let mut planner = EpochPlanner::new(sampler, SamplingPolicy::ResampleEachEpoch, 10);
        let mut rng = StdRng::seed_from_u64(2);
        let (plan, schedule) = planner.plan_for_epoch(&data, 1, &mut rng);
        assert_eq!(
            schedule.n_batches(),
            plan.len().div_ceil(10),
            "chunks(batch_size) cut"
        );
        let mut seen = 0;
        for batch in schedule.iter() {
            assert!(batch.bounds.is_empty(), "uniform batch needs no bounds");
            for (pos, (&rec, &slot)) in batch.dispatch.iter().zip(batch.slot_of).enumerate() {
                assert_eq!(rec, seen + pos, "dispatch order is plan order");
                assert_eq!(slot, pos, "slot map is the identity");
            }
            seen += batch.len();
        }
        assert_eq!(seen, plan.len());
    }

    #[test]
    fn mixed_size_batches_bucket_into_uniform_runs() {
        // Hand-built plan with sizes 4 and 6 interleaved.
        let mut instances = Vec::new();
        for i in 0..10usize {
            let (k, n) = if i % 2 == 0 { (2, 2) } else { (3, 3) };
            instances.push(GroundSetInstance {
                user: i,
                positives: (0..k).map(|j| i * 10 + j).collect(),
                negatives: (0..n).map(|j| 100 + i * 10 + j).collect(),
            });
        }
        let plan = EpochPlan::from_instances(&instances);
        assert_eq!(plan.distinct_sizes(), 2);
        let schedule = BatchSchedule::build(&plan, 6);
        assert_eq!(schedule.n_batches(), 2);
        for batch in schedule.iter() {
            // Runs are uniform-m and split exactly at the bounds.
            let mut run_start = 0;
            let runs: Vec<(usize, usize)> = batch
                .bounds
                .iter()
                .copied()
                .chain([batch.len()])
                .map(|b| {
                    let r = (run_start, b);
                    run_start = b;
                    r
                })
                .collect();
            for &(lo, hi) in &runs {
                assert!(lo < hi);
                let m0 = plan.instance(batch.dispatch[lo]).m();
                for &idx in &batch.dispatch[lo..hi] {
                    assert_eq!(plan.instance(idx).m(), m0, "run not uniform");
                }
            }
            // slot_of inverts the dispatch permutation: walking plan order
            // through it visits every slot exactly once, and sizes ascend
            // across runs.
            let mut visited = vec![false; batch.len()];
            for &slot in batch.slot_of {
                assert!(!visited[slot], "slot visited twice");
                visited[slot] = true;
            }
            let sizes: Vec<usize> = runs
                .iter()
                .map(|&(lo, _)| plan.instance(batch.dispatch[lo]).m())
                .collect();
            assert!(sizes.windows(2).all(|w| w[0] < w[1]), "sizes ascend");
        }
        // Every record dispatched exactly once across the schedule.
        let mut all: Vec<usize> = schedule
            .iter()
            .flat_map(|b| b.dispatch.iter().copied())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..plan.len()).collect::<Vec<_>>());
    }

    #[test]
    fn slot_of_maps_plan_positions_to_their_dispatch_slots() {
        let mut instances = Vec::new();
        for i in 0..5usize {
            let (k, n) = if i < 2 { (3, 3) } else { (2, 2) };
            instances.push(GroundSetInstance {
                user: i,
                positives: (0..k).map(|j| i * 10 + j).collect(),
                negatives: (0..n).map(|j| 100 + i * 10 + j).collect(),
            });
        }
        let plan = EpochPlan::from_instances(&instances);
        let schedule = BatchSchedule::build(&plan, 5);
        let batch = schedule.batch(0);
        // Sizes ascend: the three (2,2) instances dispatch first.
        assert_eq!(batch.dispatch, &[2, 3, 4, 0, 1]);
        assert_eq!(batch.bounds, &[3]);
        // Plan positions 0..5 map to where they landed in dispatch order.
        assert_eq!(batch.slot_of, &[3, 4, 0, 1, 2]);
        for pos in 0..5 {
            assert_eq!(batch.dispatch[batch.slot_of[pos]], pos);
        }
    }

    #[test]
    fn instance_refs_resolve_the_arena_spans() {
        let mut plan = EpochPlan::new();
        plan.push_instance(3, &[10, 11], &[90, 91, 92]);
        plan.push_instance(5, &[20, 21, 22], &[80]);
        assert_eq!(plan.len(), 2);
        let a = plan.instance(0);
        assert_eq!((a.user, a.k(), a.n(), a.m()), (3, 2, 3, 5));
        assert_eq!(a.positives, &[10, 11]);
        assert_eq!(a.negatives, &[90, 91, 92]);
        let b = plan.instance(1);
        assert_eq!((b.user, b.k(), b.n()), (5, 3, 1));
        assert_eq!(b.positives, &[20, 21, 22]);
        assert_eq!(b.negatives, &[80]);
    }
}
