//! Implicit-feedback datasets for the `lkp` workspace.
//!
//! The paper evaluates on Amazon-Beauty, MovieLens-1M and Anime. Those raw
//! datasets are not redistributable here, so this crate provides:
//!
//! * [`dataset::Dataset`] — the in-memory representation the rest of the
//!   workspace consumes: per-user chronological interactions, item→category
//!   assignments, and the paper's 70/10/20 train/validation/test split.
//! * [`synthetic`] — a latent-factor + category-structured generator with
//!   three presets calibrated to the statistics in the paper's Table I
//!   (user/item/interaction/category counts, optionally scaled down). The
//!   generator preserves the properties LkP exploits: personalized relevance
//!   structure, category diversity structure, popularity skew, and sequential
//!   category coherence (which gives the S-vs-R instance-construction
//!   contrast its meaning).
//! * [`instances`] — ground-set samplers: each training instance is a user
//!   plus `k` observed items and `n` sampled unobserved items (Section
//!   III-B1), built either sequentially (S) or randomly (R).
//! * [`plan`] — the epoch planning layer: flat-arena [`plan::EpochPlan`]s
//!   produced under a [`plan::SamplingPolicy`] (resample / frozen /
//!   periodic negatives) and cut into size-bucketed
//!   [`plan::BatchSchedule`]s for uniform-size pool dispatches.
//! * [`delta`] — interaction deltas for incremental refresh:
//!   [`delta::DatasetDelta`] events merged by [`dataset::Dataset::merge_delta`]
//!   into the train split, and a [`delta::DeltaPlanner`] that freezes
//!   unchanged users' plan records while sampling changed users fresh.
//! * [`diverse`] — `(T⁺, T⁻)` set pairs for pre-training the diversity
//!   kernel (Eq. 3).
//! * [`stats`] — dataset statistics (Table I).

pub mod dataset;
pub mod delta;
pub mod diverse;
pub mod instances;
pub mod plan;
pub mod stats;
pub mod synthetic;

pub use dataset::{Dataset, NegativeMask, Split};
pub use delta::{DatasetDelta, DeltaPlanner, DeltaSummary, RefreshPlanStats};
pub use instances::{GroundSetInstance, InstanceRef, InstanceSampler, TargetSelection};
pub use plan::{
    BatchSchedule, EpochPlan, EpochPlanner, InstanceBlock, InstanceRecord, PlanStats,
    SamplingPolicy, ScheduledBatch,
};
pub use stats::DatasetStats;
pub use synthetic::{SyntheticConfig, SyntheticPreset};
