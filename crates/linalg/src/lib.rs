//! Dense and sparse linear algebra substrate for the `lkp` workspace.
//!
//! The k-DPP machinery in `lkp-dpp` needs a small but complete set of dense
//! routines over small symmetric matrices (the `(k+n) × (k+n)` ground-set
//! kernels of the paper) plus sparse matrix products for graph-based
//! recommenders (GCN/GCMC propagation over the user–item bipartite graph).
//!
//! Everything here is `f64`, row-major, and implemented from scratch:
//!
//! * [`Matrix`] — dense row-major matrix with the usual constructors and
//!   products.
//! * [`lu::Lu`] — LU factorization with partial pivoting (determinant, solve,
//!   inverse).
//! * [`cholesky::Cholesky`] — Cholesky factorization of SPD matrices
//!   (log-determinant, solve).
//! * [`eigen::SymmetricEigen`] — full eigendecomposition of real symmetric
//!   matrices via Householder tridiagonalization and implicit-shift QL.
//! * [`sparse::CsrMatrix`] — compressed sparse row matrix with sparse×dense
//!   products and the symmetric-normalized bipartite adjacency used by the
//!   GCN recommender.
//!
//! The routines favour clarity and numerical robustness over raw speed; the
//! dense kernels in this workspace are at most a few dozen rows, where the
//! textbook algorithms are both exact enough and fast enough.

pub mod cholesky;
pub mod eigen;
pub mod io;
pub mod lu;
pub mod matrix;
pub mod ops;
pub mod sparse;

pub use cholesky::Cholesky;
pub use eigen::{EigenScratch, SymmetricEigen};
pub use lu::Lu;
pub use matrix::Matrix;
pub use sparse::CsrMatrix;

/// Errors produced by factorizations and shape-checked operations.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// An operation requiring a square matrix received a rectangular one.
    NotSquare { rows: usize, cols: usize },
    /// Operand shapes are incompatible.
    DimensionMismatch {
        expected: (usize, usize),
        got: (usize, usize),
    },
    /// The matrix is singular to working precision (zero pivot in LU).
    Singular,
    /// Cholesky hit a non-positive pivot: the matrix is not positive definite.
    NotPositiveDefinite { pivot: f64, index: usize },
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence { iterations: usize },
    /// An index was out of bounds for the matrix dimensions.
    IndexOutOfBounds { index: usize, bound: usize },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square: {rows}x{cols}")
            }
            LinalgError::DimensionMismatch { expected, got } => write!(
                f,
                "dimension mismatch: expected {}x{}, got {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
            LinalgError::Singular => write!(f, "matrix is singular to working precision"),
            LinalgError::NotPositiveDefinite { pivot, index } => write!(
                f,
                "matrix is not positive definite (pivot {pivot:.3e} at index {index})"
            ),
            LinalgError::NoConvergence { iterations } => {
                write!(f, "iteration failed to converge after {iterations} sweeps")
            }
            LinalgError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds for dimension {bound}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Result alias for fallible linear algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;
