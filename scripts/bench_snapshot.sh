#!/usr/bin/env bash
# Records one benchmark trajectory point: runs the criterion suite with
# machine-readable output plus the hotpath probe, and writes everything to
# BENCH_<date>.json at the repo root (one JSON object per line).
#
# Usage: scripts/bench_snapshot.sh [outfile]
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_$(date +%Y-%m-%d).json}"
# Never clobber an earlier point of the trajectory: suffix same-day reruns.
if [ -z "${1:-}" ] && [ -e "$out" ]; then
  n=2
  while [ -e "${out%.json}.$n.json" ]; do n=$((n + 1)); done
  out="${out%.json}.$n.json"
fi
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "==> criterion suite (this takes a few minutes)" >&2
CRITERION_JSON="$tmp" cargo bench -p lkp-bench >&2

echo "==> hotpath probe" >&2
cargo run --release -p lkp-bench --bin hotpath_probe >> "$tmp"

echo "==> serving probe (direct + dual-path + sharded grids + cache-mode replay + frontend rows)" >&2
cargo run --release -p lkp-bench --bin serve_probe >> "$tmp"

echo "==> spectral-cache probe" >&2
cargo run --release -p lkp-bench --bin spectral_probe >> "$tmp"

echo "==> sampling-policy probe" >&2
cargo run --release -p lkp-bench --bin sampler_probe >> "$tmp"

{
  printf '{"snapshot_meta":{"date":"%s","host_cores":%s,"rustc":"%s"}}\n' \
    "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    "$(nproc 2>/dev/null || echo 1)" \
    "$(rustc --version | tr -d '"')"
  cat "$tmp"
} > "$out"

echo "wrote $out ($(wc -l < "$out") rows)" >&2
