//! Interaction deltas and the refresh-plan builder behind incremental
//! training.
//!
//! A production ranker is retrained from a *delta* — the interactions that
//! arrived since the last fit — not from scratch. This module provides the
//! data half of that loop:
//!
//! * [`DatasetDelta`] — an ordered batch of new `(user, item)` interaction
//!   events. Users may be new (ids past the base population extend it); the
//!   item catalog is fixed, because the serving artifact's kernel shape must
//!   survive the refresh (`Dataset::merge_delta` asserts this).
//! * [`Dataset::merge_delta`] — applies a delta to a base dataset,
//!   appending accepted events to the **train split only** (validation and
//!   test stay frozen, so refresh-vs-retrain metric comparisons are
//!   apples-to-apples) and reporting which users changed in a
//!   [`DeltaSummary`].
//! * [`DeltaPlanner`] — builds the refresh [`EpochPlan`]: records of
//!   **unchanged** users are copied from the base plan in base order (their
//!   ground sets are byte-identical, so a spectral-cache entry carried
//!   across the fit boundary can skip or warm-start their eigenstage), and
//!   only changed/new users are sampled fresh. The fresh tail is shuffled
//!   with the trainer's historical Fisher–Yates; the frozen head keeps its
//!   order.
//!
//! **Degenerate full-delta case** — when *every* user changed, the frozen
//! head is empty and [`DeltaPlanner::plan_refresh`] consumes the RNG
//! draw-for-draw as `EpochPlanner`'s full resample: per-user windows and
//! negatives in user order, then one shuffle over all records. This is the
//! pin that lets `Trainer::update` on a full delta reproduce `Trainer::fit`
//! bitwise (`crates/core/tests/incremental_equivalence.rs`).

use crate::dataset::{Dataset, NegativeMask, Split};
use crate::instances::{random_chunks_into, InstanceSampler};
use crate::plan::{push_window, BatchSchedule, EpochPlan};
use crate::TargetSelection;
use rand::Rng;

/// An ordered batch of new implicit-feedback events to fold into a dataset.
#[derive(Debug, Clone, Default)]
pub struct DatasetDelta {
    events: Vec<(usize, usize)>,
}

impl DatasetDelta {
    /// Creates an empty delta.
    pub fn new() -> Self {
        DatasetDelta::default()
    }

    /// Appends one `(user, item)` interaction event. Order is preserved —
    /// train splits stay chronological through a merge.
    pub fn push(&mut self, user: usize, item: usize) {
        self.events.push((user, item));
    }

    /// Appends one user's new interactions in order.
    pub fn push_user(&mut self, user: usize, items: &[usize]) {
        for &item in items {
            self.events.push((user, item));
        }
    }

    /// Number of events in the delta (before dedup against the base).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the delta holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The raw events in arrival order.
    pub fn events(&self) -> &[(usize, usize)] {
        &self.events
    }
}

/// What a [`Dataset::merge_delta`] actually changed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaSummary {
    /// Users whose train split changed or who are new — sorted, deduped.
    changed_users: Vec<usize>,
    /// Users appended past the base population.
    new_users: usize,
    /// Events accepted into the train split (duplicates of already-observed
    /// interactions are dropped; implicit feedback is binary).
    new_interactions: usize,
}

impl DeltaSummary {
    pub(crate) fn from_parts(
        changed_users: Vec<usize>,
        new_users: usize,
        new_interactions: usize,
    ) -> Self {
        debug_assert!(changed_users.windows(2).all(|w| w[0] < w[1]));
        DeltaSummary {
            changed_users,
            new_users,
            new_interactions,
        }
    }

    /// Whether the merge was a no-op: nothing accepted, nobody new. An
    /// empty-summary refresh must leave the model — and therefore the
    /// serving artifact — bitwise untouched.
    pub fn is_empty(&self) -> bool {
        self.new_interactions == 0 && self.new_users == 0
    }

    /// Whether `user`'s train split changed (or the user is new).
    pub fn is_changed(&self, user: usize) -> bool {
        self.changed_users.binary_search(&user).is_ok()
    }

    /// The changed/new users, ascending.
    pub fn changed_users(&self) -> &[usize] {
        &self.changed_users
    }

    /// Users appended past the base population.
    pub fn new_users(&self) -> usize {
        self.new_users
    }

    /// Events accepted into the train split.
    pub fn new_interactions(&self) -> usize {
        self.new_interactions
    }
}

/// How a refresh plan was assembled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefreshPlanStats {
    /// Records copied verbatim from the base plan (unchanged users).
    pub frozen: usize,
    /// Records freshly sampled for changed/new users.
    pub fresh: usize,
}

/// Builds refresh plans: frozen records for unchanged users, fresh samples
/// for changed ones. Owns the sampling scratch so repeated refreshes are
/// steady-state allocation-free.
#[derive(Debug)]
pub struct DeltaPlanner {
    sampler: InstanceSampler,
    batch_size: usize,
    mask: NegativeMask,
    windows: Vec<usize>,
}

impl DeltaPlanner {
    /// Creates a planner. `batch_size` fixes the optimizer-batch cut
    /// (clamped to ≥ 1), matching `EpochPlanner::new`.
    pub fn new(sampler: InstanceSampler, batch_size: usize) -> Self {
        DeltaPlanner {
            sampler,
            batch_size: batch_size.max(1),
            mask: NegativeMask::default(),
            // lint:allow(hotpath-alloc): one-time planner construction.
            windows: Vec::default(),
        }
    }

    /// Builds the refresh plan for `merged` (the post-merge dataset):
    ///
    /// 1. every base record whose user is **unchanged** is copied in base
    ///    order — byte-identical ground sets, no RNG consumed;
    /// 2. every **changed/new** user is sampled fresh, in ascending user
    ///    order, exactly as a full resample samples them (same windows, same
    ///    negative draws);
    /// 3. the fresh tail alone is shuffled with the trainer's historical
    ///    Fisher–Yates.
    ///
    /// With every user changed this degenerates — draw for draw — to
    /// `EpochPlanner`'s full resample of `merged`, which is what pins
    /// `Trainer::update` on a full delta to `Trainer::fit` bitwise.
    pub fn plan_refresh<R: Rng + ?Sized>(
        &mut self,
        merged: &Dataset,
        base: &EpochPlan,
        summary: &DeltaSummary,
        rng: &mut R,
    ) -> (EpochPlan, BatchSchedule, RefreshPlanStats) {
        // lint:allow(hotpath-alloc): plan assembly runs once per refresh,
        // off the per-instance gradient path.
        let mut plan = EpochPlan::new();
        for idx in 0..base.len() {
            let inst = base.instance(idx);
            if summary.is_changed(inst.user) {
                continue;
            }
            plan.push_instance(inst.user, inst.positives, inst.negatives);
        }
        let frozen = plan.len();
        let (k, n) = (self.sampler.k, self.sampler.n);
        for &user in summary.changed_users() {
            let train = merged.user_items(user, Split::Train);
            if train.len() < k {
                continue;
            }
            match self.sampler.mode {
                TargetSelection::Sequential => {
                    for start in 0..=train.len() - k {
                        push_window(
                            &mut plan,
                            merged,
                            user,
                            &train[start..start + k],
                            n,
                            rng,
                            &mut self.mask,
                        );
                    }
                }
                TargetSelection::Random => {
                    // All of the user's chunks draw before any negative —
                    // the order the nested sampler consumes the RNG in.
                    random_chunks_into(train, k, rng, &mut self.windows);
                    for chunk in self.windows.chunks_exact(k) {
                        push_window(&mut plan, merged, user, chunk, n, rng, &mut self.mask);
                    }
                }
            }
        }
        let fresh = plan.len() - frozen;
        plan.shuffle_records_from(frozen, rng);
        let schedule = BatchSchedule::build(&plan, self.batch_size);
        (plan, schedule, RefreshPlanStats { frozen, fresh })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{EpochPlanner, SamplingPolicy};
    use crate::synthetic::{generate, SyntheticConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_data() -> Dataset {
        generate(&SyntheticConfig {
            n_users: 25,
            n_items: 100,
            n_categories: 6,
            mean_interactions: 16.0,
            ..Default::default()
        })
    }

    #[test]
    fn merge_appends_to_train_only_and_reports_changes() {
        let data = small_data();
        let mut delta = DatasetDelta::new();
        // Two fresh items for user 3, one duplicate for user 5.
        let fresh: Vec<usize> = (0..data.n_items())
            .filter(|&i| !data.is_observed(3, i))
            .take(2)
            .collect();
        delta.push_user(3, &fresh);
        let dup = data.user_items(5, Split::Train)[0];
        delta.push(5, dup);
        let (merged, summary) = data.merge_delta(&delta);
        assert_eq!(summary.new_interactions(), 2);
        assert_eq!(summary.new_users(), 0);
        assert_eq!(summary.changed_users(), &[3]);
        assert!(summary.is_changed(3) && !summary.is_changed(5));
        // Train grew by exactly the accepted events, in arrival order.
        let base_train = data.user_items(3, Split::Train);
        let new_train = merged.user_items(3, Split::Train);
        assert_eq!(new_train.len(), base_train.len() + 2);
        assert_eq!(&new_train[..base_train.len()], base_train);
        assert_eq!(&new_train[base_train.len()..], &fresh[..]);
        // Validation/test frozen for everyone.
        for u in 0..data.n_users() {
            assert_eq!(
                data.user_items(u, Split::Validation),
                merged.user_items(u, Split::Validation)
            );
            assert_eq!(
                data.user_items(u, Split::Test),
                merged.user_items(u, Split::Test)
            );
        }
        // Observed set updated (negative sampling must avoid the new items).
        assert!(merged.is_observed(3, fresh[0]) && merged.is_observed(3, fresh[1]));
    }

    #[test]
    fn merge_extends_the_user_population() {
        let data = small_data();
        let mut delta = DatasetDelta::new();
        delta.push_user(data.n_users() + 1, &[0, 4, 9]);
        let (merged, summary) = data.merge_delta(&delta);
        assert_eq!(merged.n_users(), data.n_users() + 2);
        assert_eq!(summary.new_users(), 2);
        assert_eq!(summary.new_interactions(), 3);
        // The gap user exists but is empty; the delta user trains on its items.
        assert!(merged.user_items(data.n_users(), Split::Train).is_empty());
        assert_eq!(
            merged.user_items(data.n_users() + 1, Split::Train),
            &[0, 4, 9]
        );
        assert!(summary.is_changed(data.n_users()) && summary.is_changed(data.n_users() + 1));
    }

    #[test]
    fn empty_delta_merge_is_a_noop() {
        let data = small_data();
        let delta = DatasetDelta::new();
        let (merged, summary) = data.merge_delta(&delta);
        assert!(summary.is_empty());
        assert_eq!(merged.n_users(), data.n_users());
        assert_eq!(merged.n_interactions(), data.n_interactions());
    }

    #[test]
    #[should_panic(expected = "catalog")]
    fn merge_rejects_unknown_items() {
        let data = small_data();
        let mut delta = DatasetDelta::new();
        delta.push(0, data.n_items());
        let _ = data.merge_delta(&delta);
    }

    #[test]
    fn full_delta_refresh_plan_is_bitwise_a_full_resample() {
        // When every user changed, plan_refresh must consume the RNG
        // draw-for-draw as EpochPlanner's resample of the merged data — the
        // pin behind update ≡ fit on a full delta. Checked for both target
        // modes and a shape that exercises negative rejection.
        let data = small_data();
        for mode in [TargetSelection::Sequential, TargetSelection::Random] {
            let sampler = InstanceSampler::new(3, 3, mode);
            // Touch every user with one fresh interaction.
            let mut delta = DatasetDelta::new();
            for u in 0..data.n_users() {
                let fresh = (0..data.n_items())
                    .find(|&i| !data.is_observed(u, i))
                    .unwrap();
                delta.push(u, fresh);
            }
            let (merged, summary) = data.merge_delta(&delta);
            assert_eq!(summary.changed_users().len(), data.n_users());

            let mut planner = DeltaPlanner::new(sampler.clone(), 32);
            let mut rng_delta = StdRng::seed_from_u64(41);
            let base = EpochPlan::new();
            let (plan, _, stats) = planner.plan_refresh(&merged, &base, &summary, &mut rng_delta);
            assert_eq!(stats.frozen, 0);

            let mut full = EpochPlanner::new(sampler, SamplingPolicy::FrozenNegatives, 32);
            let mut rng_full = StdRng::seed_from_u64(41);
            let (want, _) = full.plan_for_epoch(&merged, 1, &mut rng_full);
            assert_eq!(
                &plan, want,
                "mode {mode:?}: refresh plan drifted from resample"
            );
            // Both RNGs sit at the same stream position afterwards.
            assert_eq!(
                rng_delta.random_range(0..u64::MAX),
                rng_full.random_range(0..u64::MAX)
            );
        }
    }

    #[test]
    fn partial_delta_freezes_unchanged_users_in_base_order() {
        let data = small_data();
        let sampler = InstanceSampler::new(3, 3, TargetSelection::Sequential);
        let mut base_planner =
            EpochPlanner::new(sampler.clone(), SamplingPolicy::FrozenNegatives, 16);
        let mut rng = StdRng::seed_from_u64(9);
        let base = base_planner.plan_for_epoch(&data, 1, &mut rng).0.clone();

        let mut delta = DatasetDelta::new();
        for u in [2usize, 7, 11] {
            let fresh = (0..data.n_items())
                .find(|&i| !data.is_observed(u, i))
                .unwrap();
            delta.push(u, fresh);
        }
        let (merged, summary) = data.merge_delta(&delta);
        let mut planner = DeltaPlanner::new(sampler, 16);
        let mut rng = StdRng::seed_from_u64(9);
        let (plan, schedule, stats) = planner.plan_refresh(&merged, &base, &summary, &mut rng);

        // The frozen head is exactly the base plan's unchanged-user records,
        // in base order, byte-identical ground sets.
        let mut at = 0usize;
        for idx in 0..base.len() {
            let want = base.instance(idx);
            if summary.is_changed(want.user) {
                continue;
            }
            let got = plan.instance(at);
            assert_eq!(got.user, want.user);
            assert_eq!(got.positives, want.positives);
            assert_eq!(got.negatives, want.negatives);
            at += 1;
        }
        assert_eq!(at, stats.frozen);
        assert!(stats.fresh > 0, "changed users must be resampled");
        assert_eq!(plan.len(), stats.frozen + stats.fresh);
        // The fresh tail covers exactly the changed users.
        for idx in stats.frozen..plan.len() {
            assert!(summary.is_changed(plan.instance(idx).user));
        }
        // Schedule covers the whole plan.
        let dispatched: usize = schedule.iter().map(|b| b.len()).sum();
        assert_eq!(dispatched, plan.len());
    }
}
