//! Symmetric eigendecomposition.
//!
//! The k-DPP normalizer `e_k(λ)` and its gradient both need the full spectrum
//! of the `(k+n) × (k+n)` ground-set kernel (paper Eq. 6 and Eq. 12). We use
//! the classic two-stage approach: Householder reduction to tridiagonal form
//! (`tred2`) followed by the implicit-shift QL iteration (`tql2`), following
//! the well-studied EISPACK formulation. This is exact to round-off for the
//! small symmetric matrices this workspace produces, and has no dependencies.
//!
//! For matrices that *recur* with small perturbations (the spectral cache's
//! epoch-to-epoch revisits), [`SymmetricEigen::compute_warm`] seeds the
//! solver with a previous decomposition: rotating the new matrix into the
//! cached eigenbasis (`T = V₀ᵀ·A·V₀`) leaves a nearly diagonal matrix, which
//! threshold-cyclic Jacobi sweeps finish in a handful of rotations instead
//! of a full Householder + QL pass.

use crate::{LinalgError, Matrix, Result};

/// Eigendecomposition `A = V · diag(λ) · Vᵀ` of a real symmetric matrix.
#[derive(Debug, Clone, Default)]
pub struct SymmetricEigen {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors, stored as the *columns* of this matrix, in
    /// the same order as [`SymmetricEigen::values`].
    pub vectors: Matrix,
}

/// Maximum QL iterations per eigenvalue before giving up.
const MAX_ITER: usize = 64;

/// Maximum threshold-Jacobi sweeps in the warm-start path before falling
/// back to the cold Householder + QL solver. Quadratic convergence means a
/// genuinely warm seed finishes in 1–3 sweeps; more than this signals the
/// matrix drifted too far for the seed to help.
const MAX_WARM_SWEEPS: usize = 8;

/// Reusable scratch for [`SymmetricEigen::compute_into`] and
/// [`SymmetricEigen::compute_warm`]: the tridiagonal off-diagonal buffer and
/// the warm path's rotated-matrix buffers, kept across calls so a
/// steady-state decomposition performs no heap allocation.
#[derive(Debug, Clone, Default)]
pub struct EigenScratch {
    /// Off-diagonal workspace of the Householder/QL passes.
    e: Vec<f64>,
    /// Symmetrized copy of the input (warm path).
    sym: Matrix,
    /// Product `A·V₀` (warm path).
    av: Matrix,
    /// Rotated matrix `T = V₀ᵀ·A·V₀`, driven to diagonal by Jacobi sweeps
    /// (warm path).
    t: Matrix,
}

impl SymmetricEigen {
    /// Computes the full eigendecomposition of a symmetric matrix.
    ///
    /// Only symmetry to a loose tolerance is required; the strictly symmetric
    /// average `(A + Aᵀ)/2` is what actually gets decomposed, which absorbs
    /// round-off asymmetry from upstream kernel assembly.
    pub fn new(a: &Matrix) -> Result<Self> {
        let mut out = SymmetricEigen {
            // lint:allow(hotpath-alloc): one-time construction; steady-state
            // callers hold a `SymmetricEigen` and use `compute_into`.
            values: Vec::new(),
            vectors: Matrix::zeros(0, 0),
        };
        let mut scratch = EigenScratch::default();
        out.compute_into(a, &mut scratch)?;
        Ok(out)
    }

    /// Recomputes the decomposition of `a` in place, reusing this value's
    /// eigenvalue/eigenvector storage and the caller-held `scratch`.
    ///
    /// This is the hot-path entry point: after the first call at a given
    /// dimension, subsequent calls allocate nothing. On error `self` is
    /// **invalidated** ([`SymmetricEigen::invalidate`]): `values` and
    /// `vectors` are cleared so stale spectra can never be mistaken for the
    /// failed computation's result — [`SymmetricEigen::is_valid`] returns
    /// `false` and any consumer caching decompositions must treat it as a
    /// forced cold recompute.
    pub fn compute_into(&mut self, a: &Matrix, scratch: &mut EigenScratch) -> Result<()> {
        self.try_compute_into(a, scratch).inspect_err(|_| {
            self.invalidate();
        })
    }

    fn try_compute_into(&mut self, a: &Matrix, scratch: &mut EigenScratch) -> Result<()> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        self.vectors.copy_from(a);
        self.values.clear();
        self.values.resize(n, 0.0);
        if n == 0 {
            return Ok(());
        }
        self.vectors.symmetrize();
        scratch.e.clear();
        scratch.e.resize(n, 0.0);
        let v = &mut self.vectors;
        let d = &mut self.values[..];
        let e = &mut scratch.e[..];
        tred2(v, d, e);
        tql2(v, d, e)?;
        sort_ascending(v, d);
        Ok(())
    }

    /// Recomputes the decomposition of `a`, warm-started from `prev` — a
    /// decomposition of a nearby matrix (typically the same kernel one epoch
    /// earlier).
    ///
    /// Rotates `a` into the seed eigenbasis (`T = V₀ᵀ·A·V₀`, nearly diagonal
    /// when `a` is close to `prev`'s matrix) and finishes with
    /// threshold-cyclic Jacobi sweeps, accumulating the rotations into the
    /// seed basis. Converges quadratically from a warm seed; if the seed is
    /// unusable (wrong dimension, invalidated) or the sweeps fail to
    /// converge within [`MAX_WARM_SWEEPS`], falls back to the cold
    /// [`SymmetricEigen::compute_into`] path on the same inputs.
    ///
    /// Returns `Ok(true)` when the warm path produced the decomposition and
    /// `Ok(false)` when the cold fallback ran. On error `self` is
    /// invalidated, exactly as in `compute_into`.
    pub fn compute_warm(
        &mut self,
        a: &Matrix,
        prev: &SymmetricEigen,
        scratch: &mut EigenScratch,
    ) -> Result<bool> {
        if !a.is_square() {
            self.invalidate();
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        if !prev.is_valid() || prev.dim() != a.rows() {
            return self.compute_into(a, scratch).map(|()| false);
        }
        self.vectors.copy_from(&prev.vectors);
        if self.warm_core(a, scratch) {
            Ok(true)
        } else {
            self.compute_into(a, scratch).map(|()| false)
        }
    }

    /// [`SymmetricEigen::compute_warm`] seeded from `self`'s own current
    /// decomposition — the natural shape for a cache slot that re-solves its
    /// own matrix after a small perturbation.
    pub fn recompute_warm(&mut self, a: &Matrix, scratch: &mut EigenScratch) -> Result<bool> {
        if !a.is_square() {
            self.invalidate();
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        if !self.is_valid() || self.dim() != a.rows() {
            return self.compute_into(a, scratch).map(|()| false);
        }
        if self.warm_core(a, scratch) {
            Ok(true)
        } else {
            self.compute_into(a, scratch).map(|()| false)
        }
    }

    /// The warm-start kernel: assumes `self.vectors` holds an orthonormal
    /// seed basis for `a`'s dimension. Returns `true` on convergence with
    /// finite eigenvalues (decomposition complete), `false` when the caller
    /// must fall back to the cold path.
    fn warm_core(&mut self, a: &Matrix, scratch: &mut EigenScratch) -> bool {
        let n = a.rows();
        // T = V₀ᵀ·sym(A)·V₀ in reused scratch.
        scratch.sym.copy_from(a);
        scratch.sym.symmetrize();
        scratch
            .sym
            .matmul_into(&self.vectors, &mut scratch.av)
            .expect("square times square");
        let t = &mut scratch.t;
        t.reset(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += self.vectors[(k, i)] * scratch.av[(k, j)];
                }
                t[(i, j)] = acc;
            }
        }

        let eps = 2.0_f64.powi(-52);
        let mut converged = false;
        for _sweep in 0..MAX_WARM_SWEEPS {
            // Convergence scale: largest diagonal + largest off-diagonal
            // magnitude (NaN-resistant — f64::max ignores NaN operands, and
            // the final finite check below catches a NaN-only matrix).
            let mut diag_scale = 0.0_f64;
            let mut off_max = 0.0_f64;
            for i in 0..n {
                diag_scale = diag_scale.max(t[(i, i)].abs());
                for j in (i + 1)..n {
                    off_max = off_max.max(t[(i, j)].abs());
                }
            }
            let tst = diag_scale + off_max;
            if tst == 0.0 || off_max <= eps * tst {
                converged = true;
                break;
            }
            let thresh = eps * tst;
            let mut rotated = false;
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = t[(p, q)];
                    // NaN-hostile gate: a NaN off-diagonal compares false
                    // and is skipped (the finite check below rejects it).
                    if apq.abs() <= thresh || apq.is_nan() {
                        continue;
                    }
                    rotated = true;
                    // Classic Jacobi rotation annihilating T[p,q].
                    let theta = (t[(q, q)] - t[(p, p)]) / (2.0 * apq);
                    let tan = if theta >= 0.0 {
                        1.0 / (theta + (theta * theta + 1.0).sqrt())
                    } else {
                        1.0 / (theta - (theta * theta + 1.0).sqrt())
                    };
                    let c = 1.0 / (tan * tan + 1.0).sqrt();
                    let s = tan * c;
                    // T ← Jᵀ·T·J (columns then rows), V ← V·J.
                    for k in 0..n {
                        let tkp = t[(k, p)];
                        let tkq = t[(k, q)];
                        t[(k, p)] = c * tkp - s * tkq;
                        t[(k, q)] = s * tkp + c * tkq;
                    }
                    for k in 0..n {
                        let tpk = t[(p, k)];
                        let tqk = t[(q, k)];
                        t[(p, k)] = c * tpk - s * tqk;
                        t[(q, k)] = s * tpk + c * tqk;
                    }
                    t[(p, q)] = 0.0;
                    t[(q, p)] = 0.0;
                    for k in 0..n {
                        let vkp = self.vectors[(k, p)];
                        let vkq = self.vectors[(k, q)];
                        self.vectors[(k, p)] = c * vkp - s * vkq;
                        self.vectors[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
            if !rotated {
                converged = true;
                break;
            }
        }
        if !converged {
            return false;
        }
        // A NaN-poisoned matrix can sail through the NaN-ignoring max-based
        // convergence test; refuse to report success with non-finite values.
        if (0..n).any(|i| !t[(i, i)].is_finite()) {
            return false;
        }
        self.values.clear();
        self.values.extend((0..n).map(|i| t[(i, i)]));
        sort_ascending(&mut self.vectors, &mut self.values);
        true
    }

    /// Clears the decomposition so it can never be reused: `values` and
    /// `vectors` become empty and [`SymmetricEigen::is_valid`] returns
    /// `false`. Called automatically on every `compute_*` error path;
    /// consumers that cache decompositions can also call it to retire an
    /// entry explicitly.
    pub fn invalidate(&mut self) {
        self.values.clear();
        self.vectors.reset(0, 0);
    }

    /// Whether this value holds a usable decomposition: non-empty, with an
    /// eigenvector matrix matching the eigenvalue count. A decomposition of
    /// a `0 × 0` matrix is indistinguishable from an invalidated one and
    /// reports `false` — cache consumers treat both as "recompute", which is
    /// free at dimension zero.
    pub fn is_valid(&self) -> bool {
        !self.values.is_empty() && self.vectors.shape() == (self.values.len(), self.values.len())
    }

    /// Dimension of the decomposed matrix.
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// Reconstructs `V · diag(f(λ)) · Vᵀ` for an arbitrary spectral function.
    ///
    /// This is the workhorse for k-DPP gradients, where
    /// `∇_L log e_k(λ) = V · diag(e_{k-1}(λ₋ᵢ)/e_k(λ)) · Vᵀ`.
    pub fn reconstruct_with(&self, f: impl Fn(usize, f64) -> f64) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.reconstruct_with_into(f, &mut out);
        out
    }

    /// [`SymmetricEigen::reconstruct_with`] writing into `out` (buffer
    /// reused). The accumulation is a sequence of branch-free rank-1 axpy
    /// updates over rows, which auto-vectorizes.
    pub fn reconstruct_with_into(&self, f: impl Fn(usize, f64) -> f64, out: &mut Matrix) {
        let n = self.dim();
        out.reset(n, n);
        for (idx, &lambda) in self.values.iter().enumerate() {
            let w = f(idx, lambda);
            if w == 0.0 {
                continue;
            }
            // out += w * v_idx v_idxᵀ, with v_idx the idx-th column of `vectors`.
            for r in 0..n {
                let coeff = w * self.vectors[(r, idx)];
                let row = out.row_mut(r);
                for (c, slot) in row.iter_mut().enumerate() {
                    *slot += coeff * self.vectors[(c, idx)];
                }
            }
        }
    }

    /// Reconstructs the original matrix (up to round-off).
    pub fn reconstruct(&self) -> Matrix {
        self.reconstruct_with(|_, lambda| lambda)
    }

    /// Eigenvalues clamped below at zero — the PSD projection used for DPP
    /// kernels whose tiny negative eigenvalues are numerical noise.
    pub fn clamped_nonnegative_values(&self) -> Vec<f64> {
        // lint:allow(hotpath-alloc): owned-return convenience wrapper over
        // the `_into` variant used by the hot path.
        let mut out = Vec::new();
        self.clamped_nonnegative_values_into(&mut out);
        out
    }

    /// [`SymmetricEigen::clamped_nonnegative_values`] into a reused buffer.
    pub fn clamped_nonnegative_values_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.values.iter().map(|&l| l.max(0.0)));
    }
}

/// Solves a batch of symmetric eigenproblems back-to-back from one shared
/// [`EigenScratch`] allocation.
///
/// This is the uniform-size dispatch entry point: callers that bucket their
/// work by matrix dimension (e.g. the trainer's size-bucketed instance
/// batches) hand every problem of one dispatch to a single call, so the
/// solver's scratch is sized once and the tridiagonalization/QL inner loops
/// run consecutively over hot buffers instead of interleaving with unrelated
/// per-item work. Each failed decomposition leaves its output **invalidated**
/// (exactly as [`SymmetricEigen::compute_into`] does) without aborting the
/// rest of the batch; the return value counts the failures.
pub fn compute_batch<'a, I>(problems: I, scratch: &mut EigenScratch) -> usize
where
    I: IntoIterator<Item = (&'a Matrix, &'a mut SymmetricEigen)>,
{
    let mut failures = 0;
    for (matrix, out) in problems {
        if out.compute_into(matrix, scratch).is_err() {
            failures += 1;
        }
    }
    failures
}

/// Householder reduction of `v` (symmetric) to tridiagonal form.
///
/// On exit `d` holds the diagonal, `e[1..]` the sub-diagonal, and `v` the
/// accumulated orthogonal transformation. Ported from the public-domain
/// EISPACK/JAMA `tred2`.
fn tred2(v: &mut Matrix, d: &mut [f64], e: &mut [f64]) {
    let n = d.len();
    for j in 0..n {
        d[j] = v[(n - 1, j)];
    }

    for i in (1..n).rev() {
        // Scale to avoid under/overflow.
        let mut scale = 0.0;
        let mut h = 0.0;
        for item in d.iter().take(i) {
            scale += item.abs();
        }
        if scale == 0.0 {
            e[i] = d[i - 1];
            for j in 0..i {
                d[j] = v[(i - 1, j)];
                v[(i, j)] = 0.0;
                v[(j, i)] = 0.0;
            }
        } else {
            // Generate Householder vector.
            for item in d.iter_mut().take(i) {
                *item /= scale;
                h += *item * *item;
            }
            let mut f = d[i - 1];
            let mut g = h.sqrt();
            if f > 0.0 {
                g = -g;
            }
            e[i] = scale * g;
            h -= f * g;
            d[i - 1] = f - g;
            for item in e.iter_mut().take(i) {
                *item = 0.0;
            }

            // Apply similarity transformation to remaining columns.
            for j in 0..i {
                f = d[j];
                v[(j, i)] = f;
                g = e[j] + v[(j, j)] * f;
                for k in (j + 1)..i {
                    g += v[(k, j)] * d[k];
                    e[k] += v[(k, j)] * f;
                }
                e[j] = g;
            }
            f = 0.0;
            for j in 0..i {
                e[j] /= h;
                f += e[j] * d[j];
            }
            let hh = f / (h + h);
            for j in 0..i {
                e[j] -= hh * d[j];
            }
            for j in 0..i {
                f = d[j];
                g = e[j];
                for k in j..i {
                    let delta = f * e[k] + g * d[k];
                    v[(k, j)] -= delta;
                }
                d[j] = v[(i - 1, j)];
                v[(i, j)] = 0.0;
            }
        }
        d[i] = h;
    }

    // Accumulate transformations.
    for i in 0..(n - 1) {
        v[(n - 1, i)] = v[(i, i)];
        v[(i, i)] = 1.0;
        let h = d[i + 1];
        if h != 0.0 {
            for k in 0..=i {
                d[k] = v[(k, i + 1)] / h;
            }
            for j in 0..=i {
                let mut g = 0.0;
                for k in 0..=i {
                    g += v[(k, i + 1)] * v[(k, j)];
                }
                for k in 0..=i {
                    let delta = g * d[k];
                    v[(k, j)] -= delta;
                }
            }
        }
        for k in 0..=i {
            v[(k, i + 1)] = 0.0;
        }
    }
    for j in 0..n {
        d[j] = v[(n - 1, j)];
        v[(n - 1, j)] = 0.0;
    }
    v[(n - 1, n - 1)] = 1.0;
    e[0] = 0.0;
}

/// Implicit-shift QL iteration on the tridiagonal form produced by [`tred2`].
///
/// On exit `d` holds the eigenvalues and the columns of `v` the eigenvectors.
fn tql2(v: &mut Matrix, d: &mut [f64], e: &mut [f64]) -> Result<()> {
    let n = d.len();
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    let mut f = 0.0_f64;
    let mut tst1 = 0.0_f64;
    let eps = 2.0_f64.powi(-52);
    for l in 0..n {
        tst1 = tst1.max(d[l].abs() + e[l].abs());
        let mut m = l;
        while m < n {
            if e[m].abs() <= eps * tst1 {
                break;
            }
            m += 1;
        }
        if m == n {
            m = n - 1;
        }

        if m > l {
            let mut iter = 0;
            loop {
                iter += 1;
                if iter > MAX_ITER {
                    return Err(LinalgError::NoConvergence {
                        iterations: MAX_ITER,
                    });
                }
                // Compute implicit shift.
                let g = d[l];
                let mut p = (d[l + 1] - g) / (2.0 * e[l]);
                let mut r = p.hypot(1.0);
                if p < 0.0 {
                    r = -r;
                }
                d[l] = e[l] / (p + r);
                d[l + 1] = e[l] * (p + r);
                let dl1 = d[l + 1];
                let h = g - d[l];
                for item in d.iter_mut().take(n).skip(l + 2) {
                    *item -= h;
                }
                f += h;

                // Implicit QL transformation.
                p = d[m];
                let mut c = 1.0;
                let mut c2 = c;
                let mut c3 = c;
                let el1 = e[l + 1];
                let mut s = 0.0;
                let mut s2 = 0.0;
                for i in (l..m).rev() {
                    c3 = c2;
                    c2 = c;
                    s2 = s;
                    let g = c * e[i];
                    let h = c * p;
                    let r = p.hypot(e[i]);
                    e[i + 1] = s * r;
                    s = e[i] / r;
                    c = p / r;
                    p = c * d[i] - s * g;
                    d[i + 1] = h + s * (c * g + s * d[i]);

                    // Accumulate transformation in eigenvector matrix.
                    for k in 0..n {
                        let h = v[(k, i + 1)];
                        v[(k, i + 1)] = s * v[(k, i)] + c * h;
                        v[(k, i)] = c * v[(k, i)] - s * h;
                    }
                }
                p = -s * s2 * c3 * el1 * e[l] / dl1;
                e[l] = s * p;
                d[l] = c * p;

                if e[l].abs() <= eps * tst1 {
                    break;
                }
            }
        }
        d[l] += f;
        e[l] = 0.0;
    }
    Ok(())
}

/// Sorts eigenvalues ascending, permuting eigenvector columns to match.
fn sort_ascending(v: &mut Matrix, d: &mut [f64]) {
    let n = d.len();
    for i in 0..n.saturating_sub(1) {
        let mut k = i;
        let mut p = d[i];
        for (j, &dj) in d.iter().enumerate().take(n).skip(i + 1) {
            if dj < p {
                k = j;
                p = dj;
            }
        }
        if k != i {
            d.swap(i, k);
            for r in 0..n {
                let tmp = v[(r, i)];
                v[(r, i)] = v[(r, k)];
                v[(r, k)] = tmp;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let eig = SymmetricEigen::new(&a).unwrap();
        assert_close(eig.values[0], 1.0, 1e-12);
        assert_close(eig.values[1], 2.0, 1e-12);
        assert_close(eig.values[2], 3.0, 1e-12);
    }

    #[test]
    fn two_by_two_known_spectrum() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let eig = SymmetricEigen::new(&a).unwrap();
        assert_close(eig.values[0], 1.0, 1e-12);
        assert_close(eig.values[1], 3.0, 1e-12);
    }

    #[test]
    fn reconstruction_matches_original() {
        let a = Matrix::from_rows(&[
            &[4.0, 1.0, -0.5, 0.2],
            &[1.0, 3.0, 0.7, -0.1],
            &[-0.5, 0.7, 2.0, 0.3],
            &[0.2, -0.1, 0.3, 1.0],
        ]);
        let eig = SymmetricEigen::new(&a).unwrap();
        assert!(eig.reconstruct().max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_rows(&[&[2.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 2.0]]);
        let eig = SymmetricEigen::new(&a).unwrap();
        let vtv = eig.vectors.transpose().matmul(&eig.vectors).unwrap();
        assert!(vtv.max_abs_diff(&Matrix::identity(3)) < 1e-12);
    }

    #[test]
    fn trace_and_det_invariants() {
        let a = Matrix::from_rows(&[&[5.0, 2.0, 1.0], &[2.0, 4.0, 0.5], &[1.0, 0.5, 3.0]]);
        let eig = SymmetricEigen::new(&a).unwrap();
        let trace: f64 = eig.values.iter().sum();
        assert_close(trace, a.trace(), 1e-10);
        let det: f64 = eig.values.iter().product();
        assert_close(det, crate::lu::det(&a).unwrap(), 1e-9);
    }

    #[test]
    fn av_equals_lambda_v() {
        let a = Matrix::from_rows(&[&[1.0, 0.3, -0.2], &[0.3, 2.0, 0.4], &[-0.2, 0.4, 1.5]]);
        let eig = SymmetricEigen::new(&a).unwrap();
        for (i, &lambda) in eig.values.iter().enumerate() {
            let v: Vec<f64> = eig.vectors.col(i);
            let av = a.matvec(&v).unwrap();
            for (x, y) in av.iter().zip(&v) {
                assert_close(*x, lambda * y, 1e-10);
            }
        }
    }

    #[test]
    fn handles_repeated_eigenvalues() {
        let a = Matrix::identity(4);
        let eig = SymmetricEigen::new(&a).unwrap();
        for &l in &eig.values {
            assert_close(l, 1.0, 1e-12);
        }
        let vtv = eig.vectors.transpose().matmul(&eig.vectors).unwrap();
        assert!(vtv.max_abs_diff(&Matrix::identity(4)) < 1e-12);
    }

    #[test]
    fn one_by_one_and_empty() {
        let a = Matrix::from_rows(&[&[7.0]]);
        let eig = SymmetricEigen::new(&a).unwrap();
        assert_eq!(eig.values, vec![7.0]);
        let empty = SymmetricEigen::new(&Matrix::zeros(0, 0)).unwrap();
        assert!(empty.values.is_empty());
    }

    #[test]
    fn psd_gram_spectrum_is_nonnegative() {
        // VᵀV is PSD; clamped values should equal values up to round-off.
        let v = Matrix::from_fn(3, 6, |r, c| ((r * 7 + c * 3) % 5) as f64 - 2.0);
        let g = v.gram();
        let eig = SymmetricEigen::new(&g).unwrap();
        for &l in &eig.values {
            assert!(l > -1e-10, "PSD eigenvalue went negative: {l}");
        }
    }

    #[test]
    fn warm_start_matches_cold_on_perturbed_matrix() {
        let a = Matrix::from_rows(&[
            &[4.0, 1.0, -0.5, 0.2],
            &[1.0, 3.0, 0.7, -0.1],
            &[-0.5, 0.7, 2.0, 0.3],
            &[0.2, -0.1, 0.3, 1.0],
        ]);
        let seed = SymmetricEigen::new(&a).unwrap();
        // Perturb symmetrically by ~1e-4.
        let mut b = a.clone();
        for i in 0..4 {
            for j in 0..4 {
                b[(i, j)] += 1e-4 * (((i * 3 + j * 5) % 7) as f64 - 3.0);
            }
        }
        b.symmetrize();
        let mut scratch = EigenScratch::default();
        let mut cold = SymmetricEigen::default();
        cold.compute_into(&b, &mut scratch).unwrap();
        let mut warm = SymmetricEigen::default();
        let used_warm = warm.compute_warm(&b, &seed, &mut scratch).unwrap();
        assert!(used_warm, "close seed must take the warm path");
        for (w, c) in warm.values.iter().zip(&cold.values) {
            assert_close(*w, *c, 1e-12);
        }
        assert!(warm.reconstruct().max_abs_diff(&b) < 1e-12);
        let vtv = warm.vectors.transpose().matmul(&warm.vectors).unwrap();
        assert!(vtv.max_abs_diff(&Matrix::identity(4)) < 1e-12);
    }

    #[test]
    fn recompute_warm_is_self_seeding() {
        let a = Matrix::from_rows(&[&[2.0, 0.3], &[0.3, 1.0]]);
        let mut eig = SymmetricEigen::new(&a).unwrap();
        let mut b = a.clone();
        b[(0, 1)] += 1e-6;
        b[(1, 0)] += 1e-6;
        let mut scratch = EigenScratch::default();
        let used_warm = eig.recompute_warm(&b, &mut scratch).unwrap();
        assert!(used_warm);
        let cold = SymmetricEigen::new(&b).unwrap();
        for (w, c) in eig.values.iter().zip(&cold.values) {
            assert_close(*w, *c, 1e-12);
        }
    }

    #[test]
    fn warm_start_with_unusable_seed_falls_back_to_cold() {
        let b = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let mut scratch = EigenScratch::default();
        // Wrong-dimension seed.
        let seed = SymmetricEigen::new(&Matrix::identity(3)).unwrap();
        let mut out = SymmetricEigen::default();
        let used_warm = out.compute_warm(&b, &seed, &mut scratch).unwrap();
        assert!(!used_warm);
        let cold = SymmetricEigen::new(&b).unwrap();
        for (w, c) in out.values.iter().zip(&cold.values) {
            assert_eq!(w.to_bits(), c.to_bits(), "fallback must be the cold path");
        }
        // Invalidated seed.
        let mut bad_seed = SymmetricEigen::new(&b).unwrap();
        bad_seed.invalidate();
        assert!(!bad_seed.is_valid());
        let used_warm = out.compute_warm(&b, &bad_seed, &mut scratch).unwrap();
        assert!(!used_warm);
    }

    #[test]
    fn distant_seed_still_yields_a_correct_decomposition() {
        // A seed from a completely unrelated matrix: the warm path either
        // converges (Jacobi is globally convergent) or falls back — both
        // must produce the right spectrum.
        let seed = SymmetricEigen::new(&Matrix::from_rows(&[
            &[1.0, 0.9, 0.0],
            &[0.9, 1.0, 0.9],
            &[0.0, 0.9, 1.0],
        ]))
        .unwrap();
        let b = Matrix::from_rows(&[&[5.0, 2.0, 1.0], &[2.0, 4.0, 0.5], &[1.0, 0.5, 3.0]]);
        let mut scratch = EigenScratch::default();
        let mut out = SymmetricEigen::default();
        out.compute_warm(&b, &seed, &mut scratch).unwrap();
        let cold = SymmetricEigen::new(&b).unwrap();
        for (w, c) in out.values.iter().zip(&cold.values) {
            assert_close(*w, *c, 1e-10);
        }
        assert!(out.reconstruct().max_abs_diff(&b) < 1e-10);
    }

    #[test]
    fn failed_compute_invalidates_the_decomposition() {
        // A NaN entry defeats the QL convergence test deterministically:
        // compute_into must error *and* leave the value invalidated rather
        // than holding the previous (stale) spectrum.
        let good = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let mut eig = SymmetricEigen::new(&good).unwrap();
        assert!(eig.is_valid());
        // The NaN must sit on an off-diagonal: it poisons the QL shift
        // sequence, whose convergence test can then never pass.
        let poisoned = Matrix::from_rows(&[&[1.0, f64::NAN], &[f64::NAN, 1.0]]);
        let mut scratch = EigenScratch::default();
        let err = eig.compute_into(&poisoned, &mut scratch);
        assert!(matches!(err, Err(LinalgError::NoConvergence { .. })));
        assert!(!eig.is_valid(), "error must invalidate the decomposition");
        assert!(eig.values.is_empty());
        // Warm path on the poisoned matrix: same error, same invalidation.
        let seed = SymmetricEigen::new(&good).unwrap();
        let mut warm = SymmetricEigen::new(&good).unwrap();
        let err = warm.compute_warm(&poisoned, &seed, &mut scratch);
        assert!(err.is_err());
        assert!(!warm.is_valid());
        // The invalidated value recovers on the next successful compute.
        eig.compute_into(&good, &mut scratch).unwrap();
        assert!(eig.is_valid());
        assert_close(eig.values[0], 1.0, 1e-12);
    }

    #[test]
    fn batched_solve_is_bitwise_the_individual_solves() {
        let mats: Vec<Matrix> = (0..6)
            .map(|s| {
                let mut a = Matrix::from_fn(5, 5, |r, c| {
                    (((r * 3 + c * 7 + s * 11) % 13) as f64) * 0.25 - 1.0
                });
                a.symmetrize();
                a
            })
            .collect();
        let mut batched: Vec<SymmetricEigen> = (0..6).map(|_| SymmetricEigen::default()).collect();
        let mut scratch = EigenScratch::default();
        let failures = compute_batch(mats.iter().zip(batched.iter_mut()), &mut scratch);
        assert_eq!(failures, 0);
        for (a, out) in mats.iter().zip(&batched) {
            let mut solo = SymmetricEigen::default();
            solo.compute_into(a, &mut EigenScratch::default()).unwrap();
            assert_eq!(
                solo.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                out.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            assert!(solo.vectors.max_abs_diff(&out.vectors) == 0.0);
        }
    }

    #[test]
    fn batched_solve_isolates_failures() {
        let good = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let poisoned = Matrix::from_rows(&[&[1.0, f64::NAN], &[f64::NAN, 1.0]]);
        let mats = [good.clone(), poisoned, good.clone()];
        let mut outs: Vec<SymmetricEigen> = (0..3).map(|_| SymmetricEigen::default()).collect();
        let mut scratch = EigenScratch::default();
        let failures = compute_batch(mats.iter().zip(outs.iter_mut()), &mut scratch);
        assert_eq!(failures, 1);
        assert!(outs[0].is_valid());
        assert!(!outs[1].is_valid(), "failed slot must be invalidated");
        assert!(outs[2].is_valid(), "failure must not poison later solves");
        assert_close(outs[2].values[0], 1.0, 1e-12);
        assert_close(outs[2].values[1], 3.0, 1e-12);
    }

    #[test]
    fn reconstruct_with_inverse_gives_matrix_inverse() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let eig = SymmetricEigen::new(&a).unwrap();
        let inv = eig.reconstruct_with(|_, l| 1.0 / l);
        let expected = crate::lu::inverse(&a).unwrap();
        assert!(inv.max_abs_diff(&expected) < 1e-12);
    }
}
