//! Analytic gradients of k-DPP log-probabilities (paper Eq. 12–15).
//!
//! Everything is expressed as a gradient with respect to the *kernel entries*
//! `L_ij` first, then chained through the quality × diversity decomposition
//! `L_ij = q_i · K_ij · q_j` into either the quality scores `q` (paper
//! Eq. 14, for the default pre-learned `K`) or the diversity entries `K_ij`
//! (used by the E-type trainable kernel).
//!
//! The two building blocks are:
//!
//! * `∇_L log det(L_S) = scatter((L_S)⁻¹)` — the paper's
//!   `tr(L_S⁻¹ · dL_S/dΘ)` written as a matrix of partials.
//! * `∇_L log e_k(λ(L)) = U · diag(λ'_i) · Uᵀ` with
//!   `λ'_i = e_{k-1}(λ_{-i}) / e_k(λ)` — differentiating the normalizer
//!   through the eigendecomposition `L = U diag(λ) Uᵀ`, using
//!   `∂e_k/∂λ_i = e_{k-1}(λ_{-i})`.

use crate::{esp, DppError, KDpp, Result};
use lkp_linalg::Matrix;

/// `∇_L log det(L_S)`: the inverse of the principal submatrix scattered back
/// into an `m × m` matrix at the subset's coordinates.
pub fn grad_log_det_subset(l: &Matrix, subset: &[usize]) -> Result<Matrix> {
    let m = l.rows();
    for &i in subset {
        if i >= m {
            return Err(DppError::IndexOutOfBounds {
                index: i,
                ground_size: m,
            });
        }
    }
    let mut g = Matrix::zeros(m, m);
    if subset.is_empty() {
        return Ok(g);
    }
    let sub = l.principal_submatrix(subset)?;
    let inv = match lkp_linalg::Cholesky::new(&sub) {
        Ok(ch) => ch.inverse()?,
        Err(_) => lkp_linalg::lu::inverse(&sub)?,
    };
    for (a, &i) in subset.iter().enumerate() {
        for (b, &j) in subset.iter().enumerate() {
            g[(i, j)] = inv[(a, b)];
        }
    }
    Ok(g)
}

/// `∇_L log Z_k` where `Z_k = e_k(λ(L))` — the gradient of the k-DPP log
/// normalizer with respect to every kernel entry.
pub fn grad_log_normalizer(kdpp: &KDpp) -> Result<Matrix> {
    let k = kdpp.k();
    let lambda = kdpp.eigenvalues();
    if k == 0 {
        return Ok(Matrix::zeros(lambda.len(), lambda.len()));
    }
    let z = esp::elementary_symmetric(lambda, k);
    if z <= 0.0 {
        return Err(DppError::DegenerateKernel);
    }
    let loo = esp::leave_one_out(lambda, k - 1);
    Ok(kdpp.eigen().reconstruct_with(|i, _| loo[i] / z))
}

/// `∇_L log P_k(S) = ∇_L log det(L_S) − ∇_L log Z_k` — the full per-instance
/// kernel gradient of the paper's Eq. 12 for a single training subset.
pub fn grad_log_prob(kdpp: &KDpp, subset: &[usize]) -> Result<Matrix> {
    if subset.len() != kdpp.k() {
        return Err(DppError::WrongSubsetSize {
            expected: kdpp.k(),
            got: subset.len(),
        });
    }
    let mut g = grad_log_det_subset(kdpp.kernel().matrix(), subset)?;
    let gz = grad_log_normalizer(kdpp)?;
    g.add_scaled(-1.0, &gz)?;
    Ok(g)
}

/// Chains a kernel gradient `G = ∂Obj/∂L` through `L_ij = q_i K_ij q_j` into
/// the quality scores: `∂Obj/∂q_i = 2 Σ_j G_ij K_ij q_j` (G and K symmetric).
pub fn chain_to_quality(g: &Matrix, q: &[f64], k_matrix: &Matrix) -> Vec<f64> {
    let m = q.len();
    debug_assert_eq!(g.shape(), (m, m));
    debug_assert_eq!(k_matrix.shape(), (m, m));
    let mut dq = vec![0.0; m];
    for i in 0..m {
        let mut acc = 0.0;
        for j in 0..m {
            acc += g[(i, j)] * k_matrix[(i, j)] * q[j];
        }
        dq[i] = 2.0 * acc;
    }
    dq
}

/// Chains a kernel gradient `G = ∂Obj/∂L` through `L_ij = q_i K_ij q_j` into
/// the diversity kernel entries: `∂Obj/∂K_ij = G_ij · q_i · q_j`.
pub fn chain_to_diversity(g: &Matrix, q: &[f64]) -> Matrix {
    let m = q.len();
    debug_assert_eq!(g.shape(), (m, m));
    Matrix::from_fn(m, m, |i, j| g[(i, j)] * q[i] * q[j])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DppKernel;

    fn example_psd(n: usize) -> Matrix {
        let v = Matrix::from_fn(n, n, |r, c| (((r * 7 + c * 3) % 5) as f64) * 0.25 - 0.4);
        let mut g = v.gram();
        for i in 0..n {
            g[(i, i)] += 0.4;
        }
        g
    }

    /// Central finite difference of `f` at symmetric perturbations of L.
    ///
    /// L is kept symmetric by perturbing (i,j) and (j,i) together, matching
    /// how the analytic gradient is defined over symmetric matrices:
    /// dObj = Σ_ij G_ij dL_ij.
    fn fd_symmetric(l: &Matrix, f: impl Fn(&Matrix) -> f64) -> Matrix {
        let n = l.rows();
        let h = 1e-6;
        let mut g = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let mut plus = l.clone();
                let mut minus = l.clone();
                plus[(i, j)] += h;
                minus[(i, j)] -= h;
                if i != j {
                    plus[(j, i)] += h;
                    minus[(j, i)] -= h;
                }
                let d = (f(&plus) - f(&minus)) / (2.0 * h);
                if i == j {
                    g[(i, i)] = d;
                } else {
                    // d = G_ij + G_ji = 2 G_ij for symmetric G.
                    g[(i, j)] = d / 2.0;
                    g[(j, i)] = d / 2.0;
                }
            }
        }
        g
    }

    #[test]
    fn grad_log_det_matches_finite_difference() {
        let l = example_psd(5);
        let subset = vec![0, 2, 4];
        let analytic = grad_log_det_subset(&l, &subset).unwrap();
        let fd = fd_symmetric(&l, |m| {
            DppKernel::new(m.clone())
                .unwrap()
                .log_det_subset(&subset)
                .unwrap()
        });
        assert!(
            analytic.max_abs_diff(&fd) < 1e-5,
            "diff {}",
            analytic.max_abs_diff(&fd)
        );
    }

    #[test]
    fn grad_log_normalizer_matches_finite_difference() {
        let l = example_psd(5);
        let k = 3;
        let kdpp = KDpp::new(DppKernel::new(l.clone()).unwrap(), k).unwrap();
        let analytic = grad_log_normalizer(&kdpp).unwrap();
        let fd = fd_symmetric(&l, |m| {
            KDpp::new(DppKernel::new(m.clone()).unwrap(), k)
                .unwrap()
                .log_normalizer()
        });
        assert!(
            analytic.max_abs_diff(&fd) < 1e-5,
            "diff {}",
            analytic.max_abs_diff(&fd)
        );
    }

    #[test]
    fn grad_log_prob_matches_finite_difference() {
        let l = example_psd(6);
        let k = 3;
        let subset = vec![1, 3, 5];
        let kdpp = KDpp::new(DppKernel::new(l.clone()).unwrap(), k).unwrap();
        let analytic = grad_log_prob(&kdpp, &subset).unwrap();
        let fd = fd_symmetric(&l, |m| {
            KDpp::new(DppKernel::new(m.clone()).unwrap(), k)
                .unwrap()
                .log_prob(&subset)
                .unwrap()
        });
        assert!(
            analytic.max_abs_diff(&fd) < 1e-5,
            "diff {}",
            analytic.max_abs_diff(&fd)
        );
    }

    #[test]
    fn quality_chain_matches_finite_difference() {
        // End-to-end: d log P_k(S) / d q through L = Diag(q) K Diag(q).
        let k_matrix = example_psd(5);
        let q = vec![0.8, 1.3, 0.5, 2.0, 1.0];
        let k = 2;
        let subset = vec![1, 4];

        let log_prob = |q: &[f64]| {
            let kern = DppKernel::from_quality_diversity(q, &k_matrix).unwrap();
            KDpp::new(kern, k).unwrap().log_prob(&subset).unwrap()
        };

        let kern = DppKernel::from_quality_diversity(&q, &k_matrix).unwrap();
        let kdpp = KDpp::new(kern, k).unwrap();
        let g_l = grad_log_prob(&kdpp, &subset).unwrap();
        let dq = chain_to_quality(&g_l, &q, &k_matrix);

        let h = 1e-6;
        for i in 0..q.len() {
            let mut plus = q.clone();
            plus[i] += h;
            let mut minus = q.clone();
            minus[i] -= h;
            let fd = (log_prob(&plus) - log_prob(&minus)) / (2.0 * h);
            assert!(
                (fd - dq[i]).abs() < 1e-5,
                "i={i}: fd {fd} vs analytic {}",
                dq[i]
            );
        }
    }

    #[test]
    fn diversity_chain_matches_finite_difference() {
        let k_matrix = example_psd(4);
        let q = vec![1.1, 0.6, 1.7, 0.9];
        let k = 2;
        let subset = vec![0, 3];

        let log_prob = |km: &Matrix| {
            let kern = DppKernel::from_quality_diversity(&q, km).unwrap();
            KDpp::new(kern, k).unwrap().log_prob(&subset).unwrap()
        };

        let kern = DppKernel::from_quality_diversity(&q, &k_matrix).unwrap();
        let kdpp = KDpp::new(kern, k).unwrap();
        let g_l = grad_log_prob(&kdpp, &subset).unwrap();
        let dk = chain_to_diversity(&g_l, &q);

        // Symmetric perturbations of K, same convention as fd_symmetric.
        let h = 1e-6;
        for i in 0..4 {
            for j in i..4 {
                let mut plus = k_matrix.clone();
                let mut minus = k_matrix.clone();
                plus[(i, j)] += h;
                minus[(i, j)] -= h;
                if i != j {
                    plus[(j, i)] += h;
                    minus[(j, i)] -= h;
                }
                let fd = (log_prob(&plus) - log_prob(&minus)) / (2.0 * h);
                let analytic = if i == j {
                    dk[(i, i)]
                } else {
                    dk[(i, j)] + dk[(j, i)]
                };
                assert!(
                    (fd - analytic).abs() < 1e-5,
                    "({i},{j}): fd {fd} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn gradient_is_zero_sum_under_probability_constraint() {
        // Σ_S P_k(S) = 1 identically in L, so E_P[∇ log P] = 0:
        // Σ_S P_k(S) · ∇_L log P_k(S) must vanish.
        let l = example_psd(5);
        let k = 2;
        let kdpp = KDpp::new(DppKernel::new(l).unwrap(), k).unwrap();
        let mut acc = Matrix::zeros(5, 5);
        for (s, p) in kdpp.all_subset_probs().unwrap() {
            let g = grad_log_prob(&kdpp, &s).unwrap();
            acc.add_scaled(p, &g).unwrap();
        }
        assert!(
            acc.max_abs() < 1e-8,
            "score identity violated: {}",
            acc.max_abs()
        );
    }

    #[test]
    fn empty_subset_gradient_is_minus_normalizer_grad() {
        let l = example_psd(4);
        let kdpp = KDpp::new(DppKernel::new(l).unwrap(), 0).unwrap();
        let g = grad_log_prob(&kdpp, &[]).unwrap();
        assert!(g.max_abs() < 1e-12);
    }
}
