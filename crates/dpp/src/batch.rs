//! Batched per-dispatch eigen arena — uniform-size instance batches solve
//! their eigenproblems back-to-back.
//!
//! The per-instance pipeline in [`crate::workspace`] interleaves kernel
//! assembly, eigendecomposition, and the ESP/gradient tail for each instance
//! in turn. When a pool dispatch carries a *uniform-size* run of instances
//! (the shape the size-bucketed batch scheduler guarantees), the eigen stage
//! can instead run as one tight loop over pre-assembled matrices: a
//! [`DppBatchArena`] stages every instance's kernel inputs into per-slot
//! buffers, hands all of the dispatch's eigenproblems to
//! [`lkp_linalg::eigen::compute_batch`] with **one shared scratch
//! allocation**, and only then walks the gradient tails. Assembly, solve,
//! and finish are each pure functions of their instance's inputs, so the
//! phase-split pipeline is **bitwise identical** to the interleaved one —
//! it reorders work, not arithmetic.
//!
//! Slots (and the scratch) grow to the dispatch's steady-state shape on
//! first use and are reused for every subsequent batch, keeping the hot
//! path allocation-free; one arena lives in each pool worker's state.

use crate::workspace::SpectrumPath;
use lkp_linalg::{eigen, eigen::EigenScratch, Matrix, SymmetricEigen};

/// Lifecycle of one arena slot within a dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SlotState {
    /// Not yet staged this dispatch.
    #[default]
    Empty,
    /// Shape-invalid instance — excluded from the solve and finished as a
    /// skip, exactly as the inline path skips it.
    Skipped,
    /// Staged: `mat` holds the matrix the eigen stage must decompose. Not
    /// yet finishable — the slot's `eigen` may still hold a *previous*
    /// dispatch's decomposition.
    Staged,
    /// The solve pass ran on this slot ([`DppBatchArena::solve_all`]); its
    /// `eigen` now belongs to this dispatch (invalidated on failure).
    Solved,
}

/// Per-instance staging buffers for one batched dispatch.
///
/// `k_sub` is filled by the caller (objective layer) when gathering the
/// instance's diversity submatrix; everything else is written by
/// [`crate::DppWorkspace::stage_slot`] and consumed by
/// [`crate::DppWorkspace::finish_slot`].
#[derive(Debug, Clone, Default)]
pub struct BatchSlot {
    /// The instance's diversity submatrix `K_T` (`m × m`), staged by the
    /// caller before `stage_slot`.
    pub k_sub: Matrix,
    /// Quality vector `q = exp(clamp(ŷ))`.
    pub(crate) q: Vec<f64>,
    /// The eigenproblem input: the tailored kernel `L` (dense path) or the
    /// dual Gram `BᵀB` (dual path).
    pub(crate) mat: Matrix,
    /// Dual path only: `B = Diag(q)·V_T` (item-vector recovery).
    pub(crate) b: Matrix,
    /// The slot's decomposition, solved in the arena's batched pass.
    pub(crate) eigen: SymmetricEigen,
    /// Which spectral path `mat` belongs to.
    pub(crate) path: SpectrumPath,
    /// Target cardinality `k` of the staged instance.
    pub(crate) k: usize,
    /// Ground-set size `m` of the staged instance.
    pub(crate) m: usize,
    /// Dispatch lifecycle state.
    pub(crate) state: SlotState,
}

/// Reusable arena of [`BatchSlot`]s plus the one [`EigenScratch`] their
/// decompositions share.
#[derive(Debug, Default)]
pub struct DppBatchArena {
    slots: Vec<BatchSlot>,
    scratch: EigenScratch,
    len: usize,
}

impl DppBatchArena {
    /// Creates an empty arena (slots grow on first use).
    pub fn new() -> Self {
        DppBatchArena::default()
    }

    /// Opens a dispatch of `n` instances: ensures `n` slots exist and resets
    /// their lifecycle state (buffers are retained).
    pub fn begin(&mut self, n: usize) {
        if self.slots.len() < n {
            self.slots.resize_with(n, BatchSlot::default);
        }
        for slot in &mut self.slots[..n] {
            slot.state = SlotState::Empty;
        }
        self.len = n;
    }

    /// Instances in the open dispatch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the open dispatch is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Borrows the `i`-th slot of the open dispatch.
    pub fn slot_mut(&mut self, i: usize) -> &mut BatchSlot {
        debug_assert!(i < self.len, "slot {i} outside the open dispatch");
        &mut self.slots[i]
    }

    /// Borrows the `i`-th slot immutably.
    pub fn slot(&self, i: usize) -> &BatchSlot {
        debug_assert!(i < self.len);
        &self.slots[i]
    }

    /// Solves every staged slot's eigenproblem back-to-back through
    /// [`lkp_linalg::eigen::compute_batch`], sharing the arena's scratch,
    /// and advances those slots to [`SlotState::Solved`] — only solved slots
    /// are finishable, so a slot the solve pass never reached can never
    /// serve a stale decomposition. Failed decompositions leave their
    /// slot's eigen invalidated (the finish pass skips those instances);
    /// returns the failure count.
    pub fn solve_all(&mut self) -> usize {
        let scratch = &mut self.scratch;
        eigen::compute_batch(
            self.slots[..self.len].iter_mut().filter_map(|slot| {
                if slot.state == SlotState::Staged {
                    slot.state = SlotState::Solved;
                    Some((&slot.mat, &mut slot.eigen))
                } else {
                    None
                }
            }),
            scratch,
        )
    }
}
