//! Sequence helpers, mirroring `rand::seq`.

use crate::{Rng, RngCore};

/// Slice shuffling (Fisher–Yates).
pub trait SliceRandom {
    /// Shuffles the slice in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}
