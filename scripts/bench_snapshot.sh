#!/usr/bin/env bash
# Records one benchmark trajectory point: runs the criterion suite with
# machine-readable output plus the hotpath probe, and writes everything to
# BENCH_<date>.json at the repo root (one JSON object per line).
#
# Usage: scripts/bench_snapshot.sh [outfile]
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_$(date +%Y-%m-%d).json}"
# Never clobber an earlier point of the trajectory: suffix same-day reruns.
if [ -z "${1:-}" ] && [ -e "$out" ]; then
  n=2
  while [ -e "${out%.json}.$n.json" ]; do n=$((n + 1)); done
  out="${out%.json}.$n.json"
fi
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

cores="$(nproc 2>/dev/null || echo 1)"
if [ "$cores" -le 1 ]; then
  echo "WARNING: host_cores == 1 — parallel speedups (pool widths, shard" >&2
  echo "grids, refresh-vs-retrain ratios) will not show on this host; the" >&2
  echo "snapshot is still valid but compare it only against other 1-core" >&2
  echo "points of the trajectory." >&2
fi

echo "==> criterion suite (this takes a few minutes)" >&2
CRITERION_JSON="$tmp" cargo bench -p lkp-bench >&2

echo "==> hotpath probe" >&2
cargo run --release -p lkp-bench --bin hotpath_probe >> "$tmp"

echo "==> serving probe (direct + dual-path + sharded grids + cache-mode replay + frontend rows)" >&2
cargo run --release -p lkp-bench --bin serve_probe >> "$tmp"

echo "==> spectral-cache probe" >&2
cargo run --release -p lkp-bench --bin spectral_probe >> "$tmp"

echo "==> sampling-policy probe" >&2
cargo run --release -p lkp-bench --bin sampler_probe >> "$tmp"

echo "==> training-refresh probe (delta-fit vs full retrain)" >&2
cargo run --release -p lkp-bench --bin refresh_probe >> "$tmp"

{
  printf '{"snapshot_meta":{"date":"%s","host_cores":%s,"rustc":"%s"}}\n' \
    "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    "$cores" \
    "$(rustc --version | tr -d '"')"
  # Stamp host_cores into every row: criterion rows (and any probe that
  # predates the field) carry no core count of their own, which makes
  # cross-host trajectory comparison silently misleading.
  awk -v cores="$cores" '{
    if ($0 !~ /"host_cores":/) sub(/}[[:space:]]*$/, ",\"host_cores\":" cores "}")
    print
  }' "$tmp"
} > "$out"

echo "wrote $out ($(wc -l < "$out") rows)" >&2
