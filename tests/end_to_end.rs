//! Cross-crate integration tests: the full pipeline from synthetic data
//! through kernel pre-training, LkP optimization and evaluation.

use lkp::prelude::*;
use rand::SeedableRng;

fn dataset() -> Dataset {
    SyntheticConfig {
        n_users: 60,
        n_items: 140,
        n_categories: 10,
        mean_interactions: 20.0,
        seed: 99,
        ..Default::default()
    }
    .generate()
}

fn kernel(data: &Dataset) -> LowRankKernel {
    train_diversity_kernel(
        data,
        &DiversityKernelConfig {
            epochs: 5,
            pairs_per_epoch: 64,
            dim: 8,
            ..Default::default()
        },
    )
}

fn quick_config() -> TrainConfig {
    TrainConfig {
        epochs: 12,
        eval_every: 4,
        patience: 0,
        k: 4,
        n: 4,
        ..Default::default()
    }
}

#[test]
fn lkp_on_mf_learns_and_improves_over_untrained() {
    let data = dataset();
    let kernel = kernel(&data);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let mut model = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        16,
        AdamConfig::default(),
        &mut rng,
    );
    let before = lkp::eval::evaluate(&model, &data, &[10])
        .at(10)
        .unwrap()
        .ndcg;
    let mut objective = LkpObjective::new(LkpKind::NegativeAware, kernel);
    let report = Trainer::new(quick_config()).fit(&mut model, &mut objective, &data);
    let after = lkp::eval::evaluate(&model, &data, &[10])
        .at(10)
        .unwrap()
        .ndcg;
    assert!(after > before + 0.02, "NDCG@10 {before:.4} -> {after:.4}");
    assert!(report.history.iter().all(|e| e.mean_loss.is_finite()));
}

#[test]
fn lkp_on_gcn_learns() {
    let data = dataset();
    let kernel = kernel(&data);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut model = Gcn::new(
        data.n_users(),
        data.n_items(),
        &data.train_edges(),
        16,
        2,
        AdamConfig::default(),
        &mut rng,
    );
    let before = lkp::eval::evaluate(&model, &data, &[10])
        .at(10)
        .unwrap()
        .ndcg;
    let mut objective = LkpObjective::new(LkpKind::PositiveOnly, kernel);
    Trainer::new(quick_config()).fit(&mut model, &mut objective, &data);
    let after = lkp::eval::evaluate(&model, &data, &[10])
        .at(10)
        .unwrap()
        .ndcg;
    assert!(after > before, "GCN NDCG@10 {before:.4} -> {after:.4}");
}

#[test]
fn rbf_variant_trains_on_models_with_item_embeddings() {
    let data = dataset();
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let mut model = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        16,
        AdamConfig::default(),
        &mut rng,
    );
    let mut objective = LkpRbfObjective::new(LkpKind::PositiveOnly, 1.0);
    let report = Trainer::new(quick_config()).fit(&mut model, &mut objective, &data);
    assert!(report.history.last().unwrap().mean_loss.is_finite());
    let metrics = lkp::eval::evaluate(&model, &data, &[10]);
    assert!(metrics.at(10).unwrap().ndcg > 0.0);
}

#[test]
fn all_baselines_run_through_the_same_trainer() {
    let data = dataset();
    let cfg = TrainConfig {
        epochs: 4,
        eval_every: 0,
        patience: 0,
        ..quick_config()
    };
    macro_rules! run {
        ($obj:expr) => {{
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            let mut model = MatrixFactorization::new(
                data.n_users(),
                data.n_items(),
                8,
                AdamConfig::default(),
                &mut rng,
            );
            let report = Trainer::new(cfg.clone()).fit(&mut model, &mut $obj, &data);
            assert!(report.history.iter().all(|e| e.mean_loss.is_finite()));
        }};
    }
    run!(Bpr);
    run!(Bce);
    run!(SetRank);
    run!(S2SRank::default());
}

#[test]
fn trained_model_scores_positives_above_random_items_within_ground_sets() {
    // The set-level training signal must translate into item-level ordering.
    let data = dataset();
    let kernel = kernel(&data);
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let mut model = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        16,
        AdamConfig::default(),
        &mut rng,
    );
    let mut objective = LkpObjective::new(LkpKind::NegativeAware, kernel);
    Trainer::new(TrainConfig {
        epochs: 20,
        eval_every: 0,
        patience: 0,
        ..quick_config()
    })
    .fit(&mut model, &mut objective, &data);

    let mut sampler_rng = rand::rngs::StdRng::seed_from_u64(5);
    let sampler = InstanceSampler::new(4, 4, TargetSelection::Sequential);
    let mut wins = 0usize;
    let mut total = 0usize;
    for inst in sampler
        .epoch_instances(&data, &mut sampler_rng)
        .into_iter()
        .take(150)
    {
        let scores = model.score_items(inst.user, &inst.ground_set());
        let pos_mean: f64 = scores[..inst.k()].iter().sum::<f64>() / inst.k() as f64;
        let neg_mean: f64 = scores[inst.k()..].iter().sum::<f64>() / inst.n() as f64;
        if pos_mean > neg_mean {
            wins += 1;
        }
        total += 1;
    }
    assert!(
        wins as f64 > 0.9 * total as f64,
        "positives outrank negatives in only {wins}/{total} ground sets"
    );
}

#[test]
fn kdpp_probability_interpretation_holds_after_training() {
    // Fig. 4's claim as an integration test: after LkP training the target
    // subset's k-DPP probability dominates the all-negative subset's.
    let data = dataset();
    let kern = kernel(&data);
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let mut model = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        16,
        AdamConfig::default(),
        &mut rng,
    );
    let mut objective = LkpObjective::new(LkpKind::NegativeAware, kern.clone());
    Trainer::new(TrainConfig {
        epochs: 16,
        eval_every: 0,
        patience: 0,
        ..quick_config()
    })
    .fit(&mut model, &mut objective, &data);

    let mut sampler_rng = rand::rngs::StdRng::seed_from_u64(7);
    let sampler = InstanceSampler::new(4, 4, TargetSelection::Sequential);
    let mut probe = sampler.epoch_instances(&data, &mut sampler_rng);
    probe.truncate(40);
    let profile = lkp::core::probes::target_count_profile(&model, &kern, &probe);
    assert_eq!(profile.len(), 5);
    assert!(
        profile[4] > profile[0] * 3.0,
        "target bucket {:.4} vs all-negative bucket {:.4}",
        profile[4],
        profile[0]
    );
}

#[test]
fn train_snapshot_serve_pipeline_produces_diverse_lists() {
    // The full product path through the facade: pre-train the kernel, train
    // LkP, freeze the artifact, serve a batch on the runtime pool.
    let data = dataset();
    let kernel = kernel(&data);
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let mut model = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        16,
        AdamConfig::default(),
        &mut rng,
    );
    let mut objective = LkpObjective::new(LkpKind::NegativeAware, kernel);
    Trainer::new(TrainConfig {
        epochs: 6,
        eval_every: 0,
        patience: 0,
        k: 4,
        n: 4,
        threads: 2,
        ..Default::default()
    })
    .fit(&mut model, &mut objective, &data);

    let artifact = RankingArtifact::from_trained(&model, &objective);
    let mut ranker = Ranker::new(
        artifact,
        ServeConfig {
            threads: 2,
            ..Default::default()
        },
    );
    let requests: Vec<RankRequest> = (0..data.n_users())
        .map(|u| RankRequest::full_catalog(u, data.n_items(), 10))
        .collect();
    let responses = ranker.rank_batch(&requests);
    assert_eq!(responses.len(), data.n_users());
    let mut coverage_sum = 0usize;
    for resp in &responses {
        assert_eq!(resp.items.len(), 10, "user {} list short", resp.user);
        let unique: std::collections::BTreeSet<_> = resp.items.iter().collect();
        assert_eq!(unique.len(), 10, "user {} has duplicates", resp.user);
        coverage_sum += data.category_coverage(&resp.items);
    }
    // DPP-MAP lists should spread over categories on average (a pure
    // popularity ranker on this data hovers near 1–2).
    let mean_coverage = coverage_sum as f64 / responses.len() as f64;
    assert!(
        mean_coverage >= 2.5,
        "served lists are category-degenerate: mean coverage {mean_coverage:.2}"
    );
    // Determinism across repeat batches (warm cache).
    let again = ranker.rank_batch(&requests);
    for (a, b) in responses.iter().zip(&again) {
        assert_eq!(a.items, b.items);
    }
}

#[test]
fn evaluation_is_deterministic_given_model_and_data() {
    let data = dataset();
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let model = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        8,
        AdamConfig::default(),
        &mut rng,
    );
    let a = lkp::eval::evaluate(&model, &data, &[5, 10, 20]);
    let b = lkp::eval::evaluate_parallel(&model, &data, &[5, 10, 20], 3);
    for n in [5, 10, 20] {
        let (ma, mb) = (a.at(n).unwrap(), b.at(n).unwrap());
        assert!((ma.ndcg - mb.ndcg).abs() < 1e-12);
        assert!((ma.recall - mb.recall).abs() < 1e-12);
    }
}
