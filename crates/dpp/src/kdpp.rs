//! The k-DPP: a DPP conditioned on cardinality `k` (Kulesza & Taskar 2011).
//!
//! Given an L-ensemble kernel over a ground set of size `m`, the k-DPP
//! assigns to every size-k subset `S` the probability (paper Eq. 4):
//!
//! ```text
//! P_k(S) = det(L_S) / Σ_{|S'|=k} det(L_{S'}) = det(L_S) / e_k(λ(L))
//! ```
//!
//! The normalizer identity `Σ_{|S'|=k} det(L_{S'}) = e_k(λ)` (paper Eq. 6) is
//! what makes this tractable; it is verified against brute-force enumeration
//! in the tests below.

use crate::{esp, DppError, DppKernel, Result};
use lkp_linalg::eigen::SymmetricEigen;

/// A k-DPP over a finite ground set, with cached spectral data.
#[derive(Debug, Clone)]
pub struct KDpp {
    kernel: DppKernel,
    k: usize,
    eigen: SymmetricEigen,
    /// Eigenvalues clamped at zero (PSD round-off hygiene).
    lambda: Vec<f64>,
    /// `log e_k(λ)` — the log normalization constant.
    log_z: f64,
}

impl KDpp {
    /// Builds a k-DPP from a kernel and a cardinality.
    ///
    /// Fails if `k` exceeds the ground-set size or the kernel's numerical
    /// rank makes `Z_k` vanish (no size-k subset has positive volume).
    pub fn new(kernel: DppKernel, k: usize) -> Result<Self> {
        let m = kernel.size();
        if k > m {
            return Err(DppError::CardinalityTooLarge { k, ground_size: m });
        }
        let eigen = kernel.eigen()?;
        let lambda = eigen.clamped_nonnegative_values();
        let log_z = esp::log_elementary_symmetric(&lambda, k);
        if !log_z.is_finite() && k > 0 {
            return Err(DppError::DegenerateKernel);
        }
        Ok(KDpp {
            kernel,
            k,
            eigen,
            lambda,
            log_z,
        })
    }

    /// The fixed subset cardinality.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Ground-set size.
    pub fn ground_size(&self) -> usize {
        self.kernel.size()
    }

    /// Borrow the underlying kernel.
    pub fn kernel(&self) -> &DppKernel {
        &self.kernel
    }

    /// The cached eigendecomposition of the kernel.
    pub fn eigen(&self) -> &SymmetricEigen {
        &self.eigen
    }

    /// Clamped (non-negative) eigenvalues.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.lambda
    }

    /// Log normalization constant `log Z_k = log e_k(λ)`.
    pub fn log_normalizer(&self) -> f64 {
        self.log_z
    }

    /// `log P_k(S)` for a size-k subset (paper Eq. 4).
    pub fn log_prob(&self, subset: &[usize]) -> Result<f64> {
        if subset.len() != self.k {
            return Err(DppError::WrongSubsetSize {
                expected: self.k,
                got: subset.len(),
            });
        }
        Ok(self.kernel.log_det_subset(subset)? - self.log_z)
    }

    /// `P_k(S)` for a size-k subset.
    pub fn prob(&self, subset: &[usize]) -> Result<f64> {
        Ok(self.log_prob(subset)?.exp())
    }

    /// Probabilities of *all* size-k subsets, paired with the subsets, in
    /// lexicographic order. Brute force — only for small ground sets (probes,
    /// tests, and the paper's Fig. 4 analysis with `C(10,5) = 252`).
    pub fn all_subset_probs(&self) -> Result<Vec<(Vec<usize>, f64)>> {
        let subsets = crate::enumerate_subsets(self.ground_size(), self.k);
        let mut out = Vec::with_capacity(subsets.len());
        for s in subsets {
            let p = self.prob(&s)?;
            out.push((s, p));
        }
        Ok(out)
    }

    /// Marginal probability that item `i` appears in a k-DPP draw.
    ///
    /// Uses the spectral identity
    /// `P(i ∈ S) = Σ_j (v_j[i])² · λ_j · e_{k-1}(λ_{-j}) / e_k(λ)`,
    /// the k-DPP analogue of the standard DPP's marginal kernel.
    pub fn inclusion_marginal(&self, item: usize) -> Result<f64> {
        let m = self.ground_size();
        if item >= m {
            return Err(DppError::IndexOutOfBounds {
                index: item,
                ground_size: m,
            });
        }
        if self.k == 0 {
            return Ok(0.0);
        }
        let loo = esp::leave_one_out(&self.lambda, self.k - 1);
        let z = self.log_z.exp();
        let mut p = 0.0;
        for (j, (&lam, &lj)) in self.lambda.iter().zip(&loo).enumerate().take(m) {
            let v = self.eigen.vectors[(item, j)];
            p += v * v * lam * lj;
        }
        Ok((p / z).clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate_subsets;
    use lkp_linalg::Matrix;

    fn example_kernel(n: usize) -> DppKernel {
        let v = Matrix::from_fn(n, n, |r, c| (((r * 5 + c * 11) % 7) as f64) * 0.2 - 0.4);
        let mut g = v.gram();
        for i in 0..n {
            g[(i, i)] += 0.3;
        }
        DppKernel::new(g).unwrap()
    }

    #[test]
    fn normalizer_matches_subset_enumeration() {
        // Z_k = Σ_{|S|=k} det(L_S): the identity behind paper Eq. 6.
        let kern = example_kernel(5);
        for k in 1..=5 {
            let kdpp = KDpp::new(kern.clone(), k).unwrap();
            let brute: f64 = enumerate_subsets(5, k)
                .iter()
                .map(|s| kern.det_subset(s).unwrap())
                .sum();
            let z = kdpp.log_normalizer().exp();
            assert!(
                (z - brute).abs() < 1e-8 * brute.max(1.0),
                "k={k}: {z} vs {brute}"
            );
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let kern = example_kernel(6);
        for k in 1..=4 {
            let kdpp = KDpp::new(kern.clone(), k).unwrap();
            let total: f64 = kdpp
                .all_subset_probs()
                .unwrap()
                .iter()
                .map(|(_, p)| p)
                .sum();
            assert!((total - 1.0).abs() < 1e-8, "k={k}: total {total}");
        }
    }

    #[test]
    fn wrong_subset_size_rejected() {
        let kdpp = KDpp::new(example_kernel(4), 2).unwrap();
        assert!(matches!(
            kdpp.log_prob(&[0, 1, 2]),
            Err(DppError::WrongSubsetSize {
                expected: 2,
                got: 3
            })
        ));
    }

    #[test]
    fn cardinality_too_large_rejected() {
        assert!(matches!(
            KDpp::new(example_kernel(3), 4),
            Err(DppError::CardinalityTooLarge {
                k: 4,
                ground_size: 3
            })
        ));
    }

    #[test]
    fn degenerate_kernel_rejected() {
        let zero = DppKernel::new(Matrix::zeros(3, 3)).unwrap();
        assert!(matches!(
            KDpp::new(zero, 2),
            Err(DppError::DegenerateKernel)
        ));
    }

    #[test]
    fn higher_quality_subsets_get_higher_probability() {
        // Diagonal kernel: P_k(S) ∝ Π_{i∈S} L_ii, so the top-k diagonal
        // entries form the argmax subset.
        let l = Matrix::from_diag(&[5.0, 1.0, 4.0, 0.2]);
        let kdpp = KDpp::new(DppKernel::new(l).unwrap(), 2).unwrap();
        let best = kdpp.prob(&[0, 2]).unwrap();
        for (s, p) in kdpp.all_subset_probs().unwrap() {
            assert!(p <= best + 1e-12, "subset {s:?} beats the top-quality pair");
        }
    }

    #[test]
    fn diversity_dominates_at_equal_quality() {
        // Two similar items (0,1) and one dissimilar item (2), equal quality:
        // the diverse pair must outrank the redundant pair.
        let k = Matrix::from_rows(&[&[1.0, 0.9, 0.0], &[0.9, 1.0, 0.0], &[0.0, 0.0, 1.0]]);
        let kern = DppKernel::from_quality_diversity(&[1.0, 1.0, 1.0], &k).unwrap();
        let kdpp = KDpp::new(kern, 2).unwrap();
        assert!(kdpp.prob(&[0, 2]).unwrap() > kdpp.prob(&[0, 1]).unwrap());
    }

    #[test]
    fn inclusion_marginals_sum_to_k() {
        let kern = example_kernel(5);
        for k in 1..=4 {
            let kdpp = KDpp::new(kern.clone(), k).unwrap();
            let total: f64 = (0..5).map(|i| kdpp.inclusion_marginal(i).unwrap()).sum();
            assert!(
                (total - k as f64).abs() < 1e-8,
                "k={k}: marginals sum {total}"
            );
        }
    }

    #[test]
    fn inclusion_marginal_matches_enumeration() {
        let kern = example_kernel(5);
        let kdpp = KDpp::new(kern, 3).unwrap();
        for item in 0..5 {
            let brute: f64 = kdpp
                .all_subset_probs()
                .unwrap()
                .iter()
                .filter(|(s, _)| s.contains(&item))
                .map(|(_, p)| p)
                .sum();
            let fast = kdpp.inclusion_marginal(item).unwrap();
            assert!(
                (fast - brute).abs() < 1e-8,
                "item {item}: {fast} vs {brute}"
            );
        }
    }

    #[test]
    fn k_equals_ground_size_is_deterministic() {
        let kern = example_kernel(4);
        let kdpp = KDpp::new(kern, 4).unwrap();
        let p = kdpp.prob(&[0, 1, 2, 3]).unwrap();
        assert!((p - 1.0).abs() < 1e-9);
    }
}
