//! Batch-parallel vs serial trainer equivalence.
//!
//! The trainer computes instance gradients concurrently but accumulates
//! them serially in instance order, so for a fixed seed the training
//! trajectory must be **bitwise reproducible** at any thread count. These
//! tests pin both properties: exact reproducibility run-to-run, and
//! serial/parallel agreement on the smoke dataset (asserted at the ≤1e-9
//! acceptance tolerance, and in fact bit-for-bit).

use lkp_core::objective::{LkpKind, LkpObjective};
use lkp_core::{train_diversity_kernel, DiversityKernelConfig, TrainConfig, Trainer};
use lkp_data::{Dataset, SyntheticConfig, TargetSelection};
use lkp_models::MatrixFactorization;
use lkp_nn::AdamConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn smoke_data() -> Dataset {
    lkp_data::synthetic::generate(&SyntheticConfig {
        n_users: 40,
        n_items: 100,
        n_categories: 8,
        mean_interactions: 18.0,
        ..Default::default()
    })
}

fn model(data: &Dataset) -> MatrixFactorization {
    let mut rng = StdRng::seed_from_u64(1);
    MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        16,
        AdamConfig {
            lr: 0.02,
            ..Default::default()
        },
        &mut rng,
    )
}

fn config(threads: usize, epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 32,
        k: 4,
        n: 4,
        mode: TargetSelection::Sequential,
        eval_every: 0,
        patience: 0,
        train_threads: threads,
        seed: 99,
        ..Default::default()
    }
}

/// Trains for `epochs` and returns (per-epoch mean losses, final scores of
/// user 0 over the full catalog).
fn run(data: &Dataset, threads: usize, epochs: usize) -> (Vec<f64>, Vec<f64>) {
    let mut m = model(data);
    let kernel = train_diversity_kernel(
        data,
        &DiversityKernelConfig {
            epochs: 3,
            pairs_per_epoch: 48,
            dim: 8,
            ..Default::default()
        },
    );
    let mut obj = LkpObjective::new(LkpKind::NegativeAware, kernel);
    let trainer = Trainer::new(config(threads, epochs));
    let report = trainer.fit(&mut m, &mut obj, data);
    let losses = report.history.iter().map(|h| h.mean_loss).collect();
    let items: Vec<usize> = (0..data.n_items()).collect();
    use lkp_models::Recommender;
    (losses, m.score_items(0, &items))
}

#[test]
fn parallel_and_serial_trainers_agree_after_one_epoch() {
    let data = smoke_data();
    let (serial_losses, serial_scores) = run(&data, 1, 1);
    let (parallel_losses, parallel_scores) = run(&data, 4, 1);
    assert_eq!(serial_losses.len(), 1);
    // Acceptance tolerance ≤ 1e-9 on per-epoch mean loss…
    assert!(
        (serial_losses[0] - parallel_losses[0]).abs() <= 1e-9,
        "epoch mean loss diverged: serial {} vs parallel {}",
        serial_losses[0],
        parallel_losses[0]
    );
    // …and the implementation actually achieves bitwise equality, down to
    // every model parameter's effect on the scores.
    assert_eq!(serial_losses[0].to_bits(), parallel_losses[0].to_bits());
    for (a, b) in serial_scores.iter().zip(&parallel_scores) {
        assert_eq!(a.to_bits(), b.to_bits(), "model weights diverged");
    }
}

#[test]
fn losses_are_bitwise_reproducible_across_thread_counts() {
    let data = smoke_data();
    let epochs = 3;
    let (t1, _) = run(&data, 1, epochs);
    let (t2, _) = run(&data, 2, epochs);
    let (t4, _) = run(&data, 4, epochs);
    let (t7, _) = run(&data, 7, epochs); // uneven chunking
    for e in 0..epochs {
        assert_eq!(t1[e].to_bits(), t2[e].to_bits(), "epoch {e}: t1 vs t2");
        assert_eq!(t1[e].to_bits(), t4[e].to_bits(), "epoch {e}: t1 vs t4");
        assert_eq!(t1[e].to_bits(), t7[e].to_bits(), "epoch {e}: t1 vs t7");
    }
}

#[test]
fn rerun_with_same_seed_is_deterministic() {
    let data = smoke_data();
    let (a, scores_a) = run(&data, 4, 2);
    let (b, scores_b) = run(&data, 4, 2);
    assert_eq!(
        a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
    );
    assert_eq!(scores_a, scores_b);
}
