//! Greedy MAP inference: the Chen et al. fast incremental algorithm against
//! the naive determinant-recomputation greedy — the serving-time ablation
//! (LkP moves diversity into training; MAP diversifies at serving time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lkp_dpp::{map, DppKernel};
use lkp_linalg::Matrix;
use std::hint::black_box;

fn kernel(m: usize) -> DppKernel {
    // 24 × m factor: gram() = VᵀV is m × m with rank 24.
    let v = Matrix::from_fn(24, m, |r, c| (((r * 11 + c * 7) % 19) as f64) * 0.15 - 1.3);
    let mut g = v.gram();
    for i in 0..m {
        g[(i, i)] += 0.3;
    }
    DppKernel::new(g).unwrap()
}

fn bench_map(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_map");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    for &m in &[50usize, 100, 200] {
        let kern = kernel(m);
        group.bench_with_input(BenchmarkId::new("fast", m), &m, |b, _| {
            b.iter(|| map::greedy_map(black_box(&kern), black_box(10)).unwrap())
        });
    }
    // The serving-path entry point: same algorithm, scratch reused across
    // calls (what `lkp-serve` runs per request).
    for &m in &[50usize, 100, 200] {
        let kern = kernel(m);
        let mut ws = map::MapWorkspace::new();
        group.bench_with_input(BenchmarkId::new("fast_workspace", m), &m, |b, _| {
            b.iter(|| {
                map::greedy_map_with(black_box(kern.matrix()), black_box(10), &mut ws).unwrap();
                ws.log_det()
            })
        });
    }
    for &m in &[50usize, 100] {
        let kern = kernel(m);
        group.bench_with_input(BenchmarkId::new("naive", m), &m, |b, _| {
            b.iter(|| map::greedy_map_naive(black_box(&kern), black_box(10)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_map);
criterion_main!(benches);
