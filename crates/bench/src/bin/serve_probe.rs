//! Serving probe: batched top-N throughput and latency of the `lkp-serve`
//! path (snapshot → per-user tailored kernel → greedy MAP on the pool),
//! plus a sharded-vs-per-worker cache replay and the micro-batching
//! frontend.
//!
//! Prints six JSON objects (rows `serving`, `serving_dual_path`,
//! `serving_sharded`, `serving_cache_modes`, `serving_frontend`,
//! `serving_robustness`); `scripts/bench_snapshot.sh` appends them to the
//! `BENCH_<date>.json` trajectory snapshot. Flags:
//!
//! * `--batches N`  — timed batches per configuration (default 30)
//! * `--batch N`    — requests per batch (default 64)
//! * `--candidates N` — candidate-pool size per request (default 100)
//! * `--top N`      — list length (default 10)
//!
//! The cache-mode row asserts the PR-5 acceptance bars: on a multi-worker
//! replay of a skewed user distribution the sharded cache's hit rate is ≥
//! the per-worker backend's, and prewarmed traffic serves its first batch
//! with zero kernel-assembly misses.

use lkp_core::{train_diversity_kernel, DiversityKernelConfig};
use lkp_data::SyntheticConfig;
use lkp_models::MatrixFactorization;
use lkp_nn::AdamConfig;
use lkp_serve::{
    CacheMode, FrontendConfig, FrontendDriver, KernelForm, ManualClock, RankRequest, Ranker,
    RankingArtifact, ServeConfig, ServeFrontend, SubmitError,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

fn flag(name: &str, default: usize) -> usize {
    std::env::args()
        .skip_while(|a| a != name)
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let batches = flag("--batches", 30);
    let batch = flag("--batch", 64);
    let n_candidates = flag("--candidates", 100);
    let top_n = flag("--top", 10);

    let n_users = 500;
    let n_items = 2000;
    let data = lkp_data::synthetic::generate(&SyntheticConfig {
        n_users,
        n_items,
        n_categories: 16,
        mean_interactions: 20.0,
        ..Default::default()
    });
    let kernel = train_diversity_kernel(
        &data,
        &DiversityKernelConfig {
            epochs: 3,
            pairs_per_epoch: 64,
            dim: 12,
            ..Default::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(9);
    let model = MatrixFactorization::new(n_users, n_items, 32, AdamConfig::default(), &mut rng);

    // Per-user stable candidate pools (the cache-friendly shape).
    let pool_for = |user: usize| -> Vec<usize> {
        (0..n_candidates)
            .map(|j| (user * 37 + j * 101 + 13) % n_items)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect()
    };

    // Request stream: users round-robin, deterministic.
    let reqs: Vec<RankRequest> = (0..batch)
        .map(|i| RankRequest::new((i * 131) % n_users, pool_for((i * 131) % n_users), top_n))
        .collect();

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut results = Vec::new();
    for threads in [1usize, 4] {
        let artifact = RankingArtifact::snapshot(&model, &kernel);
        let mut ranker = Ranker::new(
            artifact,
            ServeConfig {
                threads,
                ..Default::default()
            },
        );
        let mut out = Vec::new();
        // Warm-up: populates per-worker caches and buffers.
        for _ in 0..3 {
            ranker.rank_batch_into(&reqs, &mut out);
        }
        let t = Instant::now();
        for _ in 0..batches {
            ranker.rank_batch_into(&reqs, &mut out);
        }
        let elapsed = t.elapsed().as_nanos() as f64;
        let total_requests = (batches * batch) as f64;
        let ns_per_request = elapsed / total_requests;
        let requests_per_sec = 1e9 / ns_per_request;
        let (hits, misses) = ranker.cache_stats();
        results.push((threads, ns_per_request, requests_per_sec, hits, misses));
    }

    let t1 = results[0].1;
    let t4 = results[1].1;
    println!(
        "{{\"probe\":\"serving\",\"batch\":{batch},\"candidates\":{n_candidates},\"top_n\":{top_n},\
\"ns_per_request_t1\":{:.0},\"ns_per_request_t4\":{:.0},\
\"requests_per_sec_t1\":{:.0},\"requests_per_sec_t4\":{:.0},\
\"thread_scaling\":{:.3},\"cache_hits\":{},\"cache_misses\":{},\"host_cores\":{cores}}}",
        t1,
        t4,
        results[0].2,
        results[1].2,
        t1 / t4,
        results[1].3,
        results[1].4,
    );

    // ---- Low-rank dual serving path: dense vs dual over a |C| × d grid ----
    // Cold numbers (cache disabled) isolate the per-request kernel work the
    // two forms actually do: the dense path pays `O(|C|²·d)` assembly +
    // `O(|C|·N²)` selection, the dual path `O(|C|·N·(d + N))` total. The
    // acceptance bar is ≥ 3× at |C| = 1600, top-10, d ≤ 32; the probe also
    // asserts the forms serve identical lists on this workload.
    let dual_top = 10usize;
    let dual_batch = 8usize;
    let dual_kernels: Vec<(usize, _)> = [8usize, 32]
        .iter()
        .map(|&dim| {
            (
                dim,
                train_diversity_kernel(
                    &data,
                    &DiversityKernelConfig {
                        epochs: 3,
                        pairs_per_epoch: 64,
                        dim,
                        ..Default::default()
                    },
                ),
            )
        })
        .collect();
    let mut grid = Vec::new();
    for (kdim, kernel_d) in &dual_kernels {
        for &c in &[100usize, 400, 1600] {
            let dual_pool = |user: usize| -> Vec<usize> {
                (0..c)
                    .map(|j| (user * 37 + j * 101 + 13) % n_items)
                    .collect::<std::collections::BTreeSet<_>>()
                    .into_iter()
                    .collect()
            };
            let dual_reqs: Vec<RankRequest> = (0..dual_batch)
                .map(|i| {
                    let u = (i * 61 + 3) % n_users;
                    RankRequest::new(u, dual_pool(u), dual_top)
                })
                .collect();
            let time_form = |form: KernelForm| {
                let mut ranker = Ranker::new(
                    RankingArtifact::snapshot(&model, kernel_d),
                    ServeConfig {
                        threads: 1,
                        kernel_cache_bytes: 0, // cold: every request pays full kernel work
                        kernel_form: form,
                        ..Default::default()
                    },
                );
                let mut out = Vec::new();
                ranker.rank_batch_into(&dual_reqs, &mut out); // warm buffers only
                let mut best = u128::MAX;
                for _ in 0..2 {
                    let t = Instant::now();
                    ranker.rank_batch_into(&dual_reqs, &mut out);
                    best = best.min(t.elapsed().as_nanos());
                }
                assert_eq!(ranker.dual_fallbacks(), 0, "no breakdowns on this workload");
                (best as f64 / dual_batch as f64, out)
            };
            let (dense_ns, dense_out) = time_form(KernelForm::Dense);
            let (dual_ns, dual_out) = time_form(KernelForm::LowRankDual { min_candidates: 0 });
            for (a, b) in dense_out.iter().zip(&dual_out) {
                assert_eq!(a.items, b.items, "dual changed a list (c={c} d={kdim})");
            }
            let speedup = dense_ns / dual_ns;
            if c == 1600 {
                assert!(
                    speedup >= 3.0,
                    "dual speedup {speedup:.2}x at |C|=1600 d={kdim} under the 3x bar"
                );
            }
            grid.push(format!(
                "{{\"candidates\":{c},\"kernel_dim\":{kdim},\
\"dense_ns_per_request\":{dense_ns:.0},\"dual_ns_per_request\":{dual_ns:.0},\
\"speedup\":{speedup:.2}}}"
            ));
        }
    }
    // Warm replay at |C| = 400, d = 32, default byte budget: factor entries
    // are ~d/|C| the size of dense ones, so the same budget keeps the whole
    // 24-user working set resident where the dense form thrashes.
    let (warm_c, warm_users) = (400usize, 24usize);
    let warm_kernel = &dual_kernels.last().expect("d=32 kernel trained").1;
    let warm_reqs: Vec<RankRequest> = (0..warm_users)
        .map(|u| {
            let pool: Vec<usize> = (0..warm_c)
                .map(|j| (u * 37 + j * 101 + 13) % n_items)
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            RankRequest::new(u, pool, dual_top)
        })
        .collect();
    let mut warm_rows = Vec::new();
    for form in [
        KernelForm::Dense,
        KernelForm::LowRankDual { min_candidates: 0 },
    ] {
        let mut ranker = Ranker::new(
            RankingArtifact::snapshot(&model, warm_kernel),
            ServeConfig {
                threads: 1,
                kernel_form: form,
                ..Default::default()
            },
        );
        let mut out = Vec::new();
        ranker.rank_batch_into(&warm_reqs, &mut out); // round 1: populate
        let before = ranker.cache_stats_detailed();
        ranker.rank_batch_into(&warm_reqs, &mut out); // round 2: replay
        let after = ranker.cache_stats_detailed();
        let hits = after.aggregate.hits - before.aggregate.hits;
        let misses = after.aggregate.misses - before.aggregate.misses;
        let resident = after.aggregate.resident;
        let bytes_per_entry = after
            .aggregate
            .resident_bytes
            .checked_div(resident)
            .unwrap_or(0);
        warm_rows.push((hits, misses, resident, bytes_per_entry));
    }
    let (dense_warm, dual_warm) = (&warm_rows[0], &warm_rows[1]);
    assert!(
        dual_warm.0 >= dense_warm.0 && dual_warm.2 >= dense_warm.2,
        "factor entries must not hit or fit worse than dense ones"
    );
    println!(
        "{{\"probe\":\"serving_dual_path\",\"top_n\":{dual_top},\"batch\":{dual_batch},\
\"grid\":[{}],\"warm_candidates\":{warm_c},\"warm_users\":{warm_users},\"warm_kernel_dim\":32,\
\"dense_warm_hits\":{},\"dense_warm_misses\":{},\"dense_resident\":{},\"dense_bytes_per_entry\":{},\
\"dual_warm_hits\":{},\"dual_warm_misses\":{},\"dual_resident\":{},\"dual_bytes_per_entry\":{}}}",
        grid.join(","),
        dense_warm.0,
        dense_warm.1,
        dense_warm.2,
        dense_warm.3,
        dual_warm.0,
        dual_warm.1,
        dual_warm.2,
        dual_warm.3,
    );

    // ---- Sharded artifact: per-shard greedy prefixes + exact merge ----
    // Cold dense grid at threads = 1 with the cache disabled, so the cell
    // isolates the algorithmic win: N per-shard tailored kernels cost
    // Σ O((|C|/N)²·d) assembly instead of one O(|C|²·d) block, and the
    // CELF merge ladder re-ranks the union with O(k·|C|) lazily-refreshed
    // cross-shard entries. Every cell must serve lists (and log-dets)
    // bitwise identical to the unsharded baseline; the acceptance bar is
    // ≥ 2× at |C| = 1600 with 4 shards.
    let shard_top = 10usize;
    let shard_users = 400usize;
    let shard_items = 8000usize; // |C| = 6400 needs a catalog wider than 2000
    let shard_data = lkp_data::synthetic::generate(&SyntheticConfig {
        n_users: shard_users,
        n_items: shard_items,
        n_categories: 16,
        mean_interactions: 20.0,
        ..Default::default()
    });
    let shard_kernel = train_diversity_kernel(
        &shard_data,
        &DiversityKernelConfig {
            epochs: 3,
            pairs_per_epoch: 64,
            dim: 12,
            ..Default::default()
        },
    );
    let mut shard_rng = StdRng::seed_from_u64(11);
    let shard_model = MatrixFactorization::new(
        shard_users,
        shard_items,
        32,
        AdamConfig::default(),
        &mut shard_rng,
    );
    let shard_pool = |user: usize, c: usize| -> Vec<usize> {
        (0..c)
            .map(|j| (user * 37 + j * 101 + 13) % shard_items)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect()
    };
    let mut shard_cells = Vec::new();
    let mut speedup_1600 = 0.0f64;
    for &c in &[400usize, 1600, 6400] {
        // The widest pools pay ~0.5 GFLOP of assembly per unsharded
        // request; two requests per batch keep the cell honest but short.
        let shard_batch = if c >= 6400 { 2usize } else { 4 };
        let shard_reqs: Vec<RankRequest> = (0..shard_batch)
            .map(|i| {
                let u = (i * 53 + 5) % shard_users;
                RankRequest::new(u, shard_pool(u, c), shard_top)
            })
            .collect();
        let mut baseline: Vec<lkp_serve::RankResponse> = Vec::new();
        let mut base_ns = 0.0f64;
        for &shards in &[1usize, 4, 8] {
            let mut ranker = Ranker::new(
                RankingArtifact::snapshot(&shard_model, &shard_kernel),
                ServeConfig {
                    threads: 1,
                    kernel_cache_bytes: 0, // cold: every request re-assembles
                    artifact_shards: shards,
                    ..Default::default()
                },
            );
            let mut out = Vec::new();
            ranker.rank_batch_into(&shard_reqs, &mut out); // warm buffers only
            let mut best = u128::MAX;
            for _ in 0..2 {
                let t = Instant::now();
                ranker.rank_batch_into(&shard_reqs, &mut out);
                best = best.min(t.elapsed().as_nanos());
            }
            assert_eq!(
                ranker.shard_fallbacks(),
                0,
                "no merge fallbacks on this workload (c={c} shards={shards})"
            );
            let ns = best as f64 / shard_batch as f64;
            if shards == 1 {
                baseline = out;
                base_ns = ns;
            } else {
                for (a, b) in baseline.iter().zip(&out) {
                    assert_eq!(
                        a.items, b.items,
                        "sharding changed a list (c={c} shards={shards})"
                    );
                    assert_eq!(a.log_det.to_bits(), b.log_det.to_bits());
                }
            }
            let speedup = base_ns / ns;
            if c == 1600 && shards == 4 {
                speedup_1600 = speedup;
                assert!(
                    speedup >= 2.0,
                    "sharded speedup {speedup:.2}x at |C|=1600, 4 shards under the 2x bar"
                );
            }
            shard_cells.push(format!(
                "{{\"candidates\":{c},\"shards\":{shards},\
\"ns_per_request\":{ns:.0},\"speedup\":{speedup:.2}}}"
            ));
        }
    }
    // Warm replay at |C| = 1600, default byte budget: one unsharded dense
    // entry is 8·(|C| + |C|²) ≈ 20.5 MB — nearly the whole 20 MiB budget,
    // so a three-user working set thrashes (every replay lookup lands on
    // an evicted user). Four-shard entries are quarter-sized (≈ 1.3 MB,
    // 5.1 MB per user): the same budget keeps all three users resident
    // and the replay round serves without any kernel assembly.
    let (warm_shard_c, warm_shard_users) = (1600usize, 3usize);
    let warm_shard_reqs: Vec<RankRequest> = (0..warm_shard_users)
        .map(|u| RankRequest::new(u, shard_pool(u, warm_shard_c), shard_top))
        .collect();
    let mut warm_shard_rows = Vec::new();
    for &shards in &[1usize, 4] {
        let mut ranker = Ranker::new(
            RankingArtifact::snapshot(&shard_model, &shard_kernel),
            ServeConfig {
                threads: 1,
                artifact_shards: shards,
                ..Default::default()
            },
        );
        let mut out = Vec::new();
        ranker.rank_batch_into(&warm_shard_reqs, &mut out); // round 1: populate
        let before = ranker.cache_stats_detailed();
        ranker.rank_batch_into(&warm_shard_reqs, &mut out); // round 2: replay
        let after = ranker.cache_stats_detailed();
        warm_shard_rows.push((
            after.aggregate.hits - before.aggregate.hits,
            after.aggregate.misses - before.aggregate.misses,
            after.aggregate.resident,
        ));
    }
    let (whole_warm, split_warm) = (&warm_shard_rows[0], &warm_shard_rows[1]);
    assert_eq!(
        split_warm.1, 0,
        "per-shard entries must fit the budget and replay hit-only"
    );
    assert!(
        whole_warm.1 > 0,
        "unsharded 1600-candidate dense entries must thrash the same budget"
    );
    println!(
        "{{\"probe\":\"serving_sharded\",\"top_n\":{shard_top},\"grid\":[{}],\
\"speedup_1600_shards4\":{speedup_1600:.2},\"warm_candidates\":{warm_shard_c},\
\"warm_users\":{warm_shard_users},\"warm_shards\":4,\
\"unsharded_warm_hits\":{},\"unsharded_warm_misses\":{},\"unsharded_resident\":{},\
\"sharded_warm_hits\":{},\"sharded_warm_misses\":{},\"sharded_resident\":{}}}",
        shard_cells.join(","),
        whole_warm.0,
        whole_warm.1,
        whole_warm.2,
        split_warm.0,
        split_warm.1,
        split_warm.2,
    );

    // ---- Cache-mode replay: skewed users at shuffled positions ----
    // ~80% of requests come from a 50-user hot set, the rest from the long
    // tail, and every round draws fresh positions — so a hot user lands on
    // different workers across rounds. That is exactly the shape that
    // defeats per-worker caches (one re-assembly per worker per user) and
    // that the sharded cross-worker cache amortizes process-wide.
    let threads = 4usize;
    let rounds = (batches / 2).max(4);
    let hot_users = 50usize;
    let mut seed = 0x243F_6A88_85A3_08D3u64;
    let mut next = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (seed >> 33) as usize
    };
    let replay: Vec<Vec<RankRequest>> = (0..rounds)
        .map(|_| {
            (0..batch)
                .map(|_| {
                    let r = next();
                    let user = if r % 5 < 4 {
                        (r / 5) % hot_users
                    } else {
                        hot_users + (r / 5) % (n_users - hot_users)
                    };
                    RankRequest::new(user, pool_for(user), top_n)
                })
                .collect()
        })
        .collect();

    let mut mode_rows = Vec::new();
    let mut last_round: Vec<Vec<lkp_serve::RankResponse>> = Vec::new();
    for cache_mode in [CacheMode::PerWorker, CacheMode::Sharded { shards: 8 }] {
        let mut ranker = Ranker::new(
            RankingArtifact::snapshot(&model, &kernel),
            ServeConfig {
                threads,
                cache_mode,
                ..Default::default()
            },
        );
        let mut out = Vec::new();
        let t = Instant::now();
        for round in &replay {
            ranker.rank_batch_into(round, &mut out);
        }
        let ns_per_request = t.elapsed().as_nanos() as f64 / (rounds * batch) as f64;
        last_round.push(out);
        let stats = ranker.cache_stats_detailed();
        mode_rows.push((ns_per_request, stats));
    }
    // The cache mode must never change a served list.
    for (a, b) in last_round[0].iter().zip(&last_round[1]) {
        assert_eq!(a.items, b.items, "cache mode changed a served list");
        assert_eq!(a.log_det.to_bits(), b.log_det.to_bits());
    }
    let (pw_ns, pw) = (&mode_rows[0].0, &mode_rows[0].1);
    let (sh_ns, sh) = (&mode_rows[1].0, &mode_rows[1].1);
    assert!(
        sh.hit_rate() >= pw.hit_rate(),
        "sharded hit rate {} fell below per-worker {}",
        sh.hit_rate(),
        pw.hit_rate()
    );
    println!(
        "{{\"probe\":\"serving_cache_modes\",\"threads\":{threads},\"rounds\":{rounds},\
\"batch\":{batch},\"candidates\":{n_candidates},\"hot_users\":{hot_users},\
\"per_worker_hit_rate\":{:.4},\"sharded_hit_rate\":{:.4},\
\"per_worker_ns_per_request\":{:.0},\"sharded_ns_per_request\":{:.0},\
\"per_worker_resident\":{},\"sharded_resident\":{},\"shards\":8}}",
        pw.hit_rate(),
        sh.hit_rate(),
        pw_ns,
        sh_ns,
        pw.aggregate.resident,
        sh.aggregate.resident,
    );

    // ---- Frontend: one-at-a-time submission, micro-batched cuts ----
    // Same stream as the direct-batch row, pushed through the bounded
    // queue (cuts by size; the manual clock keeps deadline checks out of
    // the timed loop). Overhead = frontend ns/request − direct ns/request
    // at the same width AND the same cache mode, so the difference
    // isolates the queue/ticket plumbing rather than the cache backend;
    // the two sides are timed in interleaved rounds so slow machine drift
    // (thermals, scheduling) cancels instead of landing on one side.
    let mut direct_ranker = Ranker::new(
        RankingArtifact::snapshot(&model, &kernel),
        ServeConfig {
            threads,
            cache_mode: CacheMode::Sharded { shards: 8 },
            ..Default::default()
        },
    );
    let mut direct_out = Vec::new();
    for _ in 0..3 {
        direct_ranker.rank_batch_into(&reqs, &mut direct_out);
    }
    let mut frontend = ServeFrontend::with_clock(
        Ranker::new(
            RankingArtifact::snapshot(&model, &kernel),
            ServeConfig {
                threads,
                cache_mode: CacheMode::Sharded { shards: 8 },
                ..Default::default()
            },
        ),
        FrontendConfig {
            max_batch: batch,
            max_wait: Duration::from_millis(2),
            ..Default::default()
        },
        Box::new(ManualClock::new()),
    );
    // Prewarm the stream's (user, pool) pairs: the first served batch must
    // pay zero kernel-assembly misses.
    let prewarm_pairs: Vec<(usize, Vec<usize>)> = reqs
        .iter()
        .map(|r| (r.user, r.candidates.clone()))
        .collect();
    let prewarmed = frontend.prewarm(&prewarm_pairs);
    let mut tickets = Vec::with_capacity(batch);
    for req in &reqs {
        tickets.push(frontend.submit(req.clone()));
    }
    frontend.flush();
    let mut served = 0usize;
    for ticket in tickets.drain(..) {
        served += frontend.try_take(ticket).is_some() as usize;
    }
    assert_eq!(served, batch, "every ticket redeems exactly once");
    let first_batch = frontend.ranker().cache_stats_detailed();
    assert_eq!(
        first_batch.aggregate.misses, 0,
        "prewarmed pairs must serve their first batch without assembly"
    );
    // The frontend side of each round is the full consumer cycle —
    // submit, cut, redeem — so the reported overhead includes ticket
    // redemption and the completed-response map stays flat. Each side
    // reports its *fastest* round: the per-request serve cost (tens of µs)
    // dwarfs the plumbing overhead (hundreds of ns), so sums would drown
    // the difference in scheduling/thermal noise, while the per-side
    // minimum over interleaved rounds is the interference-free estimate.
    let mut direct_best = u128::MAX;
    let mut frontend_best = u128::MAX;
    for _ in 0..batches {
        let t = Instant::now();
        direct_ranker.rank_batch_into(&reqs, &mut direct_out);
        direct_best = direct_best.min(t.elapsed().as_nanos());
        let t = Instant::now();
        for req in &reqs {
            tickets.push(frontend.submit(req.clone()));
        }
        frontend.flush();
        for ticket in tickets.drain(..) {
            std::hint::black_box(frontend.try_take(ticket));
        }
        frontend_best = frontend_best.min(t.elapsed().as_nanos());
    }
    let direct_ns = direct_best as f64 / batch as f64;
    let frontend_ns = frontend_best as f64 / batch as f64;
    assert_eq!(frontend.completed_len(), 0, "no unclaimed responses leak");
    let fstats = frontend.stats();
    println!(
        "{{\"probe\":\"serving_frontend\",\"threads\":{threads},\"max_batch\":{batch},\
\"ns_per_request_direct\":{:.0},\"ns_per_request_frontend\":{:.0},\
\"frontend_overhead_ns\":{:.0},\"batches_cut\":{},\"cuts_full\":{},\"cuts_flush\":{},\
\"prewarmed_pairs\":{prewarmed},\"prewarm_first_batch_misses\":{},\
\"prewarm_first_batch_hits\":{}}}",
        direct_ns,
        frontend_ns,
        frontend_ns - direct_ns,
        fstats.batches,
        fstats.cuts_full,
        fstats.cuts_flush,
        first_batch.aggregate.misses,
        first_batch.aggregate.hits,
    );

    // ---- Robustness: driven frontend, mixed-SLO load, mid-run swap ----
    // The same stream under the production shell: the pump thread owns the
    // cuts (wall clock), every request carries an SLO, submission runs
    // through bounded-queue admission (sheds are counted, not retried),
    // and the artifact is hot-swapped halfway through. The row records the
    // operational numbers an SRE would watch — shed rate, queue-wait
    // percentiles vs the SLO, the swap's commit pause — and asserts the
    // structural bars: every accepted ticket completes, and the prewarmed
    // caches (initial and staged) serve the whole run with zero assembly
    // misses, before and after the swap.
    let robust_rounds = (batches / 2).max(4);
    let slo = Duration::from_millis(50);
    let mut frontend = ServeFrontend::new(
        Ranker::new(
            RankingArtifact::snapshot(&model, &kernel),
            ServeConfig {
                threads,
                cache_mode: CacheMode::Sharded { shards: 8 },
                ..Default::default()
            },
        ),
        FrontendConfig {
            max_batch: batch,
            max_wait: Duration::from_millis(2),
            queue_capacity: batch * 4,
            ..Default::default()
        },
    );
    let warmed = frontend.prewarm(&prewarm_pairs);
    assert_eq!(warmed, prewarm_pairs.len(), "robustness plan fully warm");
    let driver = FrontendDriver::spawn(frontend);
    let client = driver.client();
    let mut swap_model_rng = StdRng::seed_from_u64(17);
    let swap_model = MatrixFactorization::new(
        n_users,
        n_items,
        32,
        AdamConfig::default(),
        &mut swap_model_rng,
    );
    let mut accepted = Vec::new();
    let mut swap_report = None;
    for round in 0..robust_rounds {
        if round == robust_rounds / 2 {
            // Staging (prewarm of the new generation) runs off the
            // frontend lock; only the commit pauses traffic.
            let report = client.swap_artifact(
                RankingArtifact::snapshot(&swap_model, &kernel),
                &prewarm_pairs,
            );
            assert_eq!(report.warmed, prewarm_pairs.len());
            swap_report = Some(report);
        }
        for req in &reqs {
            match client.submit(req.clone().with_slo(slo)) {
                Ok(ticket) => accepted.push(ticket),
                Err(SubmitError::QueueFull { .. }) => {} // counted in stats.shed
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
    }
    let mut completed = (0u64, 0u64); // (served, expired)
    for ticket in accepted.drain(..) {
        let resp = client
            .take_deadline(ticket, Duration::from_secs(60))
            .expect("every accepted ticket completes");
        match resp.outcome {
            lkp_serve::RankOutcome::Expired => completed.1 += 1,
            lkp_serve::RankOutcome::Served => completed.0 += 1,
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    let rstats = client.stats();
    drop(client);
    let mut frontend = driver.shutdown().expect("no surviving clients");
    assert_eq!(rstats.served, completed.0, "no ticket lost");
    assert_eq!(rstats.expired, completed.1);
    assert_eq!(rstats.panicked, 0);
    assert_eq!(rstats.failed, 0);
    let (robust_hits, robust_misses) = frontend.ranker().cache_stats();
    assert_eq!(
        robust_misses, 0,
        "prewarmed generations must serve the whole run without assembly"
    );
    let swap_report = swap_report.expect("swap committed mid-run");
    let submitted_total = (robust_rounds * batch) as u64;
    let shed_rate = rstats.shed as f64 / submitted_total as f64;
    println!(
        "{{\"probe\":\"serving_robustness\",\"threads\":{threads},\"rounds\":{robust_rounds},\
\"batch\":{batch},\"slo_ms\":{},\"submitted\":{},\"served\":{},\"shed\":{},\
\"shed_rate\":{:.4},\"expired\":{},\"queue_wait_p50_us\":{:.1},\"queue_wait_p95_us\":{:.1},\
\"queue_wait_p99_us\":{:.1},\"p99_within_slo\":{},\"swap_generation\":{},\
\"swap_commit_pause_us\":{:.1},\"swap_warmed\":{},\"swap_retired\":{},\
\"cache_hits\":{robust_hits},\"cache_misses\":{robust_misses},\"batches_cut\":{}}}",
        slo.as_millis(),
        submitted_total,
        rstats.served,
        rstats.shed,
        shed_rate,
        rstats.expired,
        rstats.latency.p50().as_nanos() as f64 / 1e3,
        rstats.latency.p95().as_nanos() as f64 / 1e3,
        rstats.latency.p99().as_nanos() as f64 / 1e3,
        rstats.latency.p99() <= slo,
        swap_report.generation,
        swap_report.commit_pause.as_nanos() as f64 / 1e3,
        swap_report.warmed,
        swap_report.retired,
        rstats.batches,
    );
}
