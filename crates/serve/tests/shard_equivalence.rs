//! The `sharded_serving_equivalence` gate: sharded serving (per-shard greedy
//! MAP prefixes + the lazy marginal-gain merge ladder) must produce lists
//! **bitwise identical** to unsharded serving — across shard counts, kernel
//! forms, pool widths, cold vs prewarmed caches, and frontend vs direct
//! batching — with zero merge fallbacks on well-conditioned kernels.
//!
//! Unlike the dense-vs-dual gate (which compares across a reassociated
//! recursion and therefore checks lists only), sharding *within* a form is
//! an exactness claim: every kernel entry, gain, and tie-break the merge
//! ladder evaluates is the same f64 the unsharded run evaluates, so
//! `log_det` must match to the bit and every assertion here uses
//! `assert_same_bits`.

use lkp_core::objective::{LkpKind, LkpObjective};
use lkp_core::{train_diversity_kernel, DiversityKernelConfig, TrainConfig, Trainer};
use lkp_data::{Dataset, SyntheticConfig};
use lkp_dpp::LowRankKernel;
use lkp_models::MatrixFactorization;
use lkp_nn::AdamConfig;
use lkp_serve::{
    CacheMode, FrontendConfig, KernelForm, ManualClock, RankOutcome, RankRequest, RankResponse,
    Ranker, RankingArtifact, ServeConfig, ServeFrontend, Ticket,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

fn data() -> Dataset {
    lkp_data::synthetic::generate(&SyntheticConfig {
        n_users: 24,
        n_items: 70,
        n_categories: 7,
        mean_interactions: 14.0,
        ..Default::default()
    })
}

fn trained(data: &Dataset) -> (MatrixFactorization, LowRankKernel) {
    let kernel = train_diversity_kernel(
        data,
        &DiversityKernelConfig {
            epochs: 3,
            pairs_per_epoch: 40,
            dim: 6,
            ..Default::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(5);
    let mut model = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        10,
        AdamConfig {
            lr: 0.02,
            ..Default::default()
        },
        &mut rng,
    );
    let mut obj = LkpObjective::new(LkpKind::NegativeAware, kernel.clone());
    let trainer = Trainer::new(TrainConfig {
        epochs: 2,
        eval_every: 0,
        patience: 0,
        k: 4,
        n: 4,
        threads: 2,
        ..Default::default()
    });
    trainer.fit(&mut model, &mut obj, data);
    (model, kernel)
}

/// One trained fixture for the whole file (training dominates test time and
/// every test serves from snapshots of the same artifact).
fn fixture() -> &'static (Dataset, MatrixFactorization, LowRankKernel) {
    static FIXTURE: OnceLock<(Dataset, MatrixFactorization, LowRankKernel)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let data = data();
        let (model, kernel) = trained(&data);
        (data, model, kernel)
    })
}

/// 20-candidate pools, `top_n` under the kernel rank (6) — the
/// well-conditioned regime where zero fallbacks are expected.
fn requests(data: &Dataset, top_n: usize) -> Vec<RankRequest> {
    (0..data.n_users())
        .map(|u| {
            let candidates: Vec<usize> = (0..20)
                .map(|j| (u * 31 + j * 17 + 7) % data.n_items())
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            RankRequest::new(u, candidates, top_n)
        })
        .collect()
}

fn config(threads: usize, shards: usize, form: KernelForm) -> ServeConfig {
    ServeConfig {
        threads,
        artifact_shards: shards,
        kernel_form: form,
        ..Default::default()
    }
}

/// Bitwise response check: user, items in order, and `log_det` to the bit.
fn assert_same_bits(got: &RankResponse, want: &RankResponse, context: &str) {
    assert_eq!(got.user, want.user, "{context}: user");
    assert_eq!(got.items, want.items, "{context}: items");
    assert_eq!(
        got.log_det.to_bits(),
        want.log_det.to_bits(),
        "{context}: log_det"
    );
}

const FORMS: [KernelForm; 2] = [
    KernelForm::Dense,
    KernelForm::LowRankDual { min_candidates: 0 },
];

/// Acceptance criterion (the named CI gate): sharded lists are bitwise
/// identical to unsharded ones across shards {1, 2, 4, 8} × Dense/dual ×
/// pool widths {1, 2, 4} × cold/prewarmed × frontend-vs-direct, with zero
/// shard fallbacks and zero dual fallbacks.
#[test]
fn sharded_vs_unsharded_equivalence_matrix() {
    let (data, model, kernel) = fixture();
    let reqs = requests(data, 5);
    let prewarm_pairs: Vec<(usize, Vec<usize>)> = reqs
        .iter()
        .map(|r| (r.user, r.candidates.clone()))
        .collect();

    for form in FORMS {
        // Unsharded reference of the same form, width 1, cold.
        let mut reference =
            Ranker::new(RankingArtifact::snapshot(model, kernel), config(1, 1, form));
        let want = reference.rank_batch(&reqs);
        assert!(want.iter().all(|r| r.outcome == RankOutcome::Served));

        for shards in [1usize, 2, 4, 8] {
            for threads in [1usize, 2, 4] {
                for prewarmed in [false, true] {
                    for frontend_path in [false, true] {
                        let context = format!(
                            "form {form:?} shards {shards} threads {threads} \
                             prewarmed {prewarmed} frontend {frontend_path}"
                        );
                        let ranker = Ranker::new(
                            RankingArtifact::snapshot(model, kernel),
                            config(threads, shards, form),
                        );
                        let got: Vec<RankResponse> = if frontend_path {
                            let mut frontend = ServeFrontend::with_clock(
                                ranker,
                                FrontendConfig {
                                    max_batch: 7,
                                    ..Default::default()
                                },
                                Box::new(ManualClock::new()),
                            );
                            if prewarmed {
                                assert_eq!(
                                    frontend.prewarm(&prewarm_pairs),
                                    reqs.len(),
                                    "{context}: prewarm"
                                );
                            }
                            let tickets: Vec<Ticket> =
                                reqs.iter().map(|r| frontend.submit(r.clone())).collect();
                            frontend.flush();
                            let got: Vec<RankResponse> = tickets
                                .iter()
                                .map(|t| {
                                    frontend
                                        .try_take(*t)
                                        .unwrap_or_else(|| panic!("{context}: unserved ticket"))
                                })
                                .collect();
                            if prewarmed {
                                let stats = frontend.ranker().cache_stats_detailed();
                                assert_eq!(
                                    stats.aggregate.misses, 0,
                                    "{context}: prewarmed misses"
                                );
                            }
                            assert_eq!(frontend.ranker().shard_fallbacks(), 0, "{context}");
                            assert_eq!(frontend.ranker().dual_fallbacks(), 0, "{context}");
                            got
                        } else {
                            let mut ranker = ranker;
                            if prewarmed {
                                assert_eq!(
                                    ranker.prewarm(&prewarm_pairs),
                                    reqs.len(),
                                    "{context}: prewarm"
                                );
                            }
                            let got = ranker.rank_batch(&reqs);
                            if prewarmed {
                                let stats = ranker.cache_stats_detailed();
                                assert_eq!(
                                    stats.aggregate.misses, 0,
                                    "{context}: prewarmed misses"
                                );
                            }
                            assert_eq!(ranker.shard_fallbacks(), 0, "{context}");
                            assert_eq!(ranker.dual_fallbacks(), 0, "{context}");
                            got
                        };
                        for (g, w) in got.iter().zip(&want) {
                            assert_same_bits(g, w, &context);
                            if prewarmed {
                                assert!(g.cache_hit, "{context}: all shard pieces warm");
                            }
                        }
                    }
                }
            }
        }
    }
}

/// The shared (cross-worker) cache backend composes `(user, shard)` keys
/// through its hash shards; serving stays bitwise identical and per-shard
/// entries aggregate in the detailed stats.
#[test]
fn sharded_artifact_over_shared_cache_backend() {
    let (data, model, kernel) = fixture();
    let reqs = requests(data, 5);
    for form in FORMS {
        let mut reference =
            Ranker::new(RankingArtifact::snapshot(model, kernel), config(1, 1, form));
        let want = reference.rank_batch(&reqs);
        for shards in [2usize, 8] {
            let context = format!("shared-cache form {form:?} shards {shards}");
            let mut ranker = Ranker::new(
                RankingArtifact::snapshot(model, kernel),
                ServeConfig {
                    cache_mode: CacheMode::Sharded { shards: 4 },
                    ..config(3, shards, form)
                },
            );
            let got = ranker.rank_batch(&reqs);
            for (g, w) in got.iter().zip(&want) {
                assert_same_bits(g, w, &context);
            }
            // Replay: every (user, shard) piece is now resident, so the
            // second pass is all hits.
            let (_, misses_before) = ranker.cache_stats();
            let replay = ranker.rank_batch(&reqs);
            let (_, misses_after) = ranker.cache_stats();
            assert_eq!(misses_after, misses_before, "{context}: replay misses");
            for (g, w) in replay.iter().zip(&want) {
                assert_same_bits(g, w, &context);
                assert!(g.cache_hit, "{context}: replay hit");
            }
            assert_eq!(ranker.shard_fallbacks(), 0, "{context}");
        }
    }
}

/// `rank_one` takes the same sharded phases on the caller thread; responses
/// are bitwise the batched path's.
#[test]
fn sharded_rank_one_matches_batched() {
    let (data, model, kernel) = fixture();
    let reqs = requests(data, 5);
    for form in FORMS {
        let mut batched = Ranker::new(RankingArtifact::snapshot(model, kernel), config(2, 4, form));
        let want = batched.rank_batch(&reqs);
        let mut one = Ranker::new(RankingArtifact::snapshot(model, kernel), config(2, 4, form));
        for (req, w) in reqs.iter().zip(&want) {
            let g = one.rank_one(req);
            assert_same_bits(&g, w, &format!("rank_one form {form:?}"));
        }
    }
}

/// Fault injection: a negative `dual_guard` trips solo-slot prefixes and
/// the merge ladder's guard alike, so every dual request re-serves on the
/// stock path (which itself breaks down and takes its dense fallback) —
/// bitwise identical to dense-mode serving, with both counters recording
/// every request.
#[test]
fn injected_breakdown_falls_back_bitwise_to_dense() {
    let (data, model, kernel) = fixture();
    let reqs = requests(data, 5);
    let mut dense = Ranker::new(
        RankingArtifact::snapshot(model, kernel),
        config(2, 1, KernelForm::Dense),
    );
    let want = dense.rank_batch(&reqs);
    let mut broken = Ranker::new(
        RankingArtifact::snapshot(model, kernel),
        ServeConfig {
            dual_guard: -1.0,
            ..config(2, 4, KernelForm::LowRankDual { min_candidates: 0 })
        },
    );
    let got = broken.rank_batch(&reqs);
    for (g, w) in got.iter().zip(&want) {
        assert_same_bits(g, w, "injected breakdown");
    }
    assert_eq!(
        broken.shard_fallbacks(),
        reqs.len() as u64,
        "every request must abandon the sharded path"
    );
    assert_eq!(
        broken.dual_fallbacks(),
        reqs.len() as u64,
        "every stock re-serve must record its own dual breakdown"
    );
}

/// Degraded requests (capped rerank head) bypass the kernel caches by
/// design, so the sharded ranker routes them to the stock path directly:
/// bitwise identical to unsharded degraded serving, with no shard fallbacks
/// counted (degradation caps the ladder, not the shards).
#[test]
fn degraded_requests_serve_bitwise_through_sharded_ranker() {
    let (data, model, kernel) = fixture();
    let reqs: Vec<RankRequest> = requests(data, 4)
        .into_iter()
        .map(|r| r.with_rerank_head(8))
        .collect();
    for form in FORMS {
        let mut reference =
            Ranker::new(RankingArtifact::snapshot(model, kernel), config(1, 1, form));
        let want = reference.rank_batch(&reqs);
        assert!(want.iter().all(|r| r.degraded), "heads must actually cap");
        let mut sharded = Ranker::new(RankingArtifact::snapshot(model, kernel), config(2, 4, form));
        let got = sharded.rank_batch(&reqs);
        for (g, w) in got.iter().zip(&want) {
            assert_same_bits(g, w, &format!("degraded form {form:?}"));
            assert!(g.degraded);
        }
        assert_eq!(sharded.shard_fallbacks(), 0, "degraded is not a fallback");
    }
}

/// Invalid, empty-list, and duplicate-heavy requests cross the sharded path
/// with the stock path's exact semantics.
#[test]
fn sharded_edge_requests_match_unsharded() {
    let (data, model, kernel) = fixture();
    let n = data.n_items();
    let reqs = vec![
        RankRequest::new(0, vec![], 3),              // no candidates
        RankRequest::new(999, vec![1, 2, 3], 3),     // unknown user
        RankRequest::new(1, vec![0, n + 5], 3),      // out-of-catalog item
        RankRequest::new(2, vec![4, 4, 9, 4, 9], 3), // duplicates only
        RankRequest::new(3, vec![7], 5),             // pool smaller than top_n
        RankRequest::new(4, vec![1, 2, 3], 0),       // top_n = 0
    ];
    for form in FORMS {
        let mut reference =
            Ranker::new(RankingArtifact::snapshot(model, kernel), config(1, 1, form));
        let want = reference.rank_batch(&reqs);
        let mut sharded = Ranker::new(RankingArtifact::snapshot(model, kernel), config(2, 4, form));
        let got = sharded.rank_batch(&reqs);
        for (g, w) in got.iter().zip(&want) {
            assert_same_bits(g, w, &format!("edge form {form:?}"));
            assert_eq!(g.outcome, w.outcome, "edge form {form:?}");
        }
    }
}

/// Zero-downtime artifact swap under sharded traffic: the staged swap
/// carries the *new* artifact's partition, installed by the same commit
/// that bumps the generation — queued requests serve on generation 2 from
/// per-shard prewarmed entries with zero misses, bitwise equal to a fresh
/// sharded ranker on the new artifact.
#[test]
fn sharded_swap_under_traffic_commits_all_shards_atomically() {
    let (data, model_a, kernel) = fixture();
    let mut rng = StdRng::seed_from_u64(11);
    let model_b = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        10,
        AdamConfig::default(),
        &mut rng,
    );
    let reqs = requests(data, 5);
    let plan: Vec<(usize, Vec<usize>)> = reqs
        .iter()
        .map(|r| (r.user, r.candidates.clone()))
        .collect();

    for form in FORMS {
        let cfg = config(2, 4, form);
        let mut ranker_a = Ranker::new(RankingArtifact::snapshot(model_a, kernel), cfg.clone());
        let want_a = ranker_a.rank_batch(&reqs);
        let mut ranker_b = Ranker::new(RankingArtifact::snapshot(&model_b, kernel), cfg.clone());
        let want_b = ranker_b.rank_batch(&reqs);

        let mut frontend = ServeFrontend::with_clock(
            Ranker::new(RankingArtifact::snapshot(model_a, kernel), cfg.clone()),
            FrontendConfig {
                max_batch: reqs.len(),
                ..Default::default()
            },
            Box::new(ManualClock::new()),
        );

        // Generation 1 sharded traffic.
        let tickets: Vec<Ticket> = reqs
            .iter()
            .map(|r| frontend.try_submit(r.clone()).unwrap())
            .collect();
        frontend.flush();
        for (ticket, want) in tickets.iter().zip(&want_a) {
            let resp = frontend.try_take(*ticket).expect("gen-1 ticket");
            assert_same_bits(&resp, want, &format!("form {form:?} gen 1"));
        }

        // Queue traffic, swap between cuts (new partition + per-shard
        // prewarm staged off-path, committed with one generation bump),
        // then serve.
        let queued: Vec<Ticket> = reqs
            .iter()
            .map(|r| frontend.try_submit(r.clone()).unwrap())
            .collect();
        let report = frontend.swap_artifact(RankingArtifact::snapshot(&model_b, kernel), &plan);
        assert_eq!(
            report.warmed,
            plan.len(),
            "form {form:?}: every pair's shard pieces staged warm"
        );
        assert!(report.retired > 0, "form {form:?}: old entries retired");
        let (_, misses_before) = frontend.ranker().cache_stats();
        frontend.flush();
        let (_, misses_after) = frontend.ranker().cache_stats();
        assert_eq!(
            misses_after - misses_before,
            0,
            "form {form:?}: post-swap batch must hit the staged per-shard \
             entries — a stale partition would miss on every composed key"
        );
        for (ticket, want) in queued.iter().zip(&want_b) {
            let resp = frontend.try_take(*ticket).expect("gen-2 ticket");
            assert_eq!(resp.generation, 2, "form {form:?}");
            assert!(resp.cache_hit, "form {form:?}: prewarmed shard hits");
            assert_same_bits(&resp, want, &format!("form {form:?} gen 2"));
        }
        assert_eq!(frontend.ranker().shard_fallbacks(), 0, "form {form:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Randomized pools — arbitrary sizes, duplicates straddling shard
    // boundaries, top_n above and below the pool — serve bitwise
    // identically sharded and unsharded, in both kernel forms, for
    // coprime-ish shard counts {2, 3, 5}.
    #[test]
    fn random_pools_merge_bitwise(
        raw in proptest::collection::vec(0usize..70, 1..64),
        user in 0usize..24,
        top_n in 1usize..10,
        shard_pick in 0usize..3,
        form_pick in 0usize..2,
    ) {
        let (_, model, kernel) = fixture();
        let shards = [2usize, 3, 5][shard_pick];
        let form = FORMS[form_pick];
        let req = RankRequest::new(user, raw, top_n);
        let mut reference = Ranker::new(
            RankingArtifact::snapshot(model, kernel),
            config(1, 1, form),
        );
        let want = reference.rank_one(&req);
        let mut sharded = Ranker::new(
            RankingArtifact::snapshot(model, kernel),
            config(1, shards, form),
        );
        let got = sharded.rank_one(&req);
        prop_assert_eq!(got.user, want.user);
        prop_assert_eq!(&got.items, &want.items);
        prop_assert_eq!(got.log_det.to_bits(), want.log_det.to_bits());
        prop_assert_eq!(got.outcome, want.outcome);
        prop_assert_eq!(sharded.shard_fallbacks(), 0);
    }
}
