//! Run outcomes: per-epoch stats, the fit report, and the refresh-pipeline
//! artifacts ([`TrainedState`] warm-start token, [`RefreshReport`]).

use lkp_data::{Dataset, EpochPlan, PlanStats, TargetSelection};
use lkp_dpp::{SpectralCacheStats, SpectralSnapshot};

/// Per-epoch statistics.
#[derive(Debug, Clone)]
pub struct EpochStat {
    /// 1-based epoch index.
    pub epoch: usize,
    /// Mean per-instance loss.
    pub mean_loss: f64,
    /// Validation NDCG@cutoff, when this epoch was evaluated.
    pub val_ndcg: Option<f64>,
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Epochs actually run (≤ configured maximum under early stopping).
    pub epochs_run: usize,
    /// Epoch with the best validation metric (0 if never evaluated).
    pub best_epoch: usize,
    /// Best validation NDCG@cutoff observed.
    pub best_val_ndcg: f64,
    /// Per-epoch history.
    pub history: Vec<EpochStat>,
    /// Spectral-cache counters summed over the run's pool workers — all
    /// zeros when the cache was disabled (`spectral_tol = 0`) or the
    /// objective never consulted it.
    pub spectral_cache: SpectralCacheStats,
    /// Epoch-plan counters: resampled vs reused epochs, instances per
    /// epoch, and the number of distinct ground-set sizes the batch
    /// scheduler bucketed by.
    pub plan: PlanStats,
}

impl TrainReport {
    /// The zero-epoch report a no-op refresh returns.
    pub(crate) fn empty() -> Self {
        TrainReport {
            epochs_run: 0,
            best_epoch: 0,
            best_val_ndcg: 0.0,
            history: Vec::new(),
            spectral_cache: SpectralCacheStats::default(),
            plan: PlanStats::default(),
        }
    }
}

/// Everything a later [`crate::trainer::Trainer::update`] call needs to
/// warm-start from a finished run: the training data, the final epoch plan
/// (instance identity *and order*, which pins each instance's pool worker),
/// the sampling shape it was drawn under, and the spectral-cache entries the
/// run's workers held at exit.
///
/// Produced by [`crate::trainer::Trainer::fit_state`] and by every
/// `update` call (so refreshes chain: fit → update → update → …).
#[derive(Debug, Clone)]
pub struct TrainedState {
    pub(crate) data: Dataset,
    pub(crate) plan: EpochPlan,
    pub(crate) batch_size: usize,
    pub(crate) k: usize,
    pub(crate) n: usize,
    pub(crate) mode: TargetSelection,
    pub(crate) seed: u64,
    pub(crate) spectral: SpectralSnapshot,
}

impl TrainedState {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        data: Dataset,
        plan: EpochPlan,
        batch_size: usize,
        k: usize,
        n: usize,
        mode: TargetSelection,
        seed: u64,
        spectral: SpectralSnapshot,
    ) -> Self {
        TrainedState {
            data,
            plan,
            batch_size,
            k,
            n,
            mode,
            seed,
            spectral,
        }
    }

    /// The dataset the state was trained on (base data ∪ merged deltas).
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// The run's final epoch plan — the instance set and order a refresh
    /// freezes for unchanged users.
    pub fn plan(&self) -> &EpochPlan {
        &self.plan
    }

    /// Per-instance ground-set shape `(k, n)` the plan was sampled under.
    pub fn shape(&self) -> (usize, usize) {
        (self.k, self.n)
    }

    /// Target construction mode the plan was sampled under.
    pub fn mode(&self) -> TargetSelection {
        self.mode
    }

    /// Spectral-cache entries exported from the run's pool workers (empty
    /// when the run had `spectral_tol = 0`).
    pub fn spectral(&self) -> &SpectralSnapshot {
        &self.spectral
    }
}

/// Outcome of one incremental [`crate::trainer::Trainer::update`] pass.
#[derive(Debug, Clone)]
pub struct RefreshReport {
    /// The underlying epoch-loop report for the refresh epochs.
    pub report: TrainReport,
    /// The refreshed warm-start state — feed it to the next `update`.
    pub state: TrainedState,
    /// Plan records carried over verbatim from the base plan (unchanged
    /// users, base order — worker affinity preserved).
    pub frozen_instances: usize,
    /// Plan records freshly sampled for changed/new users.
    pub fresh_instances: usize,
    /// Spectral-cache entries adopted into the refresh pool's workers.
    pub adopted_entries: usize,
    /// Users whose ground sets were resampled (changed or new).
    pub changed_users: usize,
    /// Users the delta appended to the population.
    pub new_users: usize,
    /// Interactions the merge accepted (duplicates are dropped).
    pub new_interactions: usize,
    /// Whether the delta was empty after dedup: the model was not touched
    /// and `state` is the base state over the (identical) merged data.
    pub no_op: bool,
}

impl RefreshReport {
    /// The report for an empty delta: zero epochs, model untouched.
    pub(crate) fn no_op(state: TrainedState) -> Self {
        RefreshReport {
            report: TrainReport::empty(),
            state,
            frozen_instances: 0,
            fresh_instances: 0,
            adopted_entries: 0,
            changed_users: 0,
            new_users: 0,
            new_interactions: 0,
            no_op: true,
        }
    }
}
