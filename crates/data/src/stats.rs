//! Dataset statistics — regenerates the paper's Table I.

use crate::dataset::{Dataset, Split};

/// Summary statistics of a dataset, in the shape of the paper's Table I plus
/// a few derived quantities used in the analysis sections.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Number of users.
    pub n_users: usize,
    /// Number of items.
    pub n_items: usize,
    /// Total interactions across all splits.
    pub n_interactions: usize,
    /// Number of categories.
    pub n_categories: usize,
    /// Interaction-matrix density `interactions / (users · items)`.
    pub density: f64,
    /// Mean interactions per user.
    pub mean_interactions_per_user: f64,
    /// Mean distinct categories covered by a user's observed items.
    pub mean_user_category_coverage: f64,
}

impl DatasetStats {
    /// Computes statistics for a dataset.
    pub fn compute(data: &Dataset) -> Self {
        let n_users = data.n_users();
        let n_items = data.n_items();
        let n_interactions = data.n_interactions();
        let mut coverage_sum = 0.0;
        for u in 0..n_users {
            let mut items: Vec<usize> = data.user_items(u, Split::Train).to_vec();
            items.extend_from_slice(data.user_items(u, Split::Validation));
            items.extend_from_slice(data.user_items(u, Split::Test));
            coverage_sum += data.category_coverage(&items) as f64;
        }
        DatasetStats {
            n_users,
            n_items,
            n_interactions,
            n_categories: data.n_categories(),
            density: n_interactions as f64 / (n_users as f64 * n_items as f64),
            mean_interactions_per_user: n_interactions as f64 / n_users as f64,
            mean_user_category_coverage: coverage_sum / n_users as f64,
        }
    }

    /// Formats a Table I row: `#Users  #Items  #Interactions  #Categories`.
    pub fn table_row(&self, name: &str) -> String {
        format!(
            "{:<8} {:>8} {:>8} {:>13} {:>12} {:>10.5}",
            name,
            human(self.n_users),
            human(self.n_items),
            human(self.n_interactions),
            self.n_categories,
            self.density
        )
    }
}

/// Abbreviates counts like the paper ("52.0k", "1.0M").
fn human(n: usize) -> String {
    if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}k", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, SyntheticConfig};

    #[test]
    fn stats_are_consistent_with_dataset() {
        let d = generate(&SyntheticConfig::default());
        let s = DatasetStats::compute(&d);
        assert_eq!(s.n_users, d.n_users());
        assert_eq!(s.n_items, d.n_items());
        assert_eq!(s.n_interactions, d.n_interactions());
        assert!(
            (s.density - s.n_interactions as f64 / (s.n_users * s.n_items) as f64).abs() < 1e-15
        );
        assert!(s.mean_interactions_per_user >= 10.0);
        assert!(s.mean_user_category_coverage >= 1.0);
        assert!(s.mean_user_category_coverage <= d.n_categories() as f64);
    }

    #[test]
    fn human_formatting() {
        assert_eq!(human(999), "999");
        assert_eq!(human(52_000), "52.0k");
        assert_eq!(human(1_000_000), "1.0M");
    }

    #[test]
    fn table_row_contains_name() {
        let d = generate(&SyntheticConfig::default());
        let s = DatasetStats::compute(&d);
        assert!(s.table_row("Beauty").starts_with("Beauty"));
    }
}
