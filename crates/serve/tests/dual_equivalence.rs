//! The `dual_serving_equivalence` gate: the low-rank dual serving path must
//! select the same lists as the dense path — across cache modes, pool
//! widths, cold vs prewarmed caches, and frontend vs direct batching — and
//! its dense fallback must be bit-identical to dense-mode serving.
//!
//! Cross-form comparisons check `user` + `items` only: the dual recursion
//! reassociates the dense arithmetic, so `log_det` agrees to rounding, not
//! bitwise. Within the dual form, serving is bitwise deterministic and the
//! tests pin that too.

use lkp_core::objective::{LkpKind, LkpObjective};
use lkp_core::{train_diversity_kernel, DiversityKernelConfig, TrainConfig, Trainer};
use lkp_data::{Dataset, SyntheticConfig};
use lkp_dpp::LowRankKernel;
use lkp_models::MatrixFactorization;
use lkp_nn::AdamConfig;
use lkp_serve::{
    CacheMode, FrontendConfig, KernelForm, ManualClock, RankRequest, RankResponse, Ranker,
    RankingArtifact, ServeConfig, ServeFrontend, Ticket,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn data() -> Dataset {
    lkp_data::synthetic::generate(&SyntheticConfig {
        n_users: 24,
        n_items: 70,
        n_categories: 7,
        mean_interactions: 14.0,
        ..Default::default()
    })
}

fn trained(data: &Dataset) -> (MatrixFactorization, LowRankKernel) {
    let kernel = train_diversity_kernel(
        data,
        &DiversityKernelConfig {
            epochs: 3,
            pairs_per_epoch: 40,
            dim: 6,
            ..Default::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(5);
    let mut model = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        10,
        AdamConfig {
            lr: 0.02,
            ..Default::default()
        },
        &mut rng,
    );
    let mut obj = LkpObjective::new(LkpKind::NegativeAware, kernel.clone());
    let trainer = Trainer::new(TrainConfig {
        epochs: 2,
        eval_every: 0,
        patience: 0,
        k: 4,
        n: 4,
        threads: 2,
        ..Default::default()
    });
    trainer.fit(&mut model, &mut obj, data);
    (model, kernel)
}

/// 20-candidate pools; `top_n` stays under the diversity-kernel rank (6) so
/// every greedy step has a macroscopic, well-conditioned gain — the regime
/// where dense and dual selections provably coincide.
fn requests(data: &Dataset, top_n: usize) -> Vec<RankRequest> {
    (0..data.n_users())
        .map(|u| {
            let candidates: Vec<usize> = (0..20)
                .map(|j| (u * 31 + j * 17 + 7) % data.n_items())
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            RankRequest::new(u, candidates, top_n)
        })
        .collect()
}

/// Everything-dual config: `min_candidates: 0` routes every request through
/// the factored path.
fn dual_config(threads: usize, cache_mode: CacheMode) -> ServeConfig {
    ServeConfig {
        threads,
        cache_mode,
        kernel_form: KernelForm::LowRankDual { min_candidates: 0 },
        ..Default::default()
    }
}

/// Cross-form check: same user, same items, in order. (`log_det` only to
/// rounding — not asserted here.)
fn assert_same_list(got: &RankResponse, want: &RankResponse, context: &str) {
    assert_eq!(got.user, want.user, "{context}: user");
    assert_eq!(got.items, want.items, "{context}: items");
}

/// Within-form check: bitwise, including `log_det`.
fn assert_same_bits(got: &RankResponse, want: &RankResponse, context: &str) {
    assert_same_list(got, want, context);
    assert_eq!(
        got.log_det.to_bits(),
        want.log_det.to_bits(),
        "{context}: log_det"
    );
}

/// Acceptance criterion: the dual path serves the same lists as the dense
/// path across `PerWorker`/`Sharded` × widths 1/2/4 × cold/prewarmed ×
/// frontend-vs-direct, with zero dense fallbacks, and is bitwise
/// self-consistent across that whole matrix.
#[test]
fn dense_vs_dual_equivalence_matrix() {
    let data = data();
    let (model, kernel) = trained(&data);
    let reqs = requests(&data, 5);
    let prewarm_pairs: Vec<(usize, Vec<usize>)> = reqs
        .iter()
        .map(|r| (r.user, r.candidates.clone()))
        .collect();

    // Dense reference: one direct batch at width 1, default config.
    let mut dense = Ranker::new(
        RankingArtifact::snapshot(&model, &kernel),
        ServeConfig {
            threads: 1,
            ..Default::default()
        },
    );
    let want = dense.rank_batch(&reqs);

    // Dual self-consistency reference, filled by the first dual run.
    let mut dual_bits: Option<Vec<RankResponse>> = None;

    for cache_mode in [CacheMode::PerWorker, CacheMode::Sharded { shards: 4 }] {
        for threads in [1usize, 2, 4] {
            for prewarmed in [false, true] {
                for frontend_path in [false, true] {
                    let context = format!(
                        "mode {cache_mode:?} threads {threads} prewarmed {prewarmed} \
                         frontend {frontend_path}"
                    );
                    let mut ranker = Ranker::new(
                        RankingArtifact::snapshot(&model, &kernel),
                        dual_config(threads, cache_mode),
                    );
                    let got: Vec<RankResponse> = if frontend_path {
                        let mut frontend = ServeFrontend::with_clock(
                            ranker,
                            FrontendConfig {
                                max_batch: 7,
                                ..Default::default()
                            },
                            Box::new(ManualClock::new()),
                        );
                        if prewarmed {
                            assert_eq!(frontend.prewarm(&prewarm_pairs), reqs.len(), "{context}");
                        }
                        let tickets: Vec<Ticket> =
                            reqs.iter().map(|r| frontend.submit(r.clone())).collect();
                        frontend.flush();
                        let got = tickets
                            .iter()
                            .map(|t| {
                                frontend
                                    .try_take(*t)
                                    .unwrap_or_else(|| panic!("{context}: unserved ticket"))
                            })
                            .collect();
                        if prewarmed {
                            let stats = frontend.ranker().cache_stats_detailed();
                            assert_eq!(stats.aggregate.misses, 0, "{context}: prewarmed misses");
                        }
                        assert_eq!(
                            frontend.ranker().dual_fallbacks(),
                            0,
                            "{context}: no spurious breakdowns"
                        );
                        got
                    } else {
                        if prewarmed {
                            assert_eq!(ranker.prewarm(&prewarm_pairs), reqs.len(), "{context}");
                        }
                        let got = ranker.rank_batch(&reqs);
                        assert_eq!(
                            ranker.dual_fallbacks(),
                            0,
                            "{context}: no spurious breakdowns"
                        );
                        got
                    };
                    for (g, w) in got.iter().zip(&want) {
                        assert_same_list(g, w, &context);
                    }
                    match &dual_bits {
                        None => dual_bits = Some(got),
                        Some(first) => {
                            for (g, w) in got.iter().zip(first) {
                                assert_same_bits(g, w, &context);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// `min_candidates` above the pool size routes everything dense: serving is
/// then bit-identical to `KernelForm::Dense` (same code path, same cache
/// entries), with zero fallbacks recorded.
#[test]
fn min_candidates_above_pool_size_is_bitwise_dense() {
    let data = data();
    let (model, kernel) = trained(&data);
    let reqs = requests(&data, 5);
    let mut dense = Ranker::new(
        RankingArtifact::snapshot(&model, &kernel),
        ServeConfig {
            threads: 2,
            ..Default::default()
        },
    );
    let want = dense.rank_batch(&reqs);
    let mut routed = Ranker::new(
        RankingArtifact::snapshot(&model, &kernel),
        ServeConfig {
            threads: 2,
            kernel_form: KernelForm::LowRankDual { min_candidates: 21 },
            ..Default::default()
        },
    );
    let got = routed.rank_batch(&reqs);
    for (g, w) in got.iter().zip(&want) {
        assert_same_bits(g, w, "min_candidates routing");
    }
    assert_eq!(routed.dual_fallbacks(), 0);
}

/// Fault injection: a negative `dual_guard` makes every dual request break
/// down on its first update, so every request takes the dense fallback —
/// which must be *bitwise* identical to dense-mode serving, and must be
/// counted by `dual_fallbacks`.
#[test]
fn breakdown_fallback_is_bitwise_identical_to_dense() {
    let data = data();
    let (model, kernel) = trained(&data);
    let reqs = requests(&data, 5);
    let mut dense = Ranker::new(
        RankingArtifact::snapshot(&model, &kernel),
        ServeConfig {
            threads: 2,
            ..Default::default()
        },
    );
    let want = dense.rank_batch(&reqs);

    for cache_mode in [CacheMode::PerWorker, CacheMode::Sharded { shards: 4 }] {
        let mut broken = Ranker::new(
            RankingArtifact::snapshot(&model, &kernel),
            ServeConfig {
                dual_guard: -1.0,
                ..dual_config(2, cache_mode)
            },
        );
        let got = broken.rank_batch(&reqs);
        for (g, w) in got.iter().zip(&want) {
            assert_same_bits(g, w, &format!("fallback {cache_mode:?}"));
        }
        assert_eq!(
            broken.dual_fallbacks(),
            reqs.len() as u64,
            "{cache_mode:?}: every request must record its breakdown"
        );
    }
}

/// Degraded requests (capped rerank head) serve the same lists in dual mode
/// as in dense mode, and `min_candidates` is applied to the *effective*
/// head size — a head under the threshold stays bit-identical to dense.
#[test]
fn degraded_rerank_head_dual_equivalence() {
    let data = data();
    let (model, kernel) = trained(&data);
    let reqs: Vec<RankRequest> = requests(&data, 4)
        .into_iter()
        .map(|r| r.with_rerank_head(8))
        .collect();
    let mut dense = Ranker::new(
        RankingArtifact::snapshot(&model, &kernel),
        ServeConfig {
            threads: 2,
            ..Default::default()
        },
    );
    let want = dense.rank_batch(&reqs);
    assert!(want.iter().all(|r| r.degraded), "heads must actually cap");

    // Head (8) ≥ min_candidates (0): the degraded request runs dual.
    let mut dual = Ranker::new(
        RankingArtifact::snapshot(&model, &kernel),
        dual_config(2, CacheMode::PerWorker),
    );
    let got = dual.rank_batch(&reqs);
    for (g, w) in got.iter().zip(&want) {
        assert_same_list(g, w, "degraded dual");
        assert!(g.degraded, "degraded flag survives the dual path");
    }
    assert_eq!(dual.dual_fallbacks(), 0);

    // Head (8) < min_candidates (10) ≤ pool (20): the *head* decides, so
    // the degraded request stays dense — bitwise — even though the full
    // pool would have gone dual.
    let mut routed = Ranker::new(
        RankingArtifact::snapshot(&model, &kernel),
        ServeConfig {
            threads: 2,
            kernel_form: KernelForm::LowRankDual { min_candidates: 10 },
            ..Default::default()
        },
    );
    let got = routed.rank_batch(&reqs);
    for (g, w) in got.iter().zip(&want) {
        assert_same_bits(g, w, "degraded head under threshold");
    }
}

/// Zero-downtime artifact swap under dual-mode traffic: queued requests
/// serve on the new generation from a prewarmed factor cache, bitwise equal
/// to a fresh dual ranker on the new artifact.
#[test]
fn swap_under_traffic_in_dual_mode() {
    let data = data();
    let (model_a, kernel) = trained(&data);
    let mut rng = StdRng::seed_from_u64(11);
    let model_b = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        10,
        AdamConfig::default(),
        &mut rng,
    );
    let reqs = requests(&data, 5);
    let plan: Vec<(usize, Vec<usize>)> = reqs
        .iter()
        .map(|r| (r.user, r.candidates.clone()))
        .collect();

    for cache_mode in [CacheMode::PerWorker, CacheMode::Sharded { shards: 4 }] {
        let config = dual_config(2, cache_mode);
        let mut ranker_a =
            Ranker::new(RankingArtifact::snapshot(&model_a, &kernel), config.clone());
        let want_a = ranker_a.rank_batch(&reqs);
        let mut ranker_b =
            Ranker::new(RankingArtifact::snapshot(&model_b, &kernel), config.clone());
        let want_b = ranker_b.rank_batch(&reqs);

        let mut frontend = ServeFrontend::with_clock(
            Ranker::new(RankingArtifact::snapshot(&model_a, &kernel), config.clone()),
            FrontendConfig {
                max_batch: reqs.len(),
                ..Default::default()
            },
            Box::new(ManualClock::new()),
        );

        // Generation 1 dual traffic (populates the factor cache the swap
        // will retire).
        let tickets: Vec<Ticket> = reqs
            .iter()
            .map(|r| frontend.try_submit(r.clone()).unwrap())
            .collect();
        frontend.flush();
        for (ticket, want) in tickets.iter().zip(&want_a) {
            let resp = frontend.try_take(*ticket).expect("gen-1 ticket");
            assert_same_bits(&resp, want, &format!("{cache_mode:?} gen 1"));
        }

        // Queue traffic, swap between cuts, then serve: new generation,
        // prewarmed factor entries, zero misses.
        let queued: Vec<Ticket> = reqs
            .iter()
            .map(|r| frontend.try_submit(r.clone()).unwrap())
            .collect();
        let report = frontend.swap_artifact(RankingArtifact::snapshot(&model_b, &kernel), &plan);
        assert_eq!(report.warmed, plan.len(), "{cache_mode:?}: plan fully warm");
        assert!(report.retired > 0, "{cache_mode:?}: old entries retired");
        let (_, misses_before) = frontend.ranker().cache_stats();
        frontend.flush();
        let (_, misses_after) = frontend.ranker().cache_stats();
        assert_eq!(
            misses_after - misses_before,
            0,
            "{cache_mode:?}: prewarmed post-swap dual batch must not miss"
        );
        for (ticket, want) in queued.iter().zip(&want_b) {
            let resp = frontend.try_take(*ticket).expect("gen-2 ticket");
            assert_eq!(resp.generation, 2, "{cache_mode:?}");
            assert!(resp.cache_hit, "{cache_mode:?}: prewarmed factor hit");
            assert_same_bits(&resp, want, &format!("{cache_mode:?} gen 2"));
        }
        assert_eq!(frontend.ranker().dual_fallbacks(), 0, "{cache_mode:?}");
    }
}
