//! Spectral-cache equivalence suite.
//!
//! Three contracts:
//!
//! 1. `spectral_tol = 0.0` (the default) leaves the trainer on the exact
//!    path: trajectories are **bitwise identical** to the pinned pre-cache
//!    path at every thread count (`parallel_equivalence.rs` pins that path
//!    against the retired scoped-thread trainer).
//! 2. With `spectral_tol > 0`, training results stay within tolerance of
//!    the exact run — validated both through `Trainer::fit` (final
//!    validation NDCG) and through a recurring-ground-set mini-trainer that
//!    actually exercises the skip and warm-start paths (epoch-resampled
//!    negatives make full `fit` runs mostly cold; recurrence is the cache's
//!    target workload, so it is driven explicitly here).
//! 3. Cached runs are deterministic: same seed, same width, same results.

use lkp_core::objective::{InstanceGrad, LkpKind, LkpObjective, Objective};
use lkp_core::{train_diversity_kernel, DiversityKernelConfig, TrainConfig, Trainer};
use lkp_data::{Dataset, GroundSetInstance, SyntheticConfig, TargetSelection};
use lkp_dpp::{DppWorkspace, SpectralCache};
use lkp_models::{MatrixFactorization, Recommender};
use lkp_nn::AdamConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn smoke_data() -> Dataset {
    lkp_data::synthetic::generate(&SyntheticConfig {
        n_users: 40,
        n_items: 100,
        n_categories: 8,
        mean_interactions: 18.0,
        ..Default::default()
    })
}

fn model(data: &Dataset, seed: u64) -> MatrixFactorization {
    let mut rng = StdRng::seed_from_u64(seed);
    MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        16,
        AdamConfig {
            lr: 0.02,
            ..Default::default()
        },
        &mut rng,
    )
}

fn kernel(data: &Dataset) -> lkp_dpp::LowRankKernel {
    train_diversity_kernel(
        data,
        &DiversityKernelConfig {
            epochs: 3,
            pairs_per_epoch: 48,
            dim: 8,
            ..Default::default()
        },
    )
}

/// Full `fit` with the given spectral tolerance; returns per-epoch losses,
/// final user-0 scores, best validation NDCG, and the cache counters.
fn run_fit(
    data: &Dataset,
    threads: usize,
    epochs: usize,
    eval_every: usize,
    spectral_tol: f64,
) -> (Vec<f64>, Vec<f64>, f64, lkp_dpp::SpectralCacheStats) {
    let mut m = model(data, 1);
    let mut obj = LkpObjective::new(LkpKind::NegativeAware, kernel(data));
    let trainer = Trainer::new(TrainConfig {
        epochs,
        batch_size: 32,
        k: 4,
        n: 4,
        mode: TargetSelection::Sequential,
        eval_every,
        patience: 0,
        threads,
        spectral_tol,
        seed: 99,
        ..Default::default()
    });
    let report = trainer.fit(&mut m, &mut obj, data);
    let losses = report.history.iter().map(|h| h.mean_loss).collect();
    let items: Vec<usize> = (0..data.n_items()).collect();
    (
        losses,
        m.score_items(0, &items),
        report.best_val_ndcg,
        report.spectral_cache,
    )
}

/// `LkpObjective` with `compute_cached_into` forced back to the *default*
/// pass-through (cache ignored, plain `compute_into`). Training this under
/// `spectral_tol > 0` drives the trainer's cached dispatch branch (pair
/// slot accessor, `set_tol`, `compute_cached_into` routing) while computing
/// every instance exactly — the reference the tol = 0 branch must match.
struct UncachedLkp(LkpObjective);

impl<M: Recommender> Objective<M> for UncachedLkp {
    fn compute_into(
        &self,
        model: &M,
        instance: lkp_data::InstanceRef<'_>,
        ws: &mut DppWorkspace,
        out: &mut InstanceGrad,
    ) {
        <LkpObjective as Objective<M>>::compute_into(&self.0, model, instance, ws, out);
    }
    // Deliberately NOT overriding compute_cached_into: the trait default
    // ignores the cache and calls compute_into.
    fn name(&self) -> &'static str {
        "LkP-NPS-uncached"
    }
}

#[test]
fn tol_zero_trajectories_are_bitwise_identical_to_the_pinned_path() {
    // `spectral_tol: 0.0` must not merely be "close" to the exact
    // computation — it must be the *same* trajectory, bit for bit, at every
    // thread count. The reference here is a genuinely different code path:
    // the trainer's cached dispatch branch (spectral_tol > 0) driving an
    // objective that computes every instance exactly. (The pre-runtime
    // scoped-thread trainer itself is pinned in parallel_equivalence.rs,
    // which `Trainer::fit` — including the tol = 0 branch — must match.)
    let data = smoke_data();
    let epochs = 2;
    for threads in [1usize, 2, 4] {
        let (tol0_losses, tol0_scores, _, stats) = run_fit(&data, threads, epochs, 0, 0.0);
        assert_eq!(stats.lookups(), 0, "tol=0 must bypass the cache entirely");

        // Reference: cached dispatch branch + exact per-instance compute.
        let mut m = model(&data, 1);
        let mut obj = UncachedLkp(LkpObjective::new(LkpKind::NegativeAware, kernel(&data)));
        let trainer = Trainer::new(TrainConfig {
            epochs,
            batch_size: 32,
            k: 4,
            n: 4,
            mode: TargetSelection::Sequential,
            eval_every: 0,
            patience: 0,
            threads,
            spectral_tol: 1e-8,
            seed: 99,
            ..Default::default()
        });
        let report = trainer.fit(&mut m, &mut obj, &data);
        let ref_losses: Vec<f64> = report.history.iter().map(|h| h.mean_loss).collect();
        let items: Vec<usize> = (0..data.n_items()).collect();
        let ref_scores = m.score_items(0, &items);

        for (e, (a, b)) in ref_losses.iter().zip(&tol0_losses).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "threads={threads} epoch {e}");
        }
        for (a, b) in ref_scores.iter().zip(&tol0_scores) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "threads={threads}: model diverged"
            );
        }
    }
}

#[test]
fn cached_fit_ndcg_is_within_tolerance_of_exact() {
    let data = smoke_data();
    let epochs = 4;
    let (exact_losses, _, exact_ndcg, _) = run_fit(&data, 2, epochs, 2, 0.0);
    let (cached_losses, _, cached_ndcg, stats) = run_fit(&data, 2, epochs, 2, 1e-8);
    assert!(
        stats.lookups() > 0,
        "positive tol must route instances through the cache"
    );
    assert!(
        (exact_ndcg - cached_ndcg).abs() <= 1e-3,
        "validation NDCG drifted: exact {exact_ndcg} vs cached {cached_ndcg}"
    );
    for (e, (a, b)) in exact_losses.iter().zip(&cached_losses).enumerate() {
        assert!(
            (a - b).abs() <= 1e-6 * a.abs().max(1.0),
            "epoch {e}: loss drifted {a} vs {b}"
        );
    }
}

/// Fixed recurring instances — the cache's target workload. Trains a model
/// by iterating the same ground sets for several "epochs" with per-instance
/// optimizer steps, through either the exact or the cached objective path.
fn run_recurring(
    data: &Dataset,
    kernel: &lkp_dpp::LowRankKernel,
    instances: &[GroundSetInstance],
    epochs: usize,
    lr: f64,
    spectral_tol: Option<f64>,
) -> (Vec<f64>, Vec<f64>, lkp_dpp::SpectralCacheStats) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut m = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        16,
        AdamConfig {
            lr,
            ..Default::default()
        },
        &mut rng,
    );
    let obj = LkpObjective::new(LkpKind::NegativeAware, kernel.clone());
    let mut ws = DppWorkspace::new();
    let mut cache = SpectralCache::new(spectral_tol.unwrap_or(0.0), 1024);
    let mut out = InstanceGrad::default();
    let mut epoch_losses = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        let mut loss_sum = 0.0;
        for inst in instances {
            match spectral_tol {
                Some(_) => {
                    obj.compute_cached_into(&m, inst.as_ref(), &mut ws, &mut cache, &mut out)
                }
                None => obj.compute_into(&m, inst.as_ref(), &mut ws, &mut out),
            }
            loss_sum += out.loss;
            obj.accumulate(&mut m, &out);
            m.step();
        }
        epoch_losses.push(loss_sum / instances.len() as f64);
    }
    let items: Vec<usize> = (0..data.n_items()).collect();
    (epoch_losses, m.score_items(0, &items), cache.stats())
}

fn recurring_instances(data: &Dataset) -> Vec<GroundSetInstance> {
    // Deterministic, recurring ground sets: k = n = 3 per instance.
    (0..8)
        .map(|i| GroundSetInstance {
            user: i % data.n_users(),
            positives: vec![i, i + 3, i + 6],
            negatives: vec![40 + i, 50 + i, 60 + i],
        })
        .collect()
}

#[test]
fn warm_start_training_tracks_exact_training_on_recurring_sets() {
    // Tiny tolerance: revisits drift past it (the optimizer moves scores
    // every step), so the cache warm-starts — the eigen solver agrees with
    // cold to round-off, and the trajectory stays glued to the exact one.
    let data = smoke_data();
    let kern = kernel(&data);
    let instances = recurring_instances(&data);
    let epochs = 12;
    let (exact_losses, exact_scores, _) =
        run_recurring(&data, &kern, &instances, epochs, 0.02, None);
    let (warm_losses, warm_scores, stats) =
        run_recurring(&data, &kern, &instances, epochs, 0.02, Some(1e-12));
    assert!(
        stats.warm_starts > 0,
        "recurring drifting sets must warm-start: {stats:?}"
    );
    assert_eq!(
        stats.cold, 8,
        "only the first visit of each ground set is cold"
    );
    for (e, (a, b)) in exact_losses.iter().zip(&warm_losses).enumerate() {
        assert!(
            (a - b).abs() <= 1e-7 * a.abs().max(1.0),
            "epoch {e}: warm loss drifted {a} vs {b}"
        );
    }
    for (a, b) in exact_scores.iter().zip(&warm_scores) {
        assert!((a - b).abs() <= 1e-6, "final scores drifted: {a} vs {b}");
    }
}

#[test]
fn skip_training_stays_within_tolerance_on_recurring_sets() {
    // Loose tolerance: once per-step score drift falls below it, revisits
    // reuse the cached spectrum outright. The spectrum is then stale by up
    // to tol, so the trajectory is approximate — but must stay within a
    // tolerance commensurate with tol, and the final models must agree on
    // what they learned.
    let data = smoke_data();
    let kern = kernel(&data);
    let instances = recurring_instances(&data);
    // A small learning rate keeps per-revisit score drift below the
    // tolerance, so revisits actually skip (a big-step model warm-starts
    // instead — covered above). Adam's per-step parameter change is ~lr
    // regardless of gradient scale, so this is the knob that controls drift.
    let epochs = 16;
    let lr = 1e-4;
    let (exact_losses, exact_scores, _) = run_recurring(&data, &kern, &instances, epochs, lr, None);
    let (skip_losses, skip_scores, stats) =
        run_recurring(&data, &kern, &instances, epochs, lr, Some(1e-3));
    assert!(
        stats.skips > 0,
        "a loose tolerance must produce skips: {stats:?}"
    );
    let exact_last = *exact_losses.last().unwrap();
    let skip_last = *skip_losses.last().unwrap();
    assert!(
        (exact_last - skip_last).abs() <= 1e-2 * exact_last.abs().max(1.0),
        "final losses diverged: exact {exact_last} vs skip {skip_last}"
    );
    let max_score_diff = exact_scores
        .iter()
        .zip(&skip_scores)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0_f64, f64::max);
    assert!(
        max_score_diff <= 5e-2,
        "learned scores diverged by {max_score_diff}"
    );
    // Training must still have learned (loss decreased substantially).
    assert!(skip_last < skip_losses[0]);
}

#[test]
fn cached_runs_are_deterministic_at_fixed_settings() {
    let data = smoke_data();
    let (a_losses, a_scores, _, a_stats) = run_fit(&data, 4, 2, 0, 1e-8);
    let (b_losses, b_scores, _, b_stats) = run_fit(&data, 4, 2, 0, 1e-8);
    assert_eq!(
        a_losses.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        b_losses.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
    );
    assert_eq!(a_scores, b_scores);
    assert_eq!(a_stats, b_stats);
}
