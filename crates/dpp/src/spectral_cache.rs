//! Epoch-persistent cache of per-instance spectral decompositions.
//!
//! The dominant per-instance cost of LkP training is the eigendecomposition
//! of the tailored kernel `L = Diag(q)·K_T·Diag(q) + ε·I` (paper Eq. 6/12) —
//! `O(m³)` on the dense path, `O(d³)` on the dual path. Ground sets recur
//! epoch to epoch (and request to request when serving) with only small
//! drift in the model scores, so their spectra barely move. This module
//! keeps the last decomposition of every recently seen `(user, ground set)`
//! pair alive across batches and epochs — one [`SpectralCache`] per pool
//! worker, held in `lkp-runtime` `WorkerState` — and classifies each revisit
//! by the ∞-norm drift of the quality vector `q = exp(clamp(ŷ))`:
//!
//! * **skip** — drift ≤ `tol`: the cached `(λ, V)` is reused outright and
//!   the eigen stage vanishes from the instance entirely;
//! * **warm-start** — drift > `tol`: the eigen solver is seeded with the
//!   cached basis ([`lkp_linalg::SymmetricEigen::compute_warm`]), finishing
//!   in a few Jacobi sweeps instead of a full Householder + QL pass;
//! * **cold** — unseen or changed ground set, non-finite scores, mismatched
//!   spectral path/jitter, or an invalidated cached decomposition
//!   ([`lkp_linalg::SymmetricEigen::is_valid`] false after a solver
//!   failure): full recomputation, after which the entry is (re)stored.
//!
//! With `tol = 0.0` a skip only happens when `q` is **bitwise identical** to
//! the cached visit, in which case the cached spectrum is bitwise the one a
//! recompute would produce — trajectories cannot move. (The trainer goes one
//! step further and bypasses the cache entirely at `tol = 0.0`, which also
//! avoids warm-starts; warm-started spectra agree with cold ones only to
//! solver round-off, not bit for bit.)
//!
//! Entries are bounded by a least-recently-used budget and evicted **down
//! to** capacity on every store, so lowering the capacity of a long-lived
//! cache takes effect immediately instead of leaving it over its bound.

use crate::workspace::SpectrumPath;
use lkp_linalg::{Matrix, SymmetricEigen};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Default entry budget: at the paper's shape (`m = 10`, dense) an entry is
/// ~1.5 kB, so the default bounds a worker's cache at a few MB.
pub const DEFAULT_SPECTRAL_CACHE_CAPACITY: usize = 4096;

/// How a revisited instance's spectrum will be obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpectralDecision {
    /// Quality drift within tolerance: reuse the cached `(λ, V)` outright.
    Skip,
    /// Ground set seen but drifted: warm-start the solver from the cached
    /// basis.
    WarmStart,
    /// No usable entry: full recomputation (and a fresh store).
    Cold,
}

/// Monotonic counters describing how the cache resolved lookups.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpectralCacheStats {
    /// Revisits whose cached spectrum was reused outright (eigen skipped).
    pub skips: u64,
    /// Revisits that warm-started the eigen solver from the cached basis.
    pub warm_starts: u64,
    /// Lookups that required a full recomputation (first visit, changed
    /// ground set, non-finite scores, or a retired/invalid entry).
    pub cold: u64,
    /// Entries evicted to keep the cache within its capacity.
    pub evictions: u64,
}

impl SpectralCacheStats {
    /// Accumulates `other` into `self` (merging per-worker counters).
    pub fn merge(&mut self, other: &SpectralCacheStats) {
        self.skips += other.skips;
        self.warm_starts += other.warm_starts;
        self.cold += other.cold;
        self.evictions += other.evictions;
    }

    /// Total lookups classified.
    pub fn lookups(&self) -> u64 {
        self.skips + self.warm_starts + self.cold
    }

    /// Fraction of lookups that avoided a cold eigendecomposition.
    pub fn reuse_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            (self.skips + self.warm_starts) as f64 / total as f64
        }
    }
}

/// One cached spectrum. `eigen` is the decomposition of `L` itself on the
/// dense path and of the `d × d` dual Gram `BᵀB` on the dual path;
/// `lambda`/`item_vectors` hold the workspace-ready spectral data either way.
struct Entry {
    user: usize,
    items: Vec<usize>,
    /// Quality vector at cache time (drift reference).
    q: Vec<f64>,
    path: SpectrumPath,
    /// The jitter `ε` baked into `lambda`; a config change invalidates.
    jitter: f64,
    /// All `m` eigenvalues of `L`, exactly as the workspace consumes them.
    lambda: Vec<f64>,
    /// Dense: eigen of `L` (basis for `∇log Z_k`). Dual: eigen of `BᵀB`
    /// (warm-start seed only).
    eigen: SymmetricEigen,
    /// Dual only: item-space eigenvectors (`m × r`); empty on dense.
    item_vectors: Matrix,
    last_used: u64,
}

/// One exported cache entry — the owned form a spectrum takes while
/// crossing a trainer generation (fit → update). Opaque outside this crate:
/// holders only need the `(user, ground set)` identity to route the entry
/// to the pool worker whose chunk will revisit it.
#[derive(Debug, Clone)]
pub struct SpectralCacheEntry {
    user: usize,
    items: Vec<usize>,
    q: Vec<f64>,
    path: SpectrumPath,
    jitter: f64,
    lambda: Vec<f64>,
    eigen: SymmetricEigen,
    item_vectors: Matrix,
}

impl SpectralCacheEntry {
    /// The entry's user.
    pub fn user(&self) -> usize {
        self.user
    }

    /// The entry's ground set (positives then negatives, as cached).
    pub fn items(&self) -> &[usize] {
        &self.items
    }
}

/// A deterministic snapshot of spectral-cache entries, merged across a
/// run's pool workers and carried into the next trainer generation.
///
/// Entries are kept sorted by `(user, ground set)` and deduped, so the
/// snapshot's byte layout is independent of hash order and pool width —
/// the same run always exports the same snapshot.
#[derive(Debug, Clone, Default)]
pub struct SpectralSnapshot {
    entries: Vec<SpectralCacheEntry>,
}

impl SpectralSnapshot {
    /// Builds a snapshot from exported entries (sorts + dedupes).
    pub fn from_entries(mut entries: Vec<SpectralCacheEntry>) -> Self {
        entries.sort_by(|a, b| (a.user, &a.items).cmp(&(b.user, &b.items)));
        entries.dedup_by(|a, b| a.user == b.user && a.items == b.items);
        SpectralSnapshot { entries }
    }

    /// The entries, sorted by `(user, ground set)`.
    pub fn entries(&self) -> &[SpectralCacheEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Bounded per-worker cache of tailored-kernel spectra, keyed by
/// `(user, ground set)` identity.
///
/// Create one per worker (it is intentionally not shareable across threads
/// without external synchronization) and thread it through
/// [`crate::DppWorkspace::tailored_loss_grad_cached`]. The tolerance can be
/// adjusted at any time with [`SpectralCache::set_tol`]; entries persist
/// across tolerance changes.
pub struct SpectralCache {
    tol: f64,
    capacity: usize,
    entries: HashMap<u64, Entry>,
    tick: u64,
    stats: SpectralCacheStats,
}

impl Default for SpectralCache {
    fn default() -> Self {
        SpectralCache::new(0.0, DEFAULT_SPECTRAL_CACHE_CAPACITY)
    }
}

impl SpectralCache {
    /// Creates a cache with the given quality-drift tolerance (∞-norm on
    /// `q`) and entry capacity. `capacity = 0` disables caching entirely:
    /// every lookup classifies as [`SpectralDecision::Cold`] and stores
    /// nothing.
    pub fn new(tol: f64, capacity: usize) -> Self {
        SpectralCache {
            tol,
            capacity,
            entries: HashMap::new(),
            tick: 0,
            stats: SpectralCacheStats::default(),
        }
    }

    /// The current drift tolerance.
    pub fn tol(&self) -> f64 {
        self.tol
    }

    /// Updates the drift tolerance (entries are kept).
    pub fn set_tol(&mut self, tol: f64) {
        self.tol = tol;
    }

    /// Counters accumulated since construction (or the last
    /// [`SpectralCache::reset_stats`]).
    pub fn stats(&self) -> SpectralCacheStats {
        self.stats
    }

    /// Zeroes the counters (entries are kept).
    pub fn reset_stats(&mut self) {
        self.stats = SpectralCacheStats::default();
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The cache key of a `(user, ground set)` identity. Collisions are
    /// harmless: entries also store the exact identity and a mismatch
    /// classifies as a cold recompute that replaces the colliding entry.
    pub(crate) fn key_of(user: usize, items: &[usize]) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        user.hash(&mut h);
        items.hash(&mut h);
        h.finish()
    }

    /// Classifies a lookup and bumps the matching counter. `q` is the
    /// instance's current quality vector, `path` the spectrum path the
    /// workspace is about to take, `jitter` the `ε` of the tailored kernel.
    pub(crate) fn classify(
        &mut self,
        key: u64,
        user: usize,
        items: &[usize],
        q: &[f64],
        path: SpectrumPath,
        jitter: f64,
    ) -> SpectralDecision {
        self.tick += 1;
        if self.capacity == 0 || q.iter().any(|v| !v.is_finite()) {
            self.stats.cold += 1;
            return SpectralDecision::Cold;
        }
        let decision = match self.entries.get_mut(&key) {
            Some(e)
                if e.user == user
                    && e.items == items
                    && e.path == path
                    && e.jitter.to_bits() == jitter.to_bits()
                    && e.q.len() == q.len()
                    && e.eigen.is_valid() =>
            {
                e.last_used = self.tick;
                let drift = q
                    .iter()
                    .zip(&e.q)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0_f64, f64::max);
                if drift <= self.tol {
                    SpectralDecision::Skip
                } else {
                    SpectralDecision::WarmStart
                }
            }
            _ => SpectralDecision::Cold,
        };
        match decision {
            SpectralDecision::Skip => self.stats.skips += 1,
            SpectralDecision::WarmStart => self.stats.warm_starts += 1,
            SpectralDecision::Cold => self.stats.cold += 1,
        }
        decision
    }

    /// Immutable access to a classified entry (skip path).
    pub(crate) fn entry(&self, key: u64) -> Option<EntryRef<'_>> {
        self.entries.get(&key).map(|e| EntryRef {
            lambda: &e.lambda,
            eigen: &e.eigen,
            item_vectors: &e.item_vectors,
        })
    }

    /// Removes an entry outright — called when the spectrum computation for
    /// its ground set failed, so the next visit is a forced cold recompute.
    pub(crate) fn remove(&mut self, key: u64) {
        self.entries.remove(&key);
    }

    /// Stores (or refreshes) an entry from freshly computed spectral data,
    /// then evicts least-recently-used entries until the cache is within
    /// capacity. No-op when caching is disabled (`capacity = 0`).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn store(
        &mut self,
        key: u64,
        user: usize,
        items: &[usize],
        q: &[f64],
        path: SpectrumPath,
        jitter: f64,
        lambda: &[f64],
        eigen: &SymmetricEigen,
        item_vectors: Option<&Matrix>,
    ) {
        if self.capacity == 0 {
            return;
        }
        debug_assert!(eigen.is_valid() || eigen.dim() == 0);
        // Bump the LRU clock so the stored entry is strictly the newest and
        // survives the shrink below at any `capacity ≥ 1`.
        self.tick += 1;
        let tick = self.tick;
        let entry = self.entries.entry(key).or_insert_with(|| Entry {
            user,
            items: Vec::new(),
            q: Vec::new(),
            path,
            jitter,
            lambda: Vec::new(),
            eigen: SymmetricEigen::default(),
            item_vectors: Matrix::zeros(0, 0),
            last_used: tick,
        });
        entry.user = user;
        entry.items.clear();
        entry.items.extend_from_slice(items);
        entry.q.clear();
        entry.q.extend_from_slice(q);
        entry.path = path;
        entry.jitter = jitter;
        entry.lambda.clear();
        entry.lambda.extend_from_slice(lambda);
        entry.eigen.values.clear();
        entry.eigen.values.extend_from_slice(&eigen.values);
        entry.eigen.vectors.copy_from(&eigen.vectors);
        match item_vectors {
            Some(v) => entry.item_vectors.copy_from(v),
            None => entry.item_vectors.reset(0, 0),
        }
        entry.last_used = self.tick;
        self.shrink_to_capacity();
    }

    /// Exports every valid resident entry as an owned
    /// [`SpectralCacheEntry`], sorted by `(user, ground set)` so the result
    /// is deterministic regardless of hash order. Invalidated decompositions
    /// (solver failures) are not exported — adopting one would only force a
    /// cold recompute anyway.
    pub fn export_entries(&self) -> Vec<SpectralCacheEntry> {
        let mut out = Vec::with_capacity(self.entries.len());
        // lint:allow(determinism): hash order is erased by the sort below —
        // the exported list is keyed and ordered by (user, ground set).
        for e in self.entries.values() {
            if !e.eigen.is_valid() {
                continue;
            }
            out.push(SpectralCacheEntry {
                user: e.user,
                items: e.items.clone(),
                q: e.q.clone(),
                path: e.path,
                jitter: e.jitter,
                lambda: e.lambda.clone(),
                eigen: e.eigen.clone(),
                item_vectors: e.item_vectors.clone(),
            });
        }
        out.sort_by(|a, b| (a.user, &a.items).cmp(&(b.user, &b.items)));
        out
    }

    /// Adopts an exported entry into this cache (LRU position: newest).
    ///
    /// The trainer's update path seeds each pool worker's cache with the
    /// entries whose ground sets that worker's chunk will revisit, so the
    /// first visit after a warm-started refresh classifies as a skip or
    /// warm start instead of a cold recompute — cache reuse across the fit
    /// boundary, not just across epochs. No-op when caching is disabled.
    pub fn adopt(&mut self, entry: &SpectralCacheEntry) {
        let item_vectors = if entry.item_vectors.rows() > 0 {
            Some(&entry.item_vectors)
        } else {
            None
        };
        self.store(
            SpectralCache::key_of(entry.user, &entry.items),
            entry.user,
            &entry.items,
            &entry.q,
            entry.path,
            entry.jitter,
            &entry.lambda,
            &entry.eigen,
            item_vectors,
        );
    }

    /// Evicts least-recently-used entries until `len() ≤ capacity`. The
    /// entry touched most recently (the one just stored or classified) has
    /// the newest tick and therefore survives any `capacity ≥ 1`.
    fn shrink_to_capacity(&mut self) {
        while self.entries.len() > self.capacity {
            let evict = self
                .entries
                // lint:allow(determinism): LRU ticks are unique per entry, so
                // `min_by_key` has a single minimum whatever the hash order.
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k)
                .expect("non-empty cache over capacity");
            self.entries.remove(&evict);
            self.stats.evictions += 1;
        }
    }
}

impl std::fmt::Debug for SpectralCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpectralCache")
            .field("tol", &self.tol)
            .field("capacity", &self.capacity)
            .field("entries", &self.entries.len())
            .field("stats", &self.stats)
            .finish()
    }
}

/// Borrowed view of a cached spectrum, consumed by the workspace skip path.
pub(crate) struct EntryRef<'a> {
    pub lambda: &'a [f64],
    pub eigen: &'a SymmetricEigen,
    pub item_vectors: &'a Matrix,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eig2() -> SymmetricEigen {
        SymmetricEigen::new(&Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]])).unwrap()
    }

    #[test]
    fn classify_walks_cold_then_skip_then_warm() {
        let mut cache = SpectralCache::new(1e-6, 8);
        let items = [3usize, 7];
        let q = [1.0, 2.0];
        let key = SpectralCache::key_of(0, &items);
        assert_eq!(
            cache.classify(key, 0, &items, &q, SpectrumPath::Dense, 1e-6),
            SpectralDecision::Cold
        );
        cache.store(
            key,
            0,
            &items,
            &q,
            SpectrumPath::Dense,
            1e-6,
            &[1.0, 3.0],
            &eig2(),
            None,
        );
        // Within tolerance → skip.
        let close = [1.0 + 1e-9, 2.0];
        assert_eq!(
            cache.classify(key, 0, &items, &close, SpectrumPath::Dense, 1e-6),
            SpectralDecision::Skip
        );
        // Beyond tolerance → warm start.
        let far = [1.0 + 1e-3, 2.0];
        assert_eq!(
            cache.classify(key, 0, &items, &far, SpectrumPath::Dense, 1e-6),
            SpectralDecision::WarmStart
        );
        let stats = cache.stats();
        assert_eq!((stats.cold, stats.skips, stats.warm_starts), (1, 1, 1));
    }

    #[test]
    fn mismatches_force_cold() {
        let mut cache = SpectralCache::new(1.0, 8);
        let items = [1usize, 2];
        let q = [1.0, 1.0];
        let key = SpectralCache::key_of(5, &items);
        cache.store(
            key,
            5,
            &items,
            &q,
            SpectrumPath::Dense,
            1e-6,
            &[1.0, 1.0],
            &eig2(),
            None,
        );
        // Different jitter.
        assert_eq!(
            cache.classify(key, 5, &items, &q, SpectrumPath::Dense, 1e-7),
            SpectralDecision::Cold
        );
        // Different path.
        assert_eq!(
            cache.classify(key, 5, &items, &q, SpectrumPath::Dual, 1e-6),
            SpectralDecision::Cold
        );
        // Non-finite quality.
        assert_eq!(
            cache.classify(key, 5, &items, &[f64::NAN, 1.0], SpectrumPath::Dense, 1e-6),
            SpectralDecision::Cold
        );
        // Different ground set under the same key.
        let other = [1usize, 3];
        let other_key = SpectralCache::key_of(5, &other);
        assert_eq!(
            cache.classify(other_key, 5, &other, &q, SpectrumPath::Dense, 1e-6),
            SpectralDecision::Cold
        );
    }

    #[test]
    fn invalidated_entry_forces_cold_recompute() {
        let mut cache = SpectralCache::new(1.0, 8);
        let items = [4usize, 9];
        let q = [1.0, 1.0];
        let key = SpectralCache::key_of(2, &items);
        let mut eig = eig2();
        eig.invalidate();
        cache.store(
            key,
            2,
            &items,
            &q,
            SpectrumPath::Dense,
            1e-6,
            &[],
            &eig,
            None,
        );
        assert_eq!(
            cache.classify(key, 2, &items, &q, SpectrumPath::Dense, 1e-6),
            SpectralDecision::Cold,
            "an invalidated cached decomposition must never be reused"
        );
    }

    #[test]
    fn eviction_shrinks_down_to_capacity() {
        let mut cache = SpectralCache::new(1.0, 4);
        for u in 0..4usize {
            let items = [u, u + 1];
            let key = SpectralCache::key_of(u, &items);
            cache.store(
                key,
                u,
                &items,
                &[1.0, 1.0],
                SpectrumPath::Dense,
                1e-6,
                &[1.0, 1.0],
                &eig2(),
                None,
            );
        }
        assert_eq!(cache.len(), 4);
        // Shrink the budget and store once more: the cache must come down to
        // the *new* capacity immediately, not just stay one-in-one-out.
        cache.capacity = 2;
        let items = [9usize, 10];
        let key = SpectralCache::key_of(9, &items);
        cache.store(
            key,
            9,
            &items,
            &[1.0, 1.0],
            SpectrumPath::Dense,
            1e-6,
            &[1.0, 1.0],
            &eig2(),
            None,
        );
        assert_eq!(cache.len(), 2);
        assert!(cache.stats().evictions >= 3);
        // The just-stored entry survives.
        assert_eq!(
            cache.classify(key, 9, &items, &[1.0, 1.0], SpectrumPath::Dense, 1e-6),
            SpectralDecision::Skip
        );
    }

    #[test]
    fn export_adopt_round_trips_entries_across_caches() {
        let mut cache = SpectralCache::new(1e-6, 8);
        for u in 0..3usize {
            let items = [u, u + 5];
            let key = SpectralCache::key_of(u, &items);
            cache.store(
                key,
                u,
                &items,
                &[1.0 + u as f64, 2.0],
                SpectrumPath::Dense,
                1e-6,
                &[1.0, 3.0],
                &eig2(),
                None,
            );
        }
        // One invalidated entry must not be exported.
        let bad = [9usize, 10];
        let bad_key = SpectralCache::key_of(9, &bad);
        let mut eig = eig2();
        eig.invalidate();
        cache.store(
            bad_key,
            9,
            &bad,
            &[1.0, 1.0],
            SpectrumPath::Dense,
            1e-6,
            &[],
            &eig,
            None,
        );

        let exported = cache.export_entries();
        assert_eq!(exported.len(), 3, "invalid entries are dropped");
        // Sorted by (user, items) — deterministic regardless of hash order.
        assert!(exported
            .windows(2)
            .all(|w| (w[0].user, &w[0].items) < (w[1].user, &w[1].items)));

        // Adopting into a fresh cache makes the first revisit a skip.
        let mut next = SpectralCache::new(1e-6, 8);
        for entry in &exported {
            next.adopt(entry);
        }
        assert_eq!(next.len(), 3);
        for u in 0..3usize {
            let items = [u, u + 5];
            let key = SpectralCache::key_of(u, &items);
            assert_eq!(
                next.classify(
                    key,
                    u,
                    &items,
                    &[1.0 + u as f64, 2.0],
                    SpectrumPath::Dense,
                    1e-6
                ),
                SpectralDecision::Skip,
                "adopted entry for user {u} must skip on an identical revisit"
            );
        }
        // A drifted revisit warm-starts instead.
        let key = SpectralCache::key_of(0, &[0, 5]);
        assert_eq!(
            next.classify(key, 0, &[0, 5], &[1.5, 2.0], SpectrumPath::Dense, 1e-6),
            SpectralDecision::WarmStart
        );
    }

    #[test]
    fn snapshot_sorts_and_dedupes_merged_worker_exports() {
        let mut a = SpectralCache::new(1e-6, 8);
        let mut b = SpectralCache::new(1e-6, 8);
        for (cache, user) in [(&mut a, 2usize), (&mut b, 1usize)] {
            let items = [user, user + 1];
            let key = SpectralCache::key_of(user, &items);
            cache.store(
                key,
                user,
                &items,
                &[1.0, 1.0],
                SpectrumPath::Dense,
                1e-6,
                &[1.0, 3.0],
                &eig2(),
                None,
            );
        }
        // Duplicate identity on both workers (can only happen if an instance
        // migrated workers mid-run): snapshot keeps one.
        let dup = [7usize, 8];
        for cache in [&mut a, &mut b] {
            let key = SpectralCache::key_of(7, &dup);
            cache.store(
                key,
                7,
                &dup,
                &[1.0, 1.0],
                SpectrumPath::Dense,
                1e-6,
                &[1.0, 3.0],
                &eig2(),
                None,
            );
        }
        let mut merged = a.export_entries();
        merged.extend(b.export_entries());
        let snapshot = SpectralSnapshot::from_entries(merged);
        assert_eq!(snapshot.len(), 3);
        let ids: Vec<usize> = snapshot.entries().iter().map(|e| e.user()).collect();
        assert_eq!(ids, vec![1, 2, 7], "sorted by (user, items)");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = SpectralCache::new(1.0, 0);
        let items = [0usize, 1];
        let key = SpectralCache::key_of(0, &items);
        cache.store(
            key,
            0,
            &items,
            &[1.0, 1.0],
            SpectrumPath::Dense,
            1e-6,
            &[1.0, 1.0],
            &eig2(),
            None,
        );
        assert_eq!(cache.len(), 0);
        assert_eq!(
            cache.classify(key, 0, &items, &[1.0, 1.0], SpectrumPath::Dense, 1e-6),
            SpectralDecision::Cold
        );
    }
}
