//! Collection strategies, mirroring `proptest::collection`.

use crate::{SizeRange, Strategy, TestRng};

/// Strategy for `Vec<T>` built from an element strategy and a length spec.
#[derive(Debug, Clone)]
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

/// Generates vectors whose elements come from `element` and whose length
/// comes from `len` (a fixed `usize` or a `Range`/`RangeInclusive<usize>`).
pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
