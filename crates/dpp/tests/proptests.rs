//! Property-based tests for the DPP crate: invariants that must hold for any
//! PSD kernel, not just the hand-picked examples in the unit tests.

use lkp_dpp::{
    enumerate_subsets, esp, grad, greedy_map_dual_with, kdpp::KDpp, map, DppError, DppKernel,
    DualMapWorkspace, DUAL_BREAKDOWN_GUARD,
};
use lkp_linalg::Matrix;
use proptest::prelude::*;

/// Random `m × d` row factor with continuous entries (coarse grids would
/// manufacture exact greedy ties that a dense-vs-dual comparison could not
/// tell apart from real agreement).
fn low_rank_factor(m: usize, d: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.0..1.0_f64, m * d)
        .prop_map(move |data| Matrix::from_vec(m, d, data))
}

/// Dense `B·Bᵀ + jitter·I` — exactly the kernel the dual path serves implicitly.
fn densify(b: &Matrix, jitter: f64) -> Matrix {
    let m = b.rows();
    let mut l = Matrix::from_fn(m, m, |i, j| lkp_linalg::ops::dot(b.row(i), b.row(j)));
    for i in 0..m {
        l[(i, i)] += jitter;
    }
    l
}

/// Random PSD kernel `GᵀG + 0.2·I` of size n.
fn psd_kernel(n: usize) -> impl Strategy<Value = DppKernel> {
    proptest::collection::vec(-1.5..1.5_f64, n * n).prop_map(move |data| {
        let g = Matrix::from_vec(n, n, data);
        let mut k = g.gram();
        for i in 0..n {
            k[(i, i)] += 0.2;
        }
        DppKernel::new(k).expect("square symmetric kernel")
    })
}

/// Random non-negative eigenvalue vector.
fn eigenvalues(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0..5.0_f64, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn esp_newton_identity_holds(lambda in eigenvalues(6)) {
        // e_1 = power sum p_1; e_2 = (p_1² - p_2)/2 — the first two Newton
        // identities.
        let p1: f64 = lambda.iter().sum();
        let p2: f64 = lambda.iter().map(|l| l * l).sum();
        let e1 = esp::elementary_symmetric(&lambda, 1);
        let e2 = esp::elementary_symmetric(&lambda, 2);
        prop_assert!((e1 - p1).abs() < 1e-9 * p1.abs().max(1.0));
        prop_assert!((e2 - (p1 * p1 - p2) / 2.0).abs() < 1e-9 * e2.abs().max(1.0));
    }

    #[test]
    fn esp_is_monotone_in_eigenvalues(lambda in eigenvalues(5), idx in 0usize..5, bump in 0.1..2.0_f64) {
        // ESPs of non-negative values increase when any value increases.
        let before = esp::elementary_symmetric(&lambda, 3);
        let mut bigger = lambda.clone();
        bigger[idx] += bump;
        let after = esp::elementary_symmetric(&bigger, 3);
        prop_assert!(after >= before - 1e-12);
    }

    #[test]
    fn esp_generating_function_identity(lambda in eigenvalues(5)) {
        // Π (1 + λ_i) = Σ_k e_k(λ).
        let product: f64 = lambda.iter().map(|l| 1.0 + l).product();
        let sum: f64 = (0..=5).map(|k| esp::elementary_symmetric(&lambda, k)).sum();
        prop_assert!((product - sum).abs() < 1e-9 * product.max(1.0));
    }

    #[test]
    fn kdpp_probs_are_normalized(kernel in psd_kernel(5), k in 1usize..=4) {
        let kdpp = KDpp::new(kernel, k).unwrap();
        let total: f64 = kdpp.all_subset_probs().unwrap().iter().map(|(_, p)| p).sum();
        prop_assert!((total - 1.0).abs() < 1e-7, "total {total}");
    }

    #[test]
    fn kdpp_normalizer_equals_subset_sum(kernel in psd_kernel(5), k in 1usize..=4) {
        let brute: f64 = enumerate_subsets(5, k)
            .iter()
            .map(|s| kernel.det_subset(s).unwrap())
            .sum();
        let kdpp = KDpp::new(kernel, k).unwrap();
        let z = kdpp.log_normalizer().exp();
        prop_assert!((z - brute).abs() < 1e-7 * brute.max(1.0), "{z} vs {brute}");
    }

    #[test]
    fn marginals_lie_in_unit_interval_and_sum_to_k(kernel in psd_kernel(6), k in 1usize..=5) {
        let kdpp = KDpp::new(kernel, k).unwrap();
        let mut total = 0.0;
        for i in 0..6 {
            let p = kdpp.inclusion_marginal(i).unwrap();
            prop_assert!((0.0..=1.0).contains(&p));
            total += p;
        }
        prop_assert!((total - k as f64).abs() < 1e-6);
    }

    #[test]
    fn score_identity_expectation_of_gradient_vanishes(kernel in psd_kernel(4), k in 1usize..=3) {
        let kdpp = KDpp::new(kernel, k).unwrap();
        let mut acc = Matrix::zeros(4, 4);
        for (s, p) in kdpp.all_subset_probs().unwrap() {
            let g = grad::grad_log_prob(&kdpp, &s).unwrap();
            acc.add_scaled(p, &g).unwrap();
        }
        prop_assert!(acc.max_abs() < 1e-6, "residual {}", acc.max_abs());
    }

    #[test]
    fn fast_greedy_agrees_with_naive(kernel in psd_kernel(7), k in 1usize..=5) {
        let fast = map::greedy_map(&kernel, k).unwrap();
        let naive = map::greedy_map_naive(&kernel, k).unwrap();
        // Ties can be broken differently only with exactly equal gains, which
        // has measure zero for random kernels; require identical output.
        prop_assert_eq!(fast.items, naive.items);
        prop_assert!((fast.log_det - naive.log_det).abs() < 1e-7);
    }

    #[test]
    fn greedy_never_beats_exhaustive(kernel in psd_kernel(6), k in 1usize..=4) {
        let greedy = map::greedy_map(&kernel, k).unwrap();
        let opt = map::exhaustive_map(&kernel, k).unwrap();
        prop_assert!(greedy.log_det <= opt.log_det + 1e-8);
    }

    #[test]
    fn greedy_vs_exhaustive_on_small_ground_sets(kernel in psd_kernel(12), k in 1usize..=4) {
        // m = 12 is the largest ground set where exhaustive enumeration is
        // still cheap (C(12,4) = 495). Greedy must (a) never beat the
        // optimum, (b) *be* the optimum at k = 1 (both are the diagonal
        // argmax), and (c) select exactly k items on these full-rank kernels.
        let greedy = map::greedy_map(&kernel, k).unwrap();
        let opt = map::exhaustive_map(&kernel, k).unwrap();
        prop_assert!(greedy.log_det <= opt.log_det + 1e-8);
        prop_assert_eq!(greedy.items.len(), k);
        if k == 1 {
            prop_assert_eq!(&greedy.items, &opt.items);
            prop_assert!((greedy.log_det - opt.log_det).abs() < 1e-9);
        }
    }

    #[test]
    fn map_workspace_path_is_bitwise_identical(kernel in psd_kernel(12), k in 1usize..=8) {
        // The serving-side workspace entry point must reproduce the
        // allocating wrapper exactly — same selection, same log_det bits —
        // including when the workspace is reused across differently-shaped
        // calls (the warm-up run below leaves stale state behind).
        let mut ws = map::MapWorkspace::new();
        map::greedy_map_with(kernel.matrix(), (k + 3).min(12), &mut ws).unwrap();
        map::greedy_map_with(kernel.matrix(), k, &mut ws).unwrap();
        let fresh = map::greedy_map(&kernel, k).unwrap();
        prop_assert_eq!(ws.items(), &fresh.items[..]);
        prop_assert_eq!(ws.log_det().to_bits(), fresh.log_det.to_bits());
    }

    #[test]
    fn dual_greedy_matches_dense_greedy_step_for_step(b in low_rank_factor(16, 4), k in 1usize..=10) {
        // The dual recursion reassociates the dense path's arithmetic but
        // must make the same decisions: identical selections and per-step
        // marginal gains within 1e-10 relative.
        let l = densify(&b, 0.05);
        let mut dense = map::MapWorkspace::new();
        map::greedy_map_with(&l, k, &mut dense).unwrap();
        let mut dual = DualMapWorkspace::new();
        greedy_map_dual_with(&b, 0.05, k, &mut dual).unwrap();
        prop_assert_eq!(dense.items(), dual.items());
        prop_assert_eq!(dense.gains().len(), dual.gains().len());
        for (t, (gd, gl)) in dense.gains().iter().zip(dual.gains()).enumerate() {
            prop_assert!(
                (gd - gl).abs() <= 1e-10 * gd.abs().max(1.0),
                "step {t}: dense gain {gd} vs dual {gl}"
            );
        }
    }

    #[test]
    fn dual_greedy_never_beats_exhaustive_on_small_ground_sets(b in low_rank_factor(12, 5), k in 1usize..=4) {
        // m = 12 keeps exhaustive enumeration cheap (C(12,4) = 495). The
        // dual greedy must never beat the optimum, must select exactly k
        // items on these jittered full-rank kernels, and must *be* the
        // optimum at k = 1 (both are the diagonal argmax).
        let kernel = DppKernel::new(densify(&b, 0.2)).unwrap();
        let opt = map::exhaustive_map(&kernel, k).unwrap();
        let mut dual = DualMapWorkspace::new();
        greedy_map_dual_with(&b, 0.2, k, &mut dual).unwrap();
        prop_assert!(dual.log_det() <= opt.log_det + 1e-8,
            "dual {} beats exhaustive {}", dual.log_det(), opt.log_det);
        prop_assert_eq!(dual.items().len(), k);
        if k == 1 {
            prop_assert_eq!(dual.items(), &opt.items[..]);
            prop_assert!((dual.log_det() - opt.log_det).abs() < 1e-9);
        }
    }

    #[test]
    fn dual_breakdown_injection_errors_then_recovers(b in low_rank_factor(10, 6), k in 1usize..=6) {
        // A negative guard makes floor > 0, so the first residual update
        // trips NumericalBreakdown deterministically — the fault-injection
        // lever the serving fallback tests rely on. The same workspace must
        // then serve correctly once the guard is sane again.
        let mut ws = DualMapWorkspace::new();
        ws.guard = -1.0;
        prop_assert!(matches!(
            greedy_map_dual_with(&b, 1e-6, k, &mut ws),
            Err(DppError::NumericalBreakdown)
        ));
        ws.guard = DUAL_BREAKDOWN_GUARD;
        greedy_map_dual_with(&b, 1e-6, k, &mut ws).unwrap();
        prop_assert_eq!(ws.items().len(), k);
        let mut dense = map::MapWorkspace::new();
        map::greedy_map_with(&densify(&b, 1e-6), k, &mut dense).unwrap();
        prop_assert_eq!(dense.items(), ws.items());
    }

    #[test]
    fn standard_dpp_total_probability_is_one(kernel in psd_kernel(5)) {
        let mut total = 0.0;
        for k in 0..=5 {
            for s in enumerate_subsets(5, k) {
                total += kernel.standard_dpp_log_prob(&s).unwrap().exp();
            }
        }
        prop_assert!((total - 1.0).abs() < 1e-7, "total {total}");
    }

    #[test]
    fn conditioning_on_exclusion_renormalizes(kernel in psd_kernel(5), excluded in 0usize..5) {
        // The conditional law over the complement must itself be a valid
        // standard DPP: total probability 1 over all remaining subsets.
        let cond = lkp_dpp::conditional::condition_on_exclusion(&kernel, &[excluded]).unwrap();
        let mut total = 0.0;
        for k in 0..=4 {
            for s in enumerate_subsets(4, k) {
                total += cond.kernel.standard_dpp_log_prob(&s).unwrap().exp();
            }
        }
        prop_assert!((total - 1.0).abs() < 1e-7, "conditional total {total}");
    }

    #[test]
    fn conditional_marginals_exceed_unconditional_for_dissimilar_items(kernel in psd_kernel(4)) {
        // Inclusion conditioning redistributes mass but keeps marginals in
        // [0, 1]; verify range plus the law of total probability against the
        // joint enumeration.
        for item in 1..4 {
            let p = lkp_dpp::conditional::inclusion_conditional_marginal(&kernel, &[0], item);
            if let Ok(p) = p {
                prop_assert!((0.0..=1.0).contains(&p), "marginal {p} out of range");
            }
        }
    }

    #[test]
    fn dual_spectrum_matches_full_kernel(data in proptest::collection::vec(-1.0..1.0_f64, 6 * 3)) {
        let v = Matrix::from_vec(6, 3, data);
        let lowrank = lkp_dpp::LowRankKernel::new(v);
        let Ok(dual) = lkp_dpp::dual::DualSpectrum::new(&lowrank, 1e-10) else {
            return Ok(()); // numerically zero kernel — nothing to check
        };
        let full = DppKernel::new(lowrank.full_matrix()).unwrap();
        let mut full_lambda = full.nonneg_eigenvalues().unwrap();
        full_lambda.sort_by(|a, b| b.partial_cmp(a).unwrap());
        for (i, &l) in dual.eigenvalues().iter().enumerate() {
            prop_assert!((l - full_lambda[i]).abs() < 1e-7 * l.max(1.0),
                "eigenvalue {i}: dual {l} vs full {}", full_lambda[i]);
        }
        // Normalizers agree wherever both are defined.
        for k in 1..=dual.rank() {
            let dual_z = dual.log_normalizer(k);
            let full_z = lkp_dpp::esp::log_elementary_symmetric(&full_lambda, k);
            prop_assert!((dual_z - full_z).abs() < 1e-6, "k={k}: {dual_z} vs {full_z}");
        }
    }

    #[test]
    fn fast_leave_one_out_matches_brute_force(lambda in eigenvalues(9), k in 0usize..=8) {
        // The O(m·k) prefix/suffix merge against the O(m²·k) direct
        // recomputation, at ≤1e-10 relative error (acceptance bound).
        let fast = esp::leave_one_out(&lambda, k);
        let naive = esp::leave_one_out_naive(&lambda, k);
        prop_assert_eq!(fast.len(), naive.len());
        for (i, (f, n)) in fast.iter().zip(&naive).enumerate() {
            prop_assert!(
                (f - n).abs() <= 1e-10 * n.abs().max(1.0),
                "i={i} k={k}: fast {f} vs naive {n}"
            );
        }
    }

    #[test]
    fn esp_all_matches_esp_table_last_column(lambda in eigenvalues(7), k in 0usize..=7) {
        // elementary_symmetric_all must agree with the full DP table's last
        // column — the cross-check pinned when the dead inner bound was
        // removed from the single-pass recurrence.
        let all = esp::elementary_symmetric_all(&lambda, k);
        let table = esp::esp_table(&lambda, k);
        prop_assert_eq!(all.len(), k + 1);
        for l in 0..=k {
            let from_table = table[l][lambda.len()];
            prop_assert!(
                (all[l] - from_table).abs() <= 1e-12 * from_table.abs().max(1.0),
                "l={l}: all {} vs table {from_table}", all[l]
            );
        }
    }
}
