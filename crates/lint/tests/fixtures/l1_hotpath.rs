//! L1 fixture: seeded hot-path allocation violations. Linted under a
//! pretend hot-path module path by `tests/engine.rs`, which asserts the
//! exact `line` of every finding — renumbering this file breaks that test.

pub fn hot(xs: &[f64]) -> Vec<f64> {
    let mut out = Vec::new(); // line 6: Vec::new
    for &x in xs {
        out.push(x);
    }
    out
}

pub fn table(n: usize) -> Vec<f64> {
    vec![0.0; n] // line 14: vec!
}

pub fn owned(xs: &[f64]) -> Vec<f64> {
    xs.to_vec() // line 18: to_vec
}

pub fn gathered(xs: &[f64]) -> Vec<f64> {
    xs.iter().map(|&x| x * 2.0).collect() // line 22: collect
}

pub fn boxed(x: f64) -> Box<f64> {
    Box::new(x) // line 26: Box::new
}

pub fn label(user: usize) -> String {
    format!("user-{user}") // line 30: format!
}

pub fn name() -> String {
    String::from("ranker") // line 34: String::from
}

// A field *named* collect must not fire (no call site follows).
pub struct Stats {
    pub collect: usize,
}

pub fn read(s: &Stats) -> usize {
    s.collect
}

#[cfg(test)]
mod tests {
    // Test code is exempt from L1: this must NOT be a finding.
    #[test]
    fn alloc_in_tests_is_fine() {
        let v = vec![1, 2, 3];
        assert_eq!(v.iter().copied().collect::<Vec<_>>().len(), 3);
    }
}
