//! The paper's six LkP variant names (Table II) decomposed into settings.
//!
//! * `P` / `NP` — positive-only (Eq. 7) vs negative-aware (Eq. 10) objective.
//! * `R` / `S` — random vs sequential (sliding-window) target construction.
//! * `E` — diversity factor from trainable item embeddings (RBF) instead of
//!   the pre-learned kernel. Only the S combinations are evaluated with E in
//!   the paper, "as S mode is more suitable for LkP".

use crate::objective::LkpKind;
use lkp_data::TargetSelection;

/// One of the paper's six LkP variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LkpVariant {
    /// Positive-only, random targets.
    Pr,
    /// Positive-only, sequential targets.
    Ps,
    /// Negative-aware, random targets.
    Npr,
    /// Negative-aware, sequential targets.
    Nps,
    /// Positive-only, sequential targets, embedding (RBF) diversity kernel.
    Pse,
    /// Negative-aware, sequential targets, embedding (RBF) diversity kernel.
    Npse,
}

impl LkpVariant {
    /// All six variants in Table II's row order.
    pub const ALL: [LkpVariant; 6] = [
        LkpVariant::Pr,
        LkpVariant::Ps,
        LkpVariant::Npr,
        LkpVariant::Nps,
        LkpVariant::Pse,
        LkpVariant::Npse,
    ];

    /// The objective formulation (P vs NP).
    pub fn kind(self) -> LkpKind {
        match self {
            LkpVariant::Pr | LkpVariant::Ps | LkpVariant::Pse => LkpKind::PositiveOnly,
            LkpVariant::Npr | LkpVariant::Nps | LkpVariant::Npse => LkpKind::NegativeAware,
        }
    }

    /// The instance construction (R vs S).
    pub fn target_selection(self) -> TargetSelection {
        match self {
            LkpVariant::Pr | LkpVariant::Npr => TargetSelection::Random,
            _ => TargetSelection::Sequential,
        }
    }

    /// Whether the diversity factor is the trainable-embedding RBF kernel.
    pub fn uses_embedding_kernel(self) -> bool {
        matches!(self, LkpVariant::Pse | LkpVariant::Npse)
    }

    /// The paper's row label.
    pub fn name(self) -> &'static str {
        match self {
            LkpVariant::Pr => "PR",
            LkpVariant::Ps => "PS",
            LkpVariant::Npr => "NPR",
            LkpVariant::Nps => "NPS",
            LkpVariant::Pse => "PSE",
            LkpVariant::Npse => "NPSE",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposition_matches_names() {
        assert_eq!(LkpVariant::Pr.kind(), LkpKind::PositiveOnly);
        assert_eq!(LkpVariant::Npse.kind(), LkpKind::NegativeAware);
        assert_eq!(LkpVariant::Pr.target_selection(), TargetSelection::Random);
        assert_eq!(
            LkpVariant::Ps.target_selection(),
            TargetSelection::Sequential
        );
        assert!(!LkpVariant::Nps.uses_embedding_kernel());
        assert!(LkpVariant::Pse.uses_embedding_kernel());
    }

    #[test]
    fn all_variants_have_distinct_names() {
        let names: Vec<&str> = LkpVariant::ALL.iter().map(|v| v.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn e_variants_are_sequential_only() {
        for v in LkpVariant::ALL {
            if v.uses_embedding_kernel() {
                assert_eq!(v.target_selection(), TargetSelection::Sequential);
            }
        }
    }
}
