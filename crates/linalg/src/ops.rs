//! Slice-level vector operations shared across the workspace.
//!
//! These avoid a dedicated vector type: model embeddings and score vectors
//! are plain `&[f64]` slices, and all hot per-instance math goes through
//! these helpers.

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// In-place `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place `x *= alpha`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Euclidean norm.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Squared Euclidean distance between two equal-length slices.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

/// Numerically stable log-sum-exp.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        return m;
    }
    m + xs.iter().map(|&x| (x - m).exp()).sum::<f64>().ln()
}

/// Logistic sigmoid, stable for large |x|.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// `log(sigmoid(x))`, stable for large |x|.
#[inline]
pub fn log_sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        -(-x).exp().ln_1p()
    } else {
        x - x.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_axpy_scale() {
        let a = [1.0, 2.0, 3.0];
        let mut b = [4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        axpy(2.0, &a, &mut b);
        assert_eq!(b, [6.0, 9.0, 12.0]);
        scale(0.5, &mut b);
        assert_eq!(b, [3.0, 4.5, 6.0]);
    }

    #[test]
    fn log_sum_exp_matches_naive() {
        let xs: [f64; 3] = [0.1, -0.3, 2.0];
        let naive = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_handles_large_values() {
        let xs = [1000.0, 1000.0];
        assert!((log_sum_exp(&xs) - (1000.0 + 2.0_f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn sigmoid_is_stable_and_symmetric() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
        assert!((sigmoid(50.0) - 1.0).abs() < 1e-15);
        assert!(sigmoid(-800.0) >= 0.0);
        for x in [-3.0, -0.5, 0.7, 4.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn log_sigmoid_matches_ln_of_sigmoid() {
        for x in [-5.0, -1.0, 0.0, 1.0, 5.0] {
            assert!((log_sigmoid(x) - sigmoid(x).ln()).abs() < 1e-10);
        }
        // And doesn't underflow to -inf prematurely for very negative x.
        assert!(log_sigmoid(-700.0).is_finite());
    }

    #[test]
    fn sq_dist_basics() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
    }
}
