//! L2 `lock-scope`: expensive work must never run while a `.lock()` guard is
//! live — the exact bug class PR 5's `SharedKernelCache` was built to avoid
//! (kernel assembly under a shard lock serializes every concurrent miss on
//! that shard).
//!
//! Scope tracking is lexical, tuned to this repo's rustfmt-normal idioms:
//!
//! - `let guard = x.lock()…;` opens a guard scope that runs to the end of
//!   the enclosing brace block, or to an explicit `drop(guard)` — whichever
//!   comes first.
//! - A `.lock()` with no `let` on its line is a temporary: the guard lives
//!   only until that statement's end, so only its own line is checked.
//!
//! Within a live scope, any call to an identifier starting with one of the
//! configured expensive prefixes (`assemble`, `compute`, `eigen`, `gram`,
//! `matmul`, `prewarm`) is a finding.

use super::{ident_before, is_ident, next_nonspace_in, prefix_matches, token_matches};
use crate::{FileView, Finding, Lint, LintConfig};

/// A live guard: the region of lines still under its lock.
struct GuardScope {
    /// Binding name (`None` for a same-line temporary).
    name: Option<String>,
    /// Brace depth at the `.lock()` line's start; the scope dies when a
    /// line *starts* shallower than the binding's statement.
    depth: usize,
    /// First line (0-based) of the scope.
    start: usize,
    /// Last line (0-based, inclusive) of the scope.
    end: usize,
}

/// Runs L2 over one file.
pub fn check(view: &FileView<'_>, config: &LintConfig, findings: &mut Vec<Finding>) {
    let code = &view.scanned.code;
    let scopes = guard_scopes(view);
    for scope in &scopes {
        for (idx, line) in code
            .iter()
            .enumerate()
            .take(scope.end + 1)
            .skip(scope.start)
        {
            if view.in_test[idx] {
                continue;
            }
            for prefix in &config.expensive_call_prefixes {
                for at in prefix_matches(line, prefix) {
                    // The match must start an identifier that is *called*:
                    // walk to the identifier's end, then require `(`. (Not
                    // `:` — that would misfire on struct-field initializers
                    // like `prewarmed: guard.prewarmed`.)
                    let end = at
                        + line[at..]
                            .char_indices()
                            .take_while(|&(_, c)| is_ident(c))
                            .last()
                            .map_or(0, |(i, c)| i + c.len_utf8());
                    if !next_nonspace_in(line, end, &['(']) {
                        continue;
                    }
                    let guard = scope.name.as_deref().unwrap_or("<temporary>");
                    findings.push(Finding {
                        path: view.rel_path.to_string(),
                        line: idx + 1,
                        lint: Lint::LockScope,
                        message: format!(
                            "expensive call `{}…` inside the scope of lock guard \
                             `{guard}` (taken line {}) — move the work outside the \
                             lock or justify with `lint:allow(lock-scope): <reason>`",
                            &line[at..end],
                            scope.start + 1,
                        ),
                    });
                }
            }
        }
    }
}

/// Finds every `.lock()` call and derives its guard's lexical scope.
fn guard_scopes(view: &FileView<'_>) -> Vec<GuardScope> {
    let code = &view.scanned.code;
    let mut scopes = Vec::new();
    for (idx, line) in code.iter().enumerate() {
        if view.in_test[idx] {
            continue;
        }
        let Some(at) = line.find(".lock()") else {
            continue;
        };
        // A let binding is only a *guard* binding when the statement ends
        // right after the lock (modulo `.unwrap()` / `.expect(…)` / `?`):
        // `let len = x.lock().unwrap().len();` consumes the guard within the
        // statement, so it scopes like a temporary.
        let name = binding_name(line, at)
            .filter(|_| guard_reaches_statement_end(&line[at + ".lock()".len()..]));
        let end = match &name {
            // Temporary guard: dies at the statement's end; the statement is
            // (in rustfmt-normal code) this line.
            None => idx,
            Some(name) => {
                let depth = view.depth_start[idx];
                let mut end = code.len() - 1;
                for (j, later) in code.iter().enumerate().skip(idx + 1) {
                    if view.depth_start[j] < depth.max(1) {
                        end = j - 1;
                        break;
                    }
                    let dropped = token_matches(later, "drop").iter().any(|&d| {
                        later[d + 4..]
                            .trim_start()
                            .strip_prefix('(')
                            .is_some_and(|rest| rest.trim_start().starts_with(name.as_str()))
                    });
                    if dropped {
                        end = j;
                        break;
                    }
                }
                end
            }
        };
        scopes.push(GuardScope {
            name,
            depth: view.depth_start[idx],
            start: idx,
            end,
        });
    }
    // depth recorded for future analyzers; silence the unused-field warning
    // without dropping the structural information.
    let _ = scopes.first().map(|s| s.depth);
    scopes
}

/// Whether the statement tail after `.lock()` keeps the guard alive past
/// the statement: only unwrap/expect adapters and `?` may intervene before
/// the terminating `;`. (String contents are already blanked, so
/// `.expect("shard lock")` appears here as `.expect("")`.)
fn guard_reaches_statement_end(tail: &str) -> bool {
    let mut rest = tail.trim();
    while let Some(next) = rest
        .strip_prefix(".unwrap()")
        .or_else(|| rest.strip_prefix(".expect(\"\")"))
        .or_else(|| rest.strip_prefix('?'))
    {
        rest = next.trim_start();
    }
    rest.starts_with(';')
}

/// If the `.lock()` at `at` is bound by a `let` on the same line, the
/// binding's name (the identifier directly before `=`, so `let mut g =`,
/// `if let Ok(mut g) =`, and `while let Some(g) =` all resolve to `g`).
fn binding_name(line: &str, at: usize) -> Option<String> {
    let head = &line[..at];
    let let_pos = token_matches(head, "let").into_iter().next_back()?;
    let eq = head[let_pos..].find('=').map(|p| let_pos + p)?;
    ident_before(head, eq)
        .filter(|name| *name != "mut" && *name != "let")
        .map(|name| name.to_string())
}
