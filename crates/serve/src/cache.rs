//! Bounded per-user cache of assembled diversity submatrices.

use lkp_dpp::LowRankKernel;
use lkp_linalg::Matrix;
use std::collections::HashMap;

struct CacheEntry {
    candidates: Vec<usize>,
    k_sub: Matrix,
    last_used: u64,
}

/// A bounded per-user cache of candidate-set diversity submatrices `K_C`.
///
/// `K_C = V_C·V_Cᵀ` depends only on the candidate set — not on the user's
/// scores — so for the common serving shape (each user's candidate pool is
/// stable across requests) the `O(|C|²·d)` assembly is paid once per user
/// and amortized afterwards. Entries are keyed by user and validated
/// against the exact candidate list: a changed pool replaces the entry
/// instead of serving a stale kernel. Eviction is least-recently-used, and
/// every call shrinks the cache **down to** the current `capacity` — so
/// lowering the capacity of a long-lived cache takes effect on the next
/// access instead of leaving it permanently over its bound.
///
/// Cached matrices are bit-exact copies of what a miss recomputes
/// ([`LowRankKernel::submatrix_into`] is deterministic), so cache hits can
/// never change a served list.
#[derive(Default)]
pub(crate) struct KernelCache {
    entries: HashMap<usize, CacheEntry>,
    /// Assembly target when caching is disabled (`capacity == 0`).
    uncached: Matrix,
    tick: u64,
    hits: u64,
    misses: u64,
    /// `capacity == 0` passthrough assemblies — deliberate cache bypasses,
    /// counted separately so they cannot skew hit-rate reporting.
    bypasses: u64,
}

impl KernelCache {
    /// Returns the diversity submatrix for `(user, candidates)` and whether
    /// it was served from cache.
    pub(crate) fn get_or_assemble(
        &mut self,
        user: usize,
        candidates: &[usize],
        kernel: &LowRankKernel,
        capacity: usize,
    ) -> (&Matrix, bool) {
        self.tick += 1;
        if capacity == 0 {
            // Caching disabled: a deliberate bypass, not a miss — entries
            // from an earlier non-zero capacity are dropped eagerly.
            self.bypasses += 1;
            self.entries.clear();
            kernel
                .submatrix_into(candidates, &mut self.uncached)
                .expect("candidates validated by caller");
            return (&self.uncached, false);
        }
        if let Some(entry) = self.entries.get_mut(&user) {
            if entry.candidates == candidates {
                entry.last_used = self.tick;
                self.hits += 1;
                // The hit has the newest tick, so it survives the shrink at
                // any capacity ≥ 1 even if the budget was just lowered.
                self.shrink_to(capacity);
                let entry = &self.entries[&user];
                return (&entry.k_sub, true);
            }
        }
        self.misses += 1;
        let entry = self.entries.entry(user).or_insert_with(|| CacheEntry {
            candidates: Vec::new(),
            k_sub: Matrix::zeros(0, 0),
            last_used: 0,
        });
        entry.candidates.clear();
        entry.candidates.extend_from_slice(candidates);
        kernel
            .submatrix_into(candidates, &mut entry.k_sub)
            .expect("candidates validated by caller");
        entry.last_used = self.tick;
        self.shrink_to(capacity);
        (&self.entries[&user].k_sub, false)
    }

    /// Evicts least-recently-used entries until at most `bound` users are
    /// resident. The entry touched in the current call holds the newest tick
    /// and is therefore the last candidate for eviction.
    fn shrink_to(&mut self, bound: usize) {
        while self.entries.len() > bound {
            let evict = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&u, _)| u)
                .expect("non-empty cache over capacity");
            self.entries.remove(&evict);
        }
    }

    /// `(hits, misses)` counters since construction. Disabled-cache
    /// passthroughs (`capacity == 0`) are counted in
    /// [`KernelCache::bypasses`], not here, so a hit rate derived from these
    /// two reflects only lookups the cache was actually allowed to serve.
    pub(crate) fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Assemblies that bypassed the cache because it was disabled.
    pub(crate) fn bypasses(&self) -> u64 {
        self.bypasses
    }

    /// Resident users.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> LowRankKernel {
        let v = Matrix::from_fn(10, 3, |r, c| (((r * 7 + c * 5) % 9) as f64) * 0.3 - 1.0);
        LowRankKernel::new(v).normalized()
    }

    #[test]
    fn hit_returns_bit_exact_matrix() {
        let kern = kernel();
        let mut cache = KernelCache::default();
        let cands = vec![1, 4, 7];
        let (first, hit1) = cache.get_or_assemble(0, &cands, &kern, 4);
        let first = first.clone();
        assert!(!hit1);
        let (second, hit2) = cache.get_or_assemble(0, &cands, &kern, 4);
        assert!(hit2);
        assert_eq!(first.as_slice(), second.as_slice());
        let fresh = kern.submatrix(&cands).unwrap();
        assert_eq!(first.as_slice(), fresh.as_slice());
    }

    #[test]
    fn changed_candidates_invalidate_entry() {
        let kern = kernel();
        let mut cache = KernelCache::default();
        cache.get_or_assemble(0, &[1, 2], &kern, 4);
        let (m, hit) = cache.get_or_assemble(0, &[2, 3], &kern, 4);
        assert!(!hit);
        assert_eq!(m.as_slice(), kern.submatrix(&[2, 3]).unwrap().as_slice());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn eviction_keeps_cache_bounded_and_lru() {
        let kern = kernel();
        let mut cache = KernelCache::default();
        cache.get_or_assemble(0, &[1], &kern, 2);
        cache.get_or_assemble(1, &[2], &kern, 2);
        // Touch user 0 so user 1 is the LRU.
        cache.get_or_assemble(0, &[1], &kern, 2);
        cache.get_or_assemble(2, &[3], &kern, 2);
        assert_eq!(cache.len(), 2);
        let (_, hit_user0) = cache.get_or_assemble(0, &[1], &kern, 2);
        assert!(hit_user0, "recently used entry must survive eviction");
        let (_, hit_user1) = cache.get_or_assemble(1, &[2], &kern, 2);
        assert!(!hit_user1, "LRU entry must have been evicted");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let kern = kernel();
        let mut cache = KernelCache::default();
        let (_, hit1) = cache.get_or_assemble(0, &[1, 2], &kern, 0);
        let (_, hit2) = cache.get_or_assemble(0, &[1, 2], &kern, 0);
        assert!(!hit1 && !hit2);
        assert_eq!(cache.len(), 0);
        // Deliberate bypasses must not read as misses in hit-rate stats.
        assert_eq!(cache.stats(), (0, 0));
        assert_eq!(cache.bypasses(), 2);
    }

    #[test]
    fn lowering_capacity_shrinks_an_over_full_cache() {
        let kern = kernel();
        let mut cache = KernelCache::default();
        for u in 0..4 {
            cache.get_or_assemble(u, &[u, u + 1], &kern, 4);
        }
        assert_eq!(cache.len(), 4);
        // Capacity lowered between calls: the next access (here a hit on
        // user 3) must evict down to the new bound, keeping the hit entry.
        let (_, hit) = cache.get_or_assemble(3, &[3, 4], &kern, 1);
        assert!(hit, "the touched entry survives the shrink");
        assert_eq!(cache.len(), 1, "cache must come down to capacity");
        // And a miss-path access under the lowered bound also stays bounded.
        cache.get_or_assemble(7, &[7, 8], &kern, 1);
        assert_eq!(cache.len(), 1);
        let (_, hit7) = cache.get_or_assemble(7, &[7, 8], &kern, 1);
        assert!(hit7, "the freshly inserted entry is the resident one");
    }

    #[test]
    fn toggling_capacity_to_zero_drops_residents() {
        let kern = kernel();
        let mut cache = KernelCache::default();
        cache.get_or_assemble(0, &[1, 2], &kern, 4);
        assert_eq!(cache.len(), 1);
        cache.get_or_assemble(0, &[1, 2], &kern, 0);
        assert_eq!(cache.len(), 0, "disabled cache must not retain entries");
        // Re-enabling starts cold.
        let (_, hit) = cache.get_or_assemble(0, &[1, 2], &kern, 4);
        assert!(!hit);
    }
}
