//! Dense row-major `f64` matrix.

use crate::{LinalgError, Result};
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f64` values.
///
/// This is the workhorse type of the workspace: ground-set kernels, gradients
/// and embedding blocks are all `Matrix` values. Storage is a single
/// contiguous `Vec<f64>` of length `rows * cols`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix with every entry equal to `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Reshapes in place to `rows × cols`, zero-filling every entry.
    ///
    /// The backing buffer is reused whenever its capacity allows, so calling
    /// this on a scratch matrix in a hot loop performs no allocation once the
    /// matrix has reached its steady-state size.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Copies `other` into `self`, reshaping as needed (buffer reused).
    pub fn copy_from(&mut self, other: &Matrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Creates a matrix from a closure evaluated at every `(row, col)` pair.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row-major data. Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from nested row slices. Panics on ragged input.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates an `n × n` diagonal matrix from `diag`.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.data[i * n + i] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the raw row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the raw row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix, returning the row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        debug_assert!(c < self.cols);
        (0..self.rows)
            .map(|r| self.data[r * self.cols + c])
            .collect()
    }

    /// Copy the main diagonal into a new vector.
    pub fn diag(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self.data[i * self.cols + i]).collect()
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// Uses the classic i-k-j loop order so the inner loop walks both operands
    /// contiguously as straight-line axpy updates the compiler auto-vectorizes
    /// (no data-dependent branches in the inner loop).
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(other, &mut out)?;
        Ok(out)
    }

    /// Matrix product `self * other` written into `out` (buffer reused).
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.cols, other.cols),
                got: (other.rows, other.cols),
            });
        }
        out.reset(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &aik) in a_row.iter().enumerate() {
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &bkj) in out_row.iter_mut().zip(b_row) {
                    *o += aik * bkj;
                }
            }
        }
        Ok(())
    }

    /// Matrix–vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.cols, 1),
                got: (v.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|r| crate::ops::dot(self.row(r), v))
            .collect())
    }

    /// Gram product `selfᵀ * self` (always symmetric PSD).
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.gram_into(&mut out);
        out
    }

    /// Gram product `selfᵀ * self` written into `out` (buffer reused).
    ///
    /// Straight-line rank-1 updates: the inner loop is a branch-free axpy the
    /// compiler auto-vectorizes.
    pub fn gram_into(&self, out: &mut Matrix) {
        out.reset(self.cols, self.cols);
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for i in 0..self.cols {
                let ri = row[i];
                let out_row = &mut out.data[i * self.cols..(i + 1) * self.cols];
                for (o, &rj) in out_row.iter_mut().zip(row) {
                    *o += ri * rj;
                }
            }
        }
    }

    /// Principal submatrix indexed by `idx` (rows and columns).
    ///
    /// `idx` entries must be in-bounds; duplicates are allowed (useful for
    /// tests) and preserved.
    pub fn principal_submatrix(&self, idx: &[usize]) -> Result<Matrix> {
        for &i in idx {
            if i >= self.rows || i >= self.cols {
                return Err(LinalgError::IndexOutOfBounds {
                    index: i,
                    bound: self.rows.min(self.cols),
                });
            }
        }
        let mut out = Matrix::zeros(0, 0);
        self.principal_submatrix_into(idx, &mut out)?;
        Ok(out)
    }

    /// Principal submatrix written into `out` (buffer reused).
    pub fn principal_submatrix_into(&self, idx: &[usize], out: &mut Matrix) -> Result<()> {
        for &i in idx {
            if i >= self.rows || i >= self.cols {
                return Err(LinalgError::IndexOutOfBounds {
                    index: i,
                    bound: self.rows.min(self.cols),
                });
            }
        }
        let m = idx.len();
        out.reset(m, m);
        for (a, &i) in idx.iter().enumerate() {
            for (b, &j) in idx.iter().enumerate() {
                out.data[a * m + b] = self.data[i * self.cols + j];
            }
        }
        Ok(())
    }

    /// Gather the given rows into a new `idx.len() × cols` matrix.
    pub fn gather_rows(&self, idx: &[usize]) -> Result<Matrix> {
        let mut out = Matrix::zeros(0, 0);
        self.gather_rows_into(idx, &mut out)?;
        Ok(out)
    }

    /// Gather the given rows into `out` (buffer reused).
    pub fn gather_rows_into(&self, idx: &[usize], out: &mut Matrix) -> Result<()> {
        for &i in idx {
            if i >= self.rows {
                return Err(LinalgError::IndexOutOfBounds {
                    index: i,
                    bound: self.rows,
                });
            }
        }
        out.reset(idx.len(), self.cols);
        for (a, &i) in idx.iter().enumerate() {
            out.row_mut(a).copy_from_slice(self.row(i));
        }
        Ok(())
    }

    /// In-place `self += alpha * other`.
    pub fn add_scaled(&mut self, alpha: f64, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                expected: self.shape(),
                got: other.shape(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// In-place scalar multiplication.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Returns a new matrix with `f` applied element-wise.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Symmetrizes in place: `self = (self + selfᵀ) / 2`. Panics on non-square.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize requires a square matrix");
        let n = self.rows;
        for i in 0..n {
            for j in (i + 1)..n {
                let avg = 0.5 * (self.data[i * n + j] + self.data[j * n + i]);
                self.data[i * n + j] = avg;
                self.data[j * n + i] = avg;
            }
        }
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute difference between two same-shape matrices.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff: shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0_f64, |m, (&a, &b)| m.max((a - b).abs()))
    }

    /// Whether the matrix is symmetric to tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let n = self.rows;
        for i in 0..n {
            for j in (i + 1)..n {
                if (self.data[i * n + j] - self.data[j * n + i]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Trace of a square matrix.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace requires a square matrix");
        self.diag().iter().sum()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{:>12.6}", self[(r, c)])?;
                if c + 1 < self.cols {
                    write!(f, " ")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gram_is_symmetric_and_correct() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let g = a.gram();
        let expected = a.transpose().matmul(&a).unwrap();
        assert!(g.max_abs_diff(&expected) < 1e-12);
        assert!(g.is_symmetric(0.0));
    }

    #[test]
    fn principal_submatrix_picks_rows_and_cols() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 10 + c) as f64);
        let s = a.principal_submatrix(&[1, 3]).unwrap();
        assert_eq!(s, Matrix::from_rows(&[&[11.0, 13.0], &[31.0, 33.0]]));
    }

    #[test]
    fn principal_submatrix_out_of_bounds() {
        let a = Matrix::identity(3);
        assert!(matches!(
            a.principal_submatrix(&[0, 5]),
            Err(LinalgError::IndexOutOfBounds { index: 5, .. })
        ));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.5]]);
        let v = vec![3.0, 4.0];
        assert_eq!(a.matvec(&v).unwrap(), vec![-1.0, 8.0]);
    }

    #[test]
    fn symmetrize_fixes_asymmetry() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[4.0, 3.0]]);
        a.symmetrize();
        assert_eq!(a[(0, 1)], 3.0);
        assert_eq!(a[(1, 0)], 3.0);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn diag_and_trace() {
        let a = Matrix::from_rows(&[&[1.0, 9.0], &[9.0, 2.0]]);
        assert_eq!(a.diag(), vec![1.0, 2.0]);
        assert_eq!(a.trace(), 3.0);
    }

    #[test]
    fn gather_rows_copies() {
        let a = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f64);
        let g = a.gather_rows(&[2, 0]).unwrap();
        assert_eq!(g, Matrix::from_rows(&[&[4.0, 5.0], &[0.0, 1.0]]));
    }
}
