//! Table I — dataset statistics.
//!
//! Prints the statistics of the three synthetic presets next to the paper's
//! reference numbers. At `--scale 1.0` user/item counts match Table I; at the
//! default experiment scale the *ordering* of densities and category counts
//! is preserved (the property the analysis sections rely on).

use lkp_bench::{ExpArgs, PRESETS};
use lkp_data::DatasetStats;

fn main() {
    let args = ExpArgs::parse();
    println!("== Table I: dataset statistics (scale {}) ==", args.scale);
    println!(
        "{:<8} {:>8} {:>8} {:>13} {:>12} {:>10}",
        "Dataset", "#Users", "#Items", "#Interactions", "#Categories", "Density"
    );
    for preset in PRESETS {
        let data = args.dataset(preset);
        let stats = DatasetStats::compute(&data);
        println!("{}", stats.table_row(preset.name()));
    }
    println!();
    println!("paper reference (scale 1.0):");
    println!(
        "{:<8} {:>8} {:>8} {:>13} {:>12}",
        "Beauty", "52.0k", "57.2k", "0.4M", 213
    );
    println!(
        "{:<8} {:>8} {:>8} {:>13} {:>12}",
        "ML", "6.0k", "3.4k", "1.0M", 18
    );
    println!(
        "{:<8} {:>8} {:>8} {:>13} {:>12}",
        "Anime", "73.5k", "12.2k", "1.0M", 43
    );
}
