//! The epoch/mini-batch training loop shared by every criterion.
//!
//! Instance generation lives in `lkp-data`'s planning layer: an
//! [`EpochPlanner`] produces each epoch's [`lkp_data::EpochPlan`] — one
//! contiguous flat arena of ground sets — under a [`SamplingPolicy`]
//! ([`SamplingPolicy::ResampleEachEpoch`] reproduces the historical inline
//! sampler draw-for-draw; [`SamplingPolicy::FrozenNegatives`] /
//! [`SamplingPolicy::PeriodicRefresh`] reuse plans across epochs so
//! revisited ground sets hit the per-worker spectral cache). The plan's
//! [`lkp_data::BatchSchedule`] cuts it into optimizer batches and buckets
//! each batch by ground-set size, so every pool dispatch run is uniform-`m`
//! and the objective's batched entry point can solve a run's eigenproblems
//! back-to-back.
//!
//! Mini-batches are **batch-parallel** on a persistent
//! [`lkp_runtime::WorkerPool`] created once per `fit` call: within a batch,
//! instance gradients are computed concurrently by the pool's workers, each
//! owning its [`DppWorkspace`] (plus batch arena or spectral cache) in pool
//! worker state **across batches** (the model is only *read* during this
//! phase). The computed gradients are then accumulated into the model
//! serially, in plan order, before the optimizer step — so the result is
//! **bitwise identical** at any thread count, including the serial
//! `threads = 1` path (which spawns no thread at all). Validation passes
//! run on the *same* pool, so one `fit` spawns its workers exactly once.

use crate::objective::{InstanceGrad, Objective};
use lkp_data::{
    Dataset, EpochPlan, EpochPlanner, InstanceBlock, InstanceSampler, PlanStats, SamplingPolicy,
    ScheduledBatch, TargetSelection,
};
use lkp_dpp::{DppBatchArena, DppWorkspace, SpectralCache, SpectralCacheStats};
use lkp_models::Recommender;
use lkp_runtime::WorkerPool;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Training-loop configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Maximum epochs.
    pub epochs: usize,
    /// Instances per optimizer step.
    pub batch_size: usize,
    /// Ground-set target cardinality `k` (objectives may override).
    pub k: usize,
    /// Ground-set negative count `n` (objectives may override).
    pub n: usize,
    /// Target construction (S vs R).
    pub mode: TargetSelection,
    /// When epoch plans are (re)sampled. The default,
    /// [`SamplingPolicy::ResampleEachEpoch`], draws fresh negatives every
    /// epoch and keeps trajectories bitwise identical to the historical
    /// inline sampler. [`SamplingPolicy::FrozenNegatives`] samples once and
    /// reuses the identical plan — same instances, same order — for the
    /// whole run, so with `spectral_tol > 0` every revisit from epoch 2
    /// onward hits the per-worker spectral cache (each instance lands on the
    /// same worker every epoch; see `TrainReport::spectral_cache`).
    /// [`SamplingPolicy::PeriodicRefresh`] resamples every `period` epochs.
    pub sampling_policy: SamplingPolicy,
    /// Validate every this many epochs (0 disables validation entirely).
    pub eval_every: usize,
    /// Early-stopping patience: stop after this many non-improving
    /// validations (0 disables early stopping).
    pub patience: usize,
    /// Validation metric cutoff (NDCG@cutoff).
    pub eval_cutoff: usize,
    /// Worker-thread budget for the run's persistent pool, shared by batch
    /// gradient computation and validation passes (1 = fully serial).
    ///
    /// Gradient computation and accumulation are **bitwise identical** at
    /// any value. Validation metrics are bitwise reproducible run-to-run
    /// at a fixed value, but their per-chunk merge order follows the pool
    /// width, so across *different* values they can differ in the last ulp
    /// — which near a patience boundary may shift the early-stopping epoch.
    /// Disable validation (`eval_every = 0`) where exact cross-width
    /// trajectory equality matters.
    ///
    /// `0` defers to the deprecated per-phase fields below so historical
    /// configs keep their meaning — unlike `ServeConfig::threads` /
    /// `WorkerPool::new`, it does **not** mean host parallelism; pass
    /// `lkp_runtime::resolve_threads(0)` to request that explicitly.
    pub threads: usize,
    /// Quality-drift tolerance of the epoch-persistent spectral cache
    /// (∞-norm on the per-instance quality vector `q = exp(clamp(ŷ))`).
    ///
    /// `0.0` (the default) **disables the cache entirely**: every instance
    /// recomputes its eigendecomposition and training trajectories are
    /// bitwise identical to the pre-cache trainer at any thread count. With
    /// a positive tolerance, each pool worker keeps the spectra of recently
    /// seen `(user, ground set)` pairs across batches and epochs: a revisit
    /// whose `q` moved at most this much reuses the cached spectrum outright
    /// (the `O(m³)` eigen stage is skipped), and a larger drift warm-starts
    /// the solver from the cached basis. Spectra then differ from exact
    /// recomputation by `O(tol)` (skips) / solver round-off (warm starts),
    /// so trajectories are no longer bitwise pinned — validation metrics
    /// remain within tolerance of the exact run (see
    /// `crates/core/tests/spectral_cache_equivalence.rs`).
    ///
    /// Only objectives that override `Objective::compute_cached_into`
    /// (the frozen-kernel LkP criteria) consult the cache; baselines and
    /// trainable-kernel criteria are unaffected at any value.
    pub spectral_tol: f64,
    /// Evaluation threads (deprecated alias — see [`TrainConfig::threads`]).
    #[deprecated(note = "use `threads`: one pool now serves training and evaluation")]
    pub eval_threads: usize,
    /// Training threads (deprecated alias — see [`TrainConfig::threads`]).
    #[deprecated(note = "use `threads`: one pool now serves training and evaluation")]
    pub train_threads: usize,
    /// Seed for instance sampling.
    pub seed: u64,
    /// Print per-epoch progress to stderr.
    pub verbose: bool,
}

impl Default for TrainConfig {
    #[allow(deprecated)]
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            batch_size: 64,
            k: 5,
            n: 5,
            mode: TargetSelection::Sequential,
            sampling_policy: SamplingPolicy::ResampleEachEpoch,
            eval_every: 5,
            patience: 3,
            eval_cutoff: 10,
            threads: 0,
            spectral_tol: 0.0,
            eval_threads: 4,
            train_threads: 4,
            seed: 17,
            verbose: false,
        }
    }
}

impl TrainConfig {
    /// The effective worker-thread budget: [`TrainConfig::threads`] when set,
    /// otherwise the larger of the deprecated per-phase knobs (so configs
    /// written against the old API keep their parallelism).
    #[allow(deprecated)]
    pub fn thread_budget(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            self.train_threads.max(self.eval_threads).max(1)
        }
    }
}

/// Per-epoch statistics.
#[derive(Debug, Clone)]
pub struct EpochStat {
    /// 1-based epoch index.
    pub epoch: usize,
    /// Mean per-instance loss.
    pub mean_loss: f64,
    /// Validation NDCG@cutoff, when this epoch was evaluated.
    pub val_ndcg: Option<f64>,
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Epochs actually run (≤ configured maximum under early stopping).
    pub epochs_run: usize,
    /// Epoch with the best validation metric (0 if never evaluated).
    pub best_epoch: usize,
    /// Best validation NDCG@cutoff observed.
    pub best_val_ndcg: f64,
    /// Per-epoch history.
    pub history: Vec<EpochStat>,
    /// Spectral-cache counters summed over the run's pool workers — all
    /// zeros when the cache was disabled (`spectral_tol = 0`) or the
    /// objective never consulted it.
    pub spectral_cache: SpectralCacheStats,
    /// Epoch-plan counters: resampled vs reused epochs, instances per
    /// epoch, and the number of distinct ground-set sizes the batch
    /// scheduler bucketed by.
    pub plan: PlanStats,
}

/// The training loop.
#[derive(Debug, Clone)]
pub struct Trainer {
    /// Loop configuration.
    pub config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(config: TrainConfig) -> Self {
        Trainer { config }
    }

    /// Trains `model` with `objective` on `data`.
    ///
    /// When validation is enabled (`eval_every > 0`), the model state with
    /// the best validation score is checkpointed and **restored** at the end
    /// — the paper reports "the best results of each model by tuning … on a
    /// validation set", not the last epoch's state.
    pub fn fit<M, O>(&self, model: &mut M, objective: &mut O, data: &Dataset) -> TrainReport
    where
        M: Recommender + Clone + Sync,
        O: Objective<M>,
    {
        self.fit_with_callback(model, objective, data, |_, _| {})
    }

    /// Trains with a per-epoch callback `f(epoch, model)`.
    ///
    /// The callback fires once with `epoch = 0` before any update (the
    /// paper's Fig. 4 reads the probability profile at epoch 0) and then
    /// after every completed epoch. Best-validation checkpointing behaves as
    /// in [`Trainer::fit`].
    pub fn fit_with_callback<M, O, F>(
        &self,
        model: &mut M,
        objective: &mut O,
        data: &Dataset,
        mut callback: F,
    ) -> TrainReport
    where
        M: Recommender + Clone + Sync,
        O: Objective<M>,
        F: FnMut(usize, &M),
    {
        let cfg = &self.config;
        let (k, n) = objective.instance_shape(cfg.k, cfg.n);
        let sampler = InstanceSampler::new(k, n, cfg.mode);
        let batch_size = cfg.batch_size.max(1);
        let mut planner = EpochPlanner::new(sampler, cfg.sampling_policy, batch_size);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut history = Vec::with_capacity(cfg.epochs);
        let mut best_val = f64::NEG_INFINITY;
        let mut best_epoch = 0usize;
        let mut bad_evals = 0usize;
        let mut epochs_run = 0usize;
        let mut best_state: Option<M> = None;

        // One persistent worker pool for the whole run: batch gradient
        // computation and validation passes share it, and each worker keeps
        // its `DppWorkspace` (plus batch arena / spectral cache) in pool
        // state across every batch (steady-state allocation-free, spawn cost
        // paid once instead of per batch).
        let mut pool = WorkerPool::new(cfg.thread_budget());
        let mut grads: Vec<InstanceGrad> =
            (0..batch_size).map(|_| InstanceGrad::default()).collect();

        callback(0, model);

        for epoch in 1..=cfg.epochs {
            epochs_run = epoch;
            model.begin_epoch();
            // The plan: fresh or reused per the sampling policy. Reused
            // plans keep instance identity *and order*, so batch and chunk
            // boundaries — and therefore each instance's worker, whose
            // spectral cache is per-worker state — repeat exactly.
            let (plan, schedule) = planner.plan_for_epoch(data, epoch, &mut rng);

            let mut loss_sum = 0.0;
            let mut count = 0usize;
            let objective_ref: &O = objective;
            for batch in schedule.iter() {
                compute_batch(
                    objective_ref,
                    &*model,
                    plan,
                    batch,
                    &mut pool,
                    &mut grads,
                    cfg.spectral_tol,
                );
                // Serial accumulation in *plan order* (`slot_of` maps each
                // plan position to its dispatch slot) keeps results
                // independent of both the thread count and the size
                // bucketing (bit-for-bit).
                for &slot in batch.slot_of {
                    let grad = &grads[slot];
                    loss_sum += grad.loss;
                    count += 1;
                    objective_ref.accumulate(model, grad);
                }
                model.step();
            }
            let mean_loss = if count > 0 {
                loss_sum / count as f64
            } else {
                0.0
            };

            let mut val_ndcg = None;
            if cfg.eval_every > 0 && epoch % cfg.eval_every == 0 {
                let metrics = lkp_eval::evaluate_with_pool(
                    model,
                    data,
                    &[cfg.eval_cutoff],
                    lkp_data::Split::Validation,
                    &mut pool,
                );
                let ndcg = metrics.at(cfg.eval_cutoff).map(|m| m.ndcg).unwrap_or(0.0);
                val_ndcg = Some(ndcg);
                if ndcg > best_val + 1e-6 {
                    best_val = ndcg;
                    best_epoch = epoch;
                    bad_evals = 0;
                    best_state = Some(model.clone());
                } else {
                    bad_evals += 1;
                }
            }
            if cfg.verbose {
                match val_ndcg {
                    Some(v) => eprintln!(
                        "[{}] epoch {epoch:>3}: loss {mean_loss:.4}  val-ndcg@{} {v:.4}",
                        objective.name(),
                        cfg.eval_cutoff
                    ),
                    None => eprintln!(
                        "[{}] epoch {epoch:>3}: loss {mean_loss:.4}",
                        objective.name()
                    ),
                }
            }
            history.push(EpochStat {
                epoch,
                mean_loss,
                val_ndcg,
            });
            callback(epoch, model);

            if cfg.patience > 0 && bad_evals >= cfg.patience {
                break;
            }
        }

        if let Some(best) = best_state {
            *model = best;
        }

        TrainReport {
            epochs_run,
            best_epoch,
            best_val_ndcg: if best_val.is_finite() { best_val } else { 0.0 },
            history,
            spectral_cache: collect_spectral_stats(&mut pool, cfg.spectral_tol),
            plan: planner.stats(),
        }
    }
}

/// Sums the spectral-cache counters held in the pool workers' state. Runs
/// one (cheap) extra dispatch; skipped entirely when the cache was disabled.
fn collect_spectral_stats(pool: &mut WorkerPool, spectral_tol: f64) -> SpectralCacheStats {
    if spectral_tol <= 0.0 {
        return SpectralCacheStats::default();
    }
    let totals = std::sync::Mutex::new(SpectralCacheStats::default());
    pool.run(|_, state| {
        if let Some(cache) = state.get_mut::<SpectralCache>() {
            totals.lock().expect("stats lock").merge(&cache.stats());
        }
    });
    totals.into_inner().expect("stats lock")
}

/// Computes one scheduled batch's instance gradients into
/// `grads[..batch.len()]`, indexed by **dispatch slot**.
///
/// The batch's dispatch list (record indices, bucketed so uniform-size runs
/// are contiguous) is cut into contiguous chunks, one pool worker per chunk;
/// the bounded dispatch additionally splits each worker's chunk at size
/// boundaries, so every `f` call sees a uniform-`m` run. Each worker reuses
/// the state held in its persistent pool slots and writes the matching
/// disjoint slice of gradient slots. The model is shared immutably —
/// `compute_*` never mutates it. Because every gradient slot is computed
/// from its instance alone, slot *values* are independent of the pool width
/// and of the bucketing — only wall-clock changes.
///
/// With `spectral_tol = 0` (the default) each uniform run goes through
/// [`Objective::compute_batch_into`], whose LkP override stages the run into
/// the worker's persistent [`DppBatchArena`] and solves its eigenproblems
/// back-to-back — bitwise identical to the historical per-instance loop.
/// With `spectral_tol > 0` each worker instead threads its persistent
/// [`SpectralCache`] through [`Objective::compute_cached_into`], so
/// revisited ground sets reuse or warm-start their eigendecompositions
/// across batches *and epochs* (worker state outlives both; frozen plans
/// pin each instance to one worker, making every revisit a cache hit).
fn compute_batch<M, O>(
    objective: &O,
    model: &M,
    plan: &EpochPlan,
    batch: ScheduledBatch<'_>,
    pool: &mut WorkerPool,
    grads: &mut [InstanceGrad],
    spectral_tol: f64,
) where
    M: Recommender + Sync,
    O: Objective<M>,
{
    let grads = &mut grads[..batch.len()];
    if spectral_tol > 0.0 {
        pool.zip_chunks(batch.dispatch, grads, |_, idx_chunk, grad_chunk, state| {
            let (ws, cache) = state.get_or_default_pair::<DppWorkspace, SpectralCache>();
            cache.set_tol(spectral_tol);
            for (&idx, out) in idx_chunk.iter().zip(grad_chunk.iter_mut()) {
                objective.compute_cached_into(model, plan.instance(idx), ws, cache, out);
            }
        });
    } else {
        pool.zip_chunks_bounded(
            batch.dispatch,
            grads,
            batch.bounds,
            |_, idx_chunk, grad_chunk, state| {
                let (ws, arena) = state.get_or_default_pair::<DppWorkspace, DppBatchArena>();
                objective.compute_batch_into(
                    model,
                    InstanceBlock::new(plan, idx_chunk),
                    ws,
                    arena,
                    grad_chunk,
                );
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::Bpr;
    use crate::diversity::{train_diversity_kernel, DiversityKernelConfig};
    use crate::objective::{LkpKind, LkpObjective};
    use lkp_data::SyntheticConfig;
    use lkp_models::MatrixFactorization;
    use lkp_nn::AdamConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data() -> Dataset {
        lkp_data::synthetic::generate(&SyntheticConfig {
            n_users: 50,
            n_items: 100,
            n_categories: 8,
            mean_interactions: 20.0,
            ..Default::default()
        })
    }

    fn mf(data: &Dataset) -> MatrixFactorization {
        let mut rng = StdRng::seed_from_u64(1);
        MatrixFactorization::new(
            data.n_users(),
            data.n_items(),
            16,
            AdamConfig {
                lr: 0.02,
                ..Default::default()
            },
            &mut rng,
        )
    }

    #[test]
    fn bpr_training_improves_validation_ndcg() {
        let data = data();
        let mut model = mf(&data);
        let untrained =
            lkp_eval::evaluate_parallel_on(&model, &data, &[10], lkp_data::Split::Validation, 2)
                .at(10)
                .unwrap()
                .ndcg;
        let trainer = Trainer::new(TrainConfig {
            epochs: 15,
            eval_every: 5,
            patience: 0,
            ..Default::default()
        });
        let report = trainer.fit(&mut model, &mut Bpr, &data);
        assert!(
            report.best_val_ndcg > untrained + 0.02,
            "no learning: {untrained} -> {}",
            report.best_val_ndcg
        );
        assert_eq!(report.epochs_run, 15);
    }

    #[test]
    fn lkp_training_improves_validation_ndcg_and_loss_decreases() {
        let data = data();
        let kernel = train_diversity_kernel(
            &data,
            &DiversityKernelConfig {
                epochs: 4,
                pairs_per_epoch: 48,
                dim: 8,
                ..Default::default()
            },
        );
        let mut model = mf(&data);
        let trainer = Trainer::new(TrainConfig {
            epochs: 10,
            eval_every: 5,
            patience: 0,
            k: 4,
            n: 4,
            ..Default::default()
        });
        let mut obj = LkpObjective::new(LkpKind::NegativeAware, kernel);
        let report = trainer.fit(&mut model, &mut obj, &data);
        let first_loss = report.history.first().unwrap().mean_loss;
        let last_loss = report.history.last().unwrap().mean_loss;
        assert!(last_loss < first_loss, "loss {first_loss} -> {last_loss}");
        assert!(report.best_val_ndcg > 0.0);
    }

    #[test]
    fn early_stopping_halts_before_max_epochs() {
        let data = data();
        let mut model = mf(&data);
        // Zero learning rate: validation can never improve, so patience
        // triggers after the first eval + patience further evals.
        let mut rng = StdRng::seed_from_u64(5);
        let mut frozen = MatrixFactorization::new(
            data.n_users(),
            data.n_items(),
            8,
            AdamConfig {
                lr: 0.0,
                ..Default::default()
            },
            &mut rng,
        );
        let trainer = Trainer::new(TrainConfig {
            epochs: 50,
            eval_every: 1,
            patience: 2,
            ..Default::default()
        });
        let report = trainer.fit(&mut frozen, &mut Bpr, &data);
        assert!(report.epochs_run <= 5, "ran {} epochs", report.epochs_run);
        let _ = &mut model;
    }

    #[test]
    fn callback_fires_at_epoch_zero_and_after_each_epoch() {
        let data = data();
        let mut model = mf(&data);
        let trainer = Trainer::new(TrainConfig {
            epochs: 3,
            eval_every: 0,
            patience: 0,
            ..Default::default()
        });
        let mut seen = Vec::new();
        trainer.fit_with_callback(&mut model, &mut Bpr, &data, |e, _| seen.push(e));
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn objective_shape_override_is_respected() {
        // BPR forces (1,1) instances regardless of config.
        let data = data();
        let mut model = mf(&data);
        let trainer = Trainer::new(TrainConfig {
            epochs: 1,
            k: 5,
            n: 5,
            eval_every: 0,
            ..Default::default()
        });
        // Success here just means no panic inside instance assembly: BPR's
        // debug_asserts verify the (1,1) shape on every instance.
        trainer.fit(&mut model, &mut Bpr, &data);
    }
}
