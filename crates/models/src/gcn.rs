//! GCN-based collaborative filtering with linear embedding propagation.
//!
//! The paper deploys its criteria on "the basic GCN framework that learns
//! representations from high-order connectivities referring to NGCF". We use
//! the LightGCN simplification (He et al. 2020) of exactly that framework:
//! base embeddings `E⁰` over the `[users; items]` node set are propagated
//! through the symmetric-normalized bipartite adjacency `Â`,
//!
//! ```text
//! E^{(l)} = Â · E^{(l-1)},   F = (1/(L+1)) Σ_{l=0..L} E^{(l)}
//! ```
//!
//! and `ŷ_{u,i} = ⟨F_u, F_{|U|+i}⟩`. The propagation is linear, so the exact
//! backward pass is another `L` sparse products with `Â` (Â is symmetric):
//! `∂loss/∂E⁰ = (1/(L+1)) Σ_l Â^l · ∂loss/∂F`.
//!
//! Propagated embeddings are cached and refreshed after every optimizer step
//! (and at epoch start), so scoring is a dot product like MF.

use crate::{ItemEmbeddings, Recommender};
use lkp_linalg::ops::dot;
use lkp_linalg::sparse::{normalized_bipartite_adjacency, CsrMatrix};
use lkp_linalg::Matrix;
use lkp_nn::{AdamConfig, EmbeddingTable};
use rand::Rng;

/// LightGCN-style recommender.
#[derive(Clone)]
pub struct Gcn {
    n_users: usize,
    n_items: usize,
    layers: usize,
    adjacency: CsrMatrix,
    base: EmbeddingTable,
    /// Cached propagated embeddings `F` (refreshed after each step).
    propagated: Matrix,
    /// Accumulated `∂loss/∂F` rows for the current batch.
    pending: Vec<(usize, Vec<f64>)>,
}

impl Gcn {
    /// Builds the model over the dataset's train graph.
    pub fn new<R: Rng + ?Sized>(
        n_users: usize,
        n_items: usize,
        train_edges: &[(usize, usize)],
        dim: usize,
        layers: usize,
        config: AdamConfig,
        rng: &mut R,
    ) -> Self {
        let adjacency = normalized_bipartite_adjacency(n_users, n_items, train_edges)
            .expect("valid train edges");
        let base = EmbeddingTable::new(n_users + n_items, dim, 0.1, config, rng);
        let propagated = propagate(&adjacency, base.matrix(), layers);
        Gcn {
            n_users,
            n_items,
            layers,
            adjacency,
            base,
            propagated,
            pending: Vec::new(),
        }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.base.dim()
    }

    /// Number of propagation layers `L`.
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// The propagated embedding of a user node.
    pub fn user_embedding(&self, user: usize) -> &[f64] {
        self.propagated.row(user)
    }

    /// The propagated embedding of an item node.
    pub fn propagated_item_embedding(&self, item: usize) -> &[f64] {
        self.propagated.row(self.n_users + item)
    }

    fn refresh_cache(&mut self) {
        self.propagated = propagate(&self.adjacency, self.base.matrix(), self.layers);
    }

    fn accumulate_f_grad(&mut self, node: usize, grad: &[f64]) {
        if let Some((_, g)) = self.pending.iter_mut().find(|(n, _)| *n == node) {
            for (a, b) in g.iter_mut().zip(grad) {
                *a += b;
            }
        } else {
            self.pending.push((node, grad.to_vec()));
        }
    }
}

/// `F = (1/(L+1)) Σ_l Â^l E`.
fn propagate(adj: &CsrMatrix, base: &Matrix, layers: usize) -> Matrix {
    let mut acc = base.clone();
    let mut current = base.clone();
    for _ in 0..layers {
        current = adj
            .spmm(&current)
            .expect("adjacency matches embedding height");
        acc.add_scaled(1.0, &current).expect("same shape");
    }
    acc.scale(1.0 / (layers as f64 + 1.0));
    acc
}

impl Recommender for Gcn {
    fn n_users(&self) -> usize {
        self.n_users
    }

    fn n_items(&self) -> usize {
        self.n_items
    }

    fn score_items(&self, user: usize, items: &[usize]) -> Vec<f64> {
        let f_u = self.propagated.row(user);
        items
            .iter()
            .map(|&i| dot(f_u, self.propagated.row(self.n_users + i)))
            .collect()
    }

    fn score_items_into(&self, user: usize, items: &[usize], out: &mut Vec<f64>) {
        let f_u = self.propagated.row(user);
        out.clear();
        out.extend(
            items
                .iter()
                .map(|&i| dot(f_u, self.propagated.row(self.n_users + i))),
        );
    }

    fn accumulate_score_grads(&mut self, user: usize, items: &[usize], dscores: &[f64]) {
        debug_assert_eq!(items.len(), dscores.len());
        let dim = self.dim();
        let mut du = vec![0.0; dim];
        for (&i, &ds) in items.iter().zip(dscores) {
            if ds == 0.0 {
                continue;
            }
            let node = self.n_users + i;
            let f_u = self.propagated.row(user).to_vec();
            let f_i = self.propagated.row(node);
            for (a, &b) in du.iter_mut().zip(f_i) {
                *a += ds * b;
            }
            let di: Vec<f64> = f_u.iter().map(|&x| ds * x).collect();
            self.accumulate_f_grad(node, &di);
        }
        self.accumulate_f_grad(user, &du);
    }

    fn step(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        // Dense gradient over all nodes, then exact linear backward through
        // the propagation: dE⁰ = (1/(L+1)) Σ_l Â^l dF.
        let n_nodes = self.n_users + self.n_items;
        let dim = self.dim();
        let mut df = Matrix::zeros(n_nodes, dim);
        for (node, g) in self.pending.drain(..) {
            for (slot, v) in df.row_mut(node).iter_mut().zip(&g) {
                *slot += v;
            }
        }
        let de0 = propagate(&self.adjacency, &df, self.layers);
        for node in 0..n_nodes {
            let row = de0.row(node);
            if row.iter().any(|&x| x != 0.0) {
                self.base.accumulate_grad(node, row);
            }
        }
        self.base.step();
        self.refresh_cache();
    }

    fn begin_epoch(&mut self) {
        self.refresh_cache();
    }
}

impl ItemEmbeddings for Gcn {
    fn item_dim(&self) -> usize {
        self.dim()
    }

    /// The E-type kernel reads *propagated* item embeddings — they are the
    /// representations actually used for scoring.
    fn item_embedding(&self, item: usize) -> &[f64] {
        self.propagated_item_embedding(item)
    }

    fn accumulate_item_embedding_grad(&mut self, item: usize, grad: &[f64]) {
        let node = self.n_users + item;
        self.accumulate_f_grad(node, grad);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn edges() -> Vec<(usize, usize)> {
        vec![
            (0, 0),
            (0, 1),
            (1, 1),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 2),
            (3, 3),
        ]
    }

    fn model(layers: usize) -> Gcn {
        let mut rng = StdRng::seed_from_u64(1);
        Gcn::new(
            4,
            4,
            &edges(),
            8,
            layers,
            AdamConfig {
                lr: 0.05,
                weight_decay: 0.0,
                ..Default::default()
            },
            &mut rng,
        )
    }

    #[test]
    fn zero_layers_reduces_to_mf() {
        let m = model(0);
        // With L = 0 the propagated embeddings equal the base table.
        assert!(m.propagated.max_abs_diff(m.base.matrix()) < 1e-15);
    }

    #[test]
    fn propagation_mixes_neighbors() {
        let m = model(2);
        // User 0 and item 0 are connected; their propagated embeddings must
        // differ from the base (mixing happened).
        assert!(m.propagated.max_abs_diff(m.base.matrix()) > 1e-6);
    }

    #[test]
    fn descending_negative_gradient_raises_score() {
        let mut m = model(2);
        let before = m.score_items(0, &[3])[0];
        for _ in 0..60 {
            m.accumulate_score_grads(0, &[3], &[-1.0]);
            m.step();
        }
        let after = m.score_items(0, &[3])[0];
        assert!(after > before + 0.3, "{before} -> {after}");
    }

    #[test]
    fn backward_touches_neighbors_through_propagation() {
        // Pushing gradient on (user 0, item 3) must move item 3's *and*
        // (through propagation) connected nodes' base embeddings.
        let mut m = model(1);
        let base_before = m.base.matrix().clone();
        m.accumulate_score_grads(0, &[3], &[-1.0]);
        m.step();
        let diff_rows: Vec<usize> = (0..8)
            .filter(|&r| {
                lkp_linalg::ops::sq_dist(m.base.matrix().row(r), base_before.row(r)) > 1e-20
            })
            .collect();
        // More rows than just {user0, item3-node} must move.
        assert!(diff_rows.len() > 2, "only rows {diff_rows:?} moved");
    }

    #[test]
    fn gradient_through_propagation_matches_finite_difference() {
        // Check dscore/d(base[r][c]) for the score (u=1, item=2) against the
        // backward pass, using a probe gradient of 1.0.
        let mut m = model(2);
        let user = 1;
        let item = 2;
        // Capture analytic gradient by intercepting what lands on base:
        // run backward, then read accumulated grads via a re-derivation —
        // simplest is to finite-difference the *score* and compare against
        // the parameter delta direction after one SGD-like step. Instead we
        // verify the linear-propagation identity directly:
        // dE0 = (1/(L+1)) Σ Â^l dF with dF one-hot at (user,·) and (item,·).
        let f_u = m.propagated.row(user).to_vec();
        let f_i = m.propagated.row(m.n_users + item).to_vec();
        let mut df = Matrix::zeros(8, 8);
        for c in 0..8 {
            df[(user, c)] = f_i[c];
            df[(m.n_users + item, c)] = f_u[c];
        }
        let de0 = propagate(&m.adjacency, &df, m.layers);
        // Finite difference on a few base entries.
        let h = 1e-6;
        for &(r, c) in &[(0usize, 0usize), (5, 3), (7, 7), (1, 2)] {
            let orig = m.base.matrix().row(r)[c];
            m.base.matrix_mut()[(r, c)] = orig + h;
            m.refresh_cache();
            let plus = m.score_items(user, &[item])[0];
            m.base.matrix_mut()[(r, c)] = orig - h;
            m.refresh_cache();
            let minus = m.score_items(user, &[item])[0];
            m.base.matrix_mut()[(r, c)] = orig;
            m.refresh_cache();
            let fd = (plus - minus) / (2.0 * h);
            assert!(
                (fd - de0[(r, c)]).abs() < 1e-5,
                "({r},{c}): fd {fd} vs {}",
                de0[(r, c)]
            );
        }
    }

    #[test]
    fn step_without_gradients_is_noop() {
        let mut m = model(1);
        let before = m.propagated.clone();
        m.step();
        assert!(m.propagated.max_abs_diff(&before) < 1e-15);
    }
}
