//! Hot-path probe: per-instance cost of the allocation-free workspace path
//! against a reconstruction of the seed's allocating cold path, plus epoch
//! throughput at 1 vs 4 trainer threads.
//!
//! Prints one JSON object; `scripts/bench_snapshot.sh` appends it to the
//! `BENCH_<date>.json` trajectory snapshot. Flags: `--iters N` (default
//! 20000) controls the per-instance loops.

use lkp_core::objective::{quality, InstanceGrad, LkpKind, LkpObjective};
use lkp_core::{train_diversity_kernel, DiversityKernelConfig, Objective, TrainConfig, Trainer};
use lkp_data::{Dataset, GroundSetInstance, SyntheticConfig, TargetSelection};
use lkp_dpp::{grad, DppKernel, DppWorkspace, KDpp};
use lkp_models::{MatrixFactorization, Recommender};
use lkp_nn::AdamConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn dataset() -> Dataset {
    lkp_data::synthetic::generate(&SyntheticConfig {
        n_users: 80,
        n_items: 200,
        n_categories: 12,
        mean_interactions: 20.0,
        ..Default::default()
    })
}

/// The seed's per-instance pipeline, faithfully reconstructed: allocate the
/// kernel, k-DPP, both log-prob gradients (each with its own normalizer
/// reconstruction) and every intermediate vector per call.
fn seed_style_apply(
    model: &mut MatrixFactorization,
    kernel: &lkp_dpp::LowRankKernel,
    inst: &GroundSetInstance,
) -> f64 {
    let ground = inst.ground_set();
    let k = inst.k();
    let m = ground.len();
    let scores = model.score_items(inst.user, &ground);
    let q = quality(&scores);
    let mut k_j = kernel.submatrix(&ground).expect("items in range");
    for i in 0..m {
        k_j[(i, i)] += 1e-6;
    }
    let kern = DppKernel::from_quality_diversity(&q, &k_j).expect("square kernel");
    let kdpp = KDpp::new(kern, k).expect("non-degenerate kernel");
    let target: Vec<usize> = (0..k).collect();
    let log_p = kdpp.log_prob(&target).expect("valid subset");
    let mut g = grad::grad_log_prob(&kdpp, &target).expect("gradient");
    g.scale(-1.0);
    let mut loss = -log_p;
    let negative: Vec<usize> = (k..m).collect();
    let log_p_neg = kdpp.log_prob(&negative).expect("valid subset");
    let p_neg = log_p_neg.exp().clamp(0.0, 1.0 - 1e-9);
    loss += -(1.0 - p_neg).ln();
    let g_neg = grad::grad_log_prob(&kdpp, &negative).expect("gradient");
    g.add_scaled(p_neg / (1.0 - p_neg), &g_neg)
        .expect("same shape");
    let dq = grad::chain_to_quality(&g, &q, &k_j);
    let dscores: Vec<f64> = dq.iter().zip(&q).map(|(&d, &qv)| d * qv).collect();
    model.accumulate_score_grads(inst.user, &ground, &dscores);
    loss
}

fn main() {
    let iters: usize = std::env::args()
        .skip_while(|a| a != "--iters")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);

    let data = dataset();
    let kernel = train_diversity_kernel(
        &data,
        &DiversityKernelConfig {
            epochs: 3,
            pairs_per_epoch: 64,
            dim: 8,
            ..Default::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(5);
    let mut model = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        32,
        AdamConfig::default(),
        &mut rng,
    );
    let inst = GroundSetInstance {
        user: 3,
        positives: vec![0, 5, 9, 14, 20],
        negatives: vec![50, 61, 72, 83, 94],
    };
    let norm_kernel = kernel.normalized();

    // Seed-style cold path.
    for _ in 0..iters / 10 {
        seed_style_apply(&mut model, &norm_kernel, &inst);
        model.step();
    }
    let t = Instant::now();
    for _ in 0..iters {
        seed_style_apply(&mut model, &norm_kernel, &inst);
        model.step();
    }
    let cold_ns = t.elapsed().as_nanos() as f64 / iters as f64;

    // Workspace path.
    let obj = LkpObjective::new(LkpKind::NegativeAware, kernel.clone());
    let mut ws = DppWorkspace::new();
    let mut out = InstanceGrad::default();
    for _ in 0..iters / 10 {
        obj.compute_into(&model, inst.as_ref(), &mut ws, &mut out);
        obj.accumulate(&mut model, &out);
        model.step();
    }
    let t = Instant::now();
    for _ in 0..iters {
        obj.compute_into(&model, inst.as_ref(), &mut ws, &mut out);
        obj.accumulate(&mut model, &out);
        model.step();
    }
    let hot_ns = t.elapsed().as_nanos() as f64 / iters as f64;

    // Epoch throughput at 1 vs 4 trainer threads (identical results; the
    // wall-clock ratio depends on available cores).
    let mut epoch_ns = [0.0_f64; 2];
    for (slot, threads) in [1usize, 4].into_iter().enumerate() {
        let trainer = Trainer::new(TrainConfig {
            epochs: 1,
            batch_size: 256,
            k: 5,
            n: 5,
            mode: TargetSelection::Sequential,
            eval_every: 0,
            patience: 0,
            threads,
            ..Default::default()
        });
        // Fresh model per rep so the two thread counts measure identical
        // training states (same seed → same initial weights for both).
        let base = MatrixFactorization::new(
            data.n_users(),
            data.n_items(),
            32,
            AdamConfig::default(),
            &mut StdRng::seed_from_u64(77),
        );
        let mut obj = LkpObjective::new(LkpKind::NegativeAware, kernel.clone());
        trainer.fit(&mut base.clone(), &mut obj, &data); // warm-up epoch
        let reps = 5;
        let t = Instant::now();
        for _ in 0..reps {
            let mut m = base.clone();
            trainer.fit(&mut m, &mut obj, &data);
        }
        epoch_ns[slot] = t.elapsed().as_nanos() as f64 / reps as f64;
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "{{\"probe\":\"hotpath\",\"seed_style_ns_per_instance\":{cold_ns:.0},\
\"workspace_ns_per_instance\":{hot_ns:.0},\
\"single_thread_speedup\":{:.3},\
\"epoch_ns_t1\":{:.0},\"epoch_ns_t4\":{:.0},\
\"thread_scaling\":{:.3},\"host_cores\":{cores}}}",
        cold_ns / hot_ns,
        epoch_ns[0],
        epoch_ns[1],
        epoch_ns[0] / epoch_ns[1],
    );
}
