//! Named generators, mirroring `rand::rngs`.

use crate::generators::Xoshiro256PlusPlus;
use crate::{RngCore, SeedableRng};

/// The workspace's standard seedable generator (xoshiro256++).
///
/// Not stream-compatible with upstream `rand::rngs::StdRng`; the workspace
/// only relies on determinism for a fixed seed, not on a particular stream.
#[derive(Debug, Clone)]
pub struct StdRng {
    inner: Xoshiro256PlusPlus,
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        StdRng {
            inner: Xoshiro256PlusPlus::from_seed(seed),
        }
    }
}
