//! The deterministic frontend core: clocks, the cut policy, admission, and
//! ticket redemption. Everything here is driven by an injected [`Clock`]
//! and owns no threads — the threaded shell lives in
//! [`super::driver::FrontendDriver`].

use super::admission::{FrontendStats, SubmitError};
use super::swap::SwapRecord;
use crate::{RankOutcome, RankRequest, RankResponse, Ranker};
use lkp_models::Recommender;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic time source for micro-batch deadlines.
///
/// Implementations report elapsed time since an arbitrary fixed origin;
/// the frontend only ever compares differences.
pub trait Clock: Send {
    /// Time since the clock's origin.
    fn now(&self) -> Duration;
}

/// Wall-clock [`Clock`] backed by [`Instant`] (the production default).
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    origin: Instant,
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock {
            // lint:allow(determinism): this IS the injected clock — the one
            // sanctioned wall-clock read; core logic only sees `Clock::now`.
            origin: Instant::now(),
        }
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }
}

/// A hand-advanced [`Clock`] for deterministic tests: clone a handle, give
/// one clone to the frontend, and drive time with [`ManualClock::advance`].
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    nanos: Arc<AtomicU64>,
}

impl ManualClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Moves the clock forward by `by`.
    pub fn advance(&self, by: Duration) {
        self.nanos.fetch_add(by.as_nanos() as u64, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }
}

/// Micro-batch cut and admission policy of a [`ServeFrontend`].
#[derive(Debug, Clone)]
pub struct FrontendConfig {
    /// Cut a batch as soon as this many requests are pending (clamped to
    /// ≥ 1). Also the size of every non-final batch, so per-batch pool
    /// dispatch overhead is amortized over exactly this many requests.
    pub max_batch: usize,
    /// Cut a batch (of whatever is pending) once the oldest pending request
    /// has waited this long. Deadlines are checked by
    /// [`ServeFrontend::pump`] against the injected [`Clock`]; a request
    /// with a tighter [`RankRequest::slo`] is due at its SLO instead.
    pub max_wait: Duration,
    /// Admission bound for [`ServeFrontend::try_submit`]: with this many
    /// requests already pending, further submissions are shed with
    /// [`SubmitError::QueueFull`] (`0` disables shedding; the infallible
    /// [`ServeFrontend::submit`] path never sheds).
    pub queue_capacity: usize,
    /// How long an unclaimed completed response is kept before the TTL
    /// sweep drops it ([`Duration::ZERO`], the default, keeps responses
    /// forever — the pre-TTL behavior). Swept responses count as
    /// `ttl_expired` in [`FrontendStats`].
    pub response_ttl: Duration,
    /// Overload watermark for the degraded mode: when a batch is cut with
    /// at least this many requests pending, the batch is served with its
    /// DPP rerank head capped at [`FrontendConfig::degraded_head`]
    /// (`0`, the default, disables degradation).
    pub degrade_watermark: usize,
    /// The rerank-head cap applied under overload (clamped to ≥ 1 when
    /// degradation is enabled). Requests already carrying a tighter
    /// [`RankRequest::rerank_head`] keep their own.
    pub degraded_head: usize,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(2),
            queue_capacity: 1024,
            response_ttl: Duration::ZERO,
            degrade_watermark: 0,
            degraded_head: 32,
        }
    }
}

/// Handle to one submitted request; claim the response with
/// [`ServeFrontend::try_take`] after the batch containing it was cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ticket(u64);

enum CutReason {
    Full,
    Deadline,
    Flush,
}

struct Pending {
    ticket: Ticket,
    request: RankRequest,
    submitted: Duration,
}

/// A completed response plus when it completed (for the TTL sweep).
struct Done {
    resp: RankResponse,
    at: Duration,
}

/// The async serving frontend: a bounded submission queue over a
/// [`Ranker`], cutting micro-batches by size and deadline. See the module
/// docs for the lifecycle.
pub struct ServeFrontend<M> {
    ranker: Ranker<M>,
    config: FrontendConfig,
    clock: Box<dyn Clock>,
    pending: VecDeque<Pending>,
    /// Completed responses awaiting [`ServeFrontend::try_take`]. Unclaimed
    /// responses accumulate here — callers own ticket redemption, and must
    /// [`ServeFrontend::discard`] tickets they stop waiting on (or set
    /// [`FrontendConfig::response_ttl`] to bound the leak).
    done: HashMap<u64, Done>,
    /// Batch-cut scratch, reused across cuts.
    batch_requests: Vec<RankRequest>,
    batch_tickets: Vec<Ticket>,
    batch_waits: Vec<Duration>,
    batch_out: Vec<RankResponse>,
    next_ticket: u64,
    stats: FrontendStats,
    swap_log: Vec<SwapRecord>,
}

impl<M: Recommender + Sync> ServeFrontend<M> {
    /// Wraps a ranker with the wall-clock [`MonotonicClock`].
    pub fn new(ranker: Ranker<M>, config: FrontendConfig) -> Self {
        ServeFrontend::with_clock(ranker, config, Box::new(MonotonicClock::default()))
    }

    /// Wraps a ranker with an injected clock (tests use [`ManualClock`]).
    pub fn with_clock(
        ranker: Ranker<M>,
        mut config: FrontendConfig,
        clock: Box<dyn Clock>,
    ) -> Self {
        config.max_batch = config.max_batch.max(1);
        if config.degrade_watermark > 0 {
            config.degraded_head = config.degraded_head.max(1);
        }
        ServeFrontend {
            ranker,
            config,
            clock,
            pending: VecDeque::new(),
            done: HashMap::new(),
            batch_requests: Vec::new(),
            batch_tickets: Vec::new(),
            batch_waits: Vec::new(),
            batch_out: Vec::new(),
            next_ticket: 0,
            stats: FrontendStats::default(),
            swap_log: Vec::new(),
        }
    }

    /// Enqueues one request and returns its ticket. Cuts a micro-batch
    /// inline when the queue reaches `max_batch` — so the queue holds at
    /// most `max_batch − 1` requests between calls and submission is never
    /// an error: backpressure shows up as inline served latency, not as
    /// drops or unbounded growth.
    pub fn submit(&mut self, request: RankRequest) -> Ticket {
        let ticket = self.enqueue(request);
        if self.pending.len() >= self.config.max_batch {
            self.cut_batch(CutReason::Full);
        }
        ticket
    }

    /// Admission-checked submission for pump-driven serving: sheds with
    /// [`SubmitError::QueueFull`] once `queue_capacity` requests are
    /// pending, and never cuts inline — the pump owner (typically a
    /// [`super::driver::FrontendDriver`]) decides when batches run, so
    /// submitters are never blocked behind a ranking dispatch.
    pub fn try_submit(&mut self, request: RankRequest) -> Result<Ticket, SubmitError> {
        let capacity = self.config.queue_capacity;
        if capacity > 0 && self.pending.len() >= capacity {
            self.stats.shed += 1;
            return Err(SubmitError::QueueFull { capacity });
        }
        Ok(self.enqueue(request))
    }

    fn enqueue(&mut self, request: RankRequest) -> Ticket {
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        self.pending.push_back(Pending {
            ticket,
            request,
            submitted: self.clock.now(),
        });
        self.stats.submitted += 1;
        ticket
    }

    /// Cuts every due micro-batch — full batches first, then a partial
    /// batch once the oldest pending deadline (`max_wait`, or a tighter
    /// per-request SLO) has passed — and sweeps TTL-expired unclaimed
    /// responses. Returns the number of requests completed (served or
    /// expired). Call this from the serving loop whenever the clock may
    /// have crossed a deadline.
    pub fn pump(&mut self) -> usize {
        self.sweep_responses();
        let mut completed = 0;
        loop {
            let full = self.pending.len() >= self.config.max_batch;
            let overdue = !full
                && self
                    .earliest_due()
                    .is_some_and(|due| self.clock.now() >= due);
            if !full && !overdue {
                return completed;
            }
            completed += self.cut_batch(if full {
                CutReason::Full
            } else {
                CutReason::Deadline
            });
        }
    }

    /// Serves everything pending regardless of deadlines (shutdown /
    /// end-of-stream). Returns the number of requests completed (served or
    /// expired — SLOs still apply at cut time).
    pub fn flush(&mut self) -> usize {
        let mut completed = 0;
        while !self.pending.is_empty() {
            completed += self.cut_batch(CutReason::Flush);
        }
        completed
    }

    /// When the next deadline cut is due, relative to now (`None` with
    /// nothing pending, [`Duration::ZERO`] when already overdue) — the
    /// sleep bound for a pump-owning driver thread.
    pub fn time_to_next_cut(&self) -> Option<Duration> {
        let now = self.clock.now();
        self.earliest_due().map(|due| due.saturating_sub(now))
    }

    /// The earliest absolute instant any pending request is due: its
    /// submission time plus `max_wait`, or plus its SLO when tighter —
    /// cutting at a tight SLO serves the request just in time instead of
    /// letting it expire in the queue.
    fn earliest_due(&self) -> Option<Duration> {
        let max_wait = self.config.max_wait;
        self.pending
            .iter()
            .map(|p| {
                p.submitted
                    + match p.request.slo {
                        Some(slo) => slo.min(max_wait),
                        None => max_wait,
                    }
            })
            .min()
    }

    /// Drops unclaimed completed responses older than
    /// [`FrontendConfig::response_ttl`] (no-op when the TTL is zero).
    /// Returns how many were dropped; they count as `ttl_expired`, not
    /// `discarded`.
    pub fn sweep_responses(&mut self) -> usize {
        let ttl = self.config.response_ttl;
        if ttl.is_zero() || self.done.is_empty() {
            return 0;
        }
        let now = self.clock.now();
        let before = self.done.len();
        // lint:allow(determinism): the retain predicate is per-entry (age vs
        // TTL) — the surviving set is identical whatever the visit order.
        self.done.retain(|_, d| now.saturating_sub(d.at) < ttl);
        let swept = before - self.done.len();
        self.stats.ttl_expired += swept as u64;
        swept
    }

    /// Claims the response for `ticket`, if its batch has been cut. Each
    /// ticket redeems at most once.
    pub fn try_take(&mut self, ticket: Ticket) -> Option<RankResponse> {
        self.done.remove(&ticket.0).map(|d| d.resp)
    }

    /// Peeks at the response for `ticket` without claiming it.
    pub fn peek(&self, ticket: Ticket) -> Option<&RankResponse> {
        self.done.get(&ticket.0).map(|d| &d.resp)
    }

    /// Abandons a ticket the caller stopped waiting on (e.g. its request
    /// timed out upstream): drops the completed response if the batch was
    /// already cut, or pulls the request out of the pending queue if not —
    /// without this, responses for dropped tickets would accumulate in the
    /// completed map for the frontend's lifetime. Returns whether the
    /// ticket was found (`false`: already taken, already discarded, or
    /// never issued).
    pub fn discard(&mut self, ticket: Ticket) -> bool {
        let found = self.done.remove(&ticket.0).is_some()
            || self
                .pending
                .iter()
                .position(|p| p.ticket == ticket)
                .map(|at| self.pending.remove(at))
                .is_some();
        self.stats.discarded += found as u64;
        found
    }

    /// Pre-warms the ranker's kernel cache with popular pairs (see
    /// [`Ranker::prewarm`]); their first served request then skips the
    /// `O(|C|²·d)` assembly entirely. Returns the number of assemblies.
    pub fn prewarm(&mut self, pairs: &[(usize, Vec<usize>)]) -> usize {
        self.ranker.prewarm(pairs)
    }

    /// Requests submitted but not yet served.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Responses served but not yet claimed.
    pub fn completed_len(&self) -> usize {
        self.done.len()
    }

    /// Traffic counters since construction.
    pub fn stats(&self) -> FrontendStats {
        self.stats
    }

    /// The current artifact generation (see [`Ranker::generation`]).
    pub fn generation(&self) -> u64 {
        self.ranker.generation()
    }

    /// Every committed swap, in commit order.
    pub fn swap_log(&self) -> &[SwapRecord] {
        &self.swap_log
    }

    /// The wrapped ranker (cache stats, prewarm, direct batches).
    pub fn ranker(&mut self) -> &mut Ranker<M> {
        &mut self.ranker
    }

    /// Unwraps the frontend, dropping any unserved submissions and
    /// unclaimed responses.
    pub fn into_ranker(self) -> Ranker<M> {
        self.ranker
    }

    /// Appends a committed swap to the log (called by the swap layer).
    pub(crate) fn record_swap(&mut self, record: SwapRecord) {
        self.stats.swaps += 1;
        self.swap_log.push(record);
    }

    /// The frontend's clock reading (for swap timestamps).
    pub(crate) fn clock_now(&self) -> Duration {
        self.clock.now()
    }

    /// Cuts one micro-batch of up to `max_batch` requests off the queue
    /// front (submission order) and serves it on the pool. Requests past
    /// their SLO complete as [`RankOutcome::Expired`] without touching the
    /// pool; when the cut happens with `degrade_watermark` or more requests
    /// pending, the batch runs with its rerank head capped. Returns the
    /// number of requests completed (served + expired).
    fn cut_batch(&mut self, reason: CutReason) -> usize {
        let n = self.pending.len().min(self.config.max_batch);
        if n == 0 {
            return 0;
        }
        let now = self.clock.now();
        let generation = self.ranker.generation();
        // Overload is measured at cut time, on queue depth: the batch about
        // to be served plus everything that will still be waiting after it.
        let degraded_cut = self.config.degrade_watermark > 0
            && self.pending.len() >= self.config.degrade_watermark;
        self.batch_requests.clear();
        self.batch_tickets.clear();
        self.batch_waits.clear();
        let mut expired = 0usize;
        for _ in 0..n {
            let p = self.pending.pop_front().expect("n ≤ pending");
            let waited = now.saturating_sub(p.submitted);
            if p.request.slo.is_some_and(|slo| waited > slo) {
                // Past-deadline at cut time: complete unserved with an
                // explicit outcome instead of burning pool time on a
                // response nobody can use.
                self.stats.expired += 1;
                expired += 1;
                let resp = RankResponse {
                    user: p.request.user,
                    outcome: RankOutcome::Expired,
                    generation,
                    ..RankResponse::default()
                };
                self.done.insert(p.ticket.0, Done { resp, at: now });
                continue;
            }
            let mut request = p.request;
            if degraded_cut
                && (request.rerank_head == 0 || request.rerank_head > self.config.degraded_head)
            {
                request.rerank_head = self.config.degraded_head;
            }
            self.batch_tickets.push(p.ticket);
            self.batch_waits.push(waited);
            self.batch_requests.push(request);
        }
        let served = self.batch_requests.len();
        if served > 0 {
            self.ranker
                .rank_batch_into(&self.batch_requests, &mut self.batch_out);
            for ((ticket, resp), &waited) in self
                .batch_tickets
                .drain(..)
                .zip(self.batch_out.drain(..))
                .zip(self.batch_waits.iter())
            {
                match resp.outcome {
                    RankOutcome::Failed => self.stats.failed += 1,
                    RankOutcome::Panicked => self.stats.panicked += 1,
                    _ => {}
                }
                self.stats.degraded += resp.degraded as u64;
                self.stats.latency.record(waited);
                self.done.insert(ticket.0, Done { resp, at: now });
            }
            self.stats.served += served as u64;
        }
        self.stats.batches += 1;
        match reason {
            CutReason::Full => self.stats.cuts_full += 1,
            CutReason::Deadline => self.stats.cuts_deadline += 1,
            CutReason::Flush => self.stats.cuts_flush += 1,
        }
        served + expired
    }
}

impl<M> std::fmt::Debug for ServeFrontend<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeFrontend")
            .field("pending", &self.pending.len())
            .field("completed", &self.done.len())
            .field("stats", &self.stats)
            .finish()
    }
}
