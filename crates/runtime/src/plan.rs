//! Deterministic uneven-work scheduling over the pool.
//!
//! [`crate::WorkerPool::zip_chunks`] splits work into contiguous equal-count
//! chunks — the right shape when every element costs about the same. Sharded
//! serving breaks that assumption: one batch turns into a bag of per-shard
//! tasks whose costs differ by orders of magnitude (a shard holding 800 of a
//! request's candidates vs one holding 3). A [`TaskPlan`] assigns such tasks
//! to workers with the classic LPT (longest-processing-time-first) greedy —
//! sort by declared cost, give each task to the least-loaded worker — made
//! fully deterministic by tie-breaks on task index and worker index, so the
//! same costs always produce the same assignment regardless of timing.
//!
//! The plan is data, not execution: build it on the caller, then hand it to
//! [`crate::WorkerPool::run_plan_mut`] together with one `&mut` item per
//! task. Determinism of the *assignment* is what lets consumers report
//! per-task observability (which worker built which cache entry) without
//! run-to-run noise; the task *results* must not depend on worker identity
//! at all, which is the consumer's contract exactly as with `zip_chunks`.

/// A deterministic assignment of variable-cost tasks to pool workers.
///
/// Reusable: [`TaskPlan::assign`] clears and refills every buffer, so a plan
/// held across serving batches reaches a steady state where replanning
/// allocates nothing.
#[derive(Debug, Default)]
pub struct TaskPlan {
    /// Flat per-worker task lists: worker `w`'s tasks are
    /// `tasks[offsets[w]..offsets[w + 1]]`, in descending-cost order.
    tasks: Vec<u32>,
    offsets: Vec<u32>,
    /// Scratch: task indices sorted by (cost desc, index asc).
    order: Vec<u32>,
    /// Scratch: per-worker accumulated load during assignment; kept after
    /// for observability.
    loads: Vec<u64>,
    /// Scratch: per-worker list heads while bucketing.
    cursor: Vec<u32>,
    /// Assignment of each task to its worker.
    worker_of: Vec<u32>,
    workers: usize,
}

impl TaskPlan {
    /// Creates an empty plan (buffers grow on first [`TaskPlan::assign`]).
    pub fn new() -> Self {
        TaskPlan::default()
    }

    /// Assigns tasks `0..costs.len()` to `workers` workers by deterministic
    /// LPT: tasks in (cost desc, index asc) order each go to the currently
    /// least-loaded worker (ties to the lowest worker index). Costs are
    /// relative units — only their ratios matter for balance.
    pub fn assign(&mut self, costs: &[u64], workers: usize) {
        let workers = workers.max(1);
        self.workers = workers;
        let n = costs.len();
        self.order.clear();
        self.order.extend(0..n as u32);
        self.order
            .sort_unstable_by(|&a, &b| costs[b as usize].cmp(&costs[a as usize]).then(a.cmp(&b)));
        self.loads.clear();
        self.loads.resize(workers, 0);
        self.worker_of.clear();
        self.worker_of.resize(n, 0);
        self.cursor.clear();
        self.cursor.resize(workers, 0);
        for &t in &self.order {
            let mut best = 0usize;
            for w in 1..workers {
                if self.loads[w] < self.loads[best] {
                    best = w;
                }
            }
            self.worker_of[t as usize] = best as u32;
            self.loads[best] += costs[t as usize];
            self.cursor[best] += 1;
        }
        // Bucket the sorted order into per-worker lists (counting sort over
        // the assignment): each worker's list keeps descending-cost order.
        self.offsets.clear();
        self.offsets.resize(workers + 1, 0);
        for w in 0..workers {
            self.offsets[w + 1] = self.offsets[w] + self.cursor[w];
        }
        self.cursor.copy_from_slice(&self.offsets[..workers]);
        self.tasks.clear();
        self.tasks.resize(n, 0);
        for &t in &self.order {
            let w = self.worker_of[t as usize] as usize;
            self.tasks[self.cursor[w] as usize] = t;
            self.cursor[w] += 1;
        }
    }

    /// Number of tasks in the plan.
    pub fn len(&self) -> usize {
        self.worker_of.len()
    }

    /// Whether the plan holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.worker_of.is_empty()
    }

    /// Workers the plan was built for.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Task indices assigned to `worker`, in descending-cost order.
    pub fn assigned(&self, worker: usize) -> &[u32] {
        &self.tasks[self.offsets[worker] as usize..self.offsets[worker + 1] as usize]
    }

    /// The worker each task was assigned to.
    pub fn worker_of(&self, task: usize) -> usize {
        self.worker_of[task] as usize
    }

    /// Per-worker total declared cost of the last assignment.
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn makespan(plan: &TaskPlan) -> u64 {
        plan.loads().iter().copied().max().unwrap_or(0)
    }

    #[test]
    fn every_task_assigned_exactly_once() {
        let mut plan = TaskPlan::new();
        for workers in [1, 2, 4, 7] {
            for n in [0usize, 1, 5, 16, 33] {
                let costs: Vec<u64> = (0..n as u64).map(|i| (i * 37) % 101 + 1).collect();
                plan.assign(&costs, workers);
                let mut seen = vec![false; n];
                for w in 0..workers {
                    for &t in plan.assigned(w) {
                        assert!(!seen[t as usize], "task {t} assigned twice");
                        seen[t as usize] = true;
                        assert_eq!(plan.worker_of(t as usize), w);
                    }
                }
                assert!(seen.iter().all(|&s| s), "workers={workers} n={n}");
            }
        }
    }

    #[test]
    fn assignment_is_deterministic() {
        let costs: Vec<u64> = (0..40u64).map(|i| (i * 13) % 17 + 1).collect();
        let mut a = TaskPlan::new();
        let mut b = TaskPlan::new();
        a.assign(&costs, 4);
        // Drive `b` through other shapes first: reuse must not leak.
        b.assign(&[5, 5, 5], 2);
        b.assign(&costs, 4);
        for w in 0..4 {
            assert_eq!(a.assigned(w), b.assigned(w), "worker {w}");
        }
        assert_eq!(a.loads(), b.loads());
    }

    #[test]
    fn equal_costs_tie_break_by_index_and_worker() {
        // All-equal costs: LPT degenerates to round-robin in index order.
        let mut plan = TaskPlan::new();
        plan.assign(&[7; 6], 3);
        assert_eq!(plan.assigned(0), &[0, 3]);
        assert_eq!(plan.assigned(1), &[1, 4]);
        assert_eq!(plan.assigned(2), &[2, 5]);
    }

    #[test]
    fn lpt_balances_skewed_costs() {
        // One huge task + many small: the huge task gets a worker almost to
        // itself. LPT guarantees makespan ≤ ideal + max single cost.
        let mut costs = vec![1000u64];
        costs.extend(std::iter::repeat_n(10u64, 100));
        let mut plan = TaskPlan::new();
        for workers in [2, 4, 8] {
            plan.assign(&costs, workers);
            let total: u64 = costs.iter().sum();
            let ideal = total.div_ceil(workers as u64);
            assert!(
                makespan(&plan) <= ideal + 1000,
                "workers={workers}: makespan {} vs ideal {ideal}",
                makespan(&plan)
            );
        }
    }

    #[test]
    fn single_worker_takes_everything_in_cost_order() {
        let mut plan = TaskPlan::new();
        plan.assign(&[3, 9, 1], 1);
        assert_eq!(plan.assigned(0), &[1, 0, 2]);
        assert_eq!(plan.loads(), &[13]);
    }
}
