//! Zero-downtime artifact swap: replace the served model between cuts,
//! with the new generation's kernel cache prewarmed before the commit.
//!
//! The swap is two-phase. [`crate::StagedSwap::prepare`] (or
//! [`crate::Ranker::stage_swap`]) does the expensive work — building and
//! prewarming the new generation's cache — with no claim on the frontend,
//! so a driver can stage off the serving lock while traffic keeps flowing.
//! [`ServeFrontend::commit_swap`] then installs the staged generation
//! between cuts: in-flight batches already finished on the old artifact,
//! queued requests serve on the new one, and every response carries the
//! generation that produced it. Because batches are cut FIFO, response
//! generations are non-decreasing in ticket order.

use super::core::ServeFrontend;
use crate::{RankingArtifact, StagedSwap};
use lkp_models::Recommender;
use std::time::{Duration, Instant};

/// What one committed swap did, returned by
/// [`ServeFrontend::commit_swap`] and kept in the swap log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapReport {
    /// The generation now serving (the old generation plus one).
    pub generation: u64,
    /// `(user, candidate-set)` pairs warm in the new generation's cache at
    /// commit time.
    pub warmed: usize,
    /// Old-generation cache entries retired by the commit.
    pub retired: usize,
    /// Wall-clock duration of the commit itself — the only window during
    /// which the frontend was neither serving nor cutting. Staging time is
    /// deliberately excluded: it runs off the serving path.
    pub commit_pause: Duration,
}

/// A [`SwapReport`] plus when (frontend clock) the commit happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapRecord {
    /// Frontend clock reading at commit.
    pub at: Duration,
    /// The committed swap.
    pub report: SwapReport,
}

impl<M: Recommender + Sync> ServeFrontend<M> {
    /// Installs a staged artifact generation between cuts. Pending
    /// requests stay queued and serve on the new artifact at their normal
    /// cut; completed responses keep their old-generation stamps. The
    /// commit is cheap — pointer installs plus, in per-worker cache mode,
    /// cloning the staged warm template into each worker — because the
    /// expensive prewarm already happened in [`crate::StagedSwap::prepare`].
    pub fn commit_swap(&mut self, staged: StagedSwap<M>) -> SwapReport {
        let start = Instant::now();
        let (warmed, retired) = self.ranker().commit_swap(staged);
        let commit_pause = start.elapsed();
        let report = SwapReport {
            generation: self.generation(),
            warmed,
            retired,
            commit_pause,
        };
        self.record_swap(SwapRecord {
            at: self.clock_now(),
            report,
        });
        report
    }

    /// Stages `artifact` (prewarming `prewarm_plan` into the new
    /// generation's cache) and commits it in one call. Single-threaded
    /// callers use this directly; a [`super::driver::DriverClient`] stages
    /// off the lock first so live traffic only ever waits for the commit.
    pub fn swap_artifact(
        &mut self,
        artifact: RankingArtifact<M>,
        prewarm_plan: &[(usize, Vec<usize>)],
    ) -> SwapReport {
        let staged = self.ranker().stage_swap(artifact, prewarm_plan);
        self.commit_swap(staged)
    }
}
