//! Per-worker reusable state: a typed slot map that lives as long as its
//! worker thread.

use std::any::{Any, TypeId};
use std::collections::HashMap;

/// A typed slot map owned by one pool worker.
///
/// Consumers key their scratch by type: the trainer keeps a `DppWorkspace`
/// per worker, the evaluator a score buffer, the serving layer its kernel
/// cache — all in the same state object, none visible to the others. Slots
/// are created on first access and then reused across every subsequent job
/// the worker runs, which is what makes pool execution steady-state
/// allocation-free for consumers that pre-size their scratch.
#[derive(Default)]
pub struct WorkerState {
    slots: HashMap<TypeId, Box<dyn Any + Send>>,
}

impl WorkerState {
    /// Creates an empty state (slots materialize on first access).
    pub fn new() -> Self {
        WorkerState::default()
    }

    /// Borrows the worker's `T` slot, creating it with `init` on first use.
    pub fn get_or_insert_with<T: Any + Send, F: FnOnce() -> T>(&mut self, init: F) -> &mut T {
        self.slots
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Box::new(init()))
            .downcast_mut::<T>()
            .expect("slot type is keyed by TypeId")
    }

    /// Borrows the worker's `T` slot, creating it with `T::default()` on
    /// first use.
    pub fn get_or_default<T: Any + Send + Default>(&mut self) -> &mut T {
        self.get_or_insert_with(T::default)
    }

    /// Whether a `T` slot already exists (i.e. some earlier job created it).
    pub fn contains<T: Any + Send>(&self) -> bool {
        self.slots.contains_key(&TypeId::of::<T>())
    }
}

impl std::fmt::Debug for WorkerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerState")
            .field("slots", &self.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_persist_and_are_typed() {
        let mut s = WorkerState::new();
        assert!(!s.contains::<Vec<f64>>());
        s.get_or_default::<Vec<f64>>().push(1.0);
        s.get_or_default::<Vec<f64>>().push(2.0);
        assert_eq!(s.get_or_default::<Vec<f64>>().len(), 2);
        // A different type gets its own slot.
        *s.get_or_insert_with::<usize, _>(|| 7) += 1;
        assert_eq!(*s.get_or_default::<usize>(), 8);
        assert!(s.contains::<Vec<f64>>());
    }
}
