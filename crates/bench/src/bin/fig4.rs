//! Figure 4 — k-DPP probability distributions by target count across
//! training epochs on the Anime preset (LkP-PS and LkP-NPS).
//!
//! For 100 sampled training instances (k = n = 5 ground sets), all
//! C(10,5) = 252 size-5 subsets are grouped by how many targets they
//! contain; the mean normalized probability of each group is reported at a
//! set of snapshot epochs. Before training every subset sits at
//! 1/252 ≈ 0.004; with training, groups with more targets rise and the
//! all-negative group falls — the paper's "relevance ranking
//! interpretation". NPS widens the gap faster than PS.

use lkp_bench::ExpArgs;
use lkp_core::objective::{LkpKind, LkpObjective};
use lkp_core::probes::target_count_profile;
use lkp_core::Trainer;
use lkp_data::{InstanceSampler, SyntheticPreset, TargetSelection};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = ExpArgs::parse();
    let data = args.dataset(SyntheticPreset::Anime);
    let kernel = args.diversity_kernel(&data);

    // Snapshot epochs: the paper uses {0, 30, 100, 200}; scale them down
    // proportionally when --epochs is smaller.
    let snapshots: Vec<usize> = if args.epochs >= 200 {
        vec![0, 30, 100, 200]
    } else {
        vec![0, args.epochs / 6, args.epochs / 2, args.epochs]
    };

    // Fixed probe instances (the same 100 ground sets at every snapshot).
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xF16);
    let sampler = InstanceSampler::new(args.k, args.k, TargetSelection::Sequential);
    let mut probe = sampler.epoch_instances(&data, &mut rng);
    probe.truncate(100);
    let uniform = 1.0 / lkp_dpp::binomial(2 * args.k, args.k);
    println!(
        "uniform baseline: 1/C({},{}) = {:.4}",
        2 * args.k,
        args.k,
        uniform
    );

    for kind in [LkpKind::PositiveOnly, LkpKind::NegativeAware] {
        let label = match kind {
            LkpKind::PositiveOnly => "LkP-PS",
            LkpKind::NegativeAware => "LkP-NPS",
        };
        println!("== Fig. 4 ({label}) on Anime: mean k-DPP probability by target count ==");
        print!("{:>6}", "epoch");
        for t in 0..=args.k {
            print!(" {:>9}", format!("targets={t}"));
        }
        println!();

        let mut model = args.gcn(&data);
        let mut obj = LkpObjective::new(kind, kernel.clone());
        let mut cfg = args.train_config(TargetSelection::Sequential);
        cfg.eval_every = 0; // pure training: probes do the measuring
        cfg.patience = 0;
        let trainer = Trainer::new(cfg);
        let kernel_probe = kernel.clone();
        let snap = snapshots.clone();
        trainer.fit_with_callback(&mut model, &mut obj, &data, |epoch, m| {
            if snap.contains(&epoch) {
                let profile = target_count_profile(m, &kernel_probe, &probe);
                print!("{epoch:>6}");
                for p in &profile {
                    print!(" {:>9.4}", p);
                }
                println!();
            }
        });
        println!();
    }
    println!("shape to check against the paper: the `targets=5` column starts near the");
    println!("uniform value and grows with epochs; `targets=0` decays; ordering across");
    println!("columns becomes monotone in the target count; NPS gap wider than PS.");
}
