//! Asserts the steady-state LkP apply path performs **zero heap
//! allocations** per instance.
//!
//! This test binary installs a counting global allocator (scoped to this
//! binary only — integration tests link their own executables, so the rest
//! of the suite is unaffected). After a warm-up phase that grows every
//! reusable buffer to its steady-state size, the full per-instance pipeline
//! — score → kernel staging → eigendecomposition → ESP normalizer →
//! gradients → accumulate → optimizer step — must not touch the allocator.

use lkp_core::objective::{InstanceGrad, LkpKind, LkpObjective};
use lkp_core::{train_diversity_kernel, DiversityKernelConfig, Objective};
use lkp_data::{GroundSetInstance, SyntheticConfig};
use lkp_dpp::DppWorkspace;
use lkp_models::{MatrixFactorization, Recommender};
use lkp_nn::AdamConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation/reallocation routed through the global allocator.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method delegates directly to `System`, which upholds the
// `GlobalAlloc` contract; the counter increment has no allocator-visible
// side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: contract (layout validity) is forwarded unchanged to `System`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `layout` is the caller's, passed through untouched.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: contract (ptr/layout pairing) is forwarded unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was produced by `System.alloc` with this `layout`,
        // because `alloc`/`realloc` above never substitute pointers.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: contract (ptr/layout/new_size validity) is forwarded unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same pass-through argument as `dealloc`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn steady_state_lkp_apply_path_does_not_allocate() {
    let data = lkp_data::synthetic::generate(&SyntheticConfig {
        n_users: 40,
        n_items: 120,
        n_categories: 8,
        mean_interactions: 18.0,
        ..Default::default()
    });
    let kernel = train_diversity_kernel(
        &data,
        &DiversityKernelConfig {
            epochs: 2,
            pairs_per_epoch: 32,
            dim: 8,
            ..Default::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(11);
    let mut model = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        16,
        AdamConfig::default(),
        &mut rng,
    );
    // Two instances with different users/items so the warm-up exercises the
    // sparse-gradient buffer pool beyond a single row set.
    let instances = [
        GroundSetInstance {
            user: 3,
            positives: vec![0, 5, 9, 14, 20],
            negatives: vec![50, 61, 72, 83, 94],
        },
        GroundSetInstance {
            user: 7,
            positives: vec![2, 8, 13, 40, 21],
            negatives: vec![55, 66, 77, 88, 99],
        },
    ];

    for kind in [LkpKind::PositiveOnly, LkpKind::NegativeAware] {
        let obj = LkpObjective::new(kind, kernel.clone());
        let mut ws = DppWorkspace::new();
        let mut out = InstanceGrad::default();

        // Warm-up: grow every buffer (workspace, grad slots, the model's
        // pending-gradient pool, Adam rows) to steady-state capacity.
        for _ in 0..20 {
            for inst in &instances {
                obj.compute_into(&model, inst.as_ref(), &mut ws, &mut out);
                obj.accumulate(&mut model, &out);
                model.step();
            }
        }

        let before = allocation_count();
        for _ in 0..100 {
            for inst in &instances {
                obj.compute_into(&model, inst.as_ref(), &mut ws, &mut out);
                assert!(!out.dscores.is_empty(), "instance unexpectedly skipped");
                obj.accumulate(&mut model, &out);
                model.step();
            }
        }
        let delta = allocation_count() - before;
        assert_eq!(
            delta, 0,
            "{kind:?}: steady-state apply path performed {delta} heap allocations over 200 instances"
        );
    }
}

#[test]
fn first_instance_allocates_then_reuse_kicks_in() {
    // Sanity check on the counter itself: the very first pass must allocate
    // (buffers grow from empty), otherwise the zero-delta assertion above
    // would be vacuous.
    let data = lkp_data::synthetic::generate(&SyntheticConfig {
        n_users: 20,
        n_items: 60,
        n_categories: 6,
        mean_interactions: 15.0,
        ..Default::default()
    });
    let kernel = train_diversity_kernel(
        &data,
        &DiversityKernelConfig {
            epochs: 1,
            pairs_per_epoch: 16,
            dim: 4,
            ..Default::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(2);
    let mut model = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        8,
        AdamConfig::default(),
        &mut rng,
    );
    let inst = GroundSetInstance {
        user: 1,
        positives: vec![0, 3, 6],
        negatives: vec![30, 41, 52],
    };
    let obj = LkpObjective::new(LkpKind::PositiveOnly, kernel);
    let mut ws = DppWorkspace::new();
    let mut out = InstanceGrad::default();

    let before = allocation_count();
    obj.compute_into(&model, inst.as_ref(), &mut ws, &mut out);
    obj.accumulate(&mut model, &out);
    model.step();
    assert!(
        allocation_count() > before,
        "cold pass should allocate buffers"
    );
}
