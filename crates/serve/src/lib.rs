//! `lkp-serve` — the batched top-N serving layer.
//!
//! Training (the paper's contribution) produces a relevance model and a
//! diversity kernel; the *product* is a ranker. This crate turns a trained
//! [`lkp_models::Recommender`] into one:
//!
//! 1. [`RankingArtifact`] snapshots the model + diversity kernel into an
//!    immutable serving artifact (scores and kernel entries can never drift
//!    under a concurrent trainer).
//! 2. [`Ranker`] drives batched [`RankRequest`]s through the shared
//!    [`lkp_runtime::WorkerPool`]: per request it assembles the user's
//!    tailored low-rank kernel `L_C = Diag(q)·K_C·Diag(q) + ε·I` over the
//!    candidate set (exactly the kernel the LkP criterion trained against —
//!    same quality map `q = exp(clamp(ŷ))`, same L-space jitter) and runs
//!    incremental-Cholesky greedy MAP ([`lkp_dpp::greedy_map_with`]) to pick
//!    the top-N list — `O(|C|·N²)` per request after the `O(|C|²·d)` kernel
//!    assembly.
//! 3. Each pool worker keeps a [`ServeWorkspace`] in its worker state: score
//!    and quality buffers, the kernel staging matrix, the MAP workspace, and
//!    a **bounded per-user kernel cache** — the diversity submatrix `K_C`
//!    depends only on the candidate set, so a user with a stable candidate
//!    pool skips the dominant `O(|C|²·d)` assembly on repeat requests.
//!
//! Serving results are **identical at any pool width**: requests are
//! independent, the cache stores bit-exact copies of what a cache miss would
//! recompute, and greedy MAP breaks ties by candidate order.

mod artifact;
mod cache;
mod ranker;

pub use artifact::RankingArtifact;
pub use ranker::{RankRequest, RankResponse, Ranker, ServeWorkspace};

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads of the ranker's pool (0 = host parallelism).
    pub threads: usize,
    /// L-space jitter `ε` added to the assembled candidate kernel. Defaults
    /// to the training-side [`lkp_core::KERNEL_JITTER`] so served lists rank
    /// by exactly the distribution the model was trained under.
    pub jitter: f64,
    /// Score clamp applied before `exp` in the quality map (defaults to the
    /// training-side [`lkp_core::SCORE_CLAMP`]).
    pub score_clamp: f64,
    /// Per-worker kernel-cache capacity in users (0 disables caching).
    ///
    /// The bound is an entry count, not a byte budget: each entry holds a
    /// `|C| × |C|` f64 matrix, i.e. `|C|²·8` bytes (~80 KB at `|C| = 100`,
    /// ~2 MB at `|C| = 500`), and every pool worker owns its own cache.
    /// Size it as `capacity ≈ budget_bytes / (threads · |C|² · 8)`; the
    /// default (256 entries ≈ 20 MB/worker at `|C| = 100`) favors small
    /// candidate pools.
    pub kernel_cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 0,
            jitter: lkp_core::KERNEL_JITTER,
            score_clamp: lkp_core::SCORE_CLAMP,
            kernel_cache_capacity: 256,
        }
    }
}
