//! Immutable serving artifacts snapshotted from trained state.

use lkp_dpp::LowRankKernel;
use lkp_models::Recommender;

/// An immutable snapshot of everything the serving path reads: the trained
/// relevance model and the (row-normalized) low-rank diversity kernel.
///
/// The artifact owns its state, so a `Ranker` built from it is decoupled
/// from any trainer that keeps mutating the live model — the standard
/// train/serve split. The kernel is normalized on construction to match
/// what [`lkp_core::LkpObjective`] trains against (unit diagonal; quality
/// lives entirely in `q`).
#[derive(Debug, Clone)]
pub struct RankingArtifact<M> {
    model: M,
    kernel: LowRankKernel,
}

impl<M: Recommender> RankingArtifact<M> {
    /// Freezes an owned model + kernel into an artifact.
    ///
    /// # Panics
    /// If the kernel's item count differs from the model's.
    pub fn new(model: M, kernel: LowRankKernel) -> Self {
        assert_eq!(
            kernel.num_items(),
            model.n_items(),
            "diversity kernel and model disagree on catalog size"
        );
        RankingArtifact {
            model,
            kernel: kernel.normalized(),
        }
    }

    /// Snapshots (clones) a live model + kernel into an artifact.
    pub fn snapshot(model: &M, kernel: &LowRankKernel) -> Self
    where
        M: Clone,
    {
        RankingArtifact::new(model.clone(), kernel.clone())
    }

    /// Snapshots a model trained with an [`lkp_core::LkpObjective`], reusing
    /// the objective's diversity kernel.
    pub fn from_trained(model: &M, objective: &lkp_core::LkpObjective) -> Self
    where
        M: Clone,
    {
        RankingArtifact::snapshot(model, objective.kernel())
    }

    /// Rebuilds the artifact around a refreshed model, **reusing this
    /// artifact's kernel** — the delta-fit serving handoff.
    ///
    /// An incremental `lkp_core::Trainer::update` pass moves the relevance
    /// model but leaves the pre-trained diversity kernel untouched, so the
    /// refreshed artifact clones the already-normalized kernel verbatim
    /// instead of re-normalizing: a refresh from an *unchanged* model is
    /// bitwise identical to this artifact, and per-user kernel-cache
    /// contents (keyed on candidate sets over `K`) stay valid across the
    /// swap.
    ///
    /// # Panics
    /// If the refreshed model's catalog size differs from this artifact's
    /// (the refresh pipeline preserves catalog shape; see
    /// `Dataset::merge_delta`).
    pub fn refresh_from(&self, model: &M) -> Self
    where
        M: Clone,
    {
        assert_eq!(
            model.n_items(),
            self.model.n_items(),
            "refreshed model changed the catalog size"
        );
        RankingArtifact {
            model: model.clone(),
            kernel: self.kernel.clone(),
        }
    }

    /// The frozen relevance model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The frozen (normalized) diversity kernel.
    pub fn kernel(&self) -> &LowRankKernel {
        &self.kernel
    }

    /// Catalog size served by this artifact.
    pub fn n_items(&self) -> usize {
        self.model.n_items()
    }

    /// User population served by this artifact.
    pub fn n_users(&self) -> usize {
        self.model.n_users()
    }
}
