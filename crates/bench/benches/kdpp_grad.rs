//! Per-instance k-DPP machinery: normalization, log-probability and the full
//! gradient (Eq. 12) — the inner loop of LkP training, at the paper's
//! k = n = 5 and neighbouring shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lkp_dpp::{grad, DppKernel, KDpp};
use lkp_linalg::Matrix;
use std::hint::black_box;

fn kernel(m: usize) -> DppKernel {
    let v = Matrix::from_fn(m, m, |r, c| (((r * 5 + c * 3) % 13) as f64) * 0.25 - 1.2);
    let mut g = v.gram();
    for i in 0..m {
        g[(i, i)] += 0.4;
    }
    DppKernel::new(g).unwrap()
}

fn bench_kdpp(c: &mut Criterion) {
    let mut group = c.benchmark_group("kdpp");
    group.sample_size(40);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    for &k in &[3usize, 5, 8] {
        let m = 2 * k;
        let kern = kernel(m);
        let target: Vec<usize> = (0..k).collect();
        group.bench_with_input(BenchmarkId::new("log_prob", k), &k, |b, _| {
            b.iter(|| {
                let kdpp = KDpp::new(black_box(kern.clone()), k).unwrap();
                kdpp.log_prob(black_box(&target)).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("grad_log_prob", k), &k, |b, _| {
            b.iter(|| {
                let kdpp = KDpp::new(black_box(kern.clone()), k).unwrap();
                grad::grad_log_prob(&kdpp, black_box(&target)).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kdpp);
criterion_main!(benches);
