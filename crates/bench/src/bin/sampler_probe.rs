//! Sampling-policy probe: spectral-cache hit/skip rates and per-epoch wall
//! time for each `SamplingPolicy` at `spectral_tol ∈ {0, 1e-8}`.
//!
//! Runs `Trainer::fit` on a fixed synthetic workload once per
//! (policy, tolerance) cell and reports, per cell: per-epoch wall time, the
//! spectral-cache counters (skips / warm starts / cold) with the derived
//! reuse rate, and the plan counters (resampled vs reused epochs,
//! instances per epoch). The interesting row is `frozen` at `tol = 1e-8`:
//! every revisit from epoch 2 onward must resolve in the cache, so
//! `reuse_rate ≥ (epochs − 1)/epochs` — the acceptance bar asserted by
//! `crates/core/tests/plan_equivalence.rs` and checked here too.
//!
//! Prints one JSON object; `scripts/bench_snapshot.sh` appends it to the
//! `BENCH_<date>.json` trajectory snapshot. Flags: `--epochs N` (default 6).

use lkp_core::objective::{LkpKind, LkpObjective};
use lkp_core::{train_diversity_kernel, DiversityKernelConfig, TrainConfig, Trainer};
use lkp_data::{SamplingPolicy, SyntheticConfig, TargetSelection};
use lkp_models::MatrixFactorization;
use lkp_nn::AdamConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let epochs: usize = std::env::args()
        .skip_while(|a| a != "--epochs")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);

    let data = lkp_data::synthetic::generate(&SyntheticConfig {
        n_users: 80,
        n_items: 200,
        n_categories: 12,
        mean_interactions: 20.0,
        ..Default::default()
    });
    let kernel = train_diversity_kernel(
        &data,
        &DiversityKernelConfig {
            epochs: 3,
            pairs_per_epoch: 64,
            dim: 8,
            ..Default::default()
        },
    );

    let policies: [(&str, SamplingPolicy); 3] = [
        ("resample", SamplingPolicy::ResampleEachEpoch),
        ("frozen", SamplingPolicy::FrozenNegatives),
        ("periodic4", SamplingPolicy::PeriodicRefresh { period: 4 }),
    ];
    let tols = [0.0_f64, 1e-8];

    let mut rows = Vec::new();
    for (name, policy) in policies {
        for &tol in &tols {
            let mut model = MatrixFactorization::new(
                data.n_users(),
                data.n_items(),
                32,
                AdamConfig {
                    lr: 0.02,
                    ..Default::default()
                },
                &mut StdRng::seed_from_u64(5),
            );
            let mut obj = LkpObjective::new(LkpKind::NegativeAware, kernel.clone());
            let trainer = Trainer::new(TrainConfig {
                epochs,
                batch_size: 64,
                k: 5,
                n: 5,
                mode: TargetSelection::Sequential,
                sampling_policy: policy,
                eval_every: 0,
                patience: 0,
                threads: 1,
                spectral_tol: tol,
                seed: 17,
                ..Default::default()
            });
            let t = Instant::now();
            let report = trainer.fit(&mut model, &mut obj, &data);
            let epoch_ms = t.elapsed().as_secs_f64() * 1e3 / epochs as f64;
            let cache = report.spectral_cache;
            let plan = report.plan;
            if name == "frozen" && tol > 0.0 {
                // The acceptance bar, enforced where it is measured.
                let want = (epochs as u64 - 1) * plan.instances as u64;
                assert!(
                    cache.skips + cache.warm_starts >= want,
                    "frozen@{tol:e}: {} hits < {want} revisits",
                    cache.skips + cache.warm_starts
                );
            }
            rows.push(format!(
                "{{\"policy\":\"{name}\",\"tol\":{tol:e},\
\"epoch_ms\":{epoch_ms:.2},\
\"skips\":{},\"warm_starts\":{},\"cold\":{},\"reuse_rate\":{:.4},\
\"plan_resamples\":{},\"plan_reuses\":{},\"instances_per_epoch\":{}}}",
                cache.skips,
                cache.warm_starts,
                cache.cold,
                cache.reuse_rate(),
                plan.resamples,
                plan.reuses,
                plan.instances,
            ));
        }
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "{{\"probe\":\"sampler\",\"epochs\":{epochs},\"rows\":[{}],\"host_cores\":{cores}}}",
        rows.join(","),
    );
}
