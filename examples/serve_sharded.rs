//! Sharded serving: the artifact is split into item-range shards, each
//! request's candidates fan out to per-shard greedy MAP prefixes, and a
//! lazy marginal-gain ladder merges the prefixes back into the exact
//! unsharded list.
//!
//! ```text
//! cargo run --release --example serve_sharded
//! ```
//!
//! Three things are demonstrated and asserted:
//!
//! 1. **bit-equality** — at `|C| = 1600` a 4-shard ranker serves lists
//!    (and `log_det` bits) identical to the unsharded one for every
//!    request: sharding is a layout/scheduling change, never a quality
//!    change;
//! 2. **speed** — cold (cache disabled), 4 shards are at least 2× faster
//!    per dense request, because four `O((|C|/4)²·d)` tailored kernels
//!    cost a quarter of one `O(|C|²·d)` assembly;
//! 3. **swap under traffic** — a staged artifact swap prewarms every
//!    shard of the new generation off the serving path, commits all
//!    shards atomically, and the first post-swap batch serves without a
//!    single kernel-assembly miss.

use lkp::prelude::*;
use std::time::Instant;

fn main() {
    // Enough catalog for 1600-item candidate pools; compact users so the
    // example trains in seconds.
    let data = SyntheticConfig {
        n_users: 100,
        n_items: 2000,
        n_categories: 12,
        mean_interactions: 16.0,
        seed: 33,
        ..Default::default()
    }
    .generate();

    let kernel = train_diversity_kernel(
        &data,
        &DiversityKernelConfig {
            epochs: 3,
            pairs_per_epoch: 64,
            dim: 16,
            ..Default::default()
        },
    );
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(6);
    let mut model = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        24,
        AdamConfig::default(),
        &mut rng,
    );
    let mut objective = LkpObjective::new(LkpKind::NegativeAware, kernel);
    let trainer = Trainer::new(TrainConfig {
        epochs: 2,
        eval_every: 0,
        patience: 0,
        threads: 2,
        ..Default::default()
    });
    trainer.fit(&mut model, &mut objective, &data);
    let artifact = RankingArtifact::from_trained(&model, &objective);

    // 1600 unique candidates per user (101 is coprime with the catalog
    // size, so the stride never collides).
    let pool_for = |user: usize| -> Vec<usize> {
        (0..1600)
            .map(|j| (user * 37 + j * 101 + 13) % data.n_items())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect()
    };
    let reqs: Vec<RankRequest> = (0..6)
        .map(|i| {
            let u = (i * 17 + 5) % data.n_users();
            RankRequest::new(u, pool_for(u), 10)
        })
        .collect();

    // ---- 1 + 2: bit-equality and speed, 4 shards vs 1, cold cache ----
    let cold = |shards| ServeConfig {
        threads: 2,
        kernel_cache_bytes: 0,
        artifact_shards: shards,
        ..Default::default()
    };
    let mut whole = Ranker::new(artifact.clone(), cold(1));
    let mut split = Ranker::new(artifact.clone(), cold(4));
    let partition = split.partition().expect("4-shard ranker is partitioned");
    let sizes: Vec<usize> = (0..partition.n_shards())
        .map(|s| partition.count(s))
        .collect();
    println!(
        "catalog {} items -> {} shards of {:?} (popularity round-robin)",
        data.n_items(),
        partition.n_shards(),
        sizes
    );

    let mut whole_out = Vec::new();
    let mut split_out = Vec::new();
    whole.rank_batch_into(&reqs, &mut whole_out); // warm buffers, not caches
    split.rank_batch_into(&reqs, &mut split_out);
    let mut whole_best = u128::MAX;
    let mut split_best = u128::MAX;
    // Best-of-3 per side, interleaved so machine drift cancels.
    for _ in 0..3 {
        let t = Instant::now();
        whole.rank_batch_into(&reqs, &mut whole_out);
        whole_best = whole_best.min(t.elapsed().as_nanos());
        let t = Instant::now();
        split.rank_batch_into(&reqs, &mut split_out);
        split_best = split_best.min(t.elapsed().as_nanos());
    }
    for (a, b) in whole_out.iter().zip(&split_out) {
        assert_eq!(a.items, b.items, "sharding changed a served list");
        assert_eq!(
            a.log_det.to_bits(),
            b.log_det.to_bits(),
            "sharded log_det drifted by a bit"
        );
    }
    let whole_ns = whole_best as f64 / reqs.len() as f64;
    let split_ns = split_best as f64 / reqs.len() as f64;
    let speedup = whole_ns / split_ns;
    println!(
        "|C| = 1600, top-10, cold dense: 1 shard {:.2} ms/request, 4 shards {:.2} ms/request ({speedup:.1}x)",
        whole_ns / 1e6,
        split_ns / 1e6
    );
    assert!(
        speedup >= 2.0,
        "sharded speedup {speedup:.2}x fell under the example's 2x bar"
    );
    assert_eq!(split.shard_fallbacks(), 0, "no merge fallbacks");

    // ---- 3: staged swap under a sharded ranker ----
    // The staged generation prewarms (user, pool) pairs per shard off the
    // serving path; commit installs artifact + partition under one
    // generation bump, so the first post-swap batch is all cache hits.
    // Six users × four ~1.3 MB per-shard dense entries ≈ 31 MB of warm
    // state: give the swap demo a budget that holds the whole plan.
    let mut live = Ranker::new(
        artifact.clone(),
        ServeConfig {
            threads: 2,
            artifact_shards: 4,
            kernel_cache_bytes: 64 * 1024 * 1024,
            ..Default::default()
        },
    );
    let mut out = Vec::new();
    live.rank_batch_into(&reqs, &mut out); // traffic on generation 1
    let mut rng2 = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
    let mut next_model = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        24,
        AdamConfig::default(),
        &mut rng2,
    );
    trainer.fit(&mut next_model, &mut objective, &data);
    let next = RankingArtifact::from_trained(&next_model, &objective);
    let pairs: Vec<(usize, Vec<usize>)> = reqs
        .iter()
        .map(|r| (r.user, r.candidates.clone()))
        .collect();
    let staged = live.stage_swap(next, &pairs);
    let (warmed, retired) = live.commit_swap(staged);
    assert_eq!(warmed, pairs.len(), "every pair warm in all shards");
    let before = live.cache_stats();
    live.rank_batch_into(&reqs, &mut out); // first post-swap batch
    let after = live.cache_stats();
    assert_eq!(
        after.1 - before.1,
        0,
        "post-swap batch must serve without kernel assembly"
    );
    println!(
        "swap to generation {}: {warmed} pairs prewarmed across 4 shards, {retired} stale entries retired, first post-swap batch all hits ✓",
        live.generation()
    );

    for resp in split_out.iter().take(2) {
        let cats: std::collections::BTreeSet<usize> =
            resp.items.iter().map(|&i| data.category(i)).collect();
        println!(
            "user {:>3}: top-10 {:?}  ({} distinct categories)",
            resp.user,
            resp.items,
            cats.len()
        );
    }
}
