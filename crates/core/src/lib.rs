//! `lkp-core` — the paper's contribution: the **LkP optimization criterion**.
//!
//! LkP trains a recommendation model by comparing *sets* of items through a
//! tailored k-DPP over each training instance's `k + n` ground set:
//!
//! * [`objective::LkpObjective`] — the criterion with the pre-learned
//!   diversity kernel (the default "P/NP × R/S" variants). `PS` maximizes
//!   the target subset's k-DPP probability (Eq. 7); `NPS` additionally
//!   pushes down the probability of the all-negative subset (Eq. 10).
//! * [`objective::LkpRbfObjective`] — the `E` variants, whose diversity
//!   factor is a Gaussian (RBF) kernel over *trainable* item embeddings and
//!   therefore backpropagates into them.
//! * [`diversity`] — pre-training of the low-rank diversity kernel
//!   `K = V·Vᵀ` from category-diverse vs. contaminated set pairs (Eq. 3).
//! * [`baselines`] — BPR, BCE, SetRank and Set2SetRank under the same
//!   [`objective::Objective`] trait, plus the standard-DPP ablation the
//!   paper discusses (normalizing over all cardinalities instead of k).
//! * [`trainer`] — epoch loop with mini-batch accumulation, validation-based
//!   early stopping, and epoch callbacks (used by the Fig. 2/4 probes);
//!   plus the incremental refresh pipeline (`Trainer::update`) that
//!   delta-fits a trained model from a [`trainer::TrainedState`] warm start.
//! * [`probes`] — the ranking-interpretation diagnostics behind Fig. 4
//!   (k-DPP probability by target count) and the diversity comparison of
//!   Section IV-B2.
//! * [`variants`] — the paper's six-variant naming (PR, PS, NPR, NPS, PSE,
//!   NPSE) mapped onto objective + instance-construction settings.

pub mod baselines;
pub mod diversity;
pub mod objective;
pub mod probes;
pub mod trainer;
pub mod variants;

pub use diversity::{train_diversity_kernel, DiversityKernelConfig};
pub use objective::{LkpObjective, LkpRbfObjective, Objective};
pub use trainer::{RefreshReport, TrainConfig, TrainReport, TrainedState, Trainer, UpdateRule};
pub use variants::LkpVariant;

/// Scores are clamped to this magnitude before `exp` when building kernel
/// qualities, keeping `q = exp(ŷ)` finite for any model output.
pub const SCORE_CLAMP: f64 = 30.0;

/// Jitter added to diversity-kernel submatrices before Cholesky, absorbing
/// the rank deficiency of low-rank kernels.
pub const KERNEL_JITTER: f64 = 1e-6;
