//! Incremental refresh: [`Trainer::update`], the delta-fit pass.
//!
//! An update warm-starts everything a cold fit would rebuild:
//!
//! 1. **Data** — the delta's interactions are merged into the base state's
//!    dataset ([`lkp_data::Dataset::merge_delta`]), yielding the summary of
//!    changed/new users.
//! 2. **Plan** — a [`DeltaPlanner`] freezes the base plan's records for
//!    unchanged users (same instances, same order ⇒ same batch and chunk
//!    boundaries ⇒ same pool worker per instance) and samples fresh ground
//!    sets only for changed users.
//! 3. **Spectra** — with `spectral_tol > 0`, the base run's exported
//!    spectral-cache entries are adopted into exactly the refresh worker
//!    that will serve each frozen instance, so unchanged users skip or
//!    warm-start their eigendecompositions from the first update epoch.
//! 4. **Epochs** — the shared epoch engine runs `update_epochs` passes over
//!    the frozen refresh plan under the configured [`super::UpdateRule`].
//!
//! An empty delta (nothing new after dedup) is a strict no-op: the model is
//! not touched and the returned state is the base state, so downstream
//! artifacts rebuilt from it are bitwise identical to the base artifact.

use super::{
    collect_spectral_stats, export_spectral_snapshot, run_epochs, FixedSource, PlanSource,
    RefreshReport, TrainReport, TrainedState, Trainer,
};
use crate::objective::Objective;
use lkp_data::{BatchSchedule, DatasetDelta, DeltaPlanner, EpochPlan, InstanceSampler};
use lkp_dpp::{DppWorkspace, SpectralCache, SpectralSnapshot};
use lkp_models::Recommender;
use lkp_runtime::WorkerPool;
use rand::rngs::StdRng;
use rand::SeedableRng;

impl Trainer {
    /// Delta-fits `model` — last trained to `base` — against the interaction
    /// `delta`, and returns the refreshed warm-start state for the next
    /// round.
    ///
    /// The model is expected to be the one `base` was produced with (or a
    /// clone); the refresh plan freezes `base`'s ground sets for unchanged
    /// users, which is only meaningful against the same parameters. Epoch
    /// count comes from `TrainConfig::update_epochs` (falling back to
    /// `epochs`); the parameter move is `TrainConfig::update_rule`.
    ///
    /// Equivalence contract (enforced by
    /// `crates/core/tests/incremental_equivalence.rs`): an empty delta
    /// leaves the model bitwise untouched; a delta touching *every* user
    /// under [`super::UpdateRule::Sgd`] with `update_epochs == epochs` is
    /// bitwise identical to a frozen-negatives [`Trainer::fit`] on the
    /// merged dataset.
    ///
    /// # Panics
    ///
    /// If the objective's instance shape or the target-selection mode does
    /// not match what `base`'s plan was sampled under, or if the delta
    /// references items outside the dataset's catalog.
    pub fn update<M, O>(
        &self,
        model: &mut M,
        objective: &mut O,
        base: &TrainedState,
        delta: &DatasetDelta,
    ) -> RefreshReport
    where
        M: Recommender + Clone + Sync,
        O: Objective<M>,
    {
        let cfg = &self.config;
        let (k, n) = objective.instance_shape(cfg.k, cfg.n);
        assert_eq!(
            (k, n),
            base.shape(),
            "refresh instance shape must match the base plan's"
        );
        assert_eq!(
            cfg.mode,
            base.mode(),
            "refresh target-selection mode must match the base plan's"
        );

        let (merged, summary) = base.data().merge_delta(delta);
        if summary.is_empty() {
            // Nothing survived dedup: keep the base plan and spectra; the
            // merged dataset is content-identical to the base dataset.
            return RefreshReport::no_op(TrainedState::new(
                merged,
                base.plan().clone(),
                base.batch_size,
                k,
                n,
                base.mode(),
                base.seed,
                base.spectral().clone(),
            ));
        }

        let batch_size = cfg.batch_size.max(1);
        let sampler = InstanceSampler::new(k, n, cfg.mode);
        let mut planner = DeltaPlanner::new(sampler, batch_size);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let (plan, schedule, plan_stats) =
            planner.plan_refresh(&merged, base.plan(), &summary, &mut rng);

        let mut pool = WorkerPool::new(cfg.thread_budget());
        let adopted = if cfg.spectral_tol > 0.0 && !base.spectral().is_empty() {
            seed_adopted_entries(
                &mut pool,
                &plan,
                &schedule,
                base.spectral(),
                cfg.spectral_tol,
            )
        } else {
            0
        };

        let mut source = FixedSource::new(plan, schedule);
        let run = run_epochs(
            cfg,
            cfg.refresh_epochs(),
            cfg.update_rule,
            model,
            objective,
            &merged,
            &mut source,
            &mut pool,
            &mut rng,
            &mut |_, _| {},
        );

        let report = TrainReport {
            epochs_run: run.epochs_run,
            best_epoch: run.best_epoch,
            best_val_ndcg: run.best_val,
            history: run.history,
            spectral_cache: collect_spectral_stats(&mut pool, cfg.spectral_tol),
            plan: source.stats(),
        };
        let spectral = export_spectral_snapshot(&mut pool, cfg.spectral_tol);
        let changed_users = summary.changed_users().len();
        let state = TrainedState::new(
            merged,
            source.into_plan(),
            batch_size,
            k,
            n,
            cfg.mode,
            cfg.seed,
            spectral,
        );
        RefreshReport {
            report,
            state,
            frozen_instances: plan_stats.frozen,
            fresh_instances: plan_stats.fresh,
            adopted_entries: adopted,
            changed_users,
            new_users: summary.new_users(),
            new_interactions: summary.new_interactions(),
            no_op: false,
        }
    }
}

/// Replays the epoch engine's worker-affinity math over the refresh plan and
/// adopts each base spectral entry into the one pool worker that will serve
/// its `(user, ground set)` instance, returning how many entries landed.
///
/// The cached dispatch (`zip_chunks`) hands worker `w` the contiguous slot
/// range `[w·c, (w+1)·c)` with `c = ceil(len / threads)` per batch; since
/// the refresh plan is frozen, that assignment repeats every epoch, so the
/// adopted entry sits exactly where its first revisit looks it up. Snapshot
/// entries are sorted by `(user, items)`, so each instance finds its entry
/// by binary search — one pass, no hashing, no allocation beyond the
/// per-worker assignment lists.
fn seed_adopted_entries(
    pool: &mut WorkerPool,
    plan: &EpochPlan,
    schedule: &BatchSchedule,
    snapshot: &SpectralSnapshot,
    spectral_tol: f64,
) -> usize {
    let threads = pool.threads().max(1);
    let entries = snapshot.entries();
    let mut assignments: Vec<Vec<&lkp_dpp::SpectralCacheEntry>> = Vec::with_capacity(threads);
    assignments.resize_with(threads, Vec::default);
    // Each plan record appears in exactly one batch and users are unique
    // within a plan, but distinct snapshot entries can share a user (ground
    // sets cached across resamples) — `taken` keeps adoption single-shot.
    let mut taken = Vec::with_capacity(entries.len());
    taken.resize(entries.len(), false);
    let mut adopted = 0usize;
    for batch in schedule.iter() {
        let chunk = batch.len().div_ceil(threads).max(1);
        for (pos, &idx) in batch.dispatch.iter().enumerate() {
            let rec = plan.records()[idx];
            let set = plan.ground_set(idx);
            let start = entries.partition_point(|e| e.user() < rec.user);
            for (off, entry) in entries[start..].iter().enumerate() {
                if entry.user() != rec.user {
                    break;
                }
                if entry.items() == set {
                    if !taken[start + off] {
                        taken[start + off] = true;
                        assignments[pos / chunk].push(entry);
                        adopted += 1;
                    }
                    break;
                }
            }
        }
    }
    pool.run(|worker, state| {
        let (_ws, cache) = state.get_or_default_pair::<DppWorkspace, SpectralCache>();
        cache.set_tol(spectral_tol);
        for entry in &assignments[worker] {
            cache.adopt(entry);
        }
    });
    adopted
}
