//! `(T⁺, T⁻)` set pairs for pre-training the diversity kernel (paper Eq. 3).
//!
//! "We use diversified item sets (subsets that have a broad coverage) from
//! users' historical interactions as ground truth sets for training. …
//! `T⁺` is an observed diverse set and `T⁻` represents the set that contains
//! negative items."
//!
//! `T⁺` is built greedily from a user's train items to maximize category
//! coverage; `T⁻` replaces roughly half of `T⁺` with unobserved items, so the
//! learned kernel pushes determinant mass toward observed, category-diverse
//! sets.

use crate::dataset::{Dataset, Split};
use rand::Rng;

/// One kernel-training pair.
#[derive(Debug, Clone)]
pub struct DiversePair {
    /// Observed, category-diverse set.
    pub positive: Vec<usize>,
    /// Contaminated set: same size, roughly half replaced by unobserved items.
    pub negative: Vec<usize>,
}

/// Samples a category-diverse size-`k` subset of a user's train items:
/// items are visited in random order and accepted only if they add a new
/// category, falling back to arbitrary items once coverage saturates.
///
/// Returns `None` when the user has fewer than `k` train items.
pub fn sample_diverse_set<R: Rng + ?Sized>(
    data: &Dataset,
    user: usize,
    k: usize,
    rng: &mut R,
) -> Option<Vec<usize>> {
    let train = data.user_items(user, Split::Train);
    if train.len() < k {
        return None;
    }
    let mut order: Vec<usize> = train.to_vec();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.random_range(0..=i));
    }
    let mut picked = Vec::with_capacity(k);
    let mut covered = vec![false; data.n_categories()];
    // First pass: only category-novel items.
    for &item in &order {
        if picked.len() == k {
            break;
        }
        let c = data.category(item);
        if !covered[c] {
            covered[c] = true;
            picked.push(item);
        }
    }
    // Second pass: fill up with whatever remains.
    for &item in &order {
        if picked.len() == k {
            break;
        }
        if !picked.contains(&item) {
            picked.push(item);
        }
    }
    Some(picked)
}

/// Samples one `(T⁺, T⁻)` pair for the given user, or `None` if the user is
/// too small. `T⁻` swaps `ceil(k/2)` random positions for unobserved items.
pub fn sample_pair<R: Rng + ?Sized>(
    data: &Dataset,
    user: usize,
    k: usize,
    rng: &mut R,
) -> Option<DiversePair> {
    let positive = sample_diverse_set(data, user, k, rng)?;
    let mut negative = positive.clone();
    let swaps = k.div_ceil(2);
    let mut positions: Vec<usize> = (0..k).collect();
    for i in (1..positions.len()).rev() {
        positions.swap(i, rng.random_range(0..=i));
    }
    for &pos in positions.iter().take(swaps) {
        loop {
            let cand = data.sample_negative(user, rng);
            if !negative.contains(&cand) {
                negative[pos] = cand;
                break;
            }
        }
    }
    Some(DiversePair { positive, negative })
}

/// Samples up to `count` pairs across random users.
pub fn sample_pairs<R: Rng + ?Sized>(
    data: &Dataset,
    k: usize,
    count: usize,
    rng: &mut R,
) -> Vec<DiversePair> {
    let mut out = Vec::with_capacity(count);
    let mut attempts = 0;
    while out.len() < count && attempts < count * 20 {
        attempts += 1;
        let user = rng.random_range(0..data.n_users());
        if let Some(pair) = sample_pair(data, user, k, rng) {
            out.push(pair);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, SyntheticConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data() -> Dataset {
        generate(&SyntheticConfig {
            n_users: 40,
            n_items: 150,
            n_categories: 12,
            mean_interactions: 20.0,
            ..Default::default()
        })
    }

    #[test]
    fn diverse_sets_maximize_category_coverage() {
        let d = data();
        let mut rng = StdRng::seed_from_u64(3);
        for user in 0..d.n_users() {
            let train = d.user_items(user, Split::Train);
            if train.len() < 5 {
                continue;
            }
            let set = sample_diverse_set(&d, user, 5, &mut rng).unwrap();
            assert_eq!(set.len(), 5);
            let available = d.category_coverage(train);
            let got = d.category_coverage(&set);
            assert_eq!(
                got,
                available.min(5),
                "user {user}: coverage {got}/{available}"
            );
        }
    }

    #[test]
    fn pairs_swap_about_half_with_negatives() {
        let d = data();
        let mut rng = StdRng::seed_from_u64(5);
        let pairs = sample_pairs(&d, 6, 30, &mut rng);
        assert_eq!(pairs.len(), 30);
        for pair in &pairs {
            assert_eq!(pair.positive.len(), 6);
            assert_eq!(pair.negative.len(), 6);
            let swapped = pair
                .negative
                .iter()
                .zip(&pair.positive)
                .filter(|(n, p)| n != p)
                .count();
            assert_eq!(swapped, 3, "exactly ceil(k/2) positions replaced");
            // All sets are duplicate-free.
            let mut n = pair.negative.clone();
            n.sort_unstable();
            n.dedup();
            assert_eq!(n.len(), 6);
        }
    }

    #[test]
    fn small_users_return_none() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Dataset::from_interactions(
            vec![vec![0, 1, 2]],
            (0..20).map(|i| i % 4).collect(),
            4,
            &mut rng,
        );
        assert!(sample_pair(&d, 0, 10, &mut rng).is_none());
    }
}
