//! The batched ranker: requests in, diversified top-N lists out.

use crate::cache::{CacheStats, EntryForm, KernelCache, ShardStats, SharedKernelCache};
use crate::shard::{compose_key, split_candidates, ShardState};
use crate::{CacheMode, KernelForm, RankingArtifact, ServeConfig, ShardPartition, ShardedArtifact};
use lkp_dpp::{
    greedy_map_dual_with, greedy_map_with, DualMapWorkspace, MapWorkspace, MergeLadderWorkspace,
};
use lkp_linalg::Matrix;
use lkp_models::Recommender;
use lkp_runtime::WorkerPool;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// One top-N request: rank `candidates` for `user` and keep the best
/// `top_n` under the tailored k-DPP MAP objective.
#[derive(Debug, Clone)]
pub struct RankRequest {
    /// Requesting user.
    pub user: usize,
    /// Candidate item ids (typically a few hundred from a retrieval stage).
    pub candidates: Vec<usize>,
    /// List length to produce (clamped to the candidate count).
    pub top_n: usize,
    /// Optional latency budget. The frontend sheds a request still queued
    /// past its SLO at cut time with [`RankOutcome::Expired`] instead of
    /// serving it late, and cuts a partial batch early when the SLO is
    /// tighter than [`crate::FrontendConfig::max_wait`]. `None` (the
    /// default) keeps the frontend's batch deadline as the only clock.
    pub slo: Option<Duration>,
    /// DPP rerank head: `0` (the default) runs greedy MAP over the full
    /// candidate set; a non-zero value reranks only the `rerank_head`
    /// highest-quality candidates — the degraded mode the frontend switches
    /// on under overload, trading list optimality for `O(head²)` instead of
    /// `O(|C|²)` kernel work.
    pub rerank_head: usize,
}

impl RankRequest {
    /// A request over an explicit candidate list.
    pub fn new(user: usize, candidates: Vec<usize>, top_n: usize) -> Self {
        RankRequest {
            user,
            candidates,
            top_n,
            slo: None,
            rerank_head: 0,
        }
    }

    /// A request ranking the full catalog (small catalogs / offline use).
    pub fn full_catalog(user: usize, n_items: usize, top_n: usize) -> Self {
        // lint:allow(hotpath-alloc): request-construction convenience for
        // small catalogs and offline use, not the serving loop.
        RankRequest::new(user, (0..n_items).collect(), top_n)
    }

    /// Attaches a latency budget (see [`RankRequest::slo`]).
    pub fn with_slo(mut self, slo: Duration) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Caps the DPP rerank head (see [`RankRequest::rerank_head`]).
    pub fn with_rerank_head(mut self, head: usize) -> Self {
        self.rerank_head = head;
        self
    }
}

/// What happened to a request, stamped on its [`RankResponse`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RankOutcome {
    /// A list was produced (possibly empty for `top_n = 0`).
    #[default]
    Served,
    /// The request was malformed: no candidates, unknown user, or an
    /// out-of-catalog candidate id. Deterministic — retrying cannot help.
    Invalid,
    /// A numerical failure poisoned this request only: NaN quality scores,
    /// a degenerate/NaN kernel, or a failed MAP factorization.
    Failed,
    /// The request's closure panicked; the panic was contained to this
    /// ticket (the batch, pool, and pump thread are unaffected).
    Panicked,
    /// Still queued past the request's SLO at cut time; shed unserved.
    Expired,
}

/// One served list.
///
/// `items` is in greedy selection order (position 1 first), which is also
/// the presentation order: each item maximizes the marginal determinant
/// gain given everything above it. Empty unless `outcome` is
/// [`RankOutcome::Served`] (and then still empty for `top_n = 0`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankResponse {
    /// Requesting user (copied from the request).
    pub user: usize,
    /// Selected items, best-first.
    pub items: Vec<usize>,
    /// `log det(L_S)` of the selected set under the tailored kernel.
    pub log_det: f64,
    /// Whether the diversity submatrix came from the kernel cache
    /// (per-worker or shared, per [`ServeConfig::cache_mode`]).
    pub cache_hit: bool,
    /// What happened to the request (served / invalid / failed / panicked /
    /// expired).
    pub outcome: RankOutcome,
    /// Whether the list was produced with a truncated rerank head
    /// ([`RankRequest::rerank_head`], set by the request or by the
    /// frontend's overload policy).
    pub degraded: bool,
    /// The artifact generation that produced this response (bumped by every
    /// [`Ranker::commit_swap`]; the first artifact is generation 1).
    pub generation: u64,
}

/// Per-worker serving scratch, persisted in pool worker state across
/// batches: reused score/quality buffers, the assembled kernel, the MAP
/// workspace, and the bounded per-user kernel cache. Steady-state serving
/// of a fixed request shape allocates only on cache insertions.
#[derive(Default)]
pub struct ServeWorkspace {
    scores: Vec<f64>,
    q: Vec<f64>,
    l: Matrix,
    map: MapWorkspace,
    pub(crate) cache: KernelCache,
    /// Staging copy of a shared-cache block (held while the shard lock
    /// is already released).
    shared_sub: Matrix,
    /// Factor rows `V_C` for the dual path: the shared-cache staging copy,
    /// the degraded-head gather target, and the dense-fallback re-gather.
    vc: Matrix,
    /// The dual factor `B = Diag(q)·V_C` fed to the dual MAP.
    b: Matrix,
    dual_map: DualMapWorkspace,
    /// Requests this worker abandoned to the dense fallback after a dual
    /// numerical breakdown.
    dual_fallbacks: u64,
    /// Requests this worker re-served on the stock unsharded path after the
    /// sharded merge ladder declined (or a per-shard prefix broke down).
    pub(crate) shard_fallbacks: u64,
    /// The sharded merge ladder's reusable state (heap, replayed Cholesky
    /// rows) and its diagonal staging buffer.
    pub(crate) merge: MergeLadderWorkspace,
    pub(crate) merge_diag: Vec<f64>,
    /// Duplicate-candidate scratch: index permutation sorted by
    /// `(item, position)`, per-position duplicate mask, and the rebuilt
    /// first-occurrence list when duplicates are present.
    order: Vec<u32>,
    dup: Vec<bool>,
    dedup: Vec<usize>,
    /// Degraded-mode scratch: the quality-sorted head selection and its
    /// directly-assembled kernel (degraded requests bypass both cache
    /// backends so a transient overload cannot churn the warm set).
    head_order: Vec<u32>,
    head_cands: Vec<usize>,
    head_q: Vec<f64>,
    head_sub: Matrix,
}

/// The serving engine: an immutable [`RankingArtifact`] plus a persistent
/// worker pool. Batches are cut into contiguous per-worker chunks
/// (`O(batch/threads)` requests each); every response slot is written by
/// exactly one worker, so the output order matches the request order and
/// the served lists are identical at any pool width.
pub struct Ranker<M> {
    artifact: RankingArtifact<M>,
    pool: WorkerPool,
    config: ServeConfig,
    /// The cross-worker cache when [`ServeConfig::cache_mode`] is
    /// [`CacheMode::Sharded`] (and caching is enabled); `None` keeps the
    /// per-worker backend.
    shared: Option<SharedKernelCache>,
    /// Sharded-serving state ([`ServeConfig::artifact_shards`] > 1): the
    /// item partition plus the pooled two-phase buffers. `None` serves the
    /// stock unsharded path.
    shard: Option<Box<ShardState>>,
    /// Artifact generation, stamped on every response and bumped by
    /// [`Ranker::commit_swap`].
    generation: u64,
}

/// A new artifact with its generation cache pre-assembled — the expensive
/// half of a hot swap, built *off* the serving path (no pool, no frontend
/// lock) via [`StagedSwap::prepare`] or [`Ranker::stage_swap`], then
/// installed by the cheap [`Ranker::commit_swap`] /
/// [`crate::ServeFrontend::commit_swap`].
pub struct StagedSwap<M> {
    artifact: RankingArtifact<M>,
    shared: Option<SharedKernelCache>,
    per_worker: Option<KernelCache>,
    /// The new generation's item partition when `config.artifact_shards`
    /// shards the ranker — rebuilt from the *new* artifact's popularity
    /// proxy and installed by the same [`Ranker::commit_swap`] that bumps
    /// the generation, so all shards cut over atomically between batches.
    partition: Option<ShardPartition>,
    warmed: usize,
}

impl<M: Recommender> StagedSwap<M> {
    /// Stages `artifact` with `plan`'s `(user, candidate-set)` pairs
    /// prewarmed into a fresh cache of the backend `config` selects. The
    /// config must be the serving ranker's own (capacity and cache mode
    /// decide what is staged); plan pairs follow the same validation,
    /// dedup, and monotone-fill rules as [`Ranker::prewarm`].
    pub fn prepare(
        config: &ServeConfig,
        artifact: RankingArtifact<M>,
        plan: &[(usize, Vec<usize>)],
    ) -> Self {
        let budget = config.kernel_cache_bytes;
        // Sharded configs re-partition against the *new* artifact's
        // popularity proxy; prewarm then stages per-(user, shard) pieces
        // under the composed keys the sharded path will look up.
        let eff = effective_shards(config, artifact.n_items());
        let partition = (eff > 1).then(|| ShardPartition::build(&artifact, eff));
        // lint:allow(hotpath-alloc): staging runs off the serving path — the
        // live ranker keeps serving until the atomic swap.
        let (mut order, mut dup, mut dedup) = (Vec::new(), Vec::new(), Vec::new());
        let mut per_shard = Vec::new(); // lint:allow(hotpath-alloc): staging
        let mut warmed = 0;
        let mut shared = None;
        let mut per_worker = None;
        if budget > 0 {
            match config.cache_mode {
                CacheMode::Sharded { shards } => {
                    let cache = SharedKernelCache::new(shards);
                    for (user, candidates) in plan {
                        if !prewarmable(&artifact, *user, candidates) {
                            continue;
                        }
                        let key =
                            dedup_first_occurrence(candidates, &mut order, &mut dup, &mut dedup);
                        let form = entry_form(config, key.len());
                        if prewarm_split(
                            partition.as_ref(),
                            *user,
                            key,
                            form,
                            &mut per_shard,
                            |k, cands, form| {
                                cache.prewarm(k, cands, artifact.kernel(), budget, form)
                            },
                        ) {
                            warmed += 1;
                        }
                    }
                    shared = Some(cache);
                }
                CacheMode::PerWorker => {
                    // One template cache, assembled once; commit clones it
                    // into every worker (same warm set everywhere, exactly
                    // like a plain per-worker prewarm).
                    let mut cache = KernelCache::default();
                    for (user, candidates) in plan {
                        if !prewarmable(&artifact, *user, candidates) {
                            continue;
                        }
                        let key =
                            dedup_first_occurrence(candidates, &mut order, &mut dup, &mut dedup);
                        let form = entry_form(config, key.len());
                        if prewarm_split(
                            partition.as_ref(),
                            *user,
                            key,
                            form,
                            &mut per_shard,
                            |k, cands, form| {
                                cache.prewarm(k, cands, artifact.kernel(), budget, form)
                            },
                        ) {
                            warmed += 1;
                        }
                    }
                    per_worker = Some(cache);
                }
            }
        }
        StagedSwap {
            artifact,
            shared,
            per_worker,
            partition,
            warmed,
        }
    }

    /// The staged artifact.
    pub fn artifact(&self) -> &RankingArtifact<M> {
        &self.artifact
    }

    /// Pairs warm in the staged cache.
    pub fn warmed(&self) -> usize {
        self.warmed
    }
}

impl<M: Recommender + Sync> Ranker<M> {
    /// Builds a ranker (spawning the pool) from a frozen artifact. With
    /// [`ServeConfig::artifact_shards`] > 1 the catalog is partitioned here
    /// ([`ShardedArtifact::split`]) and requests take the two-phase sharded
    /// path.
    pub fn new(artifact: RankingArtifact<M>, config: ServeConfig) -> Self {
        let eff = effective_shards(&config, artifact.n_items());
        if eff > 1 {
            return Ranker::from_sharded(ShardedArtifact::split(artifact, eff), config);
        }
        Ranker::from_parts(artifact, None, config)
    }

    /// Builds a ranker from an already-partitioned artifact. The
    /// partition's shard count governs (a 1-shard split serves the stock
    /// path); [`ServeConfig::artifact_shards`] is ignored in favor of the
    /// precomputed partition, so a split shipped from elsewhere serves
    /// exactly as it was cut.
    pub fn from_sharded(sharded: ShardedArtifact<M>, config: ServeConfig) -> Self {
        let (artifact, partition) = sharded.into_parts();
        // lint:allow(hotpath-alloc): one-time ranker construction; the boxed
        // state is reused for the ranker's whole lifetime.
        let shard = (partition.n_shards() > 1).then(|| Box::new(ShardState::new(partition)));
        Ranker::from_parts(artifact, shard, config)
    }

    fn from_parts(
        artifact: RankingArtifact<M>,
        shard: Option<Box<ShardState>>,
        config: ServeConfig,
    ) -> Self {
        let pool = WorkerPool::new(config.threads);
        let shared = match config.cache_mode {
            CacheMode::Sharded { shards } if config.kernel_cache_bytes > 0 => {
                Some(SharedKernelCache::new(shards))
            }
            _ => None,
        };
        Ranker {
            artifact,
            pool,
            config,
            shared,
            shard,
            generation: 1,
        }
    }

    /// The item partition when this ranker serves a sharded artifact.
    pub fn partition(&self) -> Option<&ShardPartition> {
        self.shard.as_deref().map(|st| &st.partition)
    }

    /// The frozen artifact this ranker serves.
    pub fn artifact(&self) -> &RankingArtifact<M> {
        &self.artifact
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The current artifact generation (starts at 1, bumped by every
    /// [`Ranker::commit_swap`]). Stamped on each response.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Worker threads in the serving pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Serves one batch of requests, one response per request in request
    /// order.
    pub fn rank_batch(&mut self, requests: &[RankRequest]) -> Vec<RankResponse> {
        // lint:allow(hotpath-alloc): owned-return convenience wrapper; the
        // zero-alloc serving path is `rank_batch_into` with reused buffers.
        let mut out = Vec::new();
        self.rank_batch_into(requests, &mut out);
        out
    }

    /// [`Ranker::rank_batch`] into a reused response buffer (cleared and
    /// refilled; response-internal buffers are recycled across batches).
    ///
    /// Failures are isolated per request: a panicking or numerically-failed
    /// request poisons only its own response slot
    /// ([`RankOutcome::Panicked`] / [`RankOutcome::Failed`]) — sibling
    /// requests in the same batch, the pool barrier, and later batches are
    /// untouched and bit-exact.
    pub fn rank_batch_into(&mut self, requests: &[RankRequest], out: &mut Vec<RankResponse>) {
        out.resize_with(requests.len(), RankResponse::default);
        let artifact = &self.artifact;
        let config = &self.config;
        let shared = self.shared.as_ref();
        let generation = self.generation;
        if let Some(st) = self.shard.as_deref_mut() {
            st.rank_batch(
                artifact,
                config,
                shared,
                &mut self.pool,
                requests,
                out,
                generation,
            );
            return;
        }
        self.pool
            .zip_chunks(requests, out, |_, reqs, resps, state| {
                let ws = state.get_or_default::<ServeWorkspace>();
                for (req, resp) in reqs.iter().zip(resps.iter_mut()) {
                    serve_request(artifact, config, shared, ws, req, resp, generation);
                }
            });
    }

    /// Serves a single request on the caller thread (no pool dispatch) —
    /// the low-latency path for un-batched traffic. Panic/failure isolation
    /// matches [`Ranker::rank_batch_into`].
    pub fn rank_one(&mut self, request: &RankRequest) -> RankResponse {
        let shared = self.shared.as_ref();
        let generation = self.generation;
        if let Some(st) = self.shard.as_deref_mut() {
            let state = self.pool.caller_state();
            return st.rank_one(
                &self.artifact,
                &self.config,
                shared,
                state,
                request,
                generation,
            );
        }
        let mut resp = RankResponse::default();
        let ws = self.pool.caller_state().get_or_default::<ServeWorkspace>();
        serve_request(
            &self.artifact,
            &self.config,
            shared,
            ws,
            request,
            &mut resp,
            generation,
        );
        resp
    }

    /// Stages a replacement artifact for a hot swap: the new generation's
    /// cache is fully assembled here, off the serving path, so
    /// [`Ranker::commit_swap`] only has to install pointers (and, in
    /// per-worker mode, clone the warm template into each worker).
    pub fn stage_swap(
        &self,
        artifact: RankingArtifact<M>,
        prewarm_plan: &[(usize, Vec<usize>)],
    ) -> StagedSwap<M> {
        StagedSwap::prepare(&self.config, artifact, prewarm_plan)
    }

    /// Atomically installs a staged artifact between batches. In-flight
    /// semantics are the caller's (the frontend swaps only between cuts, so
    /// no batch ever sees two artifacts); every response carries the
    /// generation that produced it. Old-generation cache entries are
    /// retired wholesale — they were assembled from the old kernel — while
    /// lifetime traffic counters carry over. Returns
    /// `(pairs warm in the new generation's cache, entries retired)`.
    pub fn commit_swap(&mut self, staged: StagedSwap<M>) -> (usize, usize) {
        let StagedSwap {
            artifact,
            shared,
            per_worker,
            partition,
            warmed,
        } = staged;
        assert_eq!(
            artifact.n_items(),
            self.artifact.n_items(),
            "swap must keep the catalog size (candidate ids would dangle)"
        );
        let mut retired = 0;
        if let Some(old) = self.shared.take() {
            let fresh = shared.unwrap_or_else(|| {
                let shards = match self.config.cache_mode {
                    CacheMode::Sharded { shards } => shards,
                    CacheMode::PerWorker => 1,
                };
                SharedKernelCache::new(shards)
            });
            retired += fresh.carry_stats_from(&old);
            self.shared = Some(fresh);
        } else if self.config.kernel_cache_bytes > 0 {
            let template = per_worker.unwrap_or_default();
            let retired_pw = AtomicUsize::new(0);
            self.pool.run(|_, state| {
                let ws = state.get_or_default::<ServeWorkspace>();
                retired_pw.fetch_add(ws.cache.adopt(&template), Ordering::Relaxed);
            });
            retired += retired_pw.into_inner();
        }
        self.artifact = artifact;
        // Install the new generation's partition with the artifact, before
        // the single generation bump: batches see either the old (artifact,
        // partition, caches) triple or the new one — all shards commit
        // atomically, never a mix.
        if let (Some(partition), Some(st)) = (partition, self.shard.as_deref_mut()) {
            st.partition = partition;
        }
        self.generation += 1;
        (warmed, retired)
    }

    /// [`Ranker::stage_swap`] + [`Ranker::commit_swap`] in one call, for
    /// callers without concurrent traffic to hide the staging cost from.
    pub fn swap_artifact(
        &mut self,
        artifact: RankingArtifact<M>,
        prewarm_plan: &[(usize, Vec<usize>)],
    ) -> (usize, usize) {
        let staged = self.stage_swap(artifact, prewarm_plan);
        self.commit_swap(staged)
    }

    /// Builds popular `(user, candidates)` pairs into the kernel cache
    /// before traffic, so their first request already hits. Candidate lists
    /// are deduplicated exactly like the serving path, and each entry is
    /// built in the form the serving path will look up
    /// ([`ServeConfig::kernel_form`] applied to the pool size); pairs with
    /// unknown users or out-of-catalog items are skipped, and a disabled
    /// cache (`kernel_cache_bytes = 0`) warms nothing.
    ///
    /// In [`CacheMode::Sharded`] mode each pair is built once into the
    /// shared cache. In [`CacheMode::PerWorker`] mode every pool worker
    /// builds every pair into its own cache — chunk assignment depends
    /// on future batch shapes, so all workers must hold a pair for its
    /// first request to be a guaranteed hit. Prewarm builds are counted
    /// as `prewarmed` in [`Ranker::cache_stats_detailed`], never as misses.
    ///
    /// Prewarming is strictly *monotone*: it fills empty cache budget
    /// and never evicts or overwrites a resident entry. A full cache (or
    /// hash shard) refuses further pairs rather than churning earlier
    /// ones — the prospective entry is sized in bytes *before* assembly —
    /// and a user already resident with a different candidate pool
    /// keeps that pool (the new pool refreshes via its first, missing,
    /// request). Plans larger than `kernel_cache_bytes` (or whose users
    /// hash unevenly across shards) therefore warm only a prefix; compare
    /// the returned count against `pairs.len()` to detect that. Warm
    /// entries stay warm as long as the working set fits the budget —
    /// *traffic* eviction is still plain LRU, so if enough cold-user
    /// misses land between prewarm and a warm pair's first request, that
    /// pair can be evicted before it hits; size the budget for the
    /// prewarm plan plus the expected cold interleave.
    ///
    /// Returns the number of pairs that are warm (resident with exactly
    /// the requested pool) when the call returns — whether built now
    /// or already resident. In `PerWorker` mode this is the minimum across
    /// workers, i.e. the number of pairs guaranteed warm on *every*
    /// worker, so the `pairs.len()` comparison is valid in both modes.
    pub fn prewarm(&mut self, pairs: &[(usize, Vec<usize>)]) -> usize {
        if self.config.kernel_cache_bytes == 0 {
            return 0;
        }
        let budget = self.config.kernel_cache_bytes;
        let artifact = &self.artifact;
        let config = &self.config;
        // Sharded rankers warm each pair's per-shard pieces under the
        // composed `(user, shard)` keys the serving path looks up; a pair
        // counts warm only when *every* non-empty piece is resident.
        let partition = self.shard.as_deref().map(|st| &st.partition);
        match &self.shared {
            Some(cache) => {
                // lint:allow(hotpath-alloc): prewarm is a cold warm-up pass
                // that runs before traffic, not per request.
                let (mut order, mut dup, mut dedup) = (Vec::new(), Vec::new(), Vec::new());
                let mut per_shard = Vec::new(); // lint:allow(hotpath-alloc): warm-up pass
                let mut warmed = 0;
                for (user, candidates) in pairs {
                    if !prewarmable(artifact, *user, candidates) {
                        continue;
                    }
                    let key = dedup_first_occurrence(candidates, &mut order, &mut dup, &mut dedup);
                    let form = entry_form(config, key.len());
                    if prewarm_split(partition, *user, key, form, &mut per_shard, |k, c, f| {
                        cache.prewarm(k, c, artifact.kernel(), budget, f)
                    }) {
                        warmed += 1;
                    }
                }
                warmed
            }
            None => {
                // Workers can disagree (earlier traffic left different
                // residents), so report the minimum: pairs warm everywhere.
                let warmed = AtomicUsize::new(usize::MAX);
                self.pool.run(|_, state| {
                    let ws = state.get_or_default::<ServeWorkspace>();
                    // lint:allow(hotpath-alloc): per-worker warm-up pass,
                    // not the request path.
                    let mut per_shard = Vec::new();
                    let mut local = 0;
                    for (user, candidates) in pairs {
                        if !prewarmable(artifact, *user, candidates) {
                            continue;
                        }
                        let key = dedup_first_occurrence(
                            candidates,
                            &mut ws.order,
                            &mut ws.dup,
                            &mut ws.dedup,
                        );
                        let form = entry_form(config, key.len());
                        if prewarm_split(partition, *user, key, form, &mut per_shard, |k, c, f| {
                            ws.cache.prewarm(k, c, artifact.kernel(), budget, f)
                        }) {
                            local += 1;
                        }
                    }
                    warmed.fetch_min(local, Ordering::Relaxed);
                });
                warmed.into_inner()
            }
        }
    }

    /// Aggregate `(hits, misses)` of the kernel cache (per-worker caches
    /// summed, or the shared cache's shards summed, per
    /// [`ServeConfig::cache_mode`]). Disabled-cache passthroughs
    /// (`kernel_cache_bytes = 0`) are **not** misses — they are counted
    /// separately in [`Ranker::cache_bypasses`], so a hit rate derived from
    /// this pair reflects only lookups the cache was allowed to serve.
    /// Reading stats never materializes serving state on idle workers.
    pub fn cache_stats(&mut self) -> (u64, u64) {
        let stats = self.cache_stats_detailed();
        (stats.aggregate.hits, stats.aggregate.misses)
    }

    /// Aggregate count of kernel builds that deliberately bypassed the
    /// cache because it was disabled (`kernel_cache_bytes = 0`).
    pub fn cache_bypasses(&mut self) -> u64 {
        self.cache_stats_detailed().aggregate.bypasses
    }

    /// How many requests fell back from the dual MAP path to the dense one
    /// after a numerical breakdown (summed across workers; always 0 in
    /// [`KernelForm::Dense`] mode). Fallback responses are bit-identical to
    /// what dense-mode serving would have produced, so a non-zero count is
    /// a performance signal, not a correctness one.
    pub fn dual_fallbacks(&mut self) -> u64 {
        // The caller is worker 0, so `run` also covers the un-batched
        // `rank_one` path (which serves from the caller's state).
        let count = std::sync::atomic::AtomicU64::new(0);
        self.pool.run(|_, state| {
            if let Some(ws) = state.get_mut::<ServeWorkspace>() {
                count.fetch_add(ws.dual_fallbacks, Ordering::Relaxed);
            }
        });
        count.into_inner()
    }

    /// How many requests the sharded path re-served on the stock unsharded
    /// path (summed across workers; always 0 with `artifact_shards = 1`).
    /// A fallback happens when a per-shard prefix breaks down or the lazy
    /// merge ladder cannot certify bitwise parity; the re-served response
    /// is bit-identical to unsharded serving by construction, so — like
    /// [`Ranker::dual_fallbacks`] — a non-zero count is a performance
    /// signal, not a correctness one.
    pub fn shard_fallbacks(&mut self) -> u64 {
        let count = std::sync::atomic::AtomicU64::new(0);
        self.pool.run(|_, state| {
            if let Some(ws) = state.get_mut::<ServeWorkspace>() {
                count.fetch_add(ws.shard_fallbacks, Ordering::Relaxed);
            }
        });
        count.into_inner()
    }

    /// Full per-shard + aggregate kernel-cache counters. In `PerWorker`
    /// mode `per_shard[i]` is worker `i`'s cache (a worker that never
    /// served a request reports a zero row — the read uses the pool's
    /// optional-state accessor and does not create workspaces); in
    /// `Sharded` mode `per_shard[i]` is hash shard `i`.
    pub fn cache_stats_detailed(&mut self) -> CacheStats {
        match &self.shared {
            Some(cache) => CacheStats::from_shards(cache.stats()),
            None => {
                // lint:allow(hotpath-alloc): observability endpoint, called by
                // operators — not on the request path.
                let rows = std::sync::Mutex::new(vec![ShardStats::default(); self.pool.threads()]);
                self.pool.run(|worker, state| {
                    // Optional accessor: idle workers stay untouched instead
                    // of materializing an empty workspace (and its cache)
                    // just to report zeros.
                    if let Some(ws) = state.get_mut::<ServeWorkspace>() {
                        rows.lock().expect("stats lock")[worker] = ws.cache.shard_stats();
                    }
                });
                CacheStats::from_shards(rows.into_inner().expect("stats lock"))
            }
        }
    }

    /// How many pool workers currently hold a materialized
    /// [`ServeWorkspace`] — observability for the invariant that stats
    /// reads leave idle workers untouched.
    pub fn resident_workspaces(&mut self) -> usize {
        let count = AtomicUsize::new(0);
        self.pool.run(|_, state| {
            if state.contains::<ServeWorkspace>() {
                count.fetch_add(1, Ordering::Relaxed);
            }
        });
        count.into_inner()
    }
}

impl<M> std::fmt::Debug for Ranker<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ranker")
            .field("threads", &self.pool.threads())
            .field("cache_mode", &self.config.cache_mode)
            .field(
                "artifact_shards",
                &self
                    .shard
                    .as_deref()
                    .map_or(1, |st| st.partition.n_shards()),
            )
            .field("generation", &self.generation)
            .finish()
    }
}

/// The shard count a config yields on a given catalog: clamped to
/// `1..=n_items` so degenerate configs degrade to the stock path instead
/// of creating empty shards.
fn effective_shards(config: &ServeConfig, n_items: usize) -> usize {
    config.artifact_shards.clamp(1, n_items.max(1))
}

/// Prewarms one `(user, key)` pair, split per shard when `partition` is
/// present (each non-empty piece under its composed `(user, shard)` key —
/// exactly the lookups the sharded serving path performs). Returns whether
/// the pair is fully warm: unsharded, the single entry; sharded, *every*
/// non-empty piece.
fn prewarm_split(
    partition: Option<&ShardPartition>,
    user: usize,
    key: &[usize],
    form: EntryForm,
    per_shard: &mut Vec<Vec<usize>>,
    mut warm: impl FnMut(usize, &[usize], EntryForm) -> bool,
) -> bool {
    match partition {
        None => warm(user, key, form),
        Some(p) => {
            split_candidates(p, key, per_shard);
            let n = p.n_shards();
            let mut all = true;
            for (s, piece) in per_shard[..n].iter().enumerate() {
                if piece.is_empty() {
                    continue;
                }
                if !warm(compose_key(user, n, s), piece, form) {
                    all = false;
                }
            }
            all
        }
    }
}

/// Which cache-entry/kernel form the configured [`KernelForm`] selects for
/// an effective reranked set of `len` candidates. The decision is applied to
/// the *effective* set (the head size for degraded requests), so a degraded
/// frontend request and the equivalent direct capped request route — and
/// serve — identically.
pub(crate) fn entry_form(config: &ServeConfig, len: usize) -> EntryForm {
    match config.kernel_form {
        KernelForm::LowRankDual { min_candidates } if len >= min_candidates => EntryForm::Factor,
        _ => EntryForm::Dense,
    }
}

/// Assembles the tailored dense kernel `L = Diag(q)·K_C·Diag(q) + ε·I` into
/// `l` from factor rows `vc` (`m × d`), computing each `K_C` entry as the
/// factor-row dot product. This is bit-identical to assembling from a
/// materialized `K_C` block ([`lkp_dpp::LowRankKernel::submatrix_into`]
/// computes the same dot on the same rows), which makes the dual path's
/// dense *fallback* indistinguishable from dense-mode serving.
fn tailored_from_factor(vc: &Matrix, q: &[f64], jitter: f64, l: &mut Matrix) {
    let m = vc.rows();
    l.reset(m, m);
    for i in 0..m {
        let qi = q[i];
        l[(i, i)] = qi * lkp_linalg::ops::dot(vc.row(i), vc.row(i)) * qi + jitter;
        for j in (i + 1)..m {
            let qj = q[j];
            let kij = lkp_linalg::ops::dot(vc.row(i), vc.row(j));
            let avg = 0.5 * (qi * kij * qj + qj * kij * qi);
            l[(i, j)] = avg;
            l[(j, i)] = avg;
        }
    }
}

/// Whether a prewarm pair is servable (mirrors `serve_one`'s validation).
fn prewarmable<M: Recommender>(
    artifact: &RankingArtifact<M>,
    user: usize,
    candidates: &[usize],
) -> bool {
    !candidates.is_empty()
        && user < artifact.n_users()
        && candidates.iter().all(|&i| i < artifact.n_items())
}

/// Returns `candidates` with second and later occurrences of each item
/// removed, preserving first-occurrence order. Sorting an index permutation
/// by `(item, position)` finds duplicates and rebuilds the deduplicated
/// list in `O(|C| log |C|)`; the clean common case pays one sort and no
/// rebuild (the input slice is returned untouched).
pub(crate) fn dedup_first_occurrence<'a>(
    candidates: &'a [usize],
    order: &mut Vec<u32>,
    dup: &mut Vec<bool>,
    dedup: &'a mut Vec<usize>,
) -> &'a [usize] {
    order.clear();
    order.extend(0..candidates.len() as u32);
    order.sort_unstable_by_key(|&i| (candidates[i as usize], i));
    dup.clear();
    dup.resize(candidates.len(), false);
    let mut any = false;
    // Within a run of equal items the permutation ascends by position, so
    // the run's first element is the first occurrence; mark the rest.
    for w in order.windows(2) {
        if candidates[w[0] as usize] == candidates[w[1] as usize] {
            dup[w[1] as usize] = true;
            any = true;
        }
    }
    if !any {
        return candidates;
    }
    dedup.clear();
    dedup.extend(
        candidates
            .iter()
            .zip(dup.iter())
            .filter(|&(_, &d)| !d)
            .map(|(&item, _)| item),
    );
    dedup
}

/// [`serve_one`] behind a per-request panic shield: a panicking request
/// poisons only its own response slot ([`RankOutcome::Panicked`]), never
/// the batch, the pool barrier, or the pump thread. The workspace is safe
/// to reuse afterwards — every scratch buffer is clear-and-refill.
pub(crate) fn serve_request<M: Recommender>(
    artifact: &RankingArtifact<M>,
    config: &ServeConfig,
    shared: Option<&SharedKernelCache>,
    ws: &mut ServeWorkspace,
    req: &RankRequest,
    resp: &mut RankResponse,
    generation: u64,
) {
    let result = catch_unwind(AssertUnwindSafe(|| {
        serve_one(artifact, config, shared, ws, req, resp, generation);
    }));
    if result.is_err() {
        resp.user = req.user;
        resp.items.clear();
        resp.log_det = 0.0;
        resp.cache_hit = false;
        resp.degraded = false;
        resp.generation = generation;
        resp.outcome = RankOutcome::Panicked;
    }
}

/// Serves one request into `resp` using the worker's scratch.
fn serve_one<M: Recommender>(
    artifact: &RankingArtifact<M>,
    config: &ServeConfig,
    shared: Option<&SharedKernelCache>,
    ws: &mut ServeWorkspace,
    req: &RankRequest,
    resp: &mut RankResponse,
    generation: u64,
) {
    resp.user = req.user;
    resp.items.clear();
    resp.log_det = 0.0;
    resp.cache_hit = false;
    resp.outcome = RankOutcome::Served;
    resp.degraded = false;
    resp.generation = generation;

    let n_items = artifact.n_items();
    if req.candidates.is_empty()
        || req.user >= artifact.n_users()
        || req.candidates.iter().any(|&i| i >= n_items)
    {
        resp.outcome = RankOutcome::Invalid;
        return;
    }
    if req.top_n == 0 {
        return;
    }

    // Duplicate candidate ids would let greedy MAP pick the same item
    // twice (a duplicate row's residual decays only to the jitter floor,
    // above the rank cutoff). Deduplicate, keeping first occurrences.
    let candidates =
        dedup_first_occurrence(&req.candidates, &mut ws.order, &mut ws.dup, &mut ws.dedup);
    let c = candidates.len();

    // Scores → quality, exactly the training-side map q = exp(clamp(ŷ)).
    artifact
        .model()
        .score_items_into(req.user, candidates, &mut ws.scores);
    if ws.scores.iter().any(|s| s.is_nan()) {
        resp.outcome = RankOutcome::Failed;
        return;
    }
    ws.q.clear();
    ws.q.extend(
        ws.scores
            .iter()
            .map(|&s| s.clamp(-config.score_clamp, config.score_clamp).exp()),
    );

    // Degraded mode: rerank only the `head` highest-quality candidates
    // (quality-sorting the full set is `O(|C| log |C|)`; only the head pays
    // kernel work). Ordering is by (score desc, position asc) via
    // `total_cmp`, then the survivors are re-sorted back into candidate
    // order so greedy-MAP tie-breaks match what the same head would produce
    // as a direct request. The head's kernel block is built directly —
    // bypassing both cache backends — so a transient overload cannot churn
    // the warm set keyed on full candidate pools.
    let degraded = req.rerank_head > 0 && req.rerank_head < c;
    if degraded {
        ws.head_order.clear();
        ws.head_order.extend(0..c as u32);
        ws.head_order.sort_unstable_by(|&a, &b| {
            ws.scores[b as usize]
                .total_cmp(&ws.scores[a as usize])
                .then(a.cmp(&b))
        });
        ws.head_order.truncate(req.rerank_head);
        ws.head_order.sort_unstable();
        ws.head_cands.clear();
        ws.head_q.clear();
        for &i in &ws.head_order {
            ws.head_cands.push(candidates[i as usize]);
            ws.head_q.push(ws.q[i as usize]);
        }
        resp.degraded = true;
    }

    // Effective reranked set: the head for degraded requests, the full
    // deduplicated pool otherwise. The kernel-form decision keys on its
    // size, so a degraded frontend request routes exactly like the
    // equivalent direct capped request.
    let (cands_used, q_used): (&[usize], &[f64]) = if degraded {
        (&ws.head_cands, &ws.head_q)
    } else {
        (candidates, &ws.q)
    };
    let m = cands_used.len();
    let k = req.top_n.min(m);
    let budget = config.kernel_cache_bytes;

    if entry_form(config, m) == EntryForm::Factor {
        // Dual path: fetch the factor rows V_C (cached per user, or
        // gathered directly for a degraded head), scale into
        // B = Diag(q)·V_C, and run greedy MAP against B·Bᵀ without ever
        // materializing L_C — O(m·N·(d + N)) instead of O(m²·d) assembly.
        let (v_c, hit): (&Matrix, bool) = if degraded {
            artifact
                .kernel()
                .gather_rows_into(cands_used, &mut ws.vc)
                .expect("candidates validated above");
            (&ws.vc, false)
        } else {
            match shared {
                Some(cache) => {
                    let hit = cache.get_or_build_into(
                        req.user,
                        cands_used,
                        artifact.kernel(),
                        budget,
                        EntryForm::Factor,
                        &mut ws.vc,
                    );
                    (&ws.vc, hit)
                }
                None => ws.cache.get_or_build(
                    req.user,
                    cands_used,
                    artifact.kernel(),
                    budget,
                    EntryForm::Factor,
                ),
            }
        };
        resp.cache_hit = hit;
        let d = v_c.cols();
        ws.b.reset(m, d);
        for (i, &qi) in q_used.iter().enumerate() {
            for (o, &v) in ws.b.row_mut(i).iter_mut().zip(v_c.row(i)) {
                *o = qi * v;
            }
        }
        ws.dual_map.guard = config.dual_guard;
        match greedy_map_dual_with(&ws.b, config.jitter, k, &mut ws.dual_map) {
            Ok(()) => {
                if !ws.dual_map.log_det().is_finite() {
                    resp.items.clear();
                    resp.outcome = RankOutcome::Failed;
                    return;
                }
                resp.items
                    .extend(ws.dual_map.items().iter().map(|&idx| cands_used[idx]));
                resp.log_det = ws.dual_map.log_det();
                return;
            }
            Err(_) => {
                // Numerical breakdown: abandon the dual recursion for this
                // request and serve it on the dense path. L is assembled
                // from freshly gathered factor rows with the dense path's
                // exact arithmetic, so the fallback response is
                // bit-identical to dense-mode serving (the factor cache
                // entry, if any, stays resident — the kernel didn't change,
                // the recursion did).
                ws.dual_fallbacks += 1;
                artifact
                    .kernel()
                    .gather_rows_into(cands_used, &mut ws.vc)
                    .expect("candidates validated above");
                tailored_from_factor(&ws.vc, q_used, config.jitter, &mut ws.l);
            }
        }
    } else {
        // Dense path: diversity submatrix K_C (cached per user —
        // worker-private or shared per `cache_mode`; built directly for a
        // degraded head), then the tailored kernel
        // L = Diag(q)·K_C·Diag(q) + ε·I assembled into the reused buffer.
        // The off-diagonal entries average the two factorization orders —
        // the same arithmetic as `DppKernel::from_quality_diversity` +
        // `symmetrize` — so the serve-side kernel matches the offline
        // `lkp_core::objective::tailored_kernel` bit for bit, not merely up
        // to round-off. Both cache backends store bit-exact copies of what
        // a miss recomputes, so the mode can never change a served list.
        let (k_sub, hit): (&Matrix, bool) = if degraded {
            artifact
                .kernel()
                .submatrix_into(cands_used, &mut ws.head_sub)
                .expect("candidates validated above");
            (&ws.head_sub, false)
        } else {
            match shared {
                Some(cache) => {
                    let hit = cache.get_or_build_into(
                        req.user,
                        cands_used,
                        artifact.kernel(),
                        budget,
                        EntryForm::Dense,
                        &mut ws.shared_sub,
                    );
                    (&ws.shared_sub, hit)
                }
                None => ws.cache.get_or_build(
                    req.user,
                    cands_used,
                    artifact.kernel(),
                    budget,
                    EntryForm::Dense,
                ),
            }
        };
        resp.cache_hit = hit;
        ws.l.reset(m, m);
        for i in 0..m {
            let qi = q_used[i];
            ws.l[(i, i)] = qi * k_sub[(i, i)] * qi + config.jitter;
            for j in (i + 1)..m {
                let qj = q_used[j];
                let kij = k_sub[(i, j)];
                let avg = 0.5 * (qi * kij * qj + qj * kij * qi);
                ws.l[(i, j)] = avg;
                ws.l[(j, i)] = avg;
            }
        }
    }

    // Dense greedy MAP under the tailored kernel — the dense path and the
    // dual path's breakdown fallback both land here; selection order is the
    // list. A factorization error or a non-finite objective (a
    // NaN/degenerate diversity block) fails this request only.
    if greedy_map_with(&ws.l, k, &mut ws.map).is_err() {
        resp.outcome = RankOutcome::Failed;
        return;
    }
    if !ws.map.log_det().is_finite() {
        resp.items.clear();
        resp.outcome = RankOutcome::Failed;
        return;
    }
    resp.items
        .extend(ws.map.items().iter().map(|&idx| cands_used[idx]));
    resp.log_det = ws.map.log_det();
}
