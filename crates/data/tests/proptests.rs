//! Property-based tests for dataset construction and instance sampling.

use lkp_data::{Dataset, InstanceSampler, Split, TargetSelection};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random per-user interaction lists over `n_items` items, each user with at
/// least `min_len` distinct interactions.
fn interactions_strategy(
    n_users: usize,
    n_items: usize,
    min_len: usize,
) -> impl Strategy<Value = Vec<Vec<usize>>> {
    proptest::collection::vec(
        proptest::collection::vec(0..n_items, min_len..(n_items / 2).max(min_len + 1)),
        n_users,
    )
    .prop_map(move |users| {
        users
            .into_iter()
            .map(|mut items| {
                // Deduplicate while preserving order, then pad with unused
                // items to restore the minimum length.
                let mut seen = vec![false; n_items];
                items.retain(|&i| {
                    let fresh = !seen[i];
                    seen[i] = true;
                    fresh
                });
                let mut next = 0;
                while items.len() < min_len {
                    if !seen[next] {
                        seen[next] = true;
                        items.push(next);
                    }
                    next += 1;
                }
                items
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn splits_partition_interactions(
        interactions in interactions_strategy(6, 60, 12),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cats: Vec<usize> = (0..60).map(|i| i % 7).collect();
        let total: usize = interactions.iter().map(|v| v.len()).sum();
        let data = Dataset::from_interactions(interactions, cats, 7, &mut rng);
        prop_assert_eq!(data.n_interactions(), total);
        for u in 0..data.n_users() {
            let tr = data.user_items(u, Split::Train);
            let va = data.user_items(u, Split::Validation);
            let te = data.user_items(u, Split::Test);
            let mut all: Vec<usize> = tr.iter().chain(va).chain(te).copied().collect();
            let len = all.len();
            all.sort_unstable();
            all.dedup();
            prop_assert_eq!(all.len(), len, "overlapping splits for user {}", u);
            // Paper ratios ±1 rounding.
            let n = len as f64;
            prop_assert!((te.len() as f64 - 0.2 * n).abs() <= 1.0);
            prop_assert!((va.len() as f64 - 0.1 * n).abs() <= 1.0);
        }
    }

    #[test]
    fn negatives_are_never_observed(
        interactions in interactions_strategy(4, 50, 12),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cats: Vec<usize> = (0..50).map(|i| i % 5).collect();
        let data = Dataset::from_interactions(interactions, cats, 5, &mut rng);
        for u in 0..data.n_users() {
            for neg in data.sample_negatives(u, 5, &mut rng) {
                prop_assert!(!data.is_observed(u, neg));
            }
        }
    }

    #[test]
    fn every_train_item_becomes_a_target(
        interactions in interactions_strategy(5, 60, 14),
        seed in 0u64..1000,
        k in 2usize..5,
        sequential in proptest::bool::ANY,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cats: Vec<usize> = (0..60).map(|i| i % 6).collect();
        let data = Dataset::from_interactions(interactions, cats, 6, &mut rng);
        let mode = if sequential { TargetSelection::Sequential } else { TargetSelection::Random };
        let sampler = InstanceSampler::new(k, k, mode);
        let instances = sampler.epoch_instances(&data, &mut rng);
        for u in 0..data.n_users() {
            let train = data.user_items(u, Split::Train);
            if train.len() < k {
                continue;
            }
            for &item in train {
                prop_assert!(
                    instances.iter().any(|i| i.user == u && i.positives.contains(&item)),
                    "user {} item {} uncovered in {:?} mode", u, item, mode
                );
            }
        }
    }

    #[test]
    fn instance_budget_never_exceeds_pointwise(
        interactions in interactions_strategy(5, 60, 14),
        seed in 0u64..1000,
        k in 2usize..6,
    ) {
        // The paper's fairness constraint: set-level instances ≤ train items.
        let mut rng = StdRng::seed_from_u64(seed);
        let cats: Vec<usize> = (0..60).map(|i| i % 4).collect();
        let data = Dataset::from_interactions(interactions, cats, 4, &mut rng);
        let train_items: usize =
            (0..data.n_users()).map(|u| data.user_items(u, Split::Train).len()).sum();
        for mode in [TargetSelection::Sequential, TargetSelection::Random] {
            let sampler = InstanceSampler::new(k, k, mode);
            let instances = sampler.epoch_instances(&data, &mut rng);
            prop_assert!(instances.len() <= train_items);
        }
    }

    #[test]
    fn ground_sets_have_distinct_items(
        interactions in interactions_strategy(4, 60, 12),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cats: Vec<usize> = (0..60).map(|i| i % 6).collect();
        let data = Dataset::from_interactions(interactions, cats, 6, &mut rng);
        let sampler = InstanceSampler::new(3, 3, TargetSelection::Random);
        for inst in sampler.epoch_instances(&data, &mut rng) {
            let mut g = inst.ground_set();
            let len = g.len();
            g.sort_unstable();
            g.dedup();
            prop_assert_eq!(g.len(), len, "duplicate items in a ground set");
        }
    }

    #[test]
    fn category_coverage_bounds(
        items in proptest::collection::vec(0usize..40, 0..15),
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cats: Vec<usize> = (0..40).map(|i| i % 9).collect();
        let data = Dataset::from_interactions(vec![(0..40).collect()], cats, 9, &mut rng);
        let cov = data.category_coverage(&items);
        let mut distinct = items.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert!(cov <= distinct.len());
        prop_assert!(cov <= 9);
        if !items.is_empty() {
            prop_assert!(cov >= 1);
        }
    }
}
