//! Slice-level vector operations shared across the workspace.
//!
//! These avoid a dedicated vector type: model embeddings and score vectors
//! are plain `&[f64]` slices, and all hot per-instance math goes through
//! these helpers.

/// Dot product of two equal-length slices.
///
/// Accumulates over four independent f64 lanes (`a[0]b[0]+a[4]b[4]+…`, etc.)
/// so the loop carries no single serial dependency chain and vectorizes to
/// SIMD FMA lanes without `-ffast-math`-style reassociation. The lane split
/// changes the summation *order* relative to [`dot_scalar`], so results may
/// differ from the strict left-to-right sum by round-off (pinned ≤ 1e-12
/// relative by the linalg proptests) — but the function itself is fully
/// deterministic: the same inputs always produce the same bits.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0_f64; 4];
    let a_chunks = a.chunks_exact(4);
    let b_chunks = b.chunks_exact(4);
    let a_tail = a_chunks.remainder();
    let b_tail = b_chunks.remainder();
    for (ca, cb) in a_chunks.zip(b_chunks) {
        lanes[0] += ca[0] * cb[0];
        lanes[1] += ca[1] * cb[1];
        lanes[2] += ca[2] * cb[2];
        lanes[3] += ca[3] * cb[3];
    }
    let mut acc = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for (&x, &y) in a_tail.iter().zip(b_tail) {
        acc += x * y;
    }
    acc
}

/// Strict left-to-right scalar dot product — the reference the chunked
/// [`dot`] is property-tested against. Exposed for tests and benches.
#[doc(hidden)]
#[inline]
pub fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// In-place `y += alpha * x`.
///
/// Unrolled over 4-element blocks. Unlike [`dot`], the update is elementwise
/// (no cross-element reduction), so the blocked form is **bitwise identical**
/// to the scalar loop — the unroll only widens the independent-operation
/// window for the vectorizer.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    let mut y_chunks = y.chunks_exact_mut(4);
    let x_chunks = x.chunks_exact(4);
    let x_tail = x_chunks.remainder();
    for (cy, cx) in (&mut y_chunks).zip(x_chunks) {
        cy[0] += alpha * cx[0];
        cy[1] += alpha * cx[1];
        cy[2] += alpha * cx[2];
        cy[3] += alpha * cx[3];
    }
    for (yi, &xi) in y_chunks.into_remainder().iter_mut().zip(x_tail) {
        *yi += alpha * xi;
    }
}

/// In-place `x *= alpha`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Euclidean norm.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Squared Euclidean distance between two equal-length slices.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

/// Numerically stable log-sum-exp.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        return m;
    }
    m + xs.iter().map(|&x| (x - m).exp()).sum::<f64>().ln()
}

/// Logistic sigmoid, stable for large |x|.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// `log(sigmoid(x))`, stable for large |x|.
#[inline]
pub fn log_sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        -(-x).exp().ln_1p()
    } else {
        x - x.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_axpy_scale() {
        let a = [1.0, 2.0, 3.0];
        let mut b = [4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        axpy(2.0, &a, &mut b);
        assert_eq!(b, [6.0, 9.0, 12.0]);
        scale(0.5, &mut b);
        assert_eq!(b, [3.0, 4.5, 6.0]);
    }

    #[test]
    fn chunked_dot_handles_all_tail_lengths() {
        // Lengths straddling the 4-lane boundary, incl. empty.
        for len in 0..=13usize {
            let a: Vec<f64> = (0..len).map(|i| (i as f64) * 0.7 - 2.0).collect();
            let b: Vec<f64> = (0..len).map(|i| 1.5 - (i as f64) * 0.3).collect();
            let reference = dot_scalar(&a, &b);
            let chunked = dot(&a, &b);
            assert!(
                (chunked - reference).abs() <= 1e-12 * reference.abs().max(1.0),
                "len {len}: {chunked} vs {reference}"
            );
        }
    }

    #[test]
    fn blocked_axpy_is_bitwise_scalar() {
        for len in 0..=13usize {
            let x: Vec<f64> = (0..len).map(|i| (i as f64) * 0.9 - 3.0).collect();
            let mut y_blocked: Vec<f64> = (0..len).map(|i| (i as f64) * -0.4 + 1.0).collect();
            let mut y_scalar = y_blocked.clone();
            axpy(0.37, &x, &mut y_blocked);
            for (yi, &xi) in y_scalar.iter_mut().zip(&x) {
                *yi += 0.37 * xi;
            }
            for (a, b) in y_blocked.iter().zip(&y_scalar) {
                assert_eq!(a.to_bits(), b.to_bits(), "len {len}");
            }
        }
    }

    #[test]
    fn log_sum_exp_matches_naive() {
        let xs: [f64; 3] = [0.1, -0.3, 2.0];
        let naive = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_handles_large_values() {
        let xs = [1000.0, 1000.0];
        assert!((log_sum_exp(&xs) - (1000.0 + 2.0_f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn sigmoid_is_stable_and_symmetric() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
        assert!((sigmoid(50.0) - 1.0).abs() < 1e-15);
        assert!(sigmoid(-800.0) >= 0.0);
        for x in [-3.0, -0.5, 0.7, 4.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn log_sigmoid_matches_ln_of_sigmoid() {
        for x in [-5.0, -1.0, 0.0, 1.0, 5.0] {
            assert!((log_sigmoid(x) - sigmoid(x).ln()).abs() < 1e-10);
        }
        // And doesn't underflow to -inf prematurely for very negative x.
        assert!(log_sigmoid(-700.0).is_finite());
    }

    #[test]
    fn sq_dist_basics() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
    }
}
