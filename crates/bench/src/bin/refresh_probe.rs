//! Training-refresh probe: incremental `Trainer::update` vs full retrain.
//!
//! Fits a warm base model once (`Trainer::fit_state`), applies a small
//! interaction delta (one fresh item for ~10% of users), then measures the
//! two ways of absorbing it from the same warm parameters:
//!
//! * **retrain** — a full frozen-negatives `fit` on the merged dataset,
//!   same epoch budget as the base fit;
//! * **refresh** — `Trainer::update` from the captured [`TrainedState`]
//!   with an eighth of the epoch budget, frozen instances for unchanged
//!   users, and the base fit's spectral-cache entries adopted across the
//!   fit boundary.
//!
//! Acceptance, enforced where it is measured: the refresh must land within
//! `ε = 1e-3` NDCG@10 of the full retrain at `≤ 0.5×` its wall time.
//!
//! Prints one JSON object (`"probe":"training_refresh"`);
//! `scripts/bench_snapshot.sh` appends it to the `BENCH_<date>.json`
//! trajectory snapshot. Flags: `--epochs N` (default 32).

use lkp_core::objective::{LkpKind, LkpObjective};
use lkp_core::{train_diversity_kernel, DiversityKernelConfig, TrainConfig, Trainer};
use lkp_data::{DatasetDelta, SamplingPolicy, Split, SyntheticConfig, TargetSelection};
use lkp_models::MatrixFactorization;
use lkp_nn::AdamConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let epochs: usize = std::env::args()
        .skip_while(|a| a != "--epochs")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let update_epochs = (epochs / 8).max(1);

    let data = lkp_data::synthetic::generate(&SyntheticConfig {
        n_users: 120,
        n_items: 240,
        n_categories: 12,
        mean_interactions: 20.0,
        ..Default::default()
    });
    let kernel = train_diversity_kernel(
        &data,
        &DiversityKernelConfig {
            epochs: 3,
            pairs_per_epoch: 64,
            dim: 8,
            ..Default::default()
        },
    );
    // Two deliberate choices keep the NDCG comparison honest:
    //
    // * Validation-based early stopping with best-restore everywhere — the
    //   base fit hands the refresh a model at its validation peak (the
    //   steady state a production refresh loop actually starts from), and
    //   both absorption paths restore their own best epoch, so the
    //   comparison is peak-vs-peak rather than a race down an overfitting
    //   slope.
    // * The base (and retrain) resample negatives each epoch — a model
    //   trained against one frozen negative set overfits it, and a full
    //   retrain would then "win" on the strength of fresh negatives alone,
    //   which the refresh's frozen-plan replay deliberately forgoes. A
    //   resample-trained base is robust to negative choice, so the
    //   comparison isolates what the refresh is actually for: absorbing
    //   the delta.
    let cfg = TrainConfig {
        epochs,
        batch_size: 64,
        k: 5,
        n: 5,
        mode: TargetSelection::Sequential,
        sampling_policy: SamplingPolicy::ResampleEachEpoch,
        eval_every: 1,
        patience: 6,
        threads: 2,
        spectral_tol: 1e-2,
        seed: 17,
        ..Default::default()
    };

    // Warm base model at the production steady state: several warm-restart
    // fit rounds, until one more round stops helping — a single cold fit
    // leaves easy warm-restart gains on the table, and a retrain would then
    // collect them and masquerade as "better than the refresh". The last
    // round's trained state is what the refresh warm-starts from.
    let mut warm = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        32,
        AdamConfig {
            lr: 0.02,
            ..Default::default()
        },
        &mut StdRng::seed_from_u64(5),
    );
    for _ in 0..2 {
        Trainer::new(cfg.clone()).fit(
            &mut warm,
            &mut LkpObjective::new(LkpKind::NegativeAware, kernel.clone()),
            &data,
        );
    }
    let t = Instant::now();
    let (_, base) = Trainer::new(cfg.clone()).fit_state(
        &mut warm,
        &mut LkpObjective::new(LkpKind::NegativeAware, kernel.clone()),
        &data,
    );
    let base_fit_ms = t.elapsed().as_secs_f64() * 1e3;

    // A small delta: one previously unobserved item for every 10th user.
    let mut delta = DatasetDelta::new();
    for user in (0..data.n_users()).step_by(10) {
        for item in 0..data.n_items() {
            if !data.is_observed(user, item) {
                delta.push(user, item);
                break;
            }
        }
    }
    let (merged, summary) = data.merge_delta(&delta);

    // Full retrain on the merged dataset from the warm parameters.
    let mut retrained = warm.clone();
    let t = Instant::now();
    Trainer::new(cfg.clone()).fit(
        &mut retrained,
        &mut LkpObjective::new(LkpKind::NegativeAware, kernel.clone()),
        &merged,
    );
    let retrain_ms = t.elapsed().as_secs_f64() * 1e3;

    // Incremental refresh from the captured state, quarter epoch budget.
    let mut refreshed = warm.clone();
    let t = Instant::now();
    let rep = Trainer::new(TrainConfig {
        update_epochs,
        ..cfg.clone()
    })
    .update(
        &mut refreshed,
        &mut LkpObjective::new(LkpKind::NegativeAware, kernel.clone()),
        &base,
        &delta,
    );
    let refresh_ms = t.elapsed().as_secs_f64() * 1e3;

    let threads = cfg.thread_budget();
    let ndcg = |m: &MatrixFactorization| {
        lkp_eval::evaluate_parallel_on(m, &merged, &[10], Split::Validation, threads)
            .at(10)
            .unwrap()
            .ndcg
    };
    let retrain_ndcg = ndcg(&retrained);
    let refresh_ndcg = ndcg(&refreshed);
    let ratio = refresh_ms / retrain_ms;

    // The acceptance bar, enforced where it is measured.
    assert!(
        ratio <= 0.5,
        "refresh took {refresh_ms:.1} ms vs retrain {retrain_ms:.1} ms \
         (ratio {ratio:.3} > 0.5)"
    );
    assert!(
        refresh_ndcg + 1e-3 >= retrain_ndcg,
        "refresh NDCG {refresh_ndcg:.6} fell more than 1e-3 below retrain \
         {retrain_ndcg:.6}"
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "{{\"probe\":\"training_refresh\",\"epochs\":{epochs},\
\"update_epochs\":{update_epochs},\
\"base_fit_ms\":{base_fit_ms:.1},\"retrain_ms\":{retrain_ms:.1},\
\"refresh_ms\":{refresh_ms:.1},\"refresh_over_retrain\":{ratio:.4},\
\"retrain_ndcg\":{retrain_ndcg:.6},\"refresh_ndcg\":{refresh_ndcg:.6},\
\"changed_users\":{},\"frozen_instances\":{},\"fresh_instances\":{},\
\"adopted_entries\":{},\"cache_skips\":{},\"cache_warm_starts\":{},\
\"host_cores\":{cores}}}",
        summary.changed_users().len(),
        rep.frozen_instances,
        rep.fresh_instances,
        rep.adopted_entries,
        rep.report.spectral_cache.skips,
        rep.report.spectral_cache.warm_starts,
    );
}
