//! Elementary symmetric polynomials: the paper's Algorithm 1, O((k+n)·k),
//! against brute-force subset enumeration — the computational claim that
//! makes the tailored k-DPP normalizer practical.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn eigenvalues(m: usize) -> Vec<f64> {
    (0..m).map(|i| 0.1 + ((i * 37 % 11) as f64) * 0.3).collect()
}

fn brute_force_normalizer(lambda: &[f64], k: usize) -> f64 {
    lkp_dpp::enumerate_subsets(lambda.len(), k)
        .iter()
        .map(|s| s.iter().map(|&i| lambda[i]).product::<f64>())
        .sum()
}

fn bench_esp(c: &mut Criterion) {
    let mut group = c.benchmark_group("esp");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for &m in &[10usize, 20, 40, 80] {
        let lambda = eigenvalues(m);
        let k = m / 2;
        group.bench_with_input(BenchmarkId::new("algorithm1", m), &m, |b, _| {
            b.iter(|| lkp_dpp::esp::elementary_symmetric(black_box(&lambda), black_box(k)))
        });
    }
    // Brute force only where it terminates in reasonable time.
    for &m in &[10usize, 16] {
        let lambda = eigenvalues(m);
        let k = m / 2;
        group.bench_with_input(BenchmarkId::new("brute_force", m), &m, |b, _| {
            b.iter(|| brute_force_normalizer(black_box(&lambda), black_box(k)))
        });
    }
    group.finish();

    let mut loo = c.benchmark_group("esp_leave_one_out");
    loo.sample_size(30);
    loo.warm_up_time(std::time::Duration::from_millis(300));
    loo.measurement_time(std::time::Duration::from_millis(800));
    for &m in &[10usize, 20, 40] {
        let lambda = eigenvalues(m);
        loo.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| lkp_dpp::esp::leave_one_out(black_box(&lambda), black_box(m / 2 - 1)))
        });
    }
    loo.finish();
}

criterion_group!(benches, bench_esp);
criterion_main!(benches);
