//! Dual representation of low-rank DPP kernels.
//!
//! A rank-d kernel `K = V·Vᵀ` (`V: M×d`) shares its nonzero spectrum with the
//! tiny dual kernel `C = Vᵀ·V` (`d×d`). Eigendecomposing `C` instead of `K`
//! turns DPP inference over an M-item catalog from `O(M³)` into
//! `O(M·d² + d³)`:
//!
//! * eigenvalues of `K` = eigenvalues of `C` (plus `M − d` zeros);
//! * item-space eigenvectors are recovered as `v̂_i = V·w_i / √λ_i` where
//!   `(λ_i, w_i)` are the dual eigenpairs.
//!
//! This enables exact k-DPP sampling and normalization at catalog scale — the
//! operational payoff of the paper's low-rank kernel choice (Section III-B:
//! "to reduce the computational complexity of calculating an M × M matrix").

use crate::{esp, DppError, LowRankKernel, Result};
use lkp_linalg::{eigen::SymmetricEigen, Matrix};
use rand::Rng;

/// Spectral data of a low-rank kernel obtained through its dual.
#[derive(Debug, Clone)]
pub struct DualSpectrum {
    /// Non-negative eigenvalues (at most `d` of them, descending ≥ 0).
    lambda: Vec<f64>,
    /// Item-space eigenvectors as columns of an `M × r` matrix (`r` = number
    /// of retained eigenvalues).
    vectors: Matrix,
}

impl DualSpectrum {
    /// Computes the item-space spectrum of `kernel` via the dual `d × d`
    /// eigendecomposition. Eigenvalues below `tol` (relative to the largest)
    /// are dropped — they carry no probability mass.
    pub fn new(kernel: &LowRankKernel, tol: f64) -> Result<Self> {
        let v = kernel.factor(); // M × d
        let m = v.rows();
        let d = v.cols();
        let dual = v.gram(); // C = VᵀV, d × d
        let eig = SymmetricEigen::new(&dual)?;
        let max = eig.values.iter().cloned().fold(0.0_f64, f64::max);
        if max <= 0.0 {
            return Err(DppError::DegenerateKernel);
        }
        let keep: Vec<usize> = (0..d)
            .filter(|&i| eig.values[i] > tol * max && eig.values[i] > 0.0)
            .collect();
        let r = keep.len();
        // Item-space eigenvectors: v̂_j = V w_j / sqrt(λ_j).
        let mut vectors = Matrix::zeros(m, r);
        let mut lambda = Vec::with_capacity(r);
        for (col, &j) in keep.iter().enumerate() {
            let lam = eig.values[j];
            lambda.push(lam);
            let scale = 1.0 / lam.sqrt();
            for row in 0..m {
                let mut acc = 0.0;
                for x in 0..d {
                    acc += v[(row, x)] * eig.vectors[(x, j)];
                }
                vectors[(row, col)] = acc * scale;
            }
        }
        // Descending order is what the selection phase expects; sort.
        let mut order: Vec<usize> = (0..r).collect();
        order.sort_by(|&a, &b| {
            lambda[b]
                .partial_cmp(&lambda[a])
                .expect("finite eigenvalues")
        });
        let lambda_sorted: Vec<f64> = order.iter().map(|&i| lambda[i]).collect();
        let mut vectors_sorted = Matrix::zeros(m, r);
        for (new_col, &old_col) in order.iter().enumerate() {
            for row in 0..m {
                vectors_sorted[(row, new_col)] = vectors[(row, old_col)];
            }
        }
        Ok(DualSpectrum {
            lambda: lambda_sorted,
            vectors: vectors_sorted,
        })
    }

    /// Number of items `M`.
    pub fn num_items(&self) -> usize {
        self.vectors.rows()
    }

    /// Retained rank `r ≤ d`.
    pub fn rank(&self) -> usize {
        self.lambda.len()
    }

    /// The retained eigenvalues (descending).
    pub fn eigenvalues(&self) -> &[f64] {
        &self.lambda
    }

    /// `log Z_k = log e_k(λ)` of the k-DPP over the full catalog.
    pub fn log_normalizer(&self, k: usize) -> f64 {
        esp::log_elementary_symmetric(&self.lambda, k)
    }

    /// Exact size-k sample from the k-DPP over the full catalog in
    /// `O(M·r·k)` per draw — no `M × M` kernel is ever formed.
    pub fn sample_kdpp<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> Result<Vec<usize>> {
        if k > self.rank() {
            return Err(DppError::CardinalityTooLarge {
                k,
                ground_size: self.rank(),
            });
        }
        if k == 0 {
            return Ok(Vec::new());
        }
        // Phase 1: select exactly k eigenvectors via the ESP table.
        let table = esp::esp_table(&self.lambda, k);
        let r = self.rank();
        if table[k][r] <= 0.0 {
            return Err(DppError::DegenerateKernel);
        }
        let mut selected = Vec::with_capacity(k);
        let mut l = k;
        for j in (1..=r).rev() {
            if l == 0 {
                break;
            }
            if j == l {
                for idx in (0..j).rev() {
                    selected.push(idx);
                }
                l = 0;
                break;
            }
            let p = self.lambda[j - 1] * table[l - 1][j - 1] / table[l][j];
            if rng.random::<f64>() < p {
                selected.push(j - 1);
                l -= 1;
            }
        }
        debug_assert_eq!(l, 0, "eigenvector selection must pick exactly k vectors");
        selected.reverse();
        crate::sampling::sample_elementary_from(&self.vectors, &selected, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{enumerate_subsets, DppKernel, KDpp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn example(m: usize, d: usize) -> LowRankKernel {
        let v = Matrix::from_fn(m, d, |r, c| (((r * 5 + c * 11) % 13) as f64) * 0.2 - 1.1);
        LowRankKernel::new(v)
    }

    #[test]
    fn dual_eigenvalues_match_full_kernel_spectrum() {
        let k = example(8, 3);
        let dual = DualSpectrum::new(&k, 1e-12).unwrap();
        let full = DppKernel::new(k.full_matrix()).unwrap();
        let mut full_lambda = full.nonneg_eigenvalues().unwrap();
        full_lambda.sort_by(|a, b| b.partial_cmp(a).unwrap());
        for (i, &l) in dual.eigenvalues().iter().enumerate() {
            assert!(
                (l - full_lambda[i]).abs() < 1e-9,
                "eigenvalue {i}: {l} vs {}",
                full_lambda[i]
            );
        }
        // The rest of the full spectrum is numerically zero.
        for &l in &full_lambda[dual.rank()..] {
            assert!(l < 1e-9);
        }
    }

    #[test]
    fn item_space_eigenvectors_are_orthonormal_and_satisfy_kv_eq_lv() {
        let k = example(7, 3);
        let dual = DualSpectrum::new(&k, 1e-12).unwrap();
        let full = k.full_matrix();
        for j in 0..dual.rank() {
            let vj = dual.vectors.col(j);
            // Unit norm.
            assert!((lkp_linalg::ops::norm2(&vj) - 1.0).abs() < 1e-10);
            // K v = λ v.
            let kv = full.matvec(&vj).unwrap();
            for (a, b) in kv.iter().zip(&vj) {
                assert!((a - dual.eigenvalues()[j] * b).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn dual_normalizer_matches_full_kdpp() {
        let k = example(8, 3);
        let dual = DualSpectrum::new(&k, 1e-12).unwrap();
        let mut full_matrix = k.full_matrix();
        for i in 0..8 {
            full_matrix[(i, i)] += 0.0; // keep exactly rank-3
        }
        let kdpp = KDpp::new(DppKernel::new(full_matrix).unwrap(), 2).unwrap();
        assert!((dual.log_normalizer(2) - kdpp.log_normalizer()).abs() < 1e-8);
    }

    #[test]
    fn dual_sampling_matches_exact_probabilities() {
        let k = example(6, 3);
        let dual = DualSpectrum::new(&k, 1e-12).unwrap();
        let kdpp = KDpp::new(DppKernel::new(k.full_matrix()).unwrap(), 2).unwrap();
        let exact: HashMap<Vec<usize>, f64> =
            kdpp.all_subset_probs().unwrap().into_iter().collect();
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 30_000;
        let mut counts: HashMap<Vec<usize>, usize> = HashMap::new();
        for _ in 0..trials {
            *counts
                .entry(dual.sample_kdpp(2, &mut rng).unwrap())
                .or_default() += 1;
        }
        for s in enumerate_subsets(6, 2) {
            let p = exact[&s];
            let freq = *counts.get(&s).unwrap_or(&0) as f64 / trials as f64;
            let sigma = (p * (1.0 - p) / trials as f64).sqrt();
            assert!(
                (freq - p).abs() < 4.0 * sigma + 2e-3,
                "{s:?}: {freq:.4} vs {p:.4}"
            );
        }
    }

    #[test]
    fn k_larger_than_rank_is_rejected() {
        let k = example(10, 2);
        let dual = DualSpectrum::new(&k, 1e-12).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            dual.sample_kdpp(3, &mut rng),
            Err(DppError::CardinalityTooLarge { .. })
        ));
    }

    #[test]
    fn scales_to_large_catalogs() {
        // 5000 items, rank 16: the full kernel would be 5000² = 25M entries;
        // the dual path never materializes it.
        let k = example(5000, 16);
        let dual = DualSpectrum::new(&k, 1e-12).unwrap();
        assert!(dual.log_normalizer(8).is_finite());
        let mut rng = StdRng::seed_from_u64(1);
        let s = dual.sample_kdpp(8, &mut rng).unwrap();
        assert_eq!(s.len(), 8);
        assert!(s.iter().all(|&i| i < 5000));
    }
}
