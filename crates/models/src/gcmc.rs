//! GCMC: graph convolutional matrix completion (Berg et al., 2017),
//! specialized to binary implicit feedback.
//!
//! Encoder (one graph-convolution layer, mean aggregation):
//!
//! ```text
//! h_u = ReLU(W_u · mean_{i ∈ N(u)} x_i),    z_u = U · h_u
//! h_i = ReLU(W_i · mean_{u ∈ N(i)} x_u),    z_i = V · h_i
//! ```
//!
//! Decoder: bilinear `s(u,i) = z_uᵀ · Q · z_i`, the binary specialization of
//! GCMC's per-rating-level softmax decoder (with two levels, the softmax
//! reduces to a sigmoid over the logit difference, which `Q` absorbs).
//! Scores are raw logits; the BCE objective supplies the sigmoid, matching
//! GCMC's negative-log-likelihood training.
//!
//! Like the GCN model, encoder outputs are cached and refreshed after every
//! optimizer step.

use crate::Recommender;
use lkp_linalg::Matrix;
use lkp_nn::{Activation, AdamConfig, AdamState, Dense, EmbeddingTable};
use rand::Rng;

/// GCMC model.
#[derive(Clone)]
pub struct Gcmc {
    n_users: usize,
    n_items: usize,
    /// Base (side-information-free) node features.
    user_feat: EmbeddingTable,
    item_feat: EmbeddingTable,
    /// Graph-conv weights.
    w_user: Dense,
    w_item: Dense,
    /// Post-conv dense projections.
    u_out: Dense,
    v_out: Dense,
    /// Bilinear decoder.
    q: Matrix,
    q_grad: Matrix,
    q_adam: AdamState,
    /// Adjacency lists from the train graph.
    user_neighbors: Vec<Vec<usize>>,
    item_neighbors: Vec<Vec<usize>>,
    // Caches (refreshed per step).
    agg_user: Matrix,
    agg_item: Matrix,
    h_user: Matrix,
    h_item: Matrix,
    z_user: Matrix,
    z_item: Matrix,
}

impl Gcmc {
    /// Builds the model over the dataset's train graph. `dim` is used for
    /// base features, the hidden layer and the final embeddings alike.
    pub fn new<R: Rng + ?Sized>(
        n_users: usize,
        n_items: usize,
        train_edges: &[(usize, usize)],
        dim: usize,
        config: AdamConfig,
        rng: &mut R,
    ) -> Self {
        let mut user_neighbors = vec![Vec::new(); n_users];
        let mut item_neighbors = vec![Vec::new(); n_items];
        for &(u, i) in train_edges {
            user_neighbors[u].push(i);
            item_neighbors[i].push(u);
        }
        let mut model = Gcmc {
            n_users,
            n_items,
            user_feat: EmbeddingTable::new(n_users, dim, 0.1, config, rng),
            item_feat: EmbeddingTable::new(n_items, dim, 0.1, config, rng),
            w_user: Dense::new(dim, dim, config, rng),
            w_item: Dense::new(dim, dim, config, rng),
            u_out: Dense::new(dim, dim, config, rng),
            v_out: Dense::new(dim, dim, config, rng),
            q: lkp_nn::init::normal_matrix(dim, dim, 0.1, rng),
            q_grad: Matrix::zeros(dim, dim),
            q_adam: AdamState::new(dim, dim, config),
            user_neighbors,
            item_neighbors,
            agg_user: Matrix::zeros(n_users, dim),
            agg_item: Matrix::zeros(n_items, dim),
            h_user: Matrix::zeros(n_users, dim),
            h_item: Matrix::zeros(n_items, dim),
            z_user: Matrix::zeros(n_users, dim),
            z_item: Matrix::zeros(n_items, dim),
        };
        model.refresh_cache();
        model
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.user_feat.dim()
    }

    fn refresh_cache(&mut self) {
        let dim = self.dim();
        // User side aggregates item features.
        for u in 0..self.n_users {
            let neigh = &self.user_neighbors[u];
            let mut agg = vec![0.0; dim];
            if !neigh.is_empty() {
                for &i in neigh {
                    lkp_linalg::ops::axpy(1.0, self.item_feat.row(i), &mut agg);
                }
                lkp_linalg::ops::scale(1.0 / neigh.len() as f64, &mut agg);
            }
            self.agg_user.row_mut(u).copy_from_slice(&agg);
            let mut h = self.w_user.forward(&agg);
            Activation::ReLU.forward(&mut h);
            self.h_user.row_mut(u).copy_from_slice(&h);
            let z = self.u_out.forward(&h);
            self.z_user.row_mut(u).copy_from_slice(&z);
        }
        // Item side aggregates user features.
        for i in 0..self.n_items {
            let neigh = &self.item_neighbors[i];
            let mut agg = vec![0.0; dim];
            if !neigh.is_empty() {
                for &u in neigh {
                    lkp_linalg::ops::axpy(1.0, self.user_feat.row(u), &mut agg);
                }
                lkp_linalg::ops::scale(1.0 / neigh.len() as f64, &mut agg);
            }
            self.agg_item.row_mut(i).copy_from_slice(&agg);
            let mut h = self.w_item.forward(&agg);
            Activation::ReLU.forward(&mut h);
            self.h_item.row_mut(i).copy_from_slice(&h);
            let z = self.v_out.forward(&h);
            self.z_item.row_mut(i).copy_from_slice(&z);
        }
    }
}

impl Recommender for Gcmc {
    fn n_users(&self) -> usize {
        self.n_users
    }

    fn n_items(&self) -> usize {
        self.n_items
    }

    fn score_items(&self, user: usize, items: &[usize]) -> Vec<f64> {
        let z_u = self.z_user.row(user);
        let qz: Vec<f64> = {
            // qzᵀ = z_uᵀ Q, reused across items.
            let mut out = vec![0.0; self.dim()];
            for (r, &zr) in z_u.iter().enumerate().take(self.dim()) {
                if zr == 0.0 {
                    continue;
                }
                for (c, o) in out.iter_mut().enumerate() {
                    *o += zr * self.q[(r, c)];
                }
            }
            out
        };
        items
            .iter()
            .map(|&i| lkp_linalg::ops::dot(&qz, self.z_item.row(i)))
            .collect()
    }

    fn score_items_into(&self, user: usize, items: &[usize], out: &mut Vec<f64>) {
        // Writes the scores into `out` directly; the `dim`-length
        // `qz = z_uᵀQ` intermediate is still allocated per call — removing
        // it would need interior-mutable scratch, which this cold backbone
        // does not warrant.
        let z_u = self.z_user.row(user);
        let mut qz = vec![0.0; self.dim()];
        for (r, &zr) in z_u.iter().enumerate().take(self.dim()) {
            if zr == 0.0 {
                continue;
            }
            for (c, o) in qz.iter_mut().enumerate() {
                *o += zr * self.q[(r, c)];
            }
        }
        out.clear();
        out.extend(
            items
                .iter()
                .map(|&i| lkp_linalg::ops::dot(&qz, self.z_item.row(i))),
        );
    }

    fn accumulate_score_grads(&mut self, user: usize, items: &[usize], dscores: &[f64]) {
        debug_assert_eq!(items.len(), dscores.len());
        let dim = self.dim();
        let z_u = self.z_user.row(user).to_vec();
        let mut dz_u_total = vec![0.0; dim];
        for (&item, &ds) in items.iter().zip(dscores) {
            if ds == 0.0 {
                continue;
            }
            let z_i = self.z_item.row(item).to_vec();
            // Decoder gradients.
            for (r, &zur) in z_u.iter().enumerate().take(dim) {
                for (c, &zic) in z_i.iter().enumerate().take(dim) {
                    self.q_grad[(r, c)] += ds * zur * zic;
                }
            }
            // dz_u += ds·Q·z_i ; dz_i = ds·Qᵀ·z_u.
            let mut dz_i = vec![0.0; dim];
            for r in 0..dim {
                let mut acc = 0.0;
                for c in 0..dim {
                    acc += self.q[(r, c)] * z_i[c];
                    dz_i[c] += self.q[(r, c)] * z_u[r] * ds;
                }
                dz_u_total[r] += ds * acc;
            }
            // Item-side encoder backward.
            let h_i = self.h_item.row(item).to_vec();
            let mut dh = self.v_out.backward(&h_i, &dz_i);
            Activation::ReLU.backward(&h_i, &mut dh);
            let agg_i = self.agg_item.row(item).to_vec();
            let dagg = self.w_item.backward(&agg_i, &dh);
            let neigh = self.item_neighbors[item].clone();
            if !neigh.is_empty() {
                let scale = 1.0 / neigh.len() as f64;
                let scaled: Vec<f64> = dagg.iter().map(|&g| g * scale).collect();
                for u2 in neigh {
                    self.user_feat.accumulate_grad(u2, &scaled);
                }
            }
        }
        // User-side encoder backward (once, with the summed dz_u).
        let h_u = self.h_user.row(user).to_vec();
        let mut dh = self.u_out.backward(&h_u, &dz_u_total);
        Activation::ReLU.backward(&h_u, &mut dh);
        let agg_u = self.agg_user.row(user).to_vec();
        let dagg = self.w_user.backward(&agg_u, &dh);
        let neigh = self.user_neighbors[user].clone();
        if !neigh.is_empty() {
            let scale = 1.0 / neigh.len() as f64;
            let scaled: Vec<f64> = dagg.iter().map(|&g| g * scale).collect();
            for i2 in neigh {
                self.item_feat.accumulate_grad(i2, &scaled);
            }
        }
    }

    fn step(&mut self) {
        self.user_feat.step();
        self.item_feat.step();
        self.w_user.step();
        self.w_item.step();
        self.u_out.step();
        self.v_out.step();
        self.q_adam.step_dense(&mut self.q, &self.q_grad);
        self.q_grad.scale(0.0);
        self.refresh_cache();
    }

    fn begin_epoch(&mut self) {
        self.refresh_cache();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn edges() -> Vec<(usize, usize)> {
        vec![(0, 0), (0, 1), (1, 1), (1, 2), (2, 0), (2, 3), (3, 2)]
    }

    fn model() -> Gcmc {
        let mut rng = StdRng::seed_from_u64(6);
        Gcmc::new(
            4,
            4,
            &edges(),
            6,
            AdamConfig {
                lr: 0.03,
                weight_decay: 0.0,
                ..Default::default()
            },
            &mut rng,
        )
    }

    #[test]
    fn scoring_is_finite_and_shaped() {
        let m = model();
        let s = m.score_items(0, &[0, 1, 2, 3]);
        assert_eq!(s.len(), 4);
        assert!(s.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn descending_negative_gradient_raises_score() {
        let mut m = model();
        let before = m.score_items(1, &[3])[0];
        for _ in 0..100 {
            m.accumulate_score_grads(1, &[3], &[-1.0]);
            m.step();
        }
        let after = m.score_items(1, &[3])[0];
        assert!(after > before + 0.2, "{before} -> {after}");
    }

    #[test]
    fn backward_reaches_base_features_of_neighbors() {
        let mut m = model();
        let before_item = m.item_feat.matrix().clone();
        let before_user = m.user_feat.matrix().clone();
        m.accumulate_score_grads(0, &[2], &[-1.0]);
        m.step();
        // User 0's neighbors are items {0,1} — their aggregation feeds z_u,
        // so item base features must move; item 2's neighbors are users
        // {1,3}, so user base features must move too.
        assert!(m.item_feat.matrix().max_abs_diff(&before_item) > 0.0);
        assert!(m.user_feat.matrix().max_abs_diff(&before_user) > 0.0);
    }

    #[test]
    fn users_without_neighbors_still_score() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = Gcmc::new(3, 3, &[(0, 0)], 4, AdamConfig::default(), &mut rng);
        // User 2 has no train edges: aggregation is zero, score must still be
        // finite (bias paths).
        let s = m.score_items(2, &[0, 1, 2]);
        assert!(s.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn score_gap_opens_under_contrastive_gradient() {
        let mut m = model();
        let before = m.score_items(2, &[1, 2]);
        for _ in 0..80 {
            m.accumulate_score_grads(2, &[1, 2], &[-1.0, 1.0]);
            m.step();
        }
        let after = m.score_items(2, &[1, 2]);
        assert!(
            after[0] - after[1] > before[0] - before[1] + 0.3,
            "gap did not open: {before:?} -> {after:?}"
        );
    }
}
