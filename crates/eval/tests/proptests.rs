//! Property-based tests for the metric suite.

use lkp_data::Dataset;
use lkp_eval::metrics::{harmonic, user_metrics};
use lkp_eval::topn::top_n_excluding;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset(n_items: usize, n_cats: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(0);
    let cats: Vec<usize> = (0..n_items).map(|i| i % n_cats).collect();
    Dataset::from_interactions(vec![(0..n_items).collect()], cats, n_cats, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn metrics_are_bounded(
        top in proptest::collection::vec(0usize..30, 0..10),
        test in proptest::collection::vec(0usize..30, 1..8),
    ) {
        let data = dataset(30, 6);
        let mut top = top;
        top.sort_unstable();
        top.dedup();
        let m = user_metrics(&top, &test, &data, 10);
        for v in [m.recall, m.ndcg, m.category_coverage, m.f_score, m.ild] {
            prop_assert!((0.0..=1.0).contains(&v), "metric out of range: {v}");
        }
    }

    #[test]
    fn adding_a_hit_never_hurts(
        test in proptest::collection::vec(0usize..20, 1..6),
        filler in proptest::collection::vec(20usize..30, 3..6),
    ) {
        let data = dataset(30, 5);
        let mut test = test;
        test.sort_unstable();
        test.dedup();
        // List without any hit vs the same list with a hit prepended.
        let without: Vec<usize> = filler.clone();
        let mut with = vec![test[0]];
        with.extend_from_slice(&filler);
        let m_without = user_metrics(&without, &test, &data, 10);
        let m_with = user_metrics(&with, &test, &data, 10);
        prop_assert!(m_with.recall >= m_without.recall);
        prop_assert!(m_with.ndcg >= m_without.ndcg);
    }

    #[test]
    fn earlier_hits_dominate_later_hits(
        hit in 0usize..10,
        pos in 1usize..5,
    ) {
        let data = dataset(30, 5);
        let test = vec![hit];
        let mut early = vec![hit];
        let mut late = Vec::new();
        for f in 20..25 {
            early.push(f);
            late.push(f);
        }
        late.insert(pos, hit);
        late.truncate(5);
        let m_early = user_metrics(&early[..5], &test, &data, 5);
        let m_late = user_metrics(&late, &test, &data, 5);
        prop_assert!(m_early.ndcg >= m_late.ndcg);
    }

    #[test]
    fn harmonic_mean_bounds(a in 0.0..1.0_f64, b in 0.0..1.0_f64) {
        let h = harmonic(a, b);
        prop_assert!(h <= a.max(b) + 1e-12);
        prop_assert!(h >= 0.0);
        if a > 0.0 && b > 0.0 {
            prop_assert!(h >= a.min(b) * 1e-9, "harmonic collapsed: {h}");
            prop_assert!(h <= 2.0 * a.min(b));
        }
    }

    #[test]
    fn topn_returns_descending_scores_and_respects_exclusion(
        scores in proptest::collection::vec(-5.0..5.0_f64, 10..60),
        n in 1usize..15,
        modulus in 2usize..6,
    ) {
        let top = top_n_excluding(&scores, n, |i| i % modulus == 0);
        // Descending.
        for w in top.windows(2) {
            prop_assert!(scores[w[0]] >= scores[w[1]]);
        }
        // Exclusion respected.
        for &i in &top {
            prop_assert!(i % modulus != 0);
        }
        // Completeness: size is min(n, #allowed).
        let allowed = (0..scores.len()).filter(|i| i % modulus != 0).count();
        prop_assert_eq!(top.len(), n.min(allowed));
        // Optimality: the worst returned score beats every excluded-from-list allowed score.
        if top.len() == n {
            let worst = scores[*top.last().unwrap()];
            for i in (0..scores.len()).filter(|i| i % modulus != 0) {
                if !top.contains(&i) {
                    prop_assert!(scores[i] <= worst + 1e-12);
                }
            }
        }
    }
}
