//! The in-memory implicit-feedback dataset.

use rand::seq::SliceRandom;
use rand::Rng;

/// Which of the three per-user interaction partitions to address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Split {
    /// 70% of each user's interactions (chronological order preserved).
    Train,
    /// 10% held out for hyperparameter selection / early stopping.
    Validation,
    /// 20% held out as ranking ground truth.
    Test,
}

/// An implicit-feedback dataset with item categories and a per-user
/// train/validation/test split.
///
/// Items and users are dense `usize` ids. Train interactions preserve the
/// order in which they occurred, which the S-mode instance sampler relies on.
#[derive(Debug, Clone)]
pub struct Dataset {
    n_users: usize,
    n_items: usize,
    n_categories: usize,
    item_category: Vec<usize>,
    train: Vec<Vec<usize>>,
    validation: Vec<Vec<usize>>,
    test: Vec<Vec<usize>>,
    /// All observed items per user (train ∪ validation ∪ test), sorted, for
    /// O(log) membership tests during negative sampling.
    observed_sorted: Vec<Vec<usize>>,
}

impl Dataset {
    /// Builds a dataset from per-user chronological interaction lists and an
    /// item→category map, applying the paper's random 70/10/20 split.
    ///
    /// Duplicated items within a user's list are dropped (implicit feedback
    /// is binary). Users keep their chronological order within the train
    /// partition even though the partition membership is random, matching
    /// "randomly select 20% … for testing" while the sliding-window sampler
    /// still sees items "in the order they occurred".
    pub fn from_interactions<R: Rng + ?Sized>(
        interactions: Vec<Vec<usize>>,
        item_category: Vec<usize>,
        n_categories: usize,
        rng: &mut R,
    ) -> Self {
        let n_users = interactions.len();
        let n_items = item_category.len();
        for cats in &item_category {
            assert!(*cats < n_categories, "item category out of range");
        }
        let mut train = Vec::with_capacity(n_users);
        let mut validation = Vec::with_capacity(n_users);
        let mut test = Vec::with_capacity(n_users);
        let mut observed_sorted = Vec::with_capacity(n_users);
        for items in interactions {
            // Deduplicate, preserving first-occurrence order.
            let mut seen = vec![];
            let mut uniq = Vec::with_capacity(items.len());
            for i in items {
                assert!(i < n_items, "interaction references unknown item {i}");
                if !seen.contains(&i) {
                    seen.push(i);
                    uniq.push(i);
                }
            }
            let n = uniq.len();
            // Random partition of positions: 20% test, 10% validation, rest train.
            let mut positions: Vec<usize> = (0..n).collect();
            positions.shuffle(rng);
            let n_test = (n as f64 * 0.2).round() as usize;
            let n_val = (n as f64 * 0.1).round() as usize;
            let mut is_test = vec![false; n];
            let mut is_val = vec![false; n];
            for &p in positions.iter().take(n_test) {
                is_test[p] = true;
            }
            for &p in positions.iter().skip(n_test).take(n_val) {
                is_val[p] = true;
            }
            let mut tr = Vec::with_capacity(n - n_test - n_val);
            let mut va = Vec::with_capacity(n_val);
            let mut te = Vec::with_capacity(n_test);
            for (pos, &item) in uniq.iter().enumerate() {
                if is_test[pos] {
                    te.push(item);
                } else if is_val[pos] {
                    va.push(item);
                } else {
                    tr.push(item);
                }
            }
            let mut all = uniq.clone();
            all.sort_unstable();
            train.push(tr);
            validation.push(va);
            test.push(te);
            observed_sorted.push(all);
        }
        Dataset {
            n_users,
            n_items,
            n_categories,
            item_category,
            train,
            validation,
            test,
            observed_sorted,
        }
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Number of items.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Number of item categories.
    pub fn n_categories(&self) -> usize {
        self.n_categories
    }

    /// Category of an item.
    pub fn category(&self, item: usize) -> usize {
        self.item_category[item]
    }

    /// Borrow the full item→category map.
    pub fn item_categories(&self) -> &[usize] {
        &self.item_category
    }

    /// A user's interactions in the given split (train is chronological).
    pub fn user_items(&self, user: usize, split: Split) -> &[usize] {
        match split {
            Split::Train => &self.train[user],
            Split::Validation => &self.validation[user],
            Split::Test => &self.test[user],
        }
    }

    /// Whether `item` was observed by `user` in *any* split.
    pub fn is_observed(&self, user: usize, item: usize) -> bool {
        self.observed_sorted[user].binary_search(&item).is_ok()
    }

    /// Whether `item` is in the user's train or validation split — the
    /// exclusion set when ranking for test-time evaluation.
    pub fn is_seen_before_test(&self, user: usize, item: usize) -> bool {
        self.train[user].contains(&item) || self.validation[user].contains(&item)
    }

    /// Total interaction count across all splits.
    pub fn n_interactions(&self) -> usize {
        self.observed_sorted.iter().map(|v| v.len()).sum()
    }

    /// All `(user, item)` train edges — the graph GCN/GCMC propagate over.
    pub fn train_edges(&self) -> Vec<(usize, usize)> {
        let mut edges = Vec::new();
        for (u, items) in self.train.iter().enumerate() {
            for &i in items {
                edges.push((u, i));
            }
        }
        edges
    }

    /// Samples an item the user has never interacted with (uniformly).
    ///
    /// Panics if the user has observed every item (cannot happen for real
    /// configurations; guarded in debug builds).
    pub fn sample_negative<R: Rng + ?Sized>(&self, user: usize, rng: &mut R) -> usize {
        debug_assert!(
            self.observed_sorted[user].len() < self.n_items,
            "user {user} observed the whole catalog"
        );
        loop {
            let item = rng.random_range(0..self.n_items);
            if !self.is_observed(user, item) {
                return item;
            }
        }
    }

    /// Samples `n` distinct unobserved items for the user.
    ///
    /// Convenience wrapper that builds a fresh [`NegativeMask`] per call;
    /// hot loops (the epoch planner, samplers) should hold a mask and use
    /// [`Dataset::sample_negatives_avoiding_into`] so the membership
    /// structure is reused across instances.
    pub fn sample_negatives<R: Rng + ?Sized>(
        &self,
        user: usize,
        n: usize,
        rng: &mut R,
    ) -> Vec<usize> {
        let mut out = Vec::with_capacity(n);
        let mut mask = NegativeMask::default();
        self.sample_negatives_avoiding_into(user, n, &[], rng, &mut mask, &mut out);
        out
    }

    /// Appends `n` distinct unobserved items for `user` to `out`, also
    /// avoiding everything in `avoid` (typically the instance's positives).
    ///
    /// Membership of already-drawn candidates is tracked in the caller's
    /// reusable [`NegativeMask`] — an `O(1)` bitset test per draw — so large
    /// ground sets cost `O(n)` expected draws instead of the `O(n²)`
    /// rejection scan a `Vec::contains` check degrades to. The draw sequence
    /// (and therefore the RNG stream) is identical to the historical scan:
    /// a candidate is rejected exactly when it is already drawn or avoided.
    pub fn sample_negatives_avoiding_into<R: Rng + ?Sized>(
        &self,
        user: usize,
        n: usize,
        avoid: &[usize],
        rng: &mut R,
        mask: &mut NegativeMask,
        out: &mut Vec<usize>,
    ) {
        mask.prepare(self.n_items);
        for &item in avoid {
            mask.mark(item);
        }
        self.sample_negatives_masked_into(user, n, rng, mask, out);
    }

    /// Appends `n` distinct unobserved items to `out`, rejecting anything
    /// already marked in `mask` (and marking each accepted draw). The caller
    /// must have [`NegativeMask::prepare`]d the mask and marked the items to
    /// avoid — this low-level form lets the epoch planner sample straight
    /// into a flat arena whose earlier entries can't be re-borrowed.
    pub fn sample_negatives_masked_into<R: Rng + ?Sized>(
        &self,
        user: usize,
        n: usize,
        rng: &mut R,
        mask: &mut NegativeMask,
        out: &mut Vec<usize>,
    ) {
        let mut drawn = 0;
        while drawn < n {
            let cand = self.sample_negative(user, rng);
            if mask.mark(cand) {
                out.push(cand);
                drawn += 1;
            }
        }
    }

    /// Applies a [`crate::delta::DatasetDelta`], returning the merged
    /// dataset and a [`crate::delta::DeltaSummary`] of what changed.
    ///
    /// Accepted events append to the **train split only**, in arrival order
    /// (the sliding-window sampler keeps seeing interactions "in the order
    /// they occurred"); validation and test stay frozen so metrics computed
    /// before and after a refresh rank the same held-out items. Events whose
    /// item the user already observed in *any* split are dropped — implicit
    /// feedback is binary. User ids past the current population extend it
    /// (ids in a gap become empty users); the item catalog is fixed because
    /// the serving artifact's kernel shape must survive the refresh.
    ///
    /// # Panics
    /// If an event references an item outside the catalog.
    pub fn merge_delta(
        &self,
        delta: &crate::delta::DatasetDelta,
    ) -> (Dataset, crate::delta::DeltaSummary) {
        let mut merged = self.clone();
        let mut changed: Vec<usize> = Vec::new();
        let mut accepted = 0usize;
        if let Some(max_user) = delta.events().iter().map(|&(u, _)| u).max() {
            while merged.n_users <= max_user {
                merged.train.push(Vec::new());
                merged.validation.push(Vec::new());
                merged.test.push(Vec::new());
                merged.observed_sorted.push(Vec::new());
                merged.n_users += 1;
            }
        }
        let new_users = merged.n_users - self.n_users;
        for &(user, item) in delta.events() {
            assert!(
                item < merged.n_items,
                "delta references item {item} outside the catalog of {} — the refresh \
                 pipeline preserves the artifact's catalog shape",
                merged.n_items
            );
            let observed = &mut merged.observed_sorted[user];
            if let Err(pos) = observed.binary_search(&item) {
                observed.insert(pos, item);
                merged.train[user].push(item);
                accepted += 1;
                changed.push(user);
            }
        }
        changed.extend(self.n_users..merged.n_users);
        changed.sort_unstable();
        changed.dedup();
        (
            merged,
            crate::delta::DeltaSummary::from_parts(changed, new_users, accepted),
        )
    }

    /// Number of distinct categories covered by a set of items.
    pub fn category_coverage(&self, items: &[usize]) -> usize {
        let mut seen = vec![false; self.n_categories];
        let mut count = 0;
        for &i in items {
            let c = self.item_category[i];
            if !seen[c] {
                seen[c] = true;
                count += 1;
            }
        }
        count
    }
}

/// Reusable bitset over item ids for rejection-free membership tests during
/// negative sampling.
///
/// Clearing is `O(touched)` — only the words actually written since the last
/// [`NegativeMask::prepare`] are zeroed — so per-instance reuse costs
/// `O(k + n)` regardless of catalog size, while the one-time backing
/// allocation is `n_items / 8` bytes.
#[derive(Debug, Clone, Default)]
pub struct NegativeMask {
    words: Vec<u64>,
    /// Indices of words with at least one set bit (cleared lazily).
    touched: Vec<usize>,
}

impl NegativeMask {
    /// Creates an empty mask (backing storage grows on first `prepare`).
    pub fn new() -> Self {
        NegativeMask::default()
    }

    /// Sizes the mask for a catalog of `n_items` and clears every mark.
    pub fn prepare(&mut self, n_items: usize) {
        let words = n_items.div_ceil(64);
        if self.words.len() < words {
            self.words.resize(words, 0);
        }
        for &w in &self.touched {
            self.words[w] = 0;
        }
        self.touched.clear();
    }

    /// Marks `item`; returns `true` when it was not already marked.
    pub fn mark(&mut self, item: usize) -> bool {
        let (word, bit) = (item / 64, 1u64 << (item % 64));
        let slot = &mut self.words[word];
        if *slot & bit != 0 {
            return false;
        }
        if *slot == 0 {
            self.touched.push(word);
        }
        *slot |= bit;
        true
    }

    /// Whether `item` is currently marked.
    pub fn contains(&self, item: usize) -> bool {
        self.words
            .get(item / 64)
            .is_some_and(|w| w & (1 << (item % 64)) != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn tiny_dataset() -> Dataset {
        let mut rng = StdRng::seed_from_u64(5);
        // 3 users over 10 items in 3 categories.
        let interactions = vec![
            vec![0, 1, 2, 3, 4, 5, 6, 7],
            vec![2, 3, 9, 8],
            vec![0, 5, 9, 1, 2, 6],
        ];
        let cats = vec![0, 0, 1, 1, 1, 2, 2, 2, 0, 1];
        Dataset::from_interactions(interactions, cats, 3, &mut rng)
    }

    #[test]
    fn split_partitions_each_user() {
        let d = tiny_dataset();
        for u in 0..d.n_users() {
            let tr = d.user_items(u, Split::Train);
            let va = d.user_items(u, Split::Validation);
            let te = d.user_items(u, Split::Test);
            let total = tr.len() + va.len() + te.len();
            let mut all: Vec<usize> = tr.iter().chain(va).chain(te).copied().collect();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), total, "splits overlap for user {u}");
            // Every item in a split is observed.
            for &i in &all {
                assert!(d.is_observed(u, i));
            }
        }
    }

    #[test]
    fn split_ratios_are_approximately_70_10_20() {
        let mut rng = StdRng::seed_from_u64(1);
        let interactions = vec![(0..100).collect::<Vec<_>>()];
        let cats = vec![0; 100];
        let d = Dataset::from_interactions(interactions, cats, 1, &mut rng);
        assert_eq!(d.user_items(0, Split::Test).len(), 20);
        assert_eq!(d.user_items(0, Split::Validation).len(), 10);
        assert_eq!(d.user_items(0, Split::Train).len(), 70);
    }

    #[test]
    fn train_preserves_chronological_order() {
        let mut rng = StdRng::seed_from_u64(2);
        let items: Vec<usize> = (0..50).collect();
        let d = Dataset::from_interactions(vec![items], vec![0; 50], 1, &mut rng);
        let tr = d.user_items(0, Split::Train);
        assert!(
            tr.windows(2).all(|w| w[0] < w[1]),
            "order scrambled: {tr:?}"
        );
    }

    #[test]
    fn duplicates_are_dropped() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Dataset::from_interactions(vec![vec![1, 1, 2, 1, 2]], vec![0; 3], 1, &mut rng);
        assert_eq!(d.n_interactions(), 2);
    }

    #[test]
    fn negative_sampling_avoids_observed() {
        let d = tiny_dataset();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let neg = d.sample_negative(0, &mut rng);
            assert!(!d.is_observed(0, neg));
        }
        let negs = d.sample_negatives(1, 3, &mut rng);
        assert_eq!(negs.len(), 3);
        let mut sorted = negs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "negatives must be distinct");
    }

    #[test]
    fn masked_sampling_matches_the_historical_rejection_scan() {
        // The bitset path must consume the *identical* RNG stream as the
        // retired `out.contains` scan: same accept/reject decision per draw.
        let d = tiny_dataset();
        let naive = |user: usize, n: usize, avoid: &[usize], rng: &mut StdRng| {
            let mut out: Vec<usize> = Vec::new();
            while out.len() < n {
                let cand = d.sample_negative(user, rng);
                if !out.contains(&cand) && !avoid.contains(&cand) {
                    out.push(cand);
                }
            }
            out
        };
        let mut mask = NegativeMask::new();
        // (user, n, avoid) chosen so enough unobserved items remain.
        for (user, n, avoid) in [
            (0usize, 2usize, vec![]),
            (1, 3, vec![0, 5]),
            (2, 2, vec![3]),
        ] {
            let mut rng_a = StdRng::seed_from_u64(7 + user as u64);
            let mut rng_b = StdRng::seed_from_u64(7 + user as u64);
            let reference = naive(user, n, &avoid, &mut rng_a);
            let mut fast = Vec::new();
            d.sample_negatives_avoiding_into(user, n, &avoid, &mut rng_b, &mut mask, &mut fast);
            assert_eq!(reference, fast, "user {user}");
            // Both RNGs must end in the same state.
            assert_eq!(rng_a.random_range(0..1000), rng_b.random_range(0..1000));
        }
    }

    #[test]
    fn negative_mask_marks_and_clears() {
        let mut mask = NegativeMask::new();
        mask.prepare(200);
        assert!(mask.mark(3));
        assert!(mask.mark(130));
        assert!(!mask.mark(3), "double mark must report already-present");
        assert!(mask.contains(130));
        assert!(!mask.contains(64));
        // prepare clears only touched words but all marks are gone.
        mask.prepare(200);
        assert!(!mask.contains(3));
        assert!(!mask.contains(130));
        assert!(mask.mark(3));
    }

    #[test]
    fn category_coverage_counts_distinct() {
        let d = tiny_dataset();
        assert_eq!(d.category_coverage(&[0, 1]), 1);
        assert_eq!(d.category_coverage(&[0, 2, 5]), 3);
        assert_eq!(d.category_coverage(&[]), 0);
    }

    #[test]
    fn train_edges_match_train_split() {
        let d = tiny_dataset();
        let edges = d.train_edges();
        let expected: usize = (0..d.n_users())
            .map(|u| d.user_items(u, Split::Train).len())
            .sum();
        assert_eq!(edges.len(), expected);
    }
}
