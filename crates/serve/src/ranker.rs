//! The batched ranker: requests in, diversified top-N lists out.

use crate::cache::KernelCache;
use crate::{RankingArtifact, ServeConfig};
use lkp_dpp::{greedy_map_with, MapWorkspace};
use lkp_linalg::Matrix;
use lkp_models::Recommender;
use lkp_runtime::WorkerPool;

/// One top-N request: rank `candidates` for `user` and keep the best
/// `top_n` under the tailored k-DPP MAP objective.
#[derive(Debug, Clone)]
pub struct RankRequest {
    /// Requesting user.
    pub user: usize,
    /// Candidate item ids (typically a few hundred from a retrieval stage).
    pub candidates: Vec<usize>,
    /// List length to produce (clamped to the candidate count).
    pub top_n: usize,
}

impl RankRequest {
    /// A request over an explicit candidate list.
    pub fn new(user: usize, candidates: Vec<usize>, top_n: usize) -> Self {
        RankRequest {
            user,
            candidates,
            top_n,
        }
    }

    /// A request ranking the full catalog (small catalogs / offline use).
    pub fn full_catalog(user: usize, n_items: usize, top_n: usize) -> Self {
        RankRequest::new(user, (0..n_items).collect(), top_n)
    }
}

/// One served list.
///
/// `items` is in greedy selection order (position 1 first), which is also
/// the presentation order: each item maximizes the marginal determinant
/// gain given everything above it. Empty when the request was degenerate
/// (no candidates, unknown user, out-of-catalog candidate id, or a
/// numerically vanished kernel).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankResponse {
    /// Requesting user (copied from the request).
    pub user: usize,
    /// Selected items, best-first.
    pub items: Vec<usize>,
    /// `log det(L_S)` of the selected set under the tailored kernel.
    pub log_det: f64,
    /// Whether the diversity submatrix came from the per-worker cache.
    pub cache_hit: bool,
}

/// Per-worker serving scratch, persisted in pool worker state across
/// batches: reused score/quality buffers, the assembled kernel, the MAP
/// workspace, and the bounded per-user kernel cache. Steady-state serving
/// of a fixed request shape allocates only on cache insertions.
#[derive(Default)]
pub struct ServeWorkspace {
    scores: Vec<f64>,
    q: Vec<f64>,
    l: Matrix,
    map: MapWorkspace,
    cache: KernelCache,
    /// Sorted copy of the candidate list (duplicate detection) and the
    /// deduplicated list when duplicates are present.
    sorted: Vec<usize>,
    dedup: Vec<usize>,
}

/// The serving engine: an immutable [`RankingArtifact`] plus a persistent
/// worker pool. Batches are cut into contiguous per-worker chunks
/// (`O(batch/threads)` requests each); every response slot is written by
/// exactly one worker, so the output order matches the request order and
/// the served lists are identical at any pool width.
pub struct Ranker<M> {
    artifact: RankingArtifact<M>,
    pool: WorkerPool,
    config: ServeConfig,
}

impl<M: Recommender + Sync> Ranker<M> {
    /// Builds a ranker (spawning the pool) from a frozen artifact.
    pub fn new(artifact: RankingArtifact<M>, config: ServeConfig) -> Self {
        let pool = WorkerPool::new(config.threads);
        Ranker {
            artifact,
            pool,
            config,
        }
    }

    /// The frozen artifact this ranker serves.
    pub fn artifact(&self) -> &RankingArtifact<M> {
        &self.artifact
    }

    /// Worker threads in the serving pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Serves one batch of requests, one response per request in request
    /// order.
    pub fn rank_batch(&mut self, requests: &[RankRequest]) -> Vec<RankResponse> {
        let mut out = Vec::new();
        self.rank_batch_into(requests, &mut out);
        out
    }

    /// [`Ranker::rank_batch`] into a reused response buffer (cleared and
    /// refilled; response-internal buffers are recycled across batches).
    pub fn rank_batch_into(&mut self, requests: &[RankRequest], out: &mut Vec<RankResponse>) {
        out.resize_with(requests.len(), RankResponse::default);
        let artifact = &self.artifact;
        let config = &self.config;
        self.pool
            .zip_chunks(requests, out, |_, reqs, resps, state| {
                let ws = state.get_or_default::<ServeWorkspace>();
                for (req, resp) in reqs.iter().zip(resps.iter_mut()) {
                    serve_one(artifact, config, ws, req, resp);
                }
            });
    }

    /// Serves a single request on the caller thread (no pool dispatch) —
    /// the low-latency path for un-batched traffic.
    pub fn rank_one(&mut self, request: &RankRequest) -> RankResponse {
        let mut resp = RankResponse::default();
        let ws = self.pool.caller_state().get_or_default::<ServeWorkspace>();
        serve_one(&self.artifact, &self.config, ws, request, &mut resp);
        resp
    }

    /// Aggregate `(hits, misses)` of the per-worker kernel caches observed
    /// from the caller's worker; other workers' counters are summed in via
    /// a pool dispatch. Disabled-cache passthroughs
    /// (`kernel_cache_capacity = 0`) are **not** misses — they are counted
    /// separately in [`Ranker::cache_bypasses`], so a hit rate derived from
    /// this pair reflects only lookups the cache was allowed to serve.
    pub fn cache_stats(&mut self) -> (u64, u64) {
        let totals = std::sync::Mutex::new((0u64, 0u64));
        self.pool.run(|_, state| {
            let ws = state.get_or_default::<ServeWorkspace>();
            let (h, m) = ws.cache.stats();
            let mut guard = totals.lock().expect("stats lock");
            guard.0 += h;
            guard.1 += m;
        });
        totals.into_inner().expect("stats lock")
    }

    /// Aggregate count of kernel assemblies that deliberately bypassed the
    /// cache because it was disabled (`kernel_cache_capacity = 0`).
    pub fn cache_bypasses(&mut self) -> u64 {
        let total = std::sync::Mutex::new(0u64);
        self.pool.run(|_, state| {
            let ws = state.get_or_default::<ServeWorkspace>();
            *total.lock().expect("stats lock") += ws.cache.bypasses();
        });
        total.into_inner().expect("stats lock")
    }
}

impl<M> std::fmt::Debug for Ranker<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ranker")
            .field("threads", &self.pool.threads())
            .finish()
    }
}

/// Serves one request into `resp` using the worker's scratch.
fn serve_one<M: Recommender>(
    artifact: &RankingArtifact<M>,
    config: &ServeConfig,
    ws: &mut ServeWorkspace,
    req: &RankRequest,
    resp: &mut RankResponse,
) {
    resp.user = req.user;
    resp.items.clear();
    resp.log_det = 0.0;
    resp.cache_hit = false;

    let n_items = artifact.n_items();
    if req.candidates.is_empty()
        || req.top_n == 0
        || req.user >= artifact.n_users()
        || req.candidates.iter().any(|&i| i >= n_items)
    {
        return;
    }

    // Duplicate candidate ids would let greedy MAP pick the same item
    // twice (a duplicate row's residual decays only to the jitter floor,
    // above the rank cutoff). Deduplicate, keeping first occurrences; the
    // sorted scratch makes the common clean case an O(|C| log |C|) check.
    ws.sorted.clear();
    ws.sorted.extend_from_slice(&req.candidates);
    ws.sorted.sort_unstable();
    let candidates: &[usize] = if ws.sorted.windows(2).any(|w| w[0] == w[1]) {
        ws.dedup.clear();
        for &item in &req.candidates {
            if !ws.dedup.contains(&item) {
                ws.dedup.push(item);
            }
        }
        &ws.dedup
    } else {
        &req.candidates
    };
    let c = candidates.len();

    // Scores → quality, exactly the training-side map q = exp(clamp(ŷ)).
    artifact
        .model()
        .score_items_into(req.user, candidates, &mut ws.scores);
    ws.q.clear();
    ws.q.extend(
        ws.scores
            .iter()
            .map(|&s| s.clamp(-config.score_clamp, config.score_clamp).exp()),
    );

    // Diversity submatrix K_C (cached per user), then the tailored kernel
    // L = Diag(q)·K_C·Diag(q) + ε·I assembled into the reused buffer. The
    // off-diagonal entries average the two factorization orders — the same
    // arithmetic as `DppKernel::from_quality_diversity` + `symmetrize` —
    // so the serve-side kernel matches the offline
    // `lkp_core::objective::tailored_kernel` bit for bit, not merely up to
    // round-off.
    let (k_sub, hit) = ws.cache.get_or_assemble(
        req.user,
        candidates,
        artifact.kernel(),
        config.kernel_cache_capacity,
    );
    resp.cache_hit = hit;
    ws.l.reset(c, c);
    for i in 0..c {
        let qi = ws.q[i];
        ws.l[(i, i)] = qi * k_sub[(i, i)] * qi + config.jitter;
        for j in (i + 1)..c {
            let qj = ws.q[j];
            let kij = k_sub[(i, j)];
            let avg = 0.5 * (qi * kij * qj + qj * kij * qi);
            ws.l[(i, j)] = avg;
            ws.l[(j, i)] = avg;
        }
    }

    // Greedy MAP under the tailored kernel; selection order is the list.
    let k = req.top_n.min(c);
    if greedy_map_with(&ws.l, k, &mut ws.map).is_err() {
        return;
    }
    resp.items
        .extend(ws.map.items().iter().map(|&idx| candidates[idx]));
    resp.log_det = ws.map.log_det();
}
