//! Ablations of the design choices DESIGN.md calls out, beyond the paper's
//! own tables:
//!
//! 1. **Diversity-kernel rank** — how much structure `K = V·Vᵀ` needs before
//!    Eq. 3's log-det gap (diverse vs contaminated sets) saturates, and what
//!    that does to downstream diversity.
//! 2. **Normalization** — LkP's k-DPP normalizer vs the standard-DPP
//!    normalizer (paper Section IV-B2's negative result) vs plain BPR on the
//!    same backbone.
//!
//! ```text
//! cargo run --release -p lkp-bench --bin ablation
//! ```

use lkp_bench::{ExpArgs, Method, CUTOFFS};
use lkp_core::diversity::{mean_logdet_gap, train_diversity_kernel, DiversityKernelConfig};
use lkp_core::LkpVariant;
use lkp_data::SyntheticPreset;

fn main() {
    let args = ExpArgs::parse();
    let data = args.dataset(SyntheticPreset::Beauty);

    println!("== Ablation 1: diversity-kernel rank (Beauty preset) ==");
    println!(
        "{:>5} {:>12} {:>8} {:>8} {:>8}",
        "rank", "logdet-gap", "Nd@10", "CC@10", "F@10"
    );
    for rank in [2usize, 4, 8, 16, 32] {
        let kernel = train_diversity_kernel(
            &data,
            &DiversityKernelConfig {
                dim: rank,
                set_size: args.k.max(3),
                pairs_per_epoch: (data.n_users() * 2).clamp(64, 1024),
                epochs: 12,
                seed: args.seed ^ 0xD1FF,
                ..Default::default()
            },
        );
        let gap = mean_logdet_gap(&kernel, &data, args.k.max(3), 200, 1e-2, 99);
        let mut model = args.gcn(&data);
        let out = lkp_bench::run_method(
            &args,
            &data,
            &kernel,
            &mut model,
            Method::Lkp(LkpVariant::Ps),
        );
        let m = out.metrics.at(10).expect("cutoff 10");
        println!(
            "{rank:>5} {gap:>12.4} {:>8.4} {:>8.4} {:>8.4}",
            m.ndcg, m.category_coverage, m.f_score
        );
    }
    println!("expected shape: the gap grows with rank and saturates; downstream CC tracks it.");

    println!("\n== Ablation 2: k-DPP vs standard-DPP normalization vs BPR (Beauty, GCN) ==");
    let kernel = args.diversity_kernel(&data);
    println!(
        "{:<10} {}",
        "method",
        CUTOFFS.map(|c| format!("   Nd@{c:<2}  CC@{c:<2}")).join("")
    );
    for method in [Method::Lkp(LkpVariant::Ps), Method::StdDpp, Method::Bpr] {
        let mut model = args.gcn(&data);
        let out = lkp_bench::run_method(&args, &data, &kernel, &mut model, method);
        let mut cols = String::new();
        for &c in &CUTOFFS {
            let m = out.metrics.at(c).expect("cutoff");
            cols.push_str(&format!(" {:>7.4} {:>6.4}", m.ndcg, m.category_coverage));
        }
        println!("{:<10}{cols}", method.name());
    }
    println!("expected shape (paper IV-B2): standard-DPP normalization underperforms the");
    println!("k-DPP criterion — competing against subsets of every cardinality destroys");
    println!("the ranking interpretation.");
}
