//! Elementary symmetric polynomials (ESPs) over kernel eigenvalues.
//!
//! The k-DPP normalization constant is `Z_k = e_k(λ_1, …, λ_m)` (paper
//! Eq. 6), computed by the recursive DP the paper spells out as Algorithm 1:
//!
//! ```text
//! e_0^m = 1,  e_l^0 = 0 (l ≥ 1),  e_l^m = e_l^{m-1} + λ_m · e_{l-1}^{m-1}
//! ```
//!
//! which runs in `O(m·k)` time. The gradient of `log Z_k` additionally needs
//! the *leave-one-out* polynomials `e_{k-1}(λ_{-i})` (one for each `i`), and
//! k-DPP sampling needs the full DP table; both are provided here.

/// Computes `e_k(λ)` with the paper's Algorithm 1 in `O(m·k)`.
///
/// Eigenvalues of PSD kernels are non-negative, so the recurrence involves no
/// cancellation and is numerically benign. `e_0 = 1` by convention; `k > m`
/// yields 0.
pub fn elementary_symmetric(eigenvalues: &[f64], k: usize) -> f64 {
    let m = eigenvalues.len();
    if k == 0 {
        return 1.0;
    }
    if k > m {
        return 0.0;
    }
    // e[l] holds e_l^{(m')} as m' grows; iterate l downward so each λ_m is
    // used exactly once per step.
    // lint:allow(hotpath-alloc): convenience entry point; the training loop
    // uses `elementary_symmetric_all_into` with a reused buffer.
    let mut e = vec![0.0; k + 1];
    e[0] = 1.0;
    for &lambda in eigenvalues {
        for l in (1..=k).rev() {
            e[l] += lambda * e[l - 1];
        }
    }
    e[k]
}

/// Computes all of `e_0 … e_k` in a single pass.
pub fn elementary_symmetric_all(eigenvalues: &[f64], k: usize) -> Vec<f64> {
    // lint:allow(hotpath-alloc): owned-return convenience wrapper over the
    // `_into` variant; not called from the training loop.
    let mut e = Vec::new();
    elementary_symmetric_all_into(eigenvalues, k, &mut e);
    e
}

/// [`elementary_symmetric_all`] into a reused buffer (`e.len() == k + 1` on
/// return; no allocation once the buffer has capacity `k + 1`).
pub fn elementary_symmetric_all_into(eigenvalues: &[f64], k: usize, e: &mut Vec<f64>) {
    e.clear();
    e.resize(k + 1, 0.0);
    e[0] = 1.0;
    for &lambda in eigenvalues {
        // `e` has exactly k+1 slots, so `l` ranges over 1..=k directly; the
        // downward sweep uses each λ exactly once per degree.
        for l in (1..=k).rev() {
            e[l] += lambda * e[l - 1];
        }
    }
}

/// The full DP table `E[l][m] = e_l(λ_1..λ_m)` of the paper's Algorithm 1,
/// with `0 ≤ l ≤ k` and `0 ≤ m ≤ len(λ)`.
///
/// Required by exact k-DPP sampling (the eigenvector-selection phase walks
/// this table backwards).
pub fn esp_table(eigenvalues: &[f64], k: usize) -> Vec<Vec<f64>> {
    let m = eigenvalues.len();
    // lint:allow(hotpath-alloc): the DP table is built once per sampling
    // call, not per training instance; exact sampling is offline-only.
    let mut table = vec![vec![0.0; m + 1]; k + 1];
    for col in table[0].iter_mut() {
        *col = 1.0;
    }
    for l in 1..=k {
        for j in 1..=m {
            table[l][j] = table[l][j - 1] + eigenvalues[j - 1] * table[l - 1][j - 1];
        }
    }
    table
}

/// Reusable scratch for [`leave_one_out_into`]: the prefix/suffix ESP tables.
#[derive(Debug, Clone, Default)]
pub struct LeaveOneOutScratch {
    /// `prefix[i*(k+1) + l] = e_l(λ_0..λ_{i-1})`, `(m+1)·(k+1)` entries.
    prefix: Vec<f64>,
    /// `suffix[i*(k+1) + l] = e_l(λ_i..λ_{m-1})`, `(m+1)·(k+1)` entries.
    suffix: Vec<f64>,
}

/// Leave-one-out ESPs: returns `v` with `v[i] = e_{k}(λ with λ_i removed)`.
///
/// Used by the k-DPP normalizer gradient,
/// `∂ e_k(λ)/∂ λ_i = e_{k-1}(λ_{-i})` — call with `k-1` for that purpose.
pub fn leave_one_out(eigenvalues: &[f64], k: usize) -> Vec<f64> {
    // lint:allow(hotpath-alloc): owned-return convenience wrapper; the
    // gradient path calls `leave_one_out_into` with pooled scratch.
    let mut out = Vec::new();
    let mut scratch = LeaveOneOutScratch::default();
    leave_one_out_into(eigenvalues, k, &mut scratch, &mut out);
    out
}

/// [`leave_one_out`] in `O(m·k)` total via a prefix/suffix ESP merge.
///
/// Builds `prefix[i] = e_·(λ_0..λ_{i-1})` and `suffix[i] = e_·(λ_i..λ_{m-1})`
/// tables (each `O(m·k)`), then merges per index with the convolution
/// `e_k(λ_{-i}) = Σ_l prefix[i][l] · suffix[i+1][k−l]` (`O(k)` per index).
/// All terms are non-negative for PSD spectra, so unlike the division-based
/// downdate there is no cancellation and no instability when some `λ_i`
/// dominate. Allocation-free once `scratch`/`out` reach steady-state size.
pub fn leave_one_out_into(
    eigenvalues: &[f64],
    k: usize,
    scratch: &mut LeaveOneOutScratch,
    out: &mut Vec<f64>,
) {
    let m = eigenvalues.len();
    let w = k + 1;
    scratch.prefix.clear();
    scratch.prefix.resize((m + 1) * w, 0.0);
    scratch.suffix.clear();
    scratch.suffix.resize((m + 1) * w, 0.0);

    // Prefix pass: row i+1 extends row i with λ_i.
    scratch.prefix[0] = 1.0; // e_0 of the empty prefix
    for i in 0..m {
        let lambda = eigenvalues[i];
        let (prev_rows, next_rows) = scratch.prefix.split_at_mut((i + 1) * w);
        let prev = &prev_rows[i * w..];
        let next = &mut next_rows[..w];
        next[0] = prev[0];
        for l in 1..w {
            next[l] = prev[l] + lambda * prev[l - 1];
        }
    }
    // Suffix pass: row i extends row i+1 with λ_i.
    scratch.suffix[m * w] = 1.0; // e_0 of the empty suffix
    for i in (0..m).rev() {
        let lambda = eigenvalues[i];
        let (head, tail) = scratch.suffix.split_at_mut((i + 1) * w);
        let next = &tail[..w];
        let cur = &mut head[i * w..];
        cur[0] = next[0];
        for l in 1..w {
            cur[l] = next[l] + lambda * next[l - 1];
        }
    }

    // Merge: e_k(λ_{-i}) = Σ_l e_l(prefix before i) · e_{k−l}(suffix after i).
    out.clear();
    for i in 0..m {
        let prefix = &scratch.prefix[i * w..(i + 1) * w];
        let suffix = &scratch.suffix[(i + 1) * w..(i + 2) * w];
        let mut acc = 0.0;
        for l in 0..=k {
            acc += prefix[l] * suffix[k - l];
        }
        out.push(acc);
    }
}

/// Brute-force leave-one-out reference (`O(m²·k)`): recomputes each reduced
/// ESP directly. Kept as the oracle the fast prefix/suffix merge is
/// property-tested against.
pub fn leave_one_out_naive(eigenvalues: &[f64], k: usize) -> Vec<f64> {
    let m = eigenvalues.len();
    let mut out = Vec::with_capacity(m);
    let mut reduced = Vec::with_capacity(m.saturating_sub(1));
    for i in 0..m {
        reduced.clear();
        reduced.extend_from_slice(&eigenvalues[..i]);
        reduced.extend_from_slice(&eigenvalues[i + 1..]);
        out.push(elementary_symmetric(&reduced, k));
    }
    out
}

/// `log e_k(λ)` with overflow protection: eigenvalues are rescaled by their
/// maximum so intermediate ESPs stay bounded, then the log of the scale is
/// added back (`e_k(cλ) = c^k e_k(λ)`).
pub fn log_elementary_symmetric(eigenvalues: &[f64], k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    if k > eigenvalues.len() {
        return f64::NEG_INFINITY;
    }
    let max = eigenvalues.iter().cloned().fold(0.0_f64, f64::max);
    if max <= 0.0 {
        return f64::NEG_INFINITY;
    }
    // lint:allow(hotpath-alloc): log-normalizer is a diagnostics/eval API;
    // the training loss uses the scaled in-place path in `batch.rs`.
    let scaled: Vec<f64> = eigenvalues.iter().map(|&l| l / max).collect();
    let e = elementary_symmetric(&scaled, k);
    if e <= 0.0 {
        return f64::NEG_INFINITY;
    }
    e.ln() + k as f64 * max.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate_subsets;

    /// Brute-force ESP: sum over all k-subsets of the product of entries.
    fn esp_naive(lambda: &[f64], k: usize) -> f64 {
        enumerate_subsets(lambda.len(), k)
            .iter()
            .map(|s| s.iter().map(|&i| lambda[i]).product::<f64>())
            .sum()
    }

    #[test]
    fn matches_naive_enumeration() {
        let lambda = [0.5, 1.5, 2.0, 0.1, 3.0];
        for k in 0..=5 {
            let fast = elementary_symmetric(&lambda, k);
            let slow = esp_naive(&lambda, k);
            assert!(
                (fast - slow).abs() < 1e-10 * slow.abs().max(1.0),
                "k={k}: {fast} vs {slow}"
            );
        }
    }

    #[test]
    fn base_cases() {
        assert_eq!(elementary_symmetric(&[], 0), 1.0);
        assert_eq!(elementary_symmetric(&[], 1), 0.0);
        assert_eq!(elementary_symmetric(&[2.0, 3.0], 3), 0.0);
        assert_eq!(elementary_symmetric(&[2.0, 3.0], 1), 5.0);
        assert_eq!(elementary_symmetric(&[2.0, 3.0], 2), 6.0);
    }

    #[test]
    fn all_variant_matches_individual() {
        let lambda = [1.0, 0.2, 4.0, 2.5];
        let all = elementary_symmetric_all(&lambda, 4);
        for (k, &value) in all.iter().enumerate() {
            assert!((value - elementary_symmetric(&lambda, k)).abs() < 1e-12);
        }
    }

    #[test]
    fn table_last_column_matches_esp() {
        let lambda = [0.3, 1.2, 0.9, 2.2, 0.05];
        let k = 3;
        let table = esp_table(&lambda, k);
        for (l, row) in table.iter().enumerate() {
            assert!(
                (row[lambda.len()] - elementary_symmetric(&lambda, l)).abs() < 1e-12,
                "l={l}"
            );
        }
        // Column m=0: e_0 = 1, e_l = 0 for l>0 — the paper's initialization.
        assert_eq!(table[0][0], 1.0);
        for row in table.iter().skip(1) {
            assert_eq!(row[0], 0.0);
        }
    }

    #[test]
    fn leave_one_out_matches_direct_removal() {
        let lambda = [0.7, 1.1, 0.4, 2.0];
        let loo = leave_one_out(&lambda, 2);
        for (i, &li) in loo.iter().enumerate() {
            let mut reduced = lambda.to_vec();
            reduced.remove(i);
            assert!((li - esp_naive(&reduced, 2)).abs() < 1e-12, "i={i}");
        }
    }

    #[test]
    fn fast_leave_one_out_matches_naive() {
        let lambda = [0.7, 1.1, 0.4, 2.0, 1e-9, 30.0, 0.0, 5.5];
        for k in 0..=lambda.len() {
            let fast = leave_one_out(&lambda, k);
            let naive = leave_one_out_naive(&lambda, k);
            for (i, (f, n)) in fast.iter().zip(&naive).enumerate() {
                assert!(
                    (f - n).abs() <= 1e-12 * n.abs().max(1.0),
                    "k={k} i={i}: fast {f} vs naive {n}"
                );
            }
        }
    }

    #[test]
    fn leave_one_out_buffers_are_reusable() {
        let mut scratch = LeaveOneOutScratch::default();
        let mut out = Vec::new();
        // Shrinking and growing m/k across calls must stay correct.
        for (lambda, k) in [
            (vec![1.0, 2.0, 3.0, 4.0, 5.0], 3),
            (vec![0.5, 0.25], 1),
            (vec![2.0, 0.1, 7.0, 0.4], 4),
        ] {
            leave_one_out_into(&lambda, k, &mut scratch, &mut out);
            assert_eq!(out, leave_one_out_naive(&lambda, k));
        }
    }

    #[test]
    fn leave_one_out_is_esp_derivative() {
        // Finite-difference check of ∂e_k/∂λ_i = e_{k-1}(λ_{-i}).
        let lambda = [0.9, 1.7, 0.3, 1.2, 0.6];
        let k = 3;
        let loo = leave_one_out(&lambda, k - 1);
        let h = 1e-6;
        for i in 0..lambda.len() {
            let mut plus = lambda.to_vec();
            plus[i] += h;
            let mut minus = lambda.to_vec();
            minus[i] -= h;
            let fd = (elementary_symmetric(&plus, k) - elementary_symmetric(&minus, k)) / (2.0 * h);
            assert!(
                (fd - loo[i]).abs() < 1e-6,
                "i={i}: fd {fd} vs loo {}",
                loo[i]
            );
        }
    }

    #[test]
    fn log_esp_matches_plain_log() {
        let lambda = [0.5, 1.5, 2.0, 0.1];
        for k in 1..=4 {
            let expected = elementary_symmetric(&lambda, k).ln();
            assert!((log_elementary_symmetric(&lambda, k) - expected).abs() < 1e-10);
        }
    }

    #[test]
    fn log_esp_survives_huge_eigenvalues() {
        // Plain ESP of these would overflow f64 (~1e300 each, k=4 → 1e1200).
        let lambda = [1e300_f64, 1e300, 1e300, 1e300];
        let log_e = log_elementary_symmetric(&lambda, 4);
        let expected = 4.0 * 1e300_f64.ln(); // single subset, product of all four
        assert!((log_e - expected).abs() < 1e-6);
    }

    #[test]
    fn log_esp_degenerate_cases() {
        assert_eq!(log_elementary_symmetric(&[0.0, 0.0], 1), f64::NEG_INFINITY);
        assert_eq!(log_elementary_symmetric(&[1.0], 2), f64::NEG_INFINITY);
        assert_eq!(log_elementary_symmetric(&[3.0, 4.0], 0), 0.0);
    }
}
