//! Figure 3 — LkP-PS performance at different negative counts `n` (k = 5)
//! on the Beauty preset, Top-5 and Top-20 metrics.
//!
//! The paper's shape: metrics rise smoothly to a peak at a moderate n
//! (≈ 4-5) and then fall off — too few negatives give an insufficient
//! set-level comparison, too many drown the correlation signal.

use lkp_bench::{ExpArgs, Method};
use lkp_core::LkpVariant;
use lkp_data::SyntheticPreset;

fn main() {
    let mut args = ExpArgs::parse();
    let data = args.dataset(SyntheticPreset::Beauty);
    let kernel = args.diversity_kernel(&data);

    println!(
        "== Fig. 3 (LkP-PS) on Beauty: sweep n in 1..=6, k = {} ==",
        args.k
    );
    println!(
        "{:>3} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "n", "Nd@5", "CC@5", "F@5", "Nd@20", "CC@20", "F@20"
    );
    for n in 1..=6usize {
        args.n = n;
        let mut model = args.gcn(&data);
        let out = lkp_bench::run_method(
            &args,
            &data,
            &kernel,
            &mut model,
            Method::Lkp(LkpVariant::Ps),
        );
        let m5 = out.metrics.at(5).expect("cutoff 5");
        let m20 = out.metrics.at(20).expect("cutoff 20");
        println!(
            "{n:>3} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>8.4}",
            m5.ndcg, m5.category_coverage, m5.f_score, m20.ndcg, m20.category_coverage, m20.f_score
        );
    }
}
