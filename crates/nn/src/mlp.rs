//! A small multi-layer perceptron assembled from [`Dense`] layers.

use crate::activation::Activation;
use crate::dense::Dense;
use crate::optim::AdamConfig;
use rand::Rng;

/// Forward-pass cache needed by [`Mlp::backward`].
#[derive(Debug, Clone)]
pub struct MlpCache {
    /// Input plus each layer's *post-activation* output.
    activations: Vec<Vec<f64>>,
}

impl MlpCache {
    /// The network output for this cache.
    pub fn output(&self) -> &[f64] {
        self.activations
            .last()
            .expect("cache always holds the input")
    }
}

/// Dense layers with a shared hidden activation and an output activation.
///
/// NeuMF's MLP tower uses ReLU hidden layers with an identity output; GCMC's
/// encoder uses a single sigmoid/tanh layer.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
    hidden: Activation,
    output: Activation,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `[16, 8, 1]` creates
    /// two layers `16→8` and `8→1`.
    pub fn new<R: Rng + ?Sized>(
        widths: &[usize],
        hidden: Activation,
        output: Activation,
        config: AdamConfig,
        rng: &mut R,
    ) -> Self {
        assert!(widths.len() >= 2, "need at least input and output widths");
        let layers = widths
            .windows(2)
            .map(|w| Dense::new(w[1], w[0], config, rng))
            .collect();
        Mlp {
            layers,
            hidden,
            output,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Forward pass, returning the cache required for backprop.
    pub fn forward(&self, x: &[f64]) -> MlpCache {
        let mut activations = Vec::with_capacity(self.layers.len() + 1);
        activations.push(x.to_vec());
        for (i, layer) in self.layers.iter().enumerate() {
            let mut y = layer.forward(activations.last().expect("non-empty"));
            let act = if i + 1 == self.layers.len() {
                self.output
            } else {
                self.hidden
            };
            act.forward(&mut y);
            activations.push(y);
        }
        MlpCache { activations }
    }

    /// Backward pass from an output gradient; accumulates parameter
    /// gradients and returns the input gradient.
    pub fn backward(&mut self, cache: &MlpCache, dy: &[f64]) -> Vec<f64> {
        let mut grad = dy.to_vec();
        let n_layers = self.layers.len();
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            let act = if i + 1 == n_layers {
                self.output
            } else {
                self.hidden
            };
            act.backward(&cache.activations[i + 1], &mut grad);
            grad = layer.backward(&cache.activations[i], &grad);
        }
        grad
    }

    /// Applies accumulated gradients on every layer.
    pub fn step(&mut self) {
        for layer in &mut self.layers {
            layer.step();
        }
    }

    /// Clears accumulated gradients on every layer.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Adjusts the learning rate on every layer.
    pub fn set_lr(&mut self, lr: f64) {
        for layer in &mut self.layers {
            layer.set_lr(lr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_are_consistent() {
        let mut rng = StdRng::seed_from_u64(2);
        let mlp = Mlp::new(
            &[6, 4, 2],
            Activation::ReLU,
            Activation::Identity,
            AdamConfig::default(),
            &mut rng,
        );
        assert_eq!(mlp.in_dim(), 6);
        assert_eq!(mlp.out_dim(), 2);
        let cache = mlp.forward(&[0.1; 6]);
        assert_eq!(cache.output().len(), 2);
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut mlp = Mlp::new(
            &[4, 5, 1],
            Activation::Tanh,
            Activation::Identity,
            AdamConfig {
                weight_decay: 0.0,
                ..Default::default()
            },
            &mut rng,
        );
        let x = [0.3, -0.2, 0.8, -0.5];
        let cache = mlp.forward(&x);
        let dx = mlp.backward(&cache, &[1.0]);
        let h = 1e-6;
        for i in 0..4 {
            let mut xp = x;
            xp[i] += h;
            let mut xm = x;
            xm[i] -= h;
            let fd = (mlp.forward(&xp).output()[0] - mlp.forward(&xm).output()[0]) / (2.0 * h);
            assert!((dx[i] - fd).abs() < 1e-5, "dim {i}: {} vs {fd}", dx[i]);
        }
    }

    #[test]
    fn learns_xor() {
        // The classic non-linear sanity check.
        let mut rng = StdRng::seed_from_u64(9);
        let mut mlp = Mlp::new(
            &[2, 8, 1],
            Activation::Tanh,
            Activation::Sigmoid,
            AdamConfig {
                lr: 0.05,
                weight_decay: 0.0,
                ..Default::default()
            },
            &mut rng,
        );
        let data = [
            ([0.0, 0.0], 0.0),
            ([0.0, 1.0], 1.0),
            ([1.0, 0.0], 1.0),
            ([1.0, 1.0], 0.0),
        ];
        for _ in 0..800 {
            for (x, t) in &data {
                let cache = mlp.forward(x);
                let y = cache.output()[0];
                // BCE gradient through sigmoid output: dL/dz = y - t, but our
                // backward already applies the sigmoid Jacobian, so feed
                // dL/dy = (y - t) / (y (1 - y)) clamped for stability.
                let denom = (y * (1.0 - y)).max(1e-6);
                let dy = (y - t) / denom;
                mlp.backward(&cache, &[dy.clamp(-10.0, 10.0)]);
            }
            mlp.step();
        }
        for (x, t) in &data {
            let y = mlp.forward(x).output()[0];
            assert!((y - t).abs() < 0.25, "XOR({x:?}) = {y}, want {t}");
        }
    }
}
