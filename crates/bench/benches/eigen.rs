//! Symmetric eigendecomposition of ground-set kernels — the dominant cost of
//! one LkP instance (the `(k+n)×(k+n)` spectral factorization of Eq. 6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lkp_linalg::{eigen::SymmetricEigen, Matrix};
use std::hint::black_box;

fn psd(n: usize) -> Matrix {
    let v = Matrix::from_fn(n, n, |r, c| (((r * 7 + c * 13) % 17) as f64) * 0.2 - 1.0);
    let mut g = v.gram();
    for i in 0..n {
        g[(i, i)] += 0.5;
    }
    g
}

fn bench_eigen(c: &mut Criterion) {
    let mut group = c.benchmark_group("symmetric_eigen");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for &n in &[6usize, 10, 16, 32, 64] {
        let a = psd(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| SymmetricEigen::new(black_box(&a)).unwrap())
        });
    }
    group.finish();

    let mut chol = c.benchmark_group("cholesky_logdet");
    chol.sample_size(30);
    chol.warm_up_time(std::time::Duration::from_millis(300));
    chol.measurement_time(std::time::Duration::from_millis(800));
    for &n in &[5usize, 10, 20] {
        let a = psd(n);
        chol.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| lkp_linalg::cholesky::log_det_spd(black_box(&a)).unwrap())
        });
    }
    chol.finish();
}

criterion_group!(benches, bench_eigen);
criterion_main!(benches);
