//! Recommendation models.
//!
//! The LkP criterion is model-agnostic: any model that can (a) score a list
//! of candidate items for a user and (b) descend a gradient given with
//! respect to those scores can be trained with it. That contract is the
//! [`Recommender`] trait; four implementations cover the paper's evaluation
//! matrix:
//!
//! * [`mf::MatrixFactorization`] — embeddings + dot product (Tables III).
//! * [`gcn::Gcn`] — LightGCN-style linear propagation over the user–item
//!   graph, standing in for the paper's "basic GCN framework … referring to
//!   NGCF" (Table II).
//! * [`neumf::NeuMf`] — GMF + MLP towers (He et al. 2017; Table IV).
//! * [`gcmc::Gcmc`] — graph auto-encoder with a bilinear decoder
//!   (Berg et al. 2017; Table IV).
//!
//! Models using trainable item embeddings additionally implement
//! [`ItemEmbeddings`], which the E-type LkP variant (RBF diversity kernel
//! over item embeddings) requires.

pub mod gcmc;
pub mod gcn;
pub mod mf;
pub mod neumf;

pub use gcmc::Gcmc;
pub use gcn::Gcn;
pub use mf::MatrixFactorization;
pub use neumf::NeuMf;

/// A trainable recommendation model.
///
/// Scores are *raw* relevance values `ŷ_{u,i}` (higher = more relevant);
/// objectives decide how to squash them. `accumulate_score_grads` receives
/// `∂loss/∂score` for a loss to **minimize** and must accumulate parameter
/// gradients; `step` applies one optimizer update and clears them.
pub trait Recommender {
    /// Number of users the model was built for.
    fn n_users(&self) -> usize;

    /// Number of items the model was built for.
    fn n_items(&self) -> usize;

    /// Scores the given items for a user.
    fn score_items(&self, user: usize, items: &[usize]) -> Vec<f64>;

    /// Scores the given items into a reused buffer (cleared first).
    ///
    /// Hot-path variant of [`Recommender::score_items`]: the training loop
    /// calls this once per instance, and models should override it to avoid
    /// per-call allocation (the default delegates and copies).
    fn score_items_into(&self, user: usize, items: &[usize], out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.score_items(user, items));
    }

    /// Scores every item for a user into `out` (resized as needed).
    /// Used by top-N evaluation; the default delegates to [`Recommender::score_items`].
    fn score_all(&self, user: usize, out: &mut Vec<f64>) {
        let items: Vec<usize> = (0..self.n_items()).collect();
        *out = self.score_items(user, &items);
    }

    /// Accumulates `∂loss/∂score` for the given items into parameter grads.
    fn accumulate_score_grads(&mut self, user: usize, items: &[usize], dscores: &[f64]);

    /// Applies one optimizer step and clears accumulated gradients.
    fn step(&mut self);

    /// Applies one **EM-style fixed-point score update** for a single
    /// instance: given `∂loss/∂score` over `items`, immediately moves the
    /// parameters so the instance's scores `ŷ` take a plain damped step
    /// `ŷ ← ŷ − rate·g` — equivalently, the kernel qualities take the
    /// multiplicative update `q ← q·exp(−rate·g)` that Gillenwater-style EM
    /// performs on DPP parameters, keeping `q` positive by construction.
    ///
    /// Unlike [`Recommender::accumulate_score_grads`] + [`Recommender::step`]
    /// this is applied per instance, un-preconditioned (no optimizer
    /// moments), with `rate` as the damping factor. The default falls back
    /// to gradient accumulation — the trainer still calls `step` at batch
    /// end, so models without a native fixed-point form are updated through
    /// their own optimizer and `rate` is ignored. Models with closed-form
    /// score parameterizations (e.g. [`MatrixFactorization`]) override this
    /// with a direct simultaneous row update.
    fn em_score_step(&mut self, user: usize, items: &[usize], dscores: &[f64], rate: f64) {
        let _ = rate;
        self.accumulate_score_grads(user, items, dscores);
    }

    /// Hook called at the start of every epoch (cache refresh etc.).
    fn begin_epoch(&mut self) {}
}

/// Access to trainable item embeddings — required by the E-type LkP variant,
/// whose RBF diversity kernel is computed from (and backpropagates into)
/// item representations.
pub trait ItemEmbeddings {
    /// Item embedding dimensionality.
    fn item_dim(&self) -> usize;

    /// Borrow item `i`'s embedding.
    fn item_embedding(&self, item: usize) -> &[f64];

    /// Accumulates `∂loss/∂embedding` for an item.
    fn accumulate_item_embedding_grad(&mut self, item: usize, grad: &[f64]);
}
