//! Spectral-cache probe: eigen-stage cost on recurring ground sets at
//! several cache tolerances, plus direct cold-vs-warm eigen timings.
//!
//! The workload is the cache's target shape: a fixed set of ground sets
//! revisited round after round with a tiny deterministic score drift
//! (~1e-6), as happens epoch-to-epoch late in training and request-to-
//! request when serving. For each `spectral_tol ∈ {0, 1e-8, 1e-4}` the
//! probe drives the cached workspace entry point (dense path) over all
//! revisits, records the skip/warm-start/cold counters and the pipeline
//! time, and derives the eigen-stage time from directly measured
//! per-decomposition costs (`compute_into` cold vs `compute_warm` from a
//! one-revisit-old seed; a skip costs no eigen at all).
//!
//! Prints one JSON object; `scripts/bench_snapshot.sh` appends it to the
//! `BENCH_<date>.json` trajectory snapshot. Flags: `--rounds N` (default
//! 40) controls the revisit count per tolerance.

use lkp_core::objective::tailored_kernel;
use lkp_core::{train_diversity_kernel, DiversityKernelConfig};
use lkp_data::{GroundSetInstance, SyntheticConfig};
use lkp_dpp::{DppWorkspace, SpectralCache};
use lkp_linalg::eigen::{EigenScratch, SymmetricEigen};
use lkp_models::{MatrixFactorization, Recommender};
use lkp_nn::AdamConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const KERNEL_JITTER: f64 = 1e-6;
const SCORE_CLAMP: f64 = 30.0;

/// Deterministic per-round score drift (~1e-6 ∞-norm on q): below 1e-4,
/// above 1e-8 — so the three probed tolerances exercise cold, warm-start,
/// and skip respectively.
fn drifted(base: &[f64], round: usize) -> Vec<f64> {
    let amp = 1e-6 * (((round % 7) as f64) - 3.0) / 3.0;
    base.iter().map(|s| s + amp).collect()
}

fn main() {
    let rounds: usize = std::env::args()
        .skip_while(|a| a != "--rounds")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);

    let data = lkp_data::synthetic::generate(&SyntheticConfig {
        n_users: 80,
        n_items: 200,
        n_categories: 12,
        mean_interactions: 20.0,
        ..Default::default()
    });
    let kernel = train_diversity_kernel(
        &data,
        &DiversityKernelConfig {
            epochs: 3,
            pairs_per_epoch: 64,
            dim: 8,
            ..Default::default()
        },
    )
    .normalized();
    let model = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        32,
        AdamConfig::default(),
        &mut StdRng::seed_from_u64(5),
    );

    // 64 recurring ground sets at the paper's shape (m = 10, k = 5).
    let instances: Vec<GroundSetInstance> = (0..64)
        .map(|i| GroundSetInstance {
            user: i % data.n_users(),
            positives: (0..5).map(|j| (i * 3 + j * 7) % 100).collect(),
            negatives: (0..5).map(|j| 100 + (i * 5 + j * 11) % 100).collect(),
        })
        .collect();
    let base_scores: Vec<Vec<f64>> = instances
        .iter()
        .map(|inst| model.score_items(inst.user, &inst.ground_set()))
        .collect();

    // --- Direct eigen-stage timings (dense 10×10 tailored kernels). ---
    let tailored = |inst: &GroundSetInstance, scores: &[f64]| {
        let k_sub = kernel.submatrix(&inst.ground_set()).expect("in range");
        tailored_kernel(scores, &k_sub)
            .expect("well-conditioned")
            .into_matrix()
    };
    let l_base: Vec<_> = instances
        .iter()
        .zip(&base_scores)
        .map(|(inst, s)| tailored(inst, s))
        .collect();
    let l_drift: Vec<_> = instances
        .iter()
        .zip(&base_scores)
        .map(|(inst, s)| tailored(inst, &drifted(s, 1)))
        .collect();
    let seeds: Vec<SymmetricEigen> = l_base
        .iter()
        .map(|l| SymmetricEigen::new(l).expect("psd"))
        .collect();

    let mut scratch = EigenScratch::default();
    let mut eig = SymmetricEigen::default();
    let reps = 200usize;
    // Warm-up, then timed cold decompositions.
    for l in &l_drift {
        eig.compute_into(l, &mut scratch).unwrap();
    }
    let t = Instant::now();
    for _ in 0..reps {
        for l in &l_drift {
            eig.compute_into(l, &mut scratch).unwrap();
        }
    }
    let eigen_cold_ns = t.elapsed().as_nanos() as f64 / (reps * l_drift.len()) as f64;
    // Timed warm decompositions from one-revisit-old seeds.
    let mut warm_used = 0usize;
    let t = Instant::now();
    for _ in 0..reps {
        for (l, seed) in l_drift.iter().zip(&seeds) {
            if eig.compute_warm(l, seed, &mut scratch).unwrap() {
                warm_used += 1;
            }
        }
    }
    let eigen_warm_ns = t.elapsed().as_nanos() as f64 / (reps * l_drift.len()) as f64;
    let warm_hit_rate = warm_used as f64 / (reps * l_drift.len()) as f64;

    // --- Cached pipeline at each tolerance. ---
    let mut per_tol = Vec::new();
    for &tol in &[0.0_f64, 1e-8, 1e-4] {
        let mut ws = DppWorkspace::new();
        let mut cache = SpectralCache::new(tol, 1024);
        let run_round = |round: usize, ws: &mut DppWorkspace, cache: &mut SpectralCache| {
            for (inst, base) in instances.iter().zip(&base_scores) {
                let items = inst.ground_set();
                let scores = drifted(base, round);
                kernel.submatrix_into(&items, &mut ws.k_sub).unwrap();
                let result = if tol > 0.0 {
                    ws.tailored_loss_grad_cached(
                        cache,
                        inst.user,
                        &items,
                        &scores,
                        inst.k(),
                        true,
                        false,
                        KERNEL_JITTER,
                        SCORE_CLAMP,
                    )
                } else {
                    // Trainer semantics: tol = 0 bypasses the cache.
                    ws.tailored_loss_grad_staged(
                        &scores,
                        inst.k(),
                        true,
                        false,
                        KERNEL_JITTER,
                        SCORE_CLAMP,
                    )
                };
                assert!(result.is_some(), "probe instances are well-conditioned");
            }
        };
        // Populate the cache (and warm the buffers), then reset counters so
        // the measured window is steady-state revisits only.
        run_round(0, &mut ws, &mut cache);
        cache.reset_stats();
        let t = Instant::now();
        for round in 1..=rounds {
            run_round(round, &mut ws, &mut cache);
        }
        let pipeline_ns = t.elapsed().as_nanos() as f64 / (rounds * instances.len()) as f64;
        let stats = cache.stats();
        let lookups = (rounds * instances.len()) as f64;
        // Eigen-stage time per instance under this tolerance: skips cost no
        // eigen, warm-starts cost the measured warm solve, everything else
        // (including the uncached tol = 0 path) a cold solve.
        let cold_solves = if tol > 0.0 {
            stats.cold as f64
        } else {
            lookups
        };
        let eigen_stage_ns =
            (cold_solves * eigen_cold_ns + stats.warm_starts as f64 * eigen_warm_ns) / lookups;
        per_tol.push((tol, pipeline_ns, stats, eigen_stage_ns));
    }

    let eigen_stage_t0 = per_tol[0].3;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let tol_rows: Vec<String> = per_tol
        .iter()
        .map(|(tol, pipeline_ns, stats, eigen_ns)| {
            format!(
                "{{\"tol\":{tol:e},\"pipeline_ns_per_instance\":{pipeline_ns:.0},\
\"skips\":{},\"warm_starts\":{},\"cold\":{},\
\"eigen_stage_ns_per_instance\":{eigen_ns:.1},\
\"eigen_stage_reduction\":{:.2}}}",
                stats.skips,
                stats.warm_starts,
                stats.cold,
                // All-skip rounds have a zero eigen stage; floor the
                // denominator at 1 ns to keep the ratio a finite JSON number.
                eigen_stage_t0 / eigen_ns.max(1.0),
            )
        })
        .collect();
    println!(
        "{{\"probe\":\"spectral\",\"eigen_cold_ns\":{eigen_cold_ns:.0},\
\"eigen_warm_ns\":{eigen_warm_ns:.0},\
\"warm_vs_cold_speedup\":{:.3},\"warm_path_rate\":{warm_hit_rate:.3},\
\"tols\":[{}],\"host_cores\":{cores}}}",
        eigen_cold_ns / eigen_warm_ns,
        tol_rows.join(","),
    );
}
