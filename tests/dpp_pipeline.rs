//! Integration tests for the DPP toolkit as used by downstream crates:
//! kernels built from real model scores + a trained diversity kernel.

use lkp::dpp::{enumerate_subsets, grad, map, sampling};
use lkp::prelude::*;
use rand::SeedableRng;

fn setup() -> (Dataset, LowRankKernel, MatrixFactorization) {
    let data = SyntheticConfig {
        n_users: 50,
        n_items: 100,
        n_categories: 8,
        mean_interactions: 18.0,
        seed: 21,
        ..Default::default()
    }
    .generate();
    let kernel = train_diversity_kernel(
        &data,
        &DiversityKernelConfig {
            epochs: 5,
            pairs_per_epoch: 64,
            dim: 8,
            ..Default::default()
        },
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let model = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        16,
        AdamConfig::default(),
        &mut rng,
    );
    (data, kernel, model)
}

/// Builds the per-instance kernel exactly as the LkP objective does.
fn instance_kernel(
    data: &Dataset,
    kernel: &LowRankKernel,
    model: &MatrixFactorization,
    user: usize,
    items: &[usize],
) -> DppKernel {
    let _ = data;
    let scores = model.score_items(user, items);
    let q = lkp::core::objective::quality(&scores);
    let mut k_sub = kernel.normalized().submatrix(items).expect("valid items");
    for i in 0..items.len() {
        k_sub[(i, i)] += lkp::core::KERNEL_JITTER;
    }
    DppKernel::from_quality_diversity(&q, &k_sub).expect("PSD by construction")
}

#[test]
fn realistic_kernels_are_psd_and_normalizable() {
    let (data, kernel, model) = setup();
    let items: Vec<usize> = (0..10).collect();
    for user in 0..10 {
        let kern = instance_kernel(&data, &kernel, &model, user, &items);
        for l in kern.nonneg_eigenvalues().expect("eigen succeeds") {
            assert!(l >= 0.0);
        }
        let kdpp = KDpp::new(kern, 5).expect("normalizable");
        assert!(kdpp.log_normalizer().is_finite());
    }
}

#[test]
fn kdpp_probabilities_over_realistic_kernels_sum_to_one() {
    let (data, kernel, model) = setup();
    let items: Vec<usize> = vec![3, 17, 42, 55, 61, 78];
    let kern = instance_kernel(&data, &kernel, &model, 2, &items);
    let kdpp = KDpp::new(kern, 3).expect("valid");
    let total: f64 = kdpp
        .all_subset_probs()
        .expect("enumerable")
        .iter()
        .map(|(_, p)| p)
        .sum();
    assert!((total - 1.0).abs() < 1e-8, "total probability {total}");
}

#[test]
fn sampling_map_and_enumeration_agree_on_the_mode_region() {
    let (data, kernel, model) = setup();
    let items: Vec<usize> = vec![1, 9, 23, 31, 47, 59, 66, 81];
    let kern = instance_kernel(&data, &kernel, &model, 5, &items);

    // Greedy MAP's set should rank in the top quartile of all 3-subsets.
    let map_result = map::greedy_map(&kern, 3).expect("valid kernel");
    let kdpp = KDpp::new(kern.clone(), 3).expect("valid");
    let mut sorted: Vec<f64> = enumerate_subsets(8, 3)
        .iter()
        .map(|s| kdpp.prob(s).expect("size matches"))
        .collect();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
    let mut map_items = map_result.items.clone();
    map_items.sort_unstable();
    let map_prob = kdpp.prob(&map_items).expect("size matches");
    assert!(
        map_prob >= sorted[sorted.len() / 4],
        "greedy MAP probability {map_prob} below top quartile"
    );

    // Exact k-DPP samples must all have cardinality 3 and be in range.
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    for _ in 0..50 {
        let s = sampling::sample_kdpp(&kdpp, &mut rng).expect("sampler works");
        assert_eq!(s.len(), 3);
        assert!(s.iter().all(|&i| i < 8));
    }
}

#[test]
fn gradients_on_realistic_kernels_are_finite_and_zero_mean() {
    let (data, kernel, model) = setup();
    let items: Vec<usize> = vec![2, 11, 29, 40, 52, 63];
    let kern = instance_kernel(&data, &kernel, &model, 7, &items);
    let kdpp = KDpp::new(kern, 3).expect("valid");
    let mut acc = lkp::linalg::Matrix::zeros(6, 6);
    for (s, p) in kdpp.all_subset_probs().expect("enumerable") {
        let g = grad::grad_log_prob(&kdpp, &s).expect("gradient exists");
        assert!(g.as_slice().iter().all(|x| x.is_finite()));
        acc.add_scaled(p, &g).expect("same shape");
    }
    assert!(
        acc.max_abs() < 1e-7,
        "score identity residual {}",
        acc.max_abs()
    );
}

#[test]
fn diversity_kernel_prefers_cross_category_sets_on_real_data() {
    let (data, kernel, _) = setup();
    let norm = kernel.normalized();
    // Build one within-category and one cross-category triple.
    let mut by_cat: Vec<Vec<usize>> = vec![Vec::new(); data.n_categories()];
    for item in 0..data.n_items() {
        by_cat[data.category(item)].push(item);
    }
    let same_cat = by_cat
        .iter()
        .find(|v| v.len() >= 3)
        .expect("a category with 3 items");
    let within: Vec<usize> = same_cat[..3].to_vec();
    let mut across = Vec::new();
    for v in by_cat.iter().filter(|v| !v.is_empty()).take(3) {
        across.push(v[0]);
    }
    let ld_within = norm.log_det_jittered(&within, 1e-6).expect("factorizes");
    let ld_across = norm.log_det_jittered(&across, 1e-6).expect("factorizes");
    assert!(
        ld_across > ld_within,
        "cross-category {ld_across:.3} should beat within-category {ld_within:.3}"
    );
}
