//! `lkp-lint` CLI. Walks the workspace and prints every finding as
//! `file:line: [lint] message`.
//!
//! ```text
//! cargo run -p lkp-lint                 # report findings, always exit 0
//! cargo run -p lkp-lint -- --deny-all   # exit 1 if any finding (the CI gate)
//! cargo run -p lkp-lint -- --root PATH  # lint a different tree
//! ```

use lkp_lint::{lint_tree, LintConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny_all = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--root" => match args.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => {
                    eprintln!("error: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "lkp-lint: workspace static analysis\n\n\
                     usage: lkp-lint [--deny-all] [--root PATH]\n\n\
                     lints: hotpath-alloc, lock-scope, determinism, unsafe-audit\n\
                     suppress with: // lint:allow(<name>): <reason>\n\
                     catalog: docs/LINTS.md"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    // Default root: the workspace that contains this crate
    // (crates/lint/../..), so `cargo run -p lkp-lint` works from any cwd.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
    });

    let config = LintConfig::repo_default();
    let (findings, scanned) = lint_tree(&root, &config);
    for finding in &findings {
        println!("{finding}");
    }
    eprintln!(
        "lkp-lint: {} finding(s) across {scanned} file(s)",
        findings.len()
    );
    if deny_all && !findings.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
