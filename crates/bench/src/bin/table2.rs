//! Table II — the six LkP variants against BPR/BCE/SetRank/S2SRank, all
//! deployed on the GCN backbone, three datasets, k = n = 5.
//!
//! For each dataset the binary prints the paper's 12-metric rows plus the
//! `max vs. max` / `max vs. min` improvement summary, and a shape-check
//! section that states which of the paper's qualitative findings reproduced
//! (LkP beats baselines on F; S beats R on accuracy; R beats S on CC; NPS ≥
//! PS overall; E variants lead CC but trail accuracy).

use lkp_bench::{print_table_header, print_table_row, ExpArgs, Method, CUTOFFS, PRESETS};
use lkp_core::LkpVariant;
use lkp_eval::MetricSet;

fn main() {
    let args = ExpArgs::parse();
    let methods: Vec<Method> = LkpVariant::ALL
        .iter()
        .map(|&v| Method::Lkp(v))
        .chain([Method::Bpr, Method::Bce, Method::SetRank, Method::S2SRank])
        .collect();

    for preset in PRESETS {
        println!(
            "== Table II [{}] (GCN backbone, k=n={}) ==",
            preset.name(),
            args.k
        );
        let data = args.dataset(preset);
        let kernel = args.diversity_kernel(&data);
        print_table_header();
        let mut rows: Vec<(Method, MetricSet)> = Vec::new();
        for &method in &methods {
            let mut model = args.gcn(&data);
            let out = lkp_bench::run_method(&args, &data, &kernel, &mut model, method);
            print_table_row(method.name(), &out.metrics);
            rows.push((method, out.metrics));
        }
        summarize(&rows);
        println!();
    }
}

fn summarize(rows: &[(Method, MetricSet)]) {
    let f10 = |m: &MetricSet| m.at(10).unwrap().f_score;
    let nd10 = |m: &MetricSet| m.at(10).unwrap().ndcg;
    let cc10 = |m: &MetricSet| m.at(10).unwrap().category_coverage;

    let is_lkp = |m: Method| matches!(m, Method::Lkp(_));
    let best_lkp_f = rows
        .iter()
        .filter(|(m, _)| is_lkp(*m))
        .map(|(_, s)| f10(s))
        .fold(f64::NEG_INFINITY, f64::max);
    let best_base_f = rows
        .iter()
        .filter(|(m, _)| !is_lkp(*m))
        .map(|(_, s)| f10(s))
        .fold(f64::NEG_INFINITY, f64::max);
    let worst_base_f = rows
        .iter()
        .filter(|(m, _)| !is_lkp(*m))
        .map(|(_, s)| f10(s))
        .fold(f64::INFINITY, f64::min);
    println!(
        "F@10: best LkP {:.4} | max-vs-max {:+.2}% | max-vs-min {:+.2}%",
        best_lkp_f,
        lkp_bench::improvement_pct(best_lkp_f, best_base_f),
        lkp_bench::improvement_pct(best_lkp_f, worst_base_f),
    );

    let get = |v: LkpVariant| {
        rows.iter()
            .find(|(m, _)| *m == Method::Lkp(v))
            .map(|(_, s)| s)
    };
    if let (Some(ps), Some(pr), Some(nps), Some(pse)) = (
        get(LkpVariant::Ps),
        get(LkpVariant::Pr),
        get(LkpVariant::Nps),
        get(LkpVariant::Pse),
    ) {
        println!("shape checks (paper's qualitative findings):");
        println!(
            "  S>R on accuracy (Nd@10):      {} ({:.4} vs {:.4})",
            mark(nd10(ps) >= nd10(pr)),
            nd10(ps),
            nd10(pr)
        );
        println!(
            "  R>=S on diversity (CC@10):    {} ({:.4} vs {:.4})",
            mark(cc10(pr) >= cc10(ps) * 0.98),
            cc10(pr),
            cc10(ps)
        );
        println!(
            "  NPS>=PS on F@10:              {} ({:.4} vs {:.4})",
            mark(f10(nps) >= f10(ps) * 0.98),
            f10(nps),
            f10(ps)
        );
        println!(
            "  E leads CC@10 over PS:        {} ({:.4} vs {:.4})",
            mark(cc10(pse) >= cc10(ps) * 0.98),
            cc10(pse),
            cc10(ps)
        );
        println!(
            "  LkP best F@10 beats baselines:{} ({:.4} vs {:.4})",
            mark(best_lkp_f >= best_base_f),
            best_lkp_f,
            best_base_f
        );
    }
    for &c in &CUTOFFS {
        let best = rows
            .iter()
            .max_by(|a, b| {
                a.1.at(c)
                    .unwrap()
                    .f_score
                    .partial_cmp(&b.1.at(c).unwrap().f_score)
                    .unwrap()
            })
            .unwrap();
        println!("  winner on F@{c}: {}", best.0.name());
    }
}

fn mark(ok: bool) -> &'static str {
    if ok {
        "PASS"
    } else {
        "miss"
    }
}
