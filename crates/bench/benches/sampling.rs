//! Exact DPP and k-DPP sampling throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lkp_dpp::{sampling, DppKernel, KDpp};
use lkp_linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn kernel(m: usize) -> DppKernel {
    let v = Matrix::from_fn(m, m, |r, c| (((r * 3 + c * 11) % 23) as f64) * 0.12 - 1.2);
    let mut g = v.gram();
    for i in 0..m {
        g[(i, i)] += 0.4;
    }
    DppKernel::new(g).unwrap()
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    for &m in &[20usize, 50, 100] {
        let kern = kernel(m);
        let kdpp = KDpp::new(kern.clone(), 10.min(m / 2)).unwrap();
        group.bench_with_input(BenchmarkId::new("kdpp", m), &m, |b, _| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| sampling::sample_kdpp(black_box(&kdpp), &mut rng).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("dpp", m), &m, |b, _| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| sampling::sample_dpp(black_box(&kern), &mut rng).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
