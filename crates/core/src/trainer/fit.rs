//! Cold-path training: [`Trainer::fit`] and friends.
//!
//! `fit` is the degenerate "full delta" case of the refresh pipeline — one
//! [`super::PlannerSource`] over the whole dataset, SGD rule, driven through
//! the shared epoch engine — and is bitwise pinned against the historical
//! single-file trainer (`crates/core/tests/parallel_equivalence.rs`).
//! [`Trainer::fit_state`] additionally exports the [`TrainedState`]
//! warm-start token consumed by [`Trainer::update`].

#[cfg(test)]
use super::TrainConfig;
use super::{
    collect_spectral_stats, export_spectral_snapshot, run_epochs, PlanSource, PlannerSource,
    TrainReport, TrainedState, Trainer, UpdateRule,
};
use crate::objective::Objective;
use lkp_data::{Dataset, EpochPlanner, InstanceSampler};
use lkp_models::Recommender;
use lkp_runtime::WorkerPool;
use rand::rngs::StdRng;
use rand::SeedableRng;

impl Trainer {
    /// Trains `model` with `objective` on `data`.
    ///
    /// When validation is enabled (`eval_every > 0`), the model state with
    /// the best validation score is checkpointed and **restored** at the end
    /// — the paper reports "the best results of each model by tuning … on a
    /// validation set", not the last epoch's state.
    pub fn fit<M, O>(&self, model: &mut M, objective: &mut O, data: &Dataset) -> TrainReport
    where
        M: Recommender + Clone + Sync,
        O: Objective<M>,
    {
        self.fit_with_callback(model, objective, data, |_, _| {})
    }

    /// Trains with a per-epoch callback `f(epoch, model)`.
    ///
    /// The callback fires once with `epoch = 0` before any update (the
    /// paper's Fig. 4 reads the probability profile at epoch 0) and then
    /// after every completed epoch. Best-validation checkpointing behaves as
    /// in [`Trainer::fit`].
    pub fn fit_with_callback<M, O, F>(
        &self,
        model: &mut M,
        objective: &mut O,
        data: &Dataset,
        mut callback: F,
    ) -> TrainReport
    where
        M: Recommender + Clone + Sync,
        O: Objective<M>,
        F: FnMut(usize, &M),
    {
        let (report, _planner, _pool) = self.fit_core(model, objective, data, &mut callback);
        report
    }

    /// Trains like [`Trainer::fit`] and also returns the [`TrainedState`]
    /// warm-start token: the data, the run's final epoch plan, and the pool
    /// workers' spectral-cache entries (when `spectral_tol > 0`), everything
    /// [`Trainer::update`] needs to delta-fit without a cold start.
    ///
    /// Note the exported spectra reflect the *final* epoch's model; if
    /// best-checkpoint restore rolled the model back, a later refresh still
    /// classifies each cached entry by quality drift, so stale entries
    /// degrade to warm starts rather than wrong results.
    pub fn fit_state<M, O>(
        &self,
        model: &mut M,
        objective: &mut O,
        data: &Dataset,
    ) -> (TrainReport, TrainedState)
    where
        M: Recommender + Clone + Sync,
        O: Objective<M>,
    {
        let cfg = &self.config;
        let (k, n) = objective.instance_shape(cfg.k, cfg.n);
        let (report, planner, mut pool) = self.fit_core(model, objective, data, &mut |_, _| {});
        let spectral = export_spectral_snapshot(&mut pool, cfg.spectral_tol);
        let state = TrainedState::new(
            data.clone(),
            planner.plan().clone(),
            cfg.batch_size.max(1),
            k,
            n,
            cfg.mode,
            cfg.seed,
            spectral,
        );
        (report, state)
    }

    /// The fit body: epoch engine over a policy-driven planner. Returns the
    /// planner and pool so [`Trainer::fit_state`] can harvest the final plan
    /// and the workers' cache entries before they are dropped.
    fn fit_core<M, O, F>(
        &self,
        model: &mut M,
        objective: &mut O,
        data: &Dataset,
        callback: &mut F,
    ) -> (TrainReport, EpochPlanner, WorkerPool)
    where
        M: Recommender + Clone + Sync,
        O: Objective<M>,
        F: FnMut(usize, &M),
    {
        let cfg = &self.config;
        let (k, n) = objective.instance_shape(cfg.k, cfg.n);
        let sampler = InstanceSampler::new(k, n, cfg.mode);
        let batch_size = cfg.batch_size.max(1);
        let mut source = PlannerSource {
            planner: EpochPlanner::new(sampler, cfg.sampling_policy, batch_size),
        };
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // One persistent worker pool for the whole run: batch gradient
        // computation and validation passes share it, and each worker keeps
        // its `DppWorkspace` (plus batch arena / spectral cache) in pool
        // state across every batch (steady-state allocation-free, spawn cost
        // paid once instead of per batch).
        let mut pool = WorkerPool::new(cfg.thread_budget());
        let run = run_epochs(
            cfg,
            cfg.epochs,
            UpdateRule::Sgd,
            model,
            objective,
            data,
            &mut source,
            &mut pool,
            &mut rng,
            callback,
        );
        let report = TrainReport {
            epochs_run: run.epochs_run,
            best_epoch: run.best_epoch,
            best_val_ndcg: run.best_val,
            history: run.history,
            spectral_cache: collect_spectral_stats(&mut pool, cfg.spectral_tol),
            plan: source.stats(),
        };
        (report, source.planner, pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::Bpr;
    use crate::diversity::{train_diversity_kernel, DiversityKernelConfig};
    use crate::objective::{LkpKind, LkpObjective};
    use lkp_data::SyntheticConfig;
    use lkp_models::MatrixFactorization;
    use lkp_nn::AdamConfig;

    fn data() -> Dataset {
        lkp_data::synthetic::generate(&SyntheticConfig {
            n_users: 50,
            n_items: 100,
            n_categories: 8,
            mean_interactions: 20.0,
            ..Default::default()
        })
    }

    fn mf(data: &Dataset) -> MatrixFactorization {
        let mut rng = StdRng::seed_from_u64(1);
        MatrixFactorization::new(
            data.n_users(),
            data.n_items(),
            16,
            AdamConfig {
                lr: 0.02,
                ..Default::default()
            },
            &mut rng,
        )
    }

    #[test]
    fn bpr_training_improves_validation_ndcg() {
        let data = data();
        let mut model = mf(&data);
        let untrained =
            lkp_eval::evaluate_parallel_on(&model, &data, &[10], lkp_data::Split::Validation, 2)
                .at(10)
                .unwrap()
                .ndcg;
        let trainer = Trainer::new(TrainConfig {
            epochs: 15,
            eval_every: 5,
            patience: 0,
            ..Default::default()
        });
        let report = trainer.fit(&mut model, &mut Bpr, &data);
        assert!(
            report.best_val_ndcg > untrained + 0.02,
            "no learning: {untrained} -> {}",
            report.best_val_ndcg
        );
        assert_eq!(report.epochs_run, 15);
    }

    #[test]
    fn lkp_training_improves_validation_ndcg_and_loss_decreases() {
        let data = data();
        let kernel = train_diversity_kernel(
            &data,
            &DiversityKernelConfig {
                epochs: 4,
                pairs_per_epoch: 48,
                dim: 8,
                ..Default::default()
            },
        );
        let mut model = mf(&data);
        let trainer = Trainer::new(TrainConfig {
            epochs: 10,
            eval_every: 5,
            patience: 0,
            k: 4,
            n: 4,
            ..Default::default()
        });
        let mut obj = LkpObjective::new(LkpKind::NegativeAware, kernel);
        let report = trainer.fit(&mut model, &mut obj, &data);
        let first_loss = report.history.first().unwrap().mean_loss;
        let last_loss = report.history.last().unwrap().mean_loss;
        assert!(last_loss < first_loss, "loss {first_loss} -> {last_loss}");
        assert!(report.best_val_ndcg > 0.0);
    }

    #[test]
    fn early_stopping_halts_before_max_epochs() {
        let data = data();
        let mut model = mf(&data);
        // Zero learning rate: validation can never improve, so patience
        // triggers after the first eval + patience further evals.
        let mut rng = StdRng::seed_from_u64(5);
        let mut frozen = MatrixFactorization::new(
            data.n_users(),
            data.n_items(),
            8,
            AdamConfig {
                lr: 0.0,
                ..Default::default()
            },
            &mut rng,
        );
        let trainer = Trainer::new(TrainConfig {
            epochs: 50,
            eval_every: 1,
            patience: 2,
            ..Default::default()
        });
        let report = trainer.fit(&mut frozen, &mut Bpr, &data);
        assert!(report.epochs_run <= 5, "ran {} epochs", report.epochs_run);
        let _ = &mut model;
    }

    #[test]
    fn callback_fires_at_epoch_zero_and_after_each_epoch() {
        let data = data();
        let mut model = mf(&data);
        let trainer = Trainer::new(TrainConfig {
            epochs: 3,
            eval_every: 0,
            patience: 0,
            ..Default::default()
        });
        let mut seen = Vec::new();
        trainer.fit_with_callback(&mut model, &mut Bpr, &data, |e, _| seen.push(e));
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn objective_shape_override_is_respected() {
        // BPR forces (1,1) instances regardless of config.
        let data = data();
        let mut model = mf(&data);
        let trainer = Trainer::new(TrainConfig {
            epochs: 1,
            k: 5,
            n: 5,
            eval_every: 0,
            ..Default::default()
        });
        // Success here just means no panic inside instance assembly: BPR's
        // debug_asserts verify the (1,1) shape on every instance.
        trainer.fit(&mut model, &mut Bpr, &data);
    }

    #[test]
    fn fit_state_matches_fit_and_captures_the_final_plan() {
        let data = data();
        let mut a = mf(&data);
        let mut b = a.clone();
        let cfg = TrainConfig {
            epochs: 4,
            eval_every: 0,
            patience: 0,
            sampling_policy: lkp_data::SamplingPolicy::FrozenNegatives,
            ..Default::default()
        };
        let trainer = Trainer::new(cfg);
        let plain = trainer.fit(&mut a, &mut Bpr, &data);
        let (report, state) = trainer.fit_state(&mut b, &mut Bpr, &data);
        assert_eq!(plain.epochs_run, report.epochs_run);
        // Same seed, same loop: the trained models are bitwise identical.
        for user in 0..data.n_users() {
            assert_eq!(
                a.score_items(user, &[0, 1, 2]),
                b.score_items(user, &[0, 1, 2])
            );
        }
        // The captured plan is the frozen epoch plan (one record per
        // eligible user) over the same data, with BPR's (1,1) shape.
        assert!(!state.plan().is_empty());
        assert_eq!(state.shape(), (1, 1));
        assert_eq!(state.data().n_users(), data.n_users());
        // spectral_tol = 0 ⇒ nothing to carry.
        assert!(state.spectral().is_empty());
    }
}
