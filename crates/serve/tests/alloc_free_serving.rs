//! Asserts the serving warm path performs **zero heap allocations** per
//! batch: once the kernel cache holds every requested `(user, candidates)`
//! block and the reused response buffers have grown to steady-state size,
//! `rank_batch_into` must not touch the allocator — on the dense path and
//! on the low-rank dual path.
//!
//! This is the serving-side complement of `crates/core/tests/alloc_free.rs`
//! (training) and the dynamic complement of the static `hotpath-alloc` lint
//! in `crates/lint` (see `docs/LINTS.md`): the lint proves no allocating
//! calls exist on the hot path; this test proves the calls that remain
//! (behind reasoned `lint:allow`s) really are off the warm path.

use lkp_core::objective::{LkpKind, LkpObjective};
use lkp_core::{train_diversity_kernel, DiversityKernelConfig, TrainConfig, Trainer};
use lkp_data::{Dataset, SyntheticConfig};
use lkp_dpp::LowRankKernel;
use lkp_models::MatrixFactorization;
use lkp_nn::AdamConfig;
use lkp_serve::{KernelForm, RankRequest, RankResponse, Ranker, RankingArtifact, ServeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation/reallocation routed through the global allocator.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method delegates directly to `System`, which upholds the
// `GlobalAlloc` contract; the counter increment has no allocator-visible
// side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: contract (layout validity) is forwarded unchanged to `System`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `layout` is the caller's, passed through untouched.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: contract (ptr/layout pairing) is forwarded unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was produced by `System.alloc` with this `layout`,
        // because `alloc`/`realloc` above never substitute pointers.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: contract (ptr/layout/new_size validity) is forwarded unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same pass-through argument as `dealloc`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

fn data() -> Dataset {
    lkp_data::synthetic::generate(&SyntheticConfig {
        n_users: 24,
        n_items: 60,
        n_categories: 6,
        mean_interactions: 14.0,
        ..Default::default()
    })
}

fn trained(data: &Dataset) -> (MatrixFactorization, LowRankKernel) {
    let kernel = train_diversity_kernel(
        data,
        &DiversityKernelConfig {
            epochs: 2,
            pairs_per_epoch: 32,
            dim: 5,
            ..Default::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(23);
    let mut model = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        8,
        AdamConfig {
            lr: 0.02,
            ..Default::default()
        },
        &mut rng,
    );
    let mut obj = LkpObjective::new(LkpKind::NegativeAware, kernel.clone());
    let trainer = Trainer::new(TrainConfig {
        epochs: 2,
        eval_every: 0,
        patience: 0,
        k: 3,
        n: 3,
        threads: 1,
        ..Default::default()
    });
    trainer.fit(&mut model, &mut obj, data);
    (model, kernel)
}

/// A fixed request mix: several users, overlapping candidate pools, so the
/// warm cache serves every request from a resident block.
fn requests(data: &Dataset) -> Vec<RankRequest> {
    (0..6)
        .map(|u| {
            let candidates: Vec<usize> =
                (0..30).map(|i| (u * 7 + i * 2) % data.n_items()).collect();
            RankRequest::new(u % data.n_users(), dedup(candidates), 5)
        })
        .collect()
}

fn dedup(mut xs: Vec<usize>) -> Vec<usize> {
    let mut seen = vec![false; 1 + xs.iter().copied().max().unwrap_or(0)];
    xs.retain(|&x| !std::mem::replace(&mut seen[x], true));
    xs
}

/// Warm-path zero-allocation assertion for one kernel form and shard count
/// (`shards = 1` is the stock path; `shards > 1` exercises the two-phase
/// sharded path — per-shard prefix loops and the merge ladder included).
fn assert_warm_path_alloc_free(form: KernelForm, shards: usize, label: &str) {
    let data = data();
    let (model, kernel) = trained(&data);
    // threads: 1 → the caller is the only worker; dispatch is inline with
    // no cross-thread machinery, so every allocation we count is serving's.
    let mut ranker = Ranker::new(
        RankingArtifact::snapshot(&model, &kernel),
        ServeConfig {
            threads: 1,
            kernel_form: form,
            artifact_shards: shards,
            ..Default::default()
        },
    );
    let reqs = requests(&data);
    let mut out: Vec<RankResponse> = Vec::new();

    // Warm-up: fills the kernel cache, grows every workspace and response
    // buffer to steady state.
    for _ in 0..4 {
        ranker.rank_batch_into(&reqs, &mut out);
    }
    let reference: Vec<Vec<usize>> = out.iter().map(|r| r.items.clone()).collect();

    let before = allocation_count();
    for _ in 0..8 {
        ranker.rank_batch_into(&reqs, &mut out);
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "{label}: warm serving batches must not allocate"
    );

    // The alloc-free batches must still serve the exact same lists.
    for (resp, want) in out.iter().zip(&reference) {
        assert_eq!(&resp.items, want, "{label}: warm result drifted");
    }
}

#[test]
fn warm_dense_serving_does_not_allocate() {
    assert_warm_path_alloc_free(KernelForm::Dense, 1, "dense");
}

#[test]
fn warm_dual_serving_does_not_allocate() {
    assert_warm_path_alloc_free(
        KernelForm::LowRankDual { min_candidates: 0 },
        1,
        "low-rank dual",
    );
}

#[test]
fn warm_sharded_dense_serving_does_not_allocate() {
    assert_warm_path_alloc_free(KernelForm::Dense, 3, "sharded dense");
}

#[test]
fn warm_sharded_dual_serving_does_not_allocate() {
    assert_warm_path_alloc_free(
        KernelForm::LowRankDual { min_candidates: 0 },
        3,
        "sharded low-rank dual",
    );
}
