//! The threaded pump shell: a spawned driver thread owns the pump loop
//! against the real [`super::core::MonotonicClock`] (or any injected
//! clock), so the deterministic frontend core needs no caller-side pump
//! discipline to meet its deadlines.
//!
//! [`FrontendDriver::spawn`] moves a [`ServeFrontend`] behind a mutex,
//! starts the pump thread, and hands out cloneable [`DriverClient`]s.
//! Submitters go through [`DriverClient::submit`] (admission-checked, never
//! cuts inline — the pump thread owns batch dispatch) and claim responses
//! by ticket; the pump thread sleeps exactly until the next deadline cut is
//! due and is woken early by every submission. The driver is a thin shell:
//! all cut/SLO/degrade/swap semantics live in the deterministic core, which
//! is what the bitwise-equivalence tests pin.

use super::admission::{FrontendStats, SubmitError};
use super::core::{ServeFrontend, Ticket};
use super::swap::SwapReport;
use crate::{RankRequest, RankResponse, RankingArtifact, StagedSwap};
use lkp_models::Recommender;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// Floor for the pump thread's idle sleep so a zero `max_wait` cannot spin
/// a core; submissions still wake the thread immediately.
const MIN_IDLE_SLEEP: Duration = Duration::from_micros(200);

struct DriverShared<M> {
    frontend: Mutex<ServeFrontend<M>>,
    /// Signaled on every submission (and shutdown) to wake the pump thread.
    wake: Condvar,
    /// Signaled after every pump that completed requests, for
    /// [`DriverClient::take_deadline`] waiters.
    served: Condvar,
    shutdown: AtomicBool,
}

impl<M> DriverShared<M> {
    fn lock(&self) -> MutexGuard<'_, ServeFrontend<M>> {
        // A panicking request is contained inside the ranker
        // (`RankOutcome::Panicked`), so a poisoned frontend mutex means a
        // bug in the frontend bookkeeping itself; the state is still
        // consistent enough to drain, so recover rather than wedge every
        // client.
        self.frontend
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Owner handle of the pump thread. Dropping it (or calling
/// [`FrontendDriver::shutdown`]) stops the pump after a final flush, so no
/// accepted ticket is ever lost.
pub struct FrontendDriver<M: Recommender + Send + Sync + 'static> {
    shared: Option<Arc<DriverShared<M>>>,
    pump: Option<JoinHandle<()>>,
}

/// A cloneable submission/redemption handle to a driven frontend. All
/// methods take brief locks; none blocks behind a ranking dispatch except
/// [`DriverClient::take_deadline`], which waits on a condvar.
pub struct DriverClient<M: Recommender + Send + Sync + 'static> {
    shared: Arc<DriverShared<M>>,
}

impl<M: Recommender + Send + Sync + 'static> Clone for DriverClient<M> {
    fn clone(&self) -> Self {
        DriverClient {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<M: Recommender + Send + Sync + 'static> FrontendDriver<M> {
    /// Moves `frontend` behind the driver's lock and spawns the pump
    /// thread. The frontend keeps whatever clock it was built with —
    /// production uses the default [`super::core::MonotonicClock`]; tests
    /// can drive a [`super::core::ManualClock`] handle they kept.
    pub fn spawn(frontend: ServeFrontend<M>) -> Self {
        let shared = Arc::new(DriverShared {
            frontend: Mutex::new(frontend),
            wake: Condvar::new(),
            served: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let pump_shared = Arc::clone(&shared);
        let pump = std::thread::Builder::new()
            .name("lkp-frontend-pump".into())
            .spawn(move || pump_loop(&pump_shared))
            .expect("spawn frontend pump thread");
        FrontendDriver {
            shared: Some(shared),
            pump: Some(pump),
        }
    }

    /// A new submission/redemption handle.
    pub fn client(&self) -> DriverClient<M> {
        DriverClient {
            shared: Arc::clone(self.shared.as_ref().expect("driver is running")),
        }
    }

    /// Stops accepting submissions, flushes everything pending, joins the
    /// pump thread, and returns the frontend — unless clients still hold
    /// handles, in which case `None` is returned and the frontend lives on
    /// behind the surviving clients (they can keep redeeming tickets;
    /// submissions keep failing with [`SubmitError::ShuttingDown`]).
    pub fn shutdown(mut self) -> Option<ServeFrontend<M>> {
        self.stop_pump();
        let shared = self.shared.take()?;
        Arc::try_unwrap(shared)
            .ok()
            .map(|s| s.frontend.into_inner().unwrap_or_else(|p| p.into_inner()))
    }

    fn stop_pump(&mut self) {
        if let Some(shared) = &self.shared {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.wake.notify_all();
        }
        if let Some(handle) = self.pump.take() {
            let _ = handle.join();
        }
    }
}

impl<M: Recommender + Send + Sync + 'static> Drop for FrontendDriver<M> {
    fn drop(&mut self) {
        self.stop_pump();
    }
}

impl<M: Recommender + Send + Sync + 'static> std::fmt::Debug for FrontendDriver<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontendDriver")
            .field("running", &self.pump.is_some())
            .finish()
    }
}

impl<M: Recommender + Send + Sync + 'static> DriverClient<M> {
    /// Admission-checked submission (see [`ServeFrontend::try_submit`]);
    /// wakes the pump thread so a newly-due batch is cut without waiting
    /// out the idle sleep.
    pub fn submit(&self, request: RankRequest) -> Result<Ticket, SubmitError> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        let result = self.shared.lock().try_submit(request);
        if result.is_ok() {
            self.shared.wake.notify_all();
        }
        result
    }

    /// Claims the response for `ticket` if its batch has been cut.
    pub fn try_take(&self, ticket: Ticket) -> Option<RankResponse> {
        self.shared.lock().try_take(ticket)
    }

    /// Waits up to `timeout` for `ticket`'s response. Returns `None` on
    /// timeout (the ticket stays redeemable later).
    pub fn take_deadline(&self, ticket: Ticket, timeout: Duration) -> Option<RankResponse> {
        let deadline = std::time::Instant::now() + timeout;
        let mut guard = self.shared.lock();
        loop {
            if let Some(resp) = guard.try_take(ticket) {
                return Some(resp);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (g, _) = self
                .shared
                .served
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            guard = g;
        }
    }

    /// Abandons a ticket (see [`ServeFrontend::discard`]).
    pub fn discard(&self, ticket: Ticket) -> bool {
        self.shared.lock().discard(ticket)
    }

    /// Traffic counters of the driven frontend.
    pub fn stats(&self) -> FrontendStats {
        self.shared.lock().stats()
    }

    /// The current artifact generation.
    pub fn generation(&self) -> u64 {
        self.shared.lock().generation()
    }

    /// Requests pending + responses completed-but-unclaimed right now.
    pub fn depths(&self) -> (usize, usize) {
        let guard = self.shared.lock();
        (guard.pending_len(), guard.completed_len())
    }

    /// Hot-swaps the served artifact under live traffic. The expensive
    /// staging (building + prewarming the new generation's cache) runs
    /// *off* the frontend lock; only the cheap commit — pointer installs —
    /// happens under it, so concurrent submitters wait microseconds, not
    /// the prewarm time.
    pub fn swap_artifact(
        &self,
        artifact: RankingArtifact<M>,
        prewarm_plan: &[(usize, Vec<usize>)],
    ) -> SwapReport {
        let config = self.shared.lock().ranker().config().clone();
        let staged = StagedSwap::prepare(&config, artifact, prewarm_plan);
        let report = self.shared.lock().commit_swap(staged);
        // Post-swap deadlines may have moved; let the pump re-evaluate.
        self.shared.wake.notify_all();
        report
    }
}

impl<M: Recommender + Send + Sync + 'static> std::fmt::Debug for DriverClient<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DriverClient").finish()
    }
}

/// The pump thread: sleep until the next deadline cut is due (woken early
/// by submissions), pump, repeat; on shutdown, flush and exit. The lock is
/// released for the whole sleep (condvar wait), so submitters and
/// redeemers are never blocked by an idle pump.
fn pump_loop<M: Recommender + Send + Sync + 'static>(shared: &DriverShared<M>) {
    let mut guard = shared.lock();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            guard.flush();
            shared.served.notify_all();
            return;
        }
        if guard.pump() > 0 {
            shared.served.notify_all();
        }
        // Sleep until the next deadline (ZERO sleeps are re-checked
        // immediately by the loop), or idle at max_wait granularity so TTL
        // sweeps keep running under a quiet queue.
        let sleep = guard
            .time_to_next_cut()
            .unwrap_or(MIN_IDLE_SLEEP.max(Duration::from_millis(5)))
            .max(MIN_IDLE_SLEEP);
        let (g, _) = shared
            .wake
            .wait_timeout(guard, sleep)
            .unwrap_or_else(|p| p.into_inner());
        guard = g;
    }
}
