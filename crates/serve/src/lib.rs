//! `lkp-serve` — the batched top-N serving layer.
//!
//! Training (the paper's contribution) produces a relevance model and a
//! diversity kernel; the *product* is a ranker. This crate turns a trained
//! [`lkp_models::Recommender`] into one:
//!
//! 1. [`RankingArtifact`] snapshots the model + diversity kernel into an
//!    immutable serving artifact (scores and kernel entries can never drift
//!    under a concurrent trainer).
//! 2. [`Ranker`] drives batched [`RankRequest`]s through the shared
//!    [`lkp_runtime::WorkerPool`]: per request it forms the user's tailored
//!    low-rank kernel `L_C = Diag(q)·K_C·Diag(q) + ε·I` over the candidate
//!    set (exactly the kernel the LkP criterion trained against — same
//!    quality map `q = exp(clamp(ŷ))`, same L-space jitter) and runs
//!    incremental-Cholesky greedy MAP to pick the top-N list. Two kernel
//!    forms ([`ServeConfig::kernel_form`]): the **dense** path materializes
//!    `L_C` and runs [`lkp_dpp::greedy_map_with`] — `O(|C|²·d)` assembly +
//!    `O(|C|·N²)` selection; the **low-rank dual** path keeps the factored
//!    `B = Diag(q)·V_C` and runs [`lkp_dpp::greedy_map_dual_with`] directly
//!    on it — `O(|C|·N·(d + N))` total, never materializing `L_C`, with an
//!    automatic dense fallback on numerical breakdown.
//! 3. The dominant kernel work is amortized by a **bounded per-user kernel
//!    cache** in one of two backends ([`ServeConfig::cache_mode`]): private
//!    per-worker caches (default, lock-free) or one cache for the whole
//!    pool, sharded by user hash — the latter removes both the `threads×`
//!    memory multiplier and the per-worker cold-start tax, and can be
//!    pre-warmed with popular pairs via [`Ranker::prewarm`]. Capacity is a
//!    **byte budget** ([`ServeConfig::kernel_cache_bytes`]): dense entries
//!    cost `O(|C|²)` bytes, dual factor entries `O(|C|·d)` — so the dual
//!    form also multiplies effective cache capacity by ~`|C|/d`.
//! 4. [`ServeFrontend`] accepts individually submitted requests into a
//!    bounded queue and cuts micro-batches by size/deadline
//!    ([`FrontendConfig`]), so callers that see one request at a time still
//!    ride the batched pool path.
//! 5. The production shell hardens that core: [`FrontendDriver`] pumps the
//!    frontend from its own thread; admission control sheds overload with
//!    a typed [`SubmitError`]; per-request SLOs expire stale work at cut
//!    time; a degraded mode caps the DPP rerank head under pressure; panics
//!    and numerical failures poison only their own ticket
//!    ([`RankOutcome`]); and [`ServeFrontend::swap_artifact`] replaces the
//!    model between cuts with the new generation's cache prewarmed
//!    ([`StagedSwap`]).
//!
//! Serving results are **identical at any pool width, in either cache
//! mode, and through the frontend**: requests are independent, both cache
//! backends store bit-exact copies of what a cache miss would recompute,
//! and greedy MAP breaks ties by candidate order. Across kernel *forms* the
//! guarantee is item-for-item list equality on well-conditioned kernels
//! (the dual path reassociates the same arithmetic, so `log_det` agrees to
//! rounding, not bitwise).

mod artifact;
mod cache;
mod frontend;
mod ranker;
mod shard;

pub use artifact::RankingArtifact;
pub use cache::{CacheStats, ShardStats};
pub use frontend::{
    Clock, DriverClient, FrontendConfig, FrontendDriver, FrontendStats, LatencyHistogram,
    ManualClock, MonotonicClock, ServeFrontend, SubmitError, SwapRecord, SwapReport, Ticket,
    LATENCY_BUCKETS,
};
pub use ranker::{RankOutcome, RankRequest, RankResponse, Ranker, ServeWorkspace, StagedSwap};
pub use shard::{ShardPartition, ShardedArtifact};

/// Which backend amortizes the per-candidate-set kernel work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// Every pool worker owns a private cache (lock-free; the default).
    /// A user's kernel block is rebuilt once per worker that serves them,
    /// and each worker's cache is bounded by
    /// [`ServeConfig::kernel_cache_bytes`] on its own.
    #[default]
    PerWorker,
    /// One cache for the whole pool, sharded `shards` ways by user hash
    /// with one lock per shard. [`ServeConfig::kernel_cache_bytes`] is
    /// the *total* byte budget (each shard holds at most
    /// `ceil(bytes / shards)`); a user's kernel block is built once per
    /// process and hit from any worker. `shards` is clamped to ≥ 1; size it
    /// at or above the pool width so concurrent lookups rarely contend on
    /// one lock.
    Sharded {
        /// Number of hash shards (= independent locks).
        shards: usize,
    },
}

/// Which representation of the tailored kernel the ranker serves from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelForm {
    /// Materialize the dense `|C| × |C|` kernel `L_C` and run the dense
    /// incremental-Cholesky greedy MAP (the pre-dual behavior; the
    /// default). Wins when `|C|` is small or `d` approaches `|C|` — the
    /// dense assembly is then cheap and cache hits skip it entirely.
    #[default]
    Dense,
    /// Keep the kernel in factored form `B = Diag(q)·V_C` (`|C| × d`) and
    /// run greedy MAP incrementally against `B·Bᵀ` without materializing
    /// `L_C`: `O(|C|·N·(d + N))` per request instead of `O(|C|²·d)`
    /// assembly + `O(|C|·N²)` selection, and `O(|C|·d)`-byte cache entries
    /// instead of `O(|C|²)`. Selected lists match the dense path
    /// item-for-item on well-conditioned kernels; a numerical breakdown in
    /// the dual recursion (guarded by [`ServeConfig::dual_guard`]) falls
    /// back to the dense path for that request, bit-identical to
    /// [`KernelForm::Dense`] serving.
    LowRankDual {
        /// Candidate sets smaller than this stay on the dense path, where
        /// the `O(|C|²·d)` assembly is too small to beat and a cached dense
        /// block skips even that. Applied to the *effective* reranked set
        /// (the head size for degraded requests). 0 sends everything dual.
        min_candidates: usize,
    },
}

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads of the ranker's pool (0 = host parallelism).
    pub threads: usize,
    /// L-space jitter `ε` added to the tailored candidate kernel's diagonal.
    /// Defaults to the training-side [`lkp_core::KERNEL_JITTER`] so served
    /// lists rank by exactly the distribution the model was trained under.
    pub jitter: f64,
    /// Score clamp applied before `exp` in the quality map (defaults to the
    /// training-side [`lkp_core::SCORE_CLAMP`]).
    pub score_clamp: f64,
    /// Kernel-cache budget in **bytes** (0 disables caching).
    ///
    /// Entries are charged their actual size: `8·(|C| + |C|²)` bytes for a
    /// dense entry (~81 KB at `|C| = 100`, ~20 MB at `|C| = 1600`),
    /// `8·(|C| + |C|·d)` for a dual factor entry (~26 KB at `|C| = 100`,
    /// `d = 32`) — so mixed workloads fit ~`|C|/d` more dual entries in the
    /// same budget. In [`CacheMode::PerWorker`] every pool worker owns its
    /// own budget of this size (total resident ≈ `threads ×` this); in
    /// [`CacheMode::Sharded`] this is the total budget across shards. The
    /// default, 20 MiB, holds ~256 dense entries at `|C| = 100` per
    /// worker — the pre-byte-budget default capacity.
    pub kernel_cache_bytes: usize,
    /// Kernel-cache backend (default [`CacheMode::PerWorker`], the exact
    /// pre-sharding behavior).
    pub cache_mode: CacheMode,
    /// Kernel representation served from (default [`KernelForm::Dense`],
    /// the exact pre-dual behavior).
    pub kernel_form: KernelForm,
    /// Relative negative-drift tolerance of the dual MAP recursion before
    /// it abandons a request to the dense fallback (defaults to
    /// [`lkp_dpp::DUAL_BREAKDOWN_GUARD`]). A *negative* guard trips the
    /// breakdown check on the first update — deterministic fault injection
    /// for exercising the fallback in tests. Ignored on the dense path.
    pub dual_guard: f64,
    /// Number of artifact shards the ranker splits each request's kernel
    /// work across (default 1 = the stock unsharded path; clamped to the
    /// catalog size). With `N > 1` the candidate pool fans out by item
    /// shard ([`ShardPartition`]), each shard assembles only its own
    /// `O((|C|/N)²)` tailored block (dense) or `O((|C|/N)·d)` factor block
    /// (dual) through the kernel cache, per-shard greedy MAP prefixes run
    /// in parallel over the pool, and a lazy marginal-gain ladder
    /// ([`lkp_dpp::conditioned_greedy_merge`]) merges the shards into a
    /// list **bitwise identical** to unsharded serving. Cache entries are
    /// keyed per `(user, shard)` and shrink quadratically with `N`, so
    /// resident-set hit rates rise under the same byte budget.
    pub artifact_shards: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 0,
            jitter: lkp_core::KERNEL_JITTER,
            score_clamp: lkp_core::SCORE_CLAMP,
            kernel_cache_bytes: 20 * 1024 * 1024,
            cache_mode: CacheMode::PerWorker,
            kernel_form: KernelForm::Dense,
            dual_guard: lkp_dpp::DUAL_BREAKDOWN_GUARD,
            artifact_shards: 1,
        }
    }
}
