//! Baseline optimization criteria (paper Section IV-A2) and the
//! standard-DPP ablation.
//!
//! All baselines implement the same [`Objective`] trait as LkP, consume the
//! same ground-set instances, and are compared under identical instance
//! budgets (the paper's fairness setup). Formulations:
//!
//! * **BPR** (Rendle et al.) — pairwise `−log σ(ŷ_pos − ŷ_neg)`; shape (1,1).
//! * **BCE** (He et al.) — pointwise binary cross-entropy over one positive
//!   and `n` negatives; shape (1, n).
//! * **SetRank** (Wang et al., AAAI 2020) — top-1 permutation probability:
//!   the observed item must outrank a *set* of unobserved items,
//!   `−log( e^{ŷ_pos} / (e^{ŷ_pos} + Σ_j e^{ŷ_negj}) )`; shape (1, n).
//! * **Set2SetRank** (Chen et al., SIGIR 2021) — set-to-set comparison:
//!   all item-to-item pairs between the positive and negative sets under a
//!   BPR-style criterion, plus a set-level margin between the weakest
//!   positive and the strongest negative; shape (k, n).
//! * **StandardDppObjective** — the ablation the paper discusses in
//!   Section IV-B2: the same kernel machinery but normalized over *all*
//!   subset sizes (`det(L+I)`), which destroys the fixed-cardinality ranking
//!   interpretation and is reported to underperform even BPR.

use crate::objective::{quality, InstanceGrad, Objective};
use crate::KERNEL_JITTER;
use lkp_data::InstanceRef;
use lkp_dpp::{grad, DppKernel, DppWorkspace, LowRankKernel};
use lkp_linalg::ops::{log_sigmoid, log_sum_exp, sigmoid};
use lkp_models::Recommender;

/// Bayesian Personalized Ranking.
pub struct Bpr;

impl<M: Recommender> Objective<M> for Bpr {
    fn compute_into(
        &self,
        model: &M,
        instance: InstanceRef<'_>,
        _ws: &mut DppWorkspace,
        out: &mut InstanceGrad,
    ) {
        debug_assert_eq!(instance.k(), 1);
        debug_assert_eq!(instance.n(), 1);
        out.reset_for(instance);
        model.score_items_into(instance.user, &out.items, &mut out.scores);
        let x = out.scores[0] - out.scores[1];
        out.loss = -log_sigmoid(x);
        // d(−log σ(x))/dx = σ(x) − 1.
        let d = sigmoid(x) - 1.0;
        out.dscores.extend_from_slice(&[d, -d]);
    }

    fn instance_shape(&self, _k: usize, _n: usize) -> (usize, usize) {
        (1, 1)
    }

    fn name(&self) -> &'static str {
        "BPR"
    }
}

/// Pointwise binary cross-entropy.
pub struct Bce;

impl<M: Recommender> Objective<M> for Bce {
    fn compute_into(
        &self,
        model: &M,
        instance: InstanceRef<'_>,
        _ws: &mut DppWorkspace,
        out: &mut InstanceGrad,
    ) {
        debug_assert_eq!(instance.k(), 1);
        out.reset_for(instance);
        model.score_items_into(instance.user, &out.items, &mut out.scores);
        let s = &out.scores;
        // Positive at index 0.
        out.loss = -log_sigmoid(s[0]);
        out.dscores.push(sigmoid(s[0]) - 1.0);
        for &sn in s.iter().skip(1) {
            out.loss += -log_sigmoid(-sn);
            out.dscores.push(sigmoid(sn));
        }
    }

    fn instance_shape(&self, _k: usize, n: usize) -> (usize, usize) {
        (1, n)
    }

    fn name(&self) -> &'static str {
        "BCE"
    }
}

/// SetRank: top-1 permutation probability of the observed item against a set
/// of unobserved items.
pub struct SetRank;

impl<M: Recommender> Objective<M> for SetRank {
    fn compute_into(
        &self,
        model: &M,
        instance: InstanceRef<'_>,
        _ws: &mut DppWorkspace,
        out: &mut InstanceGrad,
    ) {
        debug_assert_eq!(instance.k(), 1);
        out.reset_for(instance);
        model.score_items_into(instance.user, &out.items, &mut out.scores);
        // loss = logsumexp(s) − s_pos ; ds_i = softmax_i − 1{i = pos}.
        let lse = log_sum_exp(&out.scores);
        out.loss = lse - out.scores[0];
        out.dscores
            .extend(out.scores.iter().map(|&si| (si - lse).exp()));
        out.dscores[0] -= 1.0;
    }

    fn instance_shape(&self, _k: usize, n: usize) -> (usize, usize) {
        (1, n)
    }

    fn name(&self) -> &'static str {
        "SetRank"
    }
}

/// Set2SetRank: item-to-item comparisons between the sets plus a set-level
/// distance term between the hardest pair.
pub struct S2SRank {
    /// Weight of the set-level margin term (1.0 in our experiments).
    pub set_margin_weight: f64,
}

impl Default for S2SRank {
    fn default() -> Self {
        S2SRank {
            set_margin_weight: 1.0,
        }
    }
}

impl<M: Recommender> Objective<M> for S2SRank {
    fn compute_into(
        &self,
        model: &M,
        instance: InstanceRef<'_>,
        _ws: &mut DppWorkspace,
        out: &mut InstanceGrad,
    ) {
        let k = instance.k();
        let n = instance.n();
        out.reset_for(instance);
        model.score_items_into(instance.user, &out.items, &mut out.scores);
        let s = &out.scores;
        out.dscores.resize(out.items.len(), 0.0);
        let ds = &mut out.dscores;
        let mut loss = 0.0;
        // Item-to-item: every (positive, negative) pair.
        let pair_w = 1.0 / (k * n) as f64;
        for i in 0..k {
            for j in k..(k + n) {
                let x = s[i] - s[j];
                loss += -log_sigmoid(x) * pair_w;
                let d = (sigmoid(x) - 1.0) * pair_w;
                ds[i] += d;
                ds[j] -= d;
            }
        }
        // Set-level: weakest positive vs strongest negative.
        let (i_min, _) = s[..k]
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
            .expect("k >= 1");
        let (j_max_rel, _) = s[k..]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
            .expect("n >= 1");
        let j_max = k + j_max_rel;
        let x = s[i_min] - s[j_max];
        loss += -log_sigmoid(x) * self.set_margin_weight;
        let d = (sigmoid(x) - 1.0) * self.set_margin_weight;
        ds[i_min] += d;
        ds[j_max] -= d;
        out.loss = loss;
    }

    fn name(&self) -> &'static str {
        "S2SRank"
    }
}

/// Standard-DPP ablation: maximizes `log det(L_{S⁺}) − log det(L + I)`
/// (paper Eq. 1 normalization) instead of the k-DPP normalizer, so the
/// target subset competes against subsets of *every* cardinality.
pub struct StandardDppObjective {
    kernel: LowRankKernel,
}

impl StandardDppObjective {
    /// Creates the ablation objective around a pre-learned diversity kernel.
    pub fn new(kernel: LowRankKernel) -> Self {
        StandardDppObjective {
            kernel: kernel.normalized(),
        }
    }
}

impl<M: Recommender> Objective<M> for StandardDppObjective {
    fn compute_into(
        &self,
        model: &M,
        instance: InstanceRef<'_>,
        _ws: &mut DppWorkspace,
        out: &mut InstanceGrad,
    ) {
        out.reset_for(instance);
        let m = out.items.len();
        let k = instance.k();
        model.score_items_into(instance.user, &out.items, &mut out.scores);
        let q = quality(&out.scores);
        let mut k_sub = self.kernel.submatrix(&out.items).expect("items in range");
        for i in 0..m {
            k_sub[(i, i)] += KERNEL_JITTER;
        }
        let Ok(kernel) = DppKernel::from_quality_diversity(&q, &k_sub) else {
            return out.mark_skipped();
        };
        let target: Vec<usize> = (0..k).collect();
        let Ok(log_p) = kernel.standard_dpp_log_prob(&target) else {
            return out.mark_skipped();
        };
        if !log_p.is_finite() {
            return out.mark_skipped();
        }
        // ∇ log det(L_S) − ∇ log det(L+I); the latter is V diag(1/(λ+1)) Vᵀ.
        let Ok(mut g) = grad::grad_log_det_subset(kernel.matrix(), &target) else {
            return out.mark_skipped();
        };
        let Ok(eig) = kernel.eigen() else {
            return out.mark_skipped();
        };
        let gz = eig.reconstruct_with(|_, l| 1.0 / (l.max(0.0) + 1.0));
        g.add_scaled(-1.0, &gz).expect("same shape");
        g.scale(-1.0); // now ∂loss/∂L for loss = −log P.
        let dq = grad::chain_to_quality(&g, &q, &k_sub);
        out.dscores
            .extend(dq.iter().zip(&q).map(|(&dqi, &qi)| dqi * qi));
        if out.dscores.iter().any(|d| !d.is_finite()) {
            return out.mark_skipped();
        }
        out.loss = -log_p;
    }

    fn name(&self) -> &'static str {
        "StdDPP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkp_data::GroundSetInstance;
    use lkp_linalg::Matrix;
    use lkp_nn::AdamConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mf() -> lkp_models::MatrixFactorization {
        let mut rng = StdRng::seed_from_u64(12);
        lkp_models::MatrixFactorization::new(
            3,
            12,
            8,
            AdamConfig {
                lr: 0.05,
                weight_decay: 0.0,
                ..Default::default()
            },
            &mut rng,
        )
    }

    fn pair_instance() -> GroundSetInstance {
        GroundSetInstance {
            user: 0,
            positives: vec![2],
            negatives: vec![7],
        }
    }

    #[test]
    fn bpr_opens_the_pairwise_gap() {
        let mut model = mf();
        let mut obj = Bpr;
        let inst = pair_instance();
        let before = model.score_items(0, &[2, 7]);
        let mut last_loss = f64::INFINITY;
        for _ in 0..100 {
            let loss = obj.apply(&mut model, inst.as_ref());
            model.step();
            last_loss = loss;
        }
        let after = model.score_items(0, &[2, 7]);
        assert!(after[0] - after[1] > before[0] - before[1] + 1.0);
        assert!(last_loss < 0.3, "BPR loss converged to {last_loss}");
    }

    #[test]
    fn bpr_gradient_matches_finite_difference() {
        // With scores (a, b): loss = −logσ(a−b); check dloss/da numerically.
        let a = 0.3_f64;
        let b = 0.7_f64;
        let analytic = sigmoid(a - b) - 1.0;
        let h = 1e-6;
        let f = |a: f64| -log_sigmoid(a - b);
        let fd = (f(a + h) - f(a - h)) / (2.0 * h);
        assert!((fd - analytic).abs() < 1e-8);
    }

    #[test]
    fn bce_pushes_positive_up_and_negatives_down() {
        let mut model = mf();
        let mut obj = Bce;
        let inst = GroundSetInstance {
            user: 1,
            positives: vec![0],
            negatives: vec![5, 6, 7],
        };
        for _ in 0..150 {
            obj.apply(&mut model, inst.as_ref());
            model.step();
        }
        let s = model.score_items(1, &inst.ground_set());
        assert!(s[0] > 1.0, "positive score {}", s[0]);
        for &sn in &s[1..] {
            assert!(sn < -1.0, "negative score {sn}");
        }
    }

    #[test]
    fn setrank_softmax_gradient_sums_to_zero() {
        let mut model = mf();
        let mut obj = SetRank;
        let inst = GroundSetInstance {
            user: 0,
            positives: vec![1],
            negatives: vec![4, 5, 6, 8],
        };
        // The softmax−onehot gradient sums to zero: total score mass is
        // conserved. Verify via the loss trend instead of internals: loss
        // must decrease.
        let first = obj.apply(&mut model, inst.as_ref());
        model.step();
        let mut last = first;
        for _ in 0..80 {
            last = obj.apply(&mut model, inst.as_ref());
            model.step();
        }
        assert!(last < first * 0.5, "SetRank loss {first} -> {last}");
    }

    #[test]
    fn s2srank_separates_the_sets() {
        let mut model = mf();
        let mut obj = S2SRank::default();
        let inst = GroundSetInstance {
            user: 2,
            positives: vec![0, 1, 2],
            negatives: vec![6, 7, 8],
        };
        for _ in 0..150 {
            obj.apply(&mut model, inst.as_ref());
            model.step();
        }
        let s = model.score_items(2, &inst.ground_set());
        let pos_min = s[..3].iter().cloned().fold(f64::INFINITY, f64::min);
        let neg_max = s[3..].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(pos_min > neg_max, "sets not separated: {s:?}");
    }

    #[test]
    fn standard_dpp_objective_still_learns_relevance() {
        let v = Matrix::from_fn(12, 4, |r, c| (((r * 3 + c * 5) % 7) as f64) * 0.3 - 0.8);
        let mut model = mf();
        let mut obj = StandardDppObjective::new(LowRankKernel::new(v));
        let inst = GroundSetInstance {
            user: 0,
            positives: vec![0, 1, 2],
            negatives: vec![6, 7, 8],
        };
        let before: f64 = model.score_items(0, &inst.positives).iter().sum();
        for _ in 0..100 {
            obj.apply(&mut model, inst.as_ref());
            model.step();
        }
        let after: f64 = model.score_items(0, &inst.positives).iter().sum();
        assert!(
            after > before,
            "positive mass should rise: {before} -> {after}"
        );
    }

    #[test]
    fn instance_shapes_are_as_documented() {
        let bpr: &dyn Objective<lkp_models::MatrixFactorization> = &Bpr;
        assert_eq!(bpr.instance_shape(5, 5), (1, 1));
        let bce: &dyn Objective<lkp_models::MatrixFactorization> = &Bce;
        assert_eq!(bce.instance_shape(5, 4), (1, 4));
        let sr: &dyn Objective<lkp_models::MatrixFactorization> = &SetRank;
        assert_eq!(sr.instance_shape(5, 4), (1, 4));
        let s2s: &dyn Objective<lkp_models::MatrixFactorization> = &S2SRank::default();
        assert_eq!(s2s.instance_shape(5, 4), (5, 4));
    }
}
