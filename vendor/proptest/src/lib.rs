//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates registry, so this vendored crate
//! provides the strategy combinators and the [`proptest!`] macro surface the
//! workspace's property tests use:
//!
//! * numeric range strategies (`-1.5..1.5_f64`, `0usize..5`, `1usize..=4`);
//! * [`collection::vec`] with a fixed length or a length range;
//! * tuples of strategies (up to arity 4);
//! * [`Strategy::prop_map`], [`Just`], [`bool::ANY`];
//! * `proptest! { #![proptest_config(...)] #[test] fn f(x in s, ...) {...} }`;
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! corpus: cases are generated from a deterministic per-test seed (derived
//! from the test function's name), so every failure is reproducible by
//! rerunning the same test binary.

pub mod collection;

/// Re-exports matching `proptest::prelude::*` as the workspace uses it.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// The RNG handed to strategies.
pub type TestRng = rand::rngs::StdRng;

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        use rand::Rng;
        rng.random_range(self.start..self.end)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.random_range(self.start..self.end)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.random_range(*self.start()..=*self.end())
            }
        }
    )*};
}

int_strategy!(usize, u64, u32, i64, i32);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform `true`/`false`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            use rand::Rng;
            rng.random::<bool>()
        }
    }
}

/// Lengths acceptable to [`collection::vec`]: a fixed size or a size range.
pub trait SizeRange {
    /// Draws a length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for std::ops::Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        use rand::Rng;
        rng.random_range(self.start..self.end)
    }
}

impl SizeRange for std::ops::RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        use rand::Rng;
        rng.random_range(*self.start()..=*self.end())
    }
}

/// Derives the deterministic per-test RNG seed from the test's name.
///
/// FNV-1a over the name: stable across runs and platforms, distinct between
/// tests, and independent of declaration order.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xCBF29CE484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

/// Creates the RNG for one property run.
pub fn test_rng(test_name: &str) -> TestRng {
    use rand::SeedableRng;
    TestRng::seed_from_u64(seed_for(test_name))
}

#[allow(unused_imports)]
pub use rand as rand_crate;

/// Asserts inside a property; on failure the panic message includes the
/// case's values via the test harness's normal assert formatting.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests.
///
/// Supports the two forms the workspace uses: with and without a leading
/// `#![proptest_config(...)]` attribute. Each `#[test] fn name(arg in
/// strategy, ...) { body }` item becomes a normal `#[test]` that runs
/// `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            #[test]
            fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                    // Real proptest bodies may `return Ok(())` to skip a
                    // case, so run each case inside a Result closure.
                    let case = || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        Ok(())
                    };
                    if let Err(message) = case() {
                        panic!("property case rejected: {message}");
                    }
                }
            }
        )*
    };
    (
        $(
            #[test]
            fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                #[test]
                fn $name ( $( $arg in $strat ),+ ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -1.5..1.5_f64, n in 0usize..5, k in 1usize..=4) {
            prop_assert!((-1.5..1.5).contains(&x));
            prop_assert!(n < 5);
            prop_assert!((1..=4).contains(&k));
        }

        #[test]
        fn vec_and_tuple_strategies_compose(
            v in crate::collection::vec((0usize..6, -2.0..2.0_f64), 0..10),
            w in crate::collection::vec(0.0..1.0_f64, 4),
        ) {
            prop_assert!(v.len() < 10);
            for (i, x) in &v {
                prop_assert!(*i < 6 && (-2.0..2.0).contains(x));
            }
            prop_assert_eq!(w.len(), 4);
        }

        #[test]
        fn prop_map_applies(sq in (0usize..9).prop_map(|x| x * x)) {
            prop_assert!(sq < 81);
        }

        #[test]
        fn bool_any_is_well_typed(b in crate::bool::ANY) {
            // Exercise the strategy; the distribution check lives below in
            // `bool_any_yields_both_values` where the RNG is driven directly.
            let _: bool = b;
        }
    }

    #[test]
    fn seeds_differ_by_test_name() {
        assert_ne!(crate::seed_for("a::b"), crate::seed_for("a::c"));
    }

    #[test]
    fn bool_any_yields_both_values() {
        let mut rng = crate::test_rng("bool_any_yields_both_values");
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[usize::from(crate::Strategy::generate(&crate::bool::ANY, &mut rng))] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
