//! Frozen-negative sampling: make long training runs hit the spectral cache
//! on every epoch.
//!
//! The stock sampler draws fresh negatives every epoch, so the
//! epoch-persistent spectral cache (keyed by `(user, ground set)`) never
//! sees a revisit during a full `fit`. `SamplingPolicy::FrozenNegatives`
//! samples the epoch plan once and replays it — identical instances,
//! identical order — for the whole run: from epoch 2 onward every instance
//! is a revisit, and with `spectral_tol > 0` the `O(m³)` eigen stage is
//! skipped or warm-started instead of recomputed.
//!
//! ```text
//! cargo run --release --example frozen_negatives
//! ```

use lkp::prelude::*;
use rand::SeedableRng;

fn main() {
    let data = SyntheticConfig {
        n_users: 150,
        n_items: 300,
        n_categories: 10,
        mean_interactions: 20.0,
        seed: 42,
        ..Default::default()
    }
    .generate();
    let kernel = train_diversity_kernel(
        &data,
        &DiversityKernelConfig {
            epochs: 6,
            pairs_per_epoch: 128,
            ..Default::default()
        },
    );

    let epochs = 8;
    let mut results = Vec::new();
    for (label, policy, tol) in [
        ("resample (stock)", SamplingPolicy::ResampleEachEpoch, 1e-8),
        (
            "periodic refresh",
            SamplingPolicy::PeriodicRefresh { period: 4 },
            1e-8,
        ),
        ("frozen negatives", SamplingPolicy::FrozenNegatives, 1e-8),
    ] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut model = MatrixFactorization::new(
            data.n_users(),
            data.n_items(),
            24,
            AdamConfig {
                lr: 0.02,
                ..Default::default()
            },
            &mut rng,
        );
        let mut objective = LkpObjective::new(LkpKind::NegativeAware, kernel.clone());
        let trainer = Trainer::new(TrainConfig {
            epochs,
            batch_size: 64,
            k: 4,
            n: 4,
            sampling_policy: policy,
            eval_every: 4,
            patience: 0,
            spectral_tol: tol,
            seed: 11,
            ..Default::default()
        });
        let start = std::time::Instant::now();
        let report = trainer.fit(&mut model, &mut objective, &data);
        let elapsed = start.elapsed().as_secs_f64();
        let cache = report.spectral_cache;
        println!(
            "{label:<18} ndcg@10 {:.4}  epoch {:5.0} ms  cache: {} skips, {} warm, {} cold \
             (reuse {:.0}%)  plan: {} sampled / {} reused",
            report.best_val_ndcg,
            elapsed * 1e3 / epochs as f64,
            cache.skips,
            cache.warm_starts,
            cache.cold,
            cache.reuse_rate() * 100.0,
            report.plan.resamples,
            report.plan.reuses,
        );
        results.push((report, cache));
    }

    let (stock, periodic, frozen) = (&results[0], &results[1], &results[2]);
    // The stock sampler never revisits a ground set, so the cache stays
    // cold; the frozen plan turns every epoch-2+ visit into a hit.
    let revisits = (epochs as u64 - 1) * frozen.0.plan.instances as u64;
    assert!(
        frozen.1.skips + frozen.1.warm_starts >= revisits,
        "frozen negatives must hit the cache on every revisit: {:?}",
        frozen.1
    );
    assert!(
        frozen.1.reuse_rate() >= (epochs as f64 - 1.0) / epochs as f64,
        "reuse rate {:.3} below the (epochs-1)/epochs bar",
        frozen.1.reuse_rate()
    );
    assert!(
        stock.1.reuse_rate() < 0.05,
        "stock resampling should almost never revisit: {:?}",
        stock.1
    );
    // Periodic refresh reuses within each window only.
    assert!(periodic.1.reuse_rate() > 0.5 && periodic.1.reuse_rate() < frozen.1.reuse_rate());
    // The policy trade-off is real: a frozen negative set gives the model
    // less to push against, so ranking quality sits below fully resampled
    // training — periodic refresh recovers most of it while still serving
    // the bulk of revisits from the cache. Sanity-bound, don't equate.
    let floor = 0.5 * stock.0.best_val_ndcg;
    for (label, r) in [("periodic", periodic), ("frozen", frozen)] {
        assert!(
            r.0.best_val_ndcg > floor,
            "{label} NDCG collapsed: {:.4} vs stock {:.4}",
            r.0.best_val_ndcg,
            stock.0.best_val_ndcg
        );
    }
    println!("frozen plan reuse bar met: {revisits} revisits all served by the cache");
}
