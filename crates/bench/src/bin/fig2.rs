//! Figure 2 — performance and epochs-to-converge at different `k` (k = n)
//! on the Beauty preset, for LkP-PS and LkP-NPS.
//!
//! The paper's shapes: NDCG@5 rises until k ≈ 5 then dips; CC@5 dips
//! slightly for k > 4; the number of epochs to reach the best validation
//! score grows with k.

use lkp_bench::{ExpArgs, Method};
use lkp_core::LkpVariant;
use lkp_data::SyntheticPreset;

fn main() {
    let mut args = ExpArgs::parse();
    let data = args.dataset(SyntheticPreset::Beauty);
    let kernel = args.diversity_kernel(&data);

    for variant in [LkpVariant::Ps, LkpVariant::Nps] {
        println!(
            "== Fig. 2 ({}) on Beauty: sweep k = n in 2..=6 ==",
            variant.name()
        );
        println!(
            "{:>3} {:>8} {:>8} {:>8} {:>8}",
            "k", "epochs", "Nd@5", "CC@5", "F@5"
        );
        for k in 2..=6usize {
            args.k = k;
            args.n = k;
            let mut model = args.gcn(&data);
            let out =
                lkp_bench::run_method(&args, &data, &kernel, &mut model, Method::Lkp(variant));
            let m5 = out.metrics.at(5).expect("cutoff 5");
            // "Epochs" in the paper is epochs until the best validation
            // score; with early stopping disabled mid-sweep we report the
            // best-validation epoch (0 means validation never improved).
            println!(
                "{k:>3} {:>8} {:>8.4} {:>8.4} {:>8.4}",
                out.report.best_epoch, m5.ndcg, m5.category_coverage, m5.f_score
            );
        }
        println!();
    }
}
