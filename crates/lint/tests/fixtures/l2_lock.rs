//! L2 fixture: seeded lock-scope violations. `tests/engine.rs` asserts the
//! exact `line` of every finding — renumbering this file breaks that test.

use std::sync::Mutex;

pub struct Cache {
    inner: Mutex<Vec<f64>>,
}

fn assemble_kernel(n: usize) -> Vec<f64> {
    vec![0.0; n * n]
}

fn compute_scores(n: usize) -> f64 {
    n as f64
}

impl Cache {
    /// Violation: kernel assembly while the guard is live.
    pub fn bad_fill(&self, n: usize) {
        let mut guard = self.inner.lock().unwrap(); // guard taken line 21
        let block = assemble_kernel(n); // line 22: finding
        *guard = block;
    }

    /// Violation: expensive call under a guard even in a nested block.
    pub fn bad_nested(&self, n: usize) -> f64 {
        let guard = self.inner.lock().unwrap(); // guard taken line 28
        if guard.len() > n {
            return compute_scores(n); // line 30: finding
        }
        0.0
    }

    /// OK: the work happens before the lock (build-outside-lock idiom).
    pub fn good_fill(&self, n: usize) {
        let block = assemble_kernel(n);
        let mut guard = self.inner.lock().unwrap();
        *guard = block;
    }

    /// OK: the guard is dropped before the expensive call.
    pub fn good_drop(&self, n: usize) -> f64 {
        let guard = self.inner.lock().unwrap();
        let len = guard.len();
        drop(guard);
        compute_scores(len + n)
    }

    /// OK: a temporary guard lives only on its own line.
    pub fn good_temporary(&self, n: usize) -> f64 {
        let len = self.inner.lock().unwrap().len();
        compute_scores(len + n)
    }
}
