//! Quickstart: train a matrix-factorization recommender with the LkP
//! criterion and compare it against BPR on relevance *and* diversity.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lkp::prelude::*;
use rand::SeedableRng;

fn main() {
    // A small implicit-feedback world: 300 users, 400 items, 12 categories.
    let data = SyntheticConfig {
        n_users: 300,
        n_items: 400,
        n_categories: 12,
        mean_interactions: 22.0,
        seed: 42,
        ..Default::default()
    }
    .generate();
    println!(
        "dataset: {} users, {} items, {} interactions, {} categories",
        data.n_users(),
        data.n_items(),
        data.n_interactions(),
        data.n_categories()
    );

    // Step 1 — pre-train the diversity kernel K = V·Vᵀ (paper Eq. 3) from
    // category-diverse vs. contaminated set pairs.
    let kernel = train_diversity_kernel(
        &data,
        &DiversityKernelConfig {
            epochs: 10,
            pairs_per_epoch: 256,
            ..Default::default()
        },
    );
    println!(
        "diversity kernel trained: {} items × rank {}",
        kernel.num_items(),
        kernel.dim()
    );

    let train_cfg = TrainConfig {
        epochs: 60,
        eval_every: 10,
        patience: 3,
        ..Default::default()
    };

    // Step 2 — LkP-NPS (Eq. 10: include the positive subset, exclude the
    // negative one) on MF.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut lkp_model = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        32,
        AdamConfig::default(),
        &mut rng,
    );
    let mut lkp_objective = LkpObjective::new(LkpKind::NegativeAware, kernel);
    let report = Trainer::new(train_cfg.clone()).fit(&mut lkp_model, &mut lkp_objective, &data);
    println!(
        "LkP-NPS trained: {} epochs, best validation NDCG@10 = {:.4} (epoch {})",
        report.epochs_run, report.best_val_ndcg, report.best_epoch
    );

    // Step 3 — the BPR baseline on an identical model.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut bpr_model = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        32,
        AdamConfig::default(),
        &mut rng,
    );
    Trainer::new(train_cfg).fit(&mut bpr_model, &mut lkp::core::baselines::Bpr, &data);

    // Step 4 — evaluate both on the held-out test split.
    println!(
        "\n{:<10} {:>8} {:>8} {:>8} {:>8}",
        "method", "Re@10", "Nd@10", "CC@10", "F@10"
    );
    for (name, model) in [("LkP-NPS", &lkp_model), ("BPR", &bpr_model)] {
        let metrics = lkp::eval::evaluate_parallel(model, &data, &[10], 4);
        let m = metrics.at(10).expect("cutoff evaluated");
        println!(
            "{name:<10} {:>8.4} {:>8.4} {:>8.4} {:>8.4}",
            m.recall, m.ndcg, m.category_coverage, m.f_score
        );
    }
    println!("\nLkP should match or beat BPR on relevance while covering more categories.");
}
