//! L1 `hotpath-alloc`: the configured hot-path modules must not call
//! allocating constructors/adaptors outside test code. The dynamic
//! complement is the counting-allocator tests (`crates/core/tests/
//! alloc_free.rs`, `crates/serve/tests/alloc_free_serving.rs`); this lint
//! catches the pattern *statically*, including on code paths no test
//! exercises.
//!
//! `Vec::new()` itself performs no heap allocation — it is denied anyway
//! because a fresh `Vec` on a hot path almost always means a per-call buffer
//! that will grow where a reused workspace buffer should be; cold
//! construction sites carry a reasoned `lint:allow`.

use super::token_matches;
use crate::{FileView, Finding, Lint, LintConfig};

/// Tokens that allocate only when *called* — require `(` or a `::` turbofish
/// after the match so a stray identifier (a field named `collect`, which is
/// followed by a single `:`) cannot fire.
fn requires_call_site(token: &str) -> bool {
    !token.ends_with('!')
}

fn is_call_site(line: &str, from: usize) -> bool {
    let rest = line[from..].trim_start();
    rest.starts_with('(') || rest.starts_with("::")
}

/// Runs L1 over one hot-path file.
pub fn check(view: &FileView<'_>, config: &LintConfig, findings: &mut Vec<Finding>) {
    for (idx, line) in view.scanned.code.iter().enumerate() {
        if view.in_test[idx] {
            continue;
        }
        for token in &config.alloc_tokens {
            for at in token_matches(line, token) {
                if requires_call_site(token) && !is_call_site(line, at + token.len()) {
                    continue;
                }
                findings.push(Finding {
                    path: view.rel_path.to_string(),
                    line: idx + 1,
                    lint: Lint::HotpathAlloc,
                    message: format!(
                        "allocating call `{token}` in hot-path module (use a reused \
                         workspace buffer, or justify with \
                         `lint:allow(hotpath-alloc): <reason>`)"
                    ),
                });
            }
        }
    }
}
