//! The request frontend: individually submitted requests, micro-batched
//! onto the pool.
//!
//! Production traffic arrives one request at a time, but the pool path is
//! batched. [`ServeFrontend`] bridges the two: [`ServeFrontend::submit`]
//! enqueues a request into a bounded queue and returns a [`Ticket`]
//! immediately; micro-batches are cut when the queue reaches
//! [`FrontendConfig::max_batch`] (throughput bound) or when the oldest
//! pending request has waited [`FrontendConfig::max_wait`] (latency bound,
//! checked by [`ServeFrontend::pump`]), and driven through
//! [`Ranker::rank_batch_into`]. Responses are claimed by ticket.
//!
//! Time is read through an injected [`Clock`], so deadline behavior is
//! deterministic in tests ([`ManualClock`]) and wall-clock in production
//! ([`MonotonicClock`], the default). Batch composition never affects
//! served lists — requests are independent — so frontend output is bitwise
//! identical to a direct [`Ranker::rank_batch`] over the same requests, in
//! any submission/pump interleaving.

use crate::{RankRequest, RankResponse, Ranker};
use lkp_models::Recommender;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic time source for micro-batch deadlines.
///
/// Implementations report elapsed time since an arbitrary fixed origin;
/// the frontend only ever compares differences.
pub trait Clock: Send {
    /// Time since the clock's origin.
    fn now(&self) -> Duration;
}

/// Wall-clock [`Clock`] backed by [`Instant`] (the production default).
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    origin: Instant,
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }
}

/// A hand-advanced [`Clock`] for deterministic tests: clone a handle, give
/// one clone to the frontend, and drive time with [`ManualClock::advance`].
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    nanos: Arc<AtomicU64>,
}

impl ManualClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Moves the clock forward by `by`.
    pub fn advance(&self, by: Duration) {
        self.nanos.fetch_add(by.as_nanos() as u64, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }
}

/// Micro-batch cut policy of a [`ServeFrontend`].
#[derive(Debug, Clone)]
pub struct FrontendConfig {
    /// Cut a batch as soon as this many requests are pending (clamped to
    /// ≥ 1). Also the size of every non-final batch, so per-batch pool
    /// dispatch overhead is amortized over exactly this many requests.
    pub max_batch: usize,
    /// Cut a batch (of whatever is pending) once the oldest pending request
    /// has waited this long. Deadlines are checked by
    /// [`ServeFrontend::pump`] against the injected [`Clock`].
    pub max_wait: Duration,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(2),
        }
    }
}

/// Handle to one submitted request; claim the response with
/// [`ServeFrontend::try_take`] after the batch containing it was cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ticket(u64);

/// Frontend traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontendStats {
    /// Requests accepted by [`ServeFrontend::submit`].
    pub submitted: u64,
    /// Requests served (moved to completed responses).
    pub served: u64,
    /// Micro-batches cut.
    pub batches: u64,
    /// Batches cut because `max_batch` requests were pending.
    pub cuts_full: u64,
    /// Batches cut because the oldest pending request reached `max_wait`.
    pub cuts_deadline: u64,
    /// Batches cut by an explicit [`ServeFrontend::flush`].
    pub cuts_flush: u64,
    /// Tickets abandoned via [`ServeFrontend::discard`] (pending requests
    /// dropped before serving plus completed responses dropped unclaimed).
    pub discarded: u64,
}

enum CutReason {
    Full,
    Deadline,
    Flush,
}

struct Pending {
    ticket: Ticket,
    request: RankRequest,
    submitted: Duration,
}

/// The async serving frontend: a bounded submission queue over a
/// [`Ranker`], cutting micro-batches by size and deadline. See the module
/// docs for the lifecycle.
pub struct ServeFrontend<M> {
    ranker: Ranker<M>,
    config: FrontendConfig,
    clock: Box<dyn Clock>,
    pending: VecDeque<Pending>,
    /// Completed responses awaiting [`ServeFrontend::try_take`]. Unclaimed
    /// responses accumulate here — callers own ticket redemption, and must
    /// [`ServeFrontend::discard`] tickets they stop waiting on.
    done: HashMap<u64, RankResponse>,
    /// Batch-cut scratch, reused across cuts.
    batch_requests: Vec<RankRequest>,
    batch_tickets: Vec<Ticket>,
    batch_out: Vec<RankResponse>,
    next_ticket: u64,
    stats: FrontendStats,
}

impl<M: Recommender + Sync> ServeFrontend<M> {
    /// Wraps a ranker with the wall-clock [`MonotonicClock`].
    pub fn new(ranker: Ranker<M>, config: FrontendConfig) -> Self {
        ServeFrontend::with_clock(ranker, config, Box::new(MonotonicClock::default()))
    }

    /// Wraps a ranker with an injected clock (tests use [`ManualClock`]).
    pub fn with_clock(
        ranker: Ranker<M>,
        mut config: FrontendConfig,
        clock: Box<dyn Clock>,
    ) -> Self {
        config.max_batch = config.max_batch.max(1);
        ServeFrontend {
            ranker,
            config,
            clock,
            pending: VecDeque::new(),
            done: HashMap::new(),
            batch_requests: Vec::new(),
            batch_tickets: Vec::new(),
            batch_out: Vec::new(),
            next_ticket: 0,
            stats: FrontendStats::default(),
        }
    }

    /// Enqueues one request and returns its ticket. Cuts a micro-batch
    /// inline when the queue reaches `max_batch` — so the queue holds at
    /// most `max_batch − 1` requests between calls and submission is never
    /// an error: backpressure shows up as inline served latency, not as
    /// drops or unbounded growth.
    pub fn submit(&mut self, request: RankRequest) -> Ticket {
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        self.pending.push_back(Pending {
            ticket,
            request,
            submitted: self.clock.now(),
        });
        self.stats.submitted += 1;
        if self.pending.len() >= self.config.max_batch {
            self.cut_batch(CutReason::Full);
        }
        ticket
    }

    /// Cuts every due micro-batch: full batches first, then a partial batch
    /// if the oldest pending request has waited `max_wait` or longer.
    /// Returns the number of requests served. Call this from the serving
    /// loop whenever the clock may have crossed a deadline.
    pub fn pump(&mut self) -> usize {
        let mut served = 0;
        loop {
            let full = self.pending.len() >= self.config.max_batch;
            let overdue = !full
                && self.pending.front().is_some_and(|p| {
                    self.clock.now().saturating_sub(p.submitted) >= self.config.max_wait
                });
            if !full && !overdue {
                return served;
            }
            served += self.cut_batch(if full {
                CutReason::Full
            } else {
                CutReason::Deadline
            });
        }
    }

    /// Serves everything pending regardless of deadlines (shutdown /
    /// end-of-stream). Returns the number of requests served.
    pub fn flush(&mut self) -> usize {
        let mut served = 0;
        while !self.pending.is_empty() {
            served += self.cut_batch(CutReason::Flush);
        }
        served
    }

    /// Claims the response for `ticket`, if its batch has been cut. Each
    /// ticket redeems at most once.
    pub fn try_take(&mut self, ticket: Ticket) -> Option<RankResponse> {
        self.done.remove(&ticket.0)
    }

    /// Peeks at the response for `ticket` without claiming it.
    pub fn peek(&self, ticket: Ticket) -> Option<&RankResponse> {
        self.done.get(&ticket.0)
    }

    /// Abandons a ticket the caller stopped waiting on (e.g. its request
    /// timed out upstream): drops the completed response if the batch was
    /// already cut, or pulls the request out of the pending queue if not —
    /// without this, responses for dropped tickets would accumulate in the
    /// completed map for the frontend's lifetime. Returns whether the
    /// ticket was found (`false`: already taken, already discarded, or
    /// never issued).
    pub fn discard(&mut self, ticket: Ticket) -> bool {
        let found = self.done.remove(&ticket.0).is_some()
            || self
                .pending
                .iter()
                .position(|p| p.ticket == ticket)
                .map(|at| self.pending.remove(at))
                .is_some();
        self.stats.discarded += found as u64;
        found
    }

    /// Pre-warms the ranker's kernel cache with popular pairs (see
    /// [`Ranker::prewarm`]); their first served request then skips the
    /// `O(|C|²·d)` assembly entirely. Returns the number of assemblies.
    pub fn prewarm(&mut self, pairs: &[(usize, Vec<usize>)]) -> usize {
        self.ranker.prewarm(pairs)
    }

    /// Requests submitted but not yet served.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Responses served but not yet claimed.
    pub fn completed_len(&self) -> usize {
        self.done.len()
    }

    /// Traffic counters since construction.
    pub fn stats(&self) -> FrontendStats {
        self.stats
    }

    /// The wrapped ranker (cache stats, prewarm, direct batches).
    pub fn ranker(&mut self) -> &mut Ranker<M> {
        &mut self.ranker
    }

    /// Unwraps the frontend, dropping any unserved submissions and
    /// unclaimed responses.
    pub fn into_ranker(self) -> Ranker<M> {
        self.ranker
    }

    /// Cuts one micro-batch of up to `max_batch` requests off the queue
    /// front (submission order) and serves it on the pool.
    fn cut_batch(&mut self, reason: CutReason) -> usize {
        let n = self.pending.len().min(self.config.max_batch);
        if n == 0 {
            return 0;
        }
        self.batch_requests.clear();
        self.batch_tickets.clear();
        for _ in 0..n {
            let p = self.pending.pop_front().expect("n ≤ pending");
            self.batch_tickets.push(p.ticket);
            self.batch_requests.push(p.request);
        }
        self.ranker
            .rank_batch_into(&self.batch_requests, &mut self.batch_out);
        for (ticket, response) in self.batch_tickets.drain(..).zip(self.batch_out.drain(..)) {
            self.done.insert(ticket.0, response);
        }
        self.stats.batches += 1;
        self.stats.served += n as u64;
        match reason {
            CutReason::Full => self.stats.cuts_full += 1,
            CutReason::Deadline => self.stats.cuts_deadline += 1,
            CutReason::Flush => self.stats.cuts_flush += 1,
        }
        n
    }
}

impl<M> std::fmt::Debug for ServeFrontend<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeFrontend")
            .field("pending", &self.pending.len())
            .field("completed", &self.done.len())
            .field("stats", &self.stats)
            .finish()
    }
}
