//! L4 fixture: seeded unsafe-audit violations. `tests/engine.rs` asserts
//! the exact `line` of every finding — renumbering this file breaks it.

pub fn bad_block(p: *const f64) -> f64 {
    unsafe { *p } // line 5: no SAFETY comment
}

// line 9: unsafe fn without a SAFETY contract comment
pub unsafe fn bad_fn(p: *const f64) -> f64 {
    // SAFETY: caller promises `p` is valid (this inner comment covers the
    // deref below, not the fn declaration above).
    unsafe { *p }
}

pub fn good_block(p: *const f64) -> f64 {
    // SAFETY: `p` comes from a live reference in the caller.
    unsafe { *p }
}

pub fn good_trailing(p: *const f64) -> f64 {
    unsafe { *p } // SAFETY: `p` comes from a live reference in the caller.
}

pub fn good_multiline(p: *const f64) -> f64 {
    // SAFETY: the pointer is created from a reference one frame up and the
    // borrow is still live for the whole call.
    // (A continuation line between the tag and the code is fine.)
    unsafe { *p }
}

pub struct Wrapper(*mut u8);

// line 34: unsafe impl without a SAFETY comment
unsafe impl Send for Wrapper {}

// SAFETY: the wrapped pointer is never dereferenced; it is an opaque token.
unsafe impl Sync for Wrapper {}

#[cfg(test)]
mod tests {
    // L4 applies to test code too.
    pub fn bad_in_test(p: *const f64) -> f64 {
        unsafe { *p } // line 43: finding even under cfg(test)
    }
}
