//! Sharded artifacts: parallel per-shard greedy MAP with a bit-exact merge.
//!
//! Unsharded serving assembles one `O(|C|²)` tailored kernel per request and
//! runs one greedy MAP over it — a single task no pool can split. Sharding
//! splits the *catalog* instead: a [`ShardPartition`] assigns every item to
//! one of `N` shards, so each request's candidates fan out into per-shard
//! slots whose tailored blocks are `O((|C|/N)²)` (dense) or `O((|C|/N)·d)`
//! (dual) — quadratically smaller cache entries that raise resident-set hit
//! rates under the same byte budget, and independently assemblable tasks the
//! [`lkp_runtime::WorkerPool`] can balance ([`lkp_runtime::TaskPlan`]).
//!
//! Serving is two-phase:
//!
//! 1. **Per-shard prefixes** (parallel): each slot pulls its own kernel
//!    block through the existing byte-budgeted caches (keyed per
//!    `(user, shard)`), assembles its tailored block with the unsharded
//!    path's exact arithmetic, and runs a local greedy MAP prefix of length
//!    `min(k, |C_s|)`.
//! 2. **Marginal-gain merge ladder** (per request): a lazy-greedy max-heap
//!    over *all* of the request's candidates, seeded with the per-shard
//!    diagonals and re-scored on demand against the globally selected set
//!    ([`lkp_dpp::conditioned_greedy_merge`]). Same-shard kernel entries
//!    come from the slot's assembled block; cross-shard entries are computed
//!    from gathered factor rows — bitwise identical to the entries the full
//!    assembly would have produced, because both are the same factor-row dot
//!    products combined in the same IEEE operation order.
//!
//! The merged list is therefore **bitwise identical** to unsharded serving
//! (`serving_sharded_equivalence` gates this in CI, in the style of the
//! dual-serving gate). Whenever the lazy ladder cannot promise that —
//! non-finite arithmetic, a dual guard trip, fault injection — the request
//! is re-served on the stock unsharded path, which is bit-exact by
//! definition ([`crate::Ranker::shard_fallbacks`] counts these). Requests
//! that already bypass the kernel caches (degraded rerank heads) are served
//! directly on the stock path: degradation caps the DPP ladder, not the
//! shard partition — the shard state and its warm caches are untouched.

use crate::cache::{EntryForm, SharedKernelCache};
use crate::ranker::{dedup_first_occurrence, entry_form, serve_request, ServeWorkspace};
use crate::{RankOutcome, RankRequest, RankResponse, RankingArtifact, ServeConfig};
use lkp_dpp::{
    conditioned_greedy_merge, greedy_map_dual_with, greedy_map_with, MergeGuard, MergeOutcome,
};
use lkp_linalg::{ops, Matrix};
use lkp_models::Recommender;
use lkp_runtime::{TaskPlan, WorkerPool, WorkerState};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Items a popularity probe samples to order the catalog (capped so
/// partition construction stays `O(n_items · (32 + log n_items))`).
const POPULARITY_SAMPLE_USERS: usize = 32;

/// An item → shard assignment over a popularity-ordered permutation.
///
/// Items are ranked by a popularity proxy (summed `|score|` over a strided
/// sample of users, most popular first), and rank `r` goes to shard
/// `r mod N`: each shard owns a contiguous range of the shard-major
/// permutation ([`ShardPartition::items`]) holding every `N`-th popularity
/// rank, so hot items spread evenly instead of piling onto one shard.
/// Construction is deterministic (ties break by item id; non-finite or
/// panicking scores contribute zero popularity), so every ranker built from
/// the same artifact partitions identically.
#[derive(Debug, Clone)]
pub struct ShardPartition {
    /// Shard owning each item.
    shard_of: Vec<u32>,
    /// Items in shard-major order: shard `s` owns
    /// `perm[offsets[s]..offsets[s + 1]]`.
    perm: Vec<u32>,
    offsets: Vec<usize>,
}

impl ShardPartition {
    /// Partitions `artifact`'s catalog into `n_shards` shards (clamped to
    /// `1..=n_items`). Runs off the serving path — once per ranker or
    /// staged swap.
    pub fn build<M: Recommender>(artifact: &RankingArtifact<M>, n_shards: usize) -> Self {
        let n_items = artifact.n_items();
        let n = n_shards.clamp(1, n_items.max(1));
        // lint:allow(hotpath-alloc): partition construction is a one-time
        // per-artifact cost, not the request path.
        let mut pop = vec![0.0f64; n_items];
        let all: Vec<usize> = (0..n_items).collect(); // lint:allow(hotpath-alloc): construction
        let mut scores = Vec::new(); // lint:allow(hotpath-alloc): construction
        let samples = artifact.n_users().min(POPULARITY_SAMPLE_USERS);
        for t in 0..samples {
            let u = t * artifact.n_users() / samples;
            // A model that panics or NaNs for a sampled user must not make
            // the partition unbuildable — that user just contributes no
            // popularity signal (still deterministic).
            let ok = catch_unwind(AssertUnwindSafe(|| {
                artifact.model().score_items_into(u, &all, &mut scores)
            }))
            .is_ok();
            if !ok || scores.len() != n_items {
                scores.clear();
                continue;
            }
            for (p, &s) in pop.iter_mut().zip(scores.iter()) {
                if s.is_finite() {
                    *p += s.abs();
                }
            }
        }
        let mut by_rank: Vec<u32> = (0..n_items as u32).collect(); // lint:allow(hotpath-alloc): construction
        by_rank.sort_by(|&a, &b| pop[b as usize].total_cmp(&pop[a as usize]).then(a.cmp(&b)));
        let mut shard_of = vec![0u32; n_items]; // lint:allow(hotpath-alloc): construction
        let mut counts = vec![0usize; n]; // lint:allow(hotpath-alloc): construction
        for (r, &item) in by_rank.iter().enumerate() {
            let s = r % n;
            shard_of[item as usize] = s as u32;
            counts[s] += 1;
        }
        let mut offsets = vec![0usize; n + 1]; // lint:allow(hotpath-alloc): construction
        for s in 0..n {
            offsets[s + 1] = offsets[s] + counts[s];
        }
        let mut cursor = offsets.clone(); // lint:allow(hotpath-alloc): construction
        cursor.truncate(n);
        let mut perm = vec![0u32; n_items]; // lint:allow(hotpath-alloc): construction
        for (r, &item) in by_rank.iter().enumerate() {
            let s = r % n;
            perm[cursor[s]] = item;
            cursor[s] += 1;
        }
        ShardPartition {
            shard_of,
            perm,
            offsets,
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The shard owning `item`.
    pub fn shard_of(&self, item: usize) -> usize {
        self.shard_of[item] as usize
    }

    /// The items shard `shard` owns (its contiguous range of the shard-major
    /// popularity permutation, most popular first).
    pub fn items(&self, shard: usize) -> &[u32] {
        &self.perm[self.offsets[shard]..self.offsets[shard + 1]]
    }

    /// Per-shard item counts (balanced within 1 by construction).
    pub fn count(&self, shard: usize) -> usize {
        self.offsets[shard + 1] - self.offsets[shard]
    }
}

/// A [`RankingArtifact`] paired with its [`ShardPartition`] — the
/// transportable unit of sharded serving. [`crate::Ranker::from_sharded`]
/// serves from the precomputed partition; splitting and serving separately
/// is what a future cross-host deployment would ship per shard host.
#[derive(Debug, Clone)]
pub struct ShardedArtifact<M> {
    artifact: RankingArtifact<M>,
    partition: ShardPartition,
}

impl<M: Recommender> ShardedArtifact<M> {
    /// Splits `artifact` into `n_shards` popularity-balanced item-range
    /// shards (clamped to `1..=n_items`).
    pub fn split(artifact: RankingArtifact<M>, n_shards: usize) -> Self {
        let partition = ShardPartition::build(&artifact, n_shards);
        ShardedArtifact {
            artifact,
            partition,
        }
    }

    /// The underlying artifact.
    pub fn artifact(&self) -> &RankingArtifact<M> {
        &self.artifact
    }

    /// The item → shard assignment.
    pub fn partition(&self) -> &ShardPartition {
        &self.partition
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.partition.n_shards()
    }

    /// Decomposes into the artifact and its partition.
    pub fn into_parts(self) -> (RankingArtifact<M>, ShardPartition) {
        (self.artifact, self.partition)
    }
}

/// The cache key for a `(user, shard)` kernel piece. Composed keys from
/// different `(user, shard)` pairs never collide with each other; they can
/// collide with a *raw* user key left by a stock-path fallback rerun, which
/// entry validation (exact candidate list + form) turns into a rebuild, not
/// a wrong answer.
pub(crate) fn compose_key(user: usize, n_shards: usize, shard: usize) -> usize {
    user.wrapping_mul(n_shards).wrapping_add(shard)
}

/// Splits a deduplicated candidate list into per-shard sublists (reusing
/// `per_shard`'s buffers) — the prewarm-side mirror of request planning.
pub(crate) fn split_candidates(
    partition: &ShardPartition,
    candidates: &[usize],
    per_shard: &mut Vec<Vec<usize>>,
) {
    let n = partition.n_shards();
    if per_shard.len() < n {
        per_shard.resize_with(n, Vec::new);
    }
    for list in per_shard.iter_mut() {
        list.clear();
    }
    for &item in candidates {
        per_shard[partition.shard_of(item)].push(item);
    }
}

/// How a request leaves planning (phase 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum ReqStatus {
    /// Response fully written in phase 0 (invalid / empty / failed /
    /// panicked): later phases skip it.
    #[default]
    Done,
    /// Served by the stock unsharded path in phase 2 (degraded rerank
    /// heads, which bypass the kernel caches by design).
    Direct,
    /// Fanned out into per-shard slots; merged in phase 2.
    Sharded,
}

/// One request's plan: the deduplicated pool, its quality map, and the
/// position → slot routing the merge ladder reads.
#[derive(Default)]
struct ReqPlan {
    status: ReqStatus,
    /// Deduplicated candidates (first occurrences, request order).
    cands: Vec<usize>,
    /// Quality `q = exp(clamp(ŷ))` per deduplicated position — one scoring
    /// pass over the full pool, bitwise the unsharded path's.
    q: Vec<f64>,
    /// Selection length, already clamped to the pool.
    k: usize,
    /// Global slot ids of this request's non-empty shards.
    slots: Vec<u32>,
    /// Per deduplicated position: index into `slots`.
    slot_of: Vec<u32>,
    /// Per deduplicated position: index within its slot.
    local_of: Vec<u32>,
    /// Declared phase-2 cost for the task plan.
    cost: u64,
}

/// One (request, shard) unit of phase-1 work: the shard's candidates, its
/// kernel block and tailored assembly, and its local greedy MAP prefix.
struct ShardSlot {
    req: u32,
    shard: u32,
    user: usize,
    form: EntryForm,
    /// Whether this slot holds the request's whole pool (its local prefix
    /// is then the exact unsharded answer and no merge runs).
    solo: bool,
    k_local: usize,
    cands: Vec<usize>,
    /// Global deduplicated position of each slot candidate.
    pos: Vec<u32>,
    q: Vec<f64>,
    /// Shared-cache staging copy of the kernel block.
    sub: Matrix,
    /// Factor rows `V_C` for cross-shard dense entries.
    vc: Matrix,
    /// Dual factor `B = Diag(q)·V_C`.
    b: Matrix,
    /// Tailored dense kernel block.
    l: Matrix,
    /// Tailored diagonal (the merge ladder's gain seeds).
    diag: Vec<f64>,
    map: lkp_dpp::MapWorkspace,
    dual_map: lkp_dpp::DualMapWorkspace,
    hit: bool,
    /// Dual recursion error in the local prefix.
    broke: bool,
    /// Dense MAP error in the local prefix.
    map_err: bool,
    panicked: bool,
}

impl Default for ShardSlot {
    fn default() -> Self {
        ShardSlot {
            req: 0,
            shard: 0,
            user: 0,
            form: EntryForm::Dense,
            solo: false,
            k_local: 0,
            // lint:allow(hotpath-alloc): slot construction happens only
            // while the slot pool grows to its high-water mark; steady-state
            // batches reuse resident slots.
            cands: Vec::new(),
            pos: Vec::new(), // lint:allow(hotpath-alloc): slot-pool growth only
            q: Vec::new(),   // lint:allow(hotpath-alloc): slot-pool growth only
            sub: Matrix::default(),
            vc: Matrix::default(),
            b: Matrix::default(),
            l: Matrix::default(),
            diag: Vec::new(), // lint:allow(hotpath-alloc): slot-pool growth only
            map: lkp_dpp::MapWorkspace::default(),
            dual_map: lkp_dpp::DualMapWorkspace::default(),
            hit: false,
            broke: false,
            map_err: false,
            panicked: false,
        }
    }
}

/// All sharded-serving state a [`crate::Ranker`] owns: the partition plus
/// every reusable buffer of the two-phase path. Slots and plans are pooled
/// and clear-and-refilled, so steady-state batches of a stable shape
/// allocate only on kernel-cache insertions — the same contract as the
/// unsharded path.
pub(crate) struct ShardState {
    pub(crate) partition: ShardPartition,
    slots: Vec<ShardSlot>,
    slots_used: usize,
    plans: Vec<ReqPlan>,
    costs1: Vec<u64>,
    costs2: Vec<u64>,
    plan1: TaskPlan,
    plan2: TaskPlan,
    /// Phase-0 caller scratch (dedup permutation, duplicate mask, rebuilt
    /// list, raw scores, per-shard slot lookup).
    order: Vec<u32>,
    dup: Vec<bool>,
    dedup: Vec<usize>,
    scores: Vec<f64>,
    slot_at: Vec<u32>,
}

impl ShardState {
    pub(crate) fn new(partition: ShardPartition) -> Self {
        ShardState {
            partition,
            // lint:allow(hotpath-alloc): ranker construction; every buffer
            // below is pooled and reused across batches.
            slots: Vec::new(),
            slots_used: 0,
            plans: Vec::new(),  // lint:allow(hotpath-alloc): construction
            costs1: Vec::new(), // lint:allow(hotpath-alloc): construction
            costs2: Vec::new(), // lint:allow(hotpath-alloc): construction
            plan1: TaskPlan::new(),
            plan2: TaskPlan::new(),
            order: Vec::new(),   // lint:allow(hotpath-alloc): construction
            dup: Vec::new(),     // lint:allow(hotpath-alloc): construction
            dedup: Vec::new(),   // lint:allow(hotpath-alloc): construction
            scores: Vec::new(),  // lint:allow(hotpath-alloc): construction
            slot_at: Vec::new(), // lint:allow(hotpath-alloc): construction
        }
    }

    /// Serves one batch on the two-phase sharded path. Output order matches
    /// request order and responses are bitwise identical to the unsharded
    /// path at any pool width.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn rank_batch<M: Recommender + Sync>(
        &mut self,
        artifact: &RankingArtifact<M>,
        config: &ServeConfig,
        shared: Option<&SharedKernelCache>,
        pool: &mut WorkerPool,
        requests: &[RankRequest],
        out: &mut [RankResponse],
        generation: u64,
    ) {
        if requests.is_empty() {
            return;
        }
        // Phase 0 (serial, caller): validate, dedup, score, fan out.
        self.slots_used = 0;
        self.costs1.clear();
        if self.plans.len() < requests.len() {
            self.plans.resize_with(requests.len(), ReqPlan::default);
        }
        for (r, (req, resp)) in requests.iter().zip(out.iter_mut()).enumerate() {
            self.plan_one(artifact, config, r, req, resp, generation);
        }
        let threads = pool.threads();
        let ShardState {
            partition,
            slots,
            slots_used,
            plans,
            costs1,
            costs2,
            plan1,
            plan2,
            ..
        } = self;
        let n_shards = partition.n_shards();
        // Phase 1 (parallel): per-shard kernel blocks + greedy MAP prefixes,
        // LPT-balanced over the pool by declared cost — slot sizes differ by
        // orders of magnitude, so equal-count chunking would leave most
        // workers idle behind the biggest shard.
        plan1.assign(costs1, threads);
        pool.run_plan_mut(plan1, &mut slots[..*slots_used], |_, slot, state| {
            run_slot(artifact, config, shared, state, slot, n_shards);
        });
        // Phase 2 (parallel): merge ladders / direct serves, one task per
        // request.
        costs2.clear();
        let plans = &plans[..requests.len()];
        costs2.extend(plans.iter().map(|p| p.cost));
        plan2.assign(costs2, threads);
        let slots = &slots[..*slots_used];
        pool.run_plan_mut(plan2, out, |r, resp, state| {
            finish_request(
                artifact,
                config,
                shared,
                state,
                &plans[r],
                slots,
                &requests[r],
                resp,
                generation,
            );
        });
    }

    /// [`ShardState::rank_batch`] for a single request on the caller thread
    /// (no pool dispatch) — the sharded `rank_one`. Runs the same three
    /// phases sequentially against the caller's worker state, so the
    /// response is bitwise identical to the batched path's.
    pub(crate) fn rank_one<M: Recommender>(
        &mut self,
        artifact: &RankingArtifact<M>,
        config: &ServeConfig,
        shared: Option<&SharedKernelCache>,
        state: &mut WorkerState,
        req: &RankRequest,
        generation: u64,
    ) -> RankResponse {
        let mut resp = RankResponse::default();
        self.slots_used = 0;
        self.costs1.clear();
        if self.plans.is_empty() {
            self.plans.resize_with(1, ReqPlan::default);
        }
        self.plan_one(artifact, config, 0, req, &mut resp, generation);
        let n_shards = self.partition.n_shards();
        for gid in 0..self.slots_used {
            run_slot(
                artifact,
                config,
                shared,
                state,
                &mut self.slots[gid],
                n_shards,
            );
        }
        finish_request(
            artifact,
            config,
            shared,
            state,
            &self.plans[0],
            &self.slots[..self.slots_used],
            req,
            &mut resp,
            generation,
        );
        resp
    }

    /// Phase 0 for one request, behind the same per-request panic shield as
    /// the stock path (a panicking scorer poisons only this response; slots
    /// appended before the panic are rolled back).
    fn plan_one<M: Recommender>(
        &mut self,
        artifact: &RankingArtifact<M>,
        config: &ServeConfig,
        r: usize,
        req: &RankRequest,
        resp: &mut RankResponse,
        generation: u64,
    ) {
        let slots_before = self.slots_used;
        let costs_before = self.costs1.len();
        let result = catch_unwind(AssertUnwindSafe(|| {
            self.plan_one_inner(artifact, config, r, req, resp, generation)
        }));
        if result.is_err() {
            self.slots_used = slots_before;
            self.costs1.truncate(costs_before);
            self.plans[r].status = ReqStatus::Done;
            self.plans[r].cost = 1;
            resp.user = req.user;
            resp.items.clear();
            resp.log_det = 0.0;
            resp.cache_hit = false;
            resp.degraded = false;
            resp.generation = generation;
            resp.outcome = RankOutcome::Panicked;
        }
    }

    fn plan_one_inner<M: Recommender>(
        &mut self,
        artifact: &RankingArtifact<M>,
        config: &ServeConfig,
        r: usize,
        req: &RankRequest,
        resp: &mut RankResponse,
        generation: u64,
    ) {
        // Response defaults and validation mirror `serve_one` exactly.
        resp.user = req.user;
        resp.items.clear();
        resp.log_det = 0.0;
        resp.cache_hit = false;
        resp.outcome = RankOutcome::Served;
        resp.degraded = false;
        resp.generation = generation;
        self.plans[r].status = ReqStatus::Done;
        self.plans[r].cost = 1;

        let n_items = artifact.n_items();
        if req.candidates.is_empty()
            || req.user >= artifact.n_users()
            || req.candidates.iter().any(|&i| i >= n_items)
        {
            resp.outcome = RankOutcome::Invalid;
            return;
        }
        if req.top_n == 0 {
            return;
        }
        let candidates = dedup_first_occurrence(
            &req.candidates,
            &mut self.order,
            &mut self.dup,
            &mut self.dedup,
        );
        let c = candidates.len();
        if req.rerank_head > 0 && req.rerank_head < c {
            // Degraded: the stock path serves it in phase 2 (it bypasses the
            // kernel caches anyway) — bit-exact with unsharded degraded
            // serving. The cap limits the DPP ladder, never the shard state.
            self.plans[r].status = ReqStatus::Direct;
            self.plans[r].cost = (req.rerank_head as u64) * (req.rerank_head as u64) + 1;
            return;
        }

        // One scoring pass over the full deduplicated pool — the same single
        // `score_items_into` call as the unsharded path, so `q` is bitwise
        // identical no matter how the pool later splits.
        artifact
            .model()
            .score_items_into(req.user, candidates, &mut self.scores);
        if self.scores.iter().any(|s| s.is_nan()) {
            resp.outcome = RankOutcome::Failed;
            return;
        }
        let plan = &mut self.plans[r];
        plan.cands.clear();
        plan.cands.extend_from_slice(candidates);
        plan.q.clear();
        plan.q.extend(
            self.scores
                .iter()
                .map(|&s| s.clamp(-config.score_clamp, config.score_clamp).exp()),
        );
        plan.k = req.top_n.min(c);
        // The form decision keys on the *full* effective pool, so every
        // shard routes exactly like the unsharded request would.
        let form = entry_form(config, c);

        // Fan out by shard, preserving deduplicated order within each slot.
        let n_shards = self.partition.n_shards();
        self.slot_at.clear();
        self.slot_at.resize(n_shards, u32::MAX);
        plan.slots.clear();
        plan.slot_of.clear();
        plan.local_of.clear();
        for (p, &item) in plan.cands.iter().enumerate() {
            let s = self.partition.shard_of(item);
            let mut sl = self.slot_at[s];
            if sl == u32::MAX {
                sl = plan.slots.len() as u32;
                self.slot_at[s] = sl;
                let gid = self.slots_used;
                if self.slots.len() == gid {
                    self.slots.push(ShardSlot::default());
                }
                self.slots_used += 1;
                let slot = &mut self.slots[gid];
                slot.req = r as u32;
                slot.shard = s as u32;
                slot.user = req.user;
                slot.form = form;
                slot.solo = false;
                slot.k_local = 0;
                slot.cands.clear();
                slot.pos.clear();
                slot.q.clear();
                slot.hit = false;
                slot.broke = false;
                slot.map_err = false;
                slot.panicked = false;
                plan.slots.push(gid as u32);
            }
            let gid = plan.slots[sl as usize] as usize;
            let slot = &mut self.slots[gid];
            plan.slot_of.push(sl);
            plan.local_of.push(slot.cands.len() as u32);
            slot.cands.push(item);
            slot.pos.push(p as u32);
            slot.q.push(plan.q[p]);
        }
        let solo = plan.slots.len() == 1;
        let d = artifact.kernel().dim() as u64;
        for &gid in &plan.slots {
            let slot = &mut self.slots[gid as usize];
            slot.solo = solo;
            slot.k_local = plan.k.min(slot.cands.len());
            let cs = slot.cands.len() as u64;
            // Declared phase-1 cost: dominated by block assembly — quadratic
            // dense, linear-in-d dual. Shape-only, so planning stays
            // deterministic.
            self.costs1.push(match form {
                EntryForm::Dense => cs * cs + 1,
                EntryForm::Factor => cs * d + 1,
            });
        }
        plan.status = ReqStatus::Sharded;
        plan.cost = (plan.k as u64) * (c as u64) + 1;
    }
}

/// Phase 1 for one slot, panic-shielded per slot (a poisoned slot poisons
/// only its owning request, in phase 2).
fn run_slot<M: Recommender>(
    artifact: &RankingArtifact<M>,
    config: &ServeConfig,
    shared: Option<&SharedKernelCache>,
    state: &mut WorkerState,
    slot: &mut ShardSlot,
    n_shards: usize,
) {
    let result = catch_unwind(AssertUnwindSafe(|| {
        run_slot_inner(artifact, config, shared, state, slot, n_shards)
    }));
    if result.is_err() {
        slot.panicked = true;
    }
}

fn run_slot_inner<M: Recommender>(
    artifact: &RankingArtifact<M>,
    config: &ServeConfig,
    shared: Option<&SharedKernelCache>,
    state: &mut WorkerState,
    slot: &mut ShardSlot,
    n_shards: usize,
) {
    let ws = state.get_or_default::<ServeWorkspace>();
    let key = compose_key(slot.user, n_shards, slot.shard as usize);
    let budget = config.kernel_cache_bytes;
    let kernel = artifact.kernel();
    let m = slot.cands.len();
    match slot.form {
        EntryForm::Factor => {
            // Dual slot: factor rows through the cache, then
            // B = Diag(q_s)·V_s — per-row arithmetic identical to the
            // unsharded B rows (same q values, same factor rows).
            let (v_c, hit): (&Matrix, bool) = match shared {
                Some(cache) => {
                    let hit = cache.get_or_build_into(
                        key,
                        &slot.cands,
                        kernel,
                        budget,
                        EntryForm::Factor,
                        &mut slot.sub,
                    );
                    (&slot.sub, hit)
                }
                None => ws
                    .cache
                    .get_or_build(key, &slot.cands, kernel, budget, EntryForm::Factor),
            };
            slot.hit = hit;
            let d = v_c.cols();
            slot.b.reset(m, d);
            for (i, &qi) in slot.q.iter().enumerate() {
                for (o, &v) in slot.b.row_mut(i).iter_mut().zip(v_c.row(i)) {
                    *o = qi * v;
                }
            }
            slot.diag.clear();
            slot.diag
                .extend((0..m).map(|i| ops::dot(slot.b.row(i), slot.b.row(i)) + config.jitter));
            // Solo slots run under the serving guard — they ARE the
            // unsharded recursion, trips included. Multi-shard prefixes
            // disable the drift floor (∞ guard keeps only the non-finite
            // check): their residuals condition on local prefixes the
            // unsharded run never sees, so a local floor trip would not
            // correspond to any eager trip — the *merge* re-applies the
            // serving guard to every globally-conditioned residual.
            slot.dual_map.guard = if slot.solo {
                config.dual_guard
            } else {
                f64::INFINITY
            };
            slot.broke =
                greedy_map_dual_with(&slot.b, config.jitter, slot.k_local, &mut slot.dual_map)
                    .is_err();
            slot.map_err = false;
        }
        EntryForm::Dense => {
            // Dense slot: the shard's K block through the cache, then the
            // tailored assembly with `serve_one`'s exact expression — the
            // block's entries are the same factor-row dot products the full
            // `|C| × |C|` assembly computes, so every same-shard L entry is
            // bitwise the unsharded one.
            let (k_sub, hit): (&Matrix, bool) = match shared {
                Some(cache) => {
                    let hit = cache.get_or_build_into(
                        key,
                        &slot.cands,
                        kernel,
                        budget,
                        EntryForm::Dense,
                        &mut slot.sub,
                    );
                    (&slot.sub, hit)
                }
                None => ws
                    .cache
                    .get_or_build(key, &slot.cands, kernel, budget, EntryForm::Dense),
            };
            slot.hit = hit;
            slot.l.reset(m, m);
            for i in 0..m {
                let qi = slot.q[i];
                slot.l[(i, i)] = qi * k_sub[(i, i)] * qi + config.jitter;
                for j in (i + 1)..m {
                    let qj = slot.q[j];
                    let kij = k_sub[(i, j)];
                    let avg = 0.5 * (qi * kij * qj + qj * kij * qi);
                    slot.l[(i, j)] = avg;
                    slot.l[(j, i)] = avg;
                }
            }
            slot.diag.clear();
            slot.diag.extend((0..m).map(|i| slot.l[(i, i)]));
            if !slot.solo {
                // Cross-shard merge entries are factor-row dots; gather the
                // rows once per slot (O(|C_s|·d), beside the O(|C_s|²·d)
                // block the cache already paid).
                kernel
                    .gather_rows_into(&slot.cands, &mut slot.vc)
                    .expect("candidates validated in planning");
            }
            slot.map_err = greedy_map_with(&slot.l, slot.k_local, &mut slot.map).is_err();
            slot.broke = false;
        }
    }
}

/// Phase 2 for one request: copy out a solo prefix, run the merge ladder,
/// or serve directly/fall back on the stock path.
#[allow(clippy::too_many_arguments)]
fn finish_request<M: Recommender>(
    artifact: &RankingArtifact<M>,
    config: &ServeConfig,
    shared: Option<&SharedKernelCache>,
    state: &mut WorkerState,
    plan: &ReqPlan,
    slots: &[ShardSlot],
    req: &RankRequest,
    resp: &mut RankResponse,
    generation: u64,
) {
    match plan.status {
        ReqStatus::Done => {}
        ReqStatus::Direct => {
            let ws = state.get_or_default::<ServeWorkspace>();
            serve_request(artifact, config, shared, ws, req, resp, generation);
        }
        ReqStatus::Sharded => {
            let result = catch_unwind(AssertUnwindSafe(|| {
                merge_request(
                    artifact, config, shared, state, plan, slots, req, resp, generation,
                )
            }));
            if result.is_err() {
                resp.user = req.user;
                resp.items.clear();
                resp.log_det = 0.0;
                resp.cache_hit = false;
                resp.degraded = false;
                resp.generation = generation;
                resp.outcome = RankOutcome::Panicked;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn merge_request<M: Recommender>(
    artifact: &RankingArtifact<M>,
    config: &ServeConfig,
    shared: Option<&SharedKernelCache>,
    state: &mut WorkerState,
    plan: &ReqPlan,
    slots: &[ShardSlot],
    req: &RankRequest,
    resp: &mut RankResponse,
    generation: u64,
) {
    // A phase-1 panic poisons only this request — same contract and shield
    // fields as `serve_request`.
    if plan.slots.iter().any(|&g| slots[g as usize].panicked) {
        resp.user = req.user;
        resp.items.clear();
        resp.log_det = 0.0;
        resp.cache_hit = false;
        resp.degraded = false;
        resp.generation = generation;
        resp.outcome = RankOutcome::Panicked;
        return;
    }
    let ws = state.get_or_default::<ServeWorkspace>();
    if plan.slots.len() == 1 {
        // Solo slot: the local prefix ran over the whole pool under the
        // serving guard — it IS the unsharded run; copy it out with the
        // stock path's exact failure semantics.
        let slot = &slots[plan.slots[0] as usize];
        if slot.broke {
            // Dual breakdown: the stock path re-serves (re-tripping its own
            // dual attempt and taking its dense fallback), bit-exact with
            // what unsharded serving does for this request.
            ws.shard_fallbacks += 1;
            serve_request(artifact, config, shared, ws, req, resp, generation);
            return;
        }
        resp.cache_hit = slot.hit;
        match slot.form {
            EntryForm::Factor => {
                if !slot.dual_map.log_det().is_finite() {
                    resp.items.clear();
                    resp.outcome = RankOutcome::Failed;
                    return;
                }
                resp.items
                    .extend(slot.dual_map.items().iter().map(|&i| slot.cands[i]));
                resp.log_det = slot.dual_map.log_det();
            }
            EntryForm::Dense => {
                if slot.map_err {
                    resp.outcome = RankOutcome::Failed;
                    return;
                }
                if !slot.map.log_det().is_finite() {
                    resp.items.clear();
                    resp.outcome = RankOutcome::Failed;
                    return;
                }
                resp.items
                    .extend(slot.map.items().iter().map(|&i| slot.cands[i]));
                resp.log_det = slot.map.log_det();
            }
        }
        return;
    }

    // Multi-shard: any local anomaly (a dual non-finite, an impossible
    // dense factorization error) means the lazy ladder cannot promise
    // bitwise parity — hand the request to the stock path, which is the
    // parity definition.
    if plan
        .slots
        .iter()
        .any(|&g| slots[g as usize].broke || slots[g as usize].map_err)
    {
        ws.shard_fallbacks += 1;
        serve_request(artifact, config, shared, ws, req, resp, generation);
        return;
    }
    // All shards hit ⇒ the request's kernel work was served entirely from
    // cache (the sharded analogue of the unsharded single-lookup flag).
    resp.cache_hit = plan.slots.iter().all(|&g| slots[g as usize].hit);

    // Gain seeds in global (deduplicated) position order — bitwise the
    // diagonal the unsharded assembly would have produced.
    let m = plan.cands.len();
    ws.merge_diag.clear();
    ws.merge_diag.resize(m, 0.0);
    for &g in &plan.slots {
        let slot = &slots[g as usize];
        for (li, &p) in slot.pos.iter().enumerate() {
            ws.merge_diag[p as usize] = slot.diag[li];
        }
    }
    let form = slots[plan.slots[0] as usize].form;
    let guard = match form {
        EntryForm::Dense => MergeGuard::Dense,
        EntryForm::Factor => MergeGuard::Dual {
            guard: config.dual_guard,
        },
    };
    // Tailored kernel entry between two global positions, routed through
    // the owning slots. Same-shard dense entries read the assembled block;
    // cross-shard dense entries recompute the factor-row dot and the exact
    // `0.5·(q_a·k·q_b + q_b·k·q_a)` average — operand roles commute bitwise
    // (both products keep the `(q_x·k)·q_y` association and IEEE addition
    // is commutative), so entry(j, i) equals the full assembly's L_ji no
    // matter which side was selected first. Dual entries are the same
    // `⟨b_j, b_i⟩` the eager dual recursion reads.
    let entry = |j: usize, i: usize| -> f64 {
        let (sj, lj) = (plan.slot_of[j] as usize, plan.local_of[j] as usize);
        let (si, li) = (plan.slot_of[i] as usize, plan.local_of[i] as usize);
        let a = &slots[plan.slots[sj] as usize];
        let b = &slots[plan.slots[si] as usize];
        match form {
            EntryForm::Factor => ops::dot(a.b.row(lj), b.b.row(li)),
            EntryForm::Dense => {
                if sj == si {
                    a.l[(lj, li)]
                } else {
                    let kij = ops::dot(a.vc.row(lj), b.vc.row(li));
                    let (qa, qb) = (a.q[lj], b.q[li]);
                    0.5 * (qa * kij * qb + qb * kij * qa)
                }
            }
        }
    };
    match conditioned_greedy_merge(&ws.merge_diag, plan.k, guard, entry, &mut ws.merge) {
        MergeOutcome::Fallback => {
            // The ladder declined (non-finite arithmetic, guard trip, fault
            // injection): re-serve on the stock path — bit-exact by
            // definition, at unsharded cost for this request only.
            ws.shard_fallbacks += 1;
            serve_request(artifact, config, shared, ws, req, resp, generation);
        }
        MergeOutcome::Merged => {
            if !ws.merge.log_det().is_finite() {
                resp.items.clear();
                resp.outcome = RankOutcome::Failed;
                return;
            }
            resp.items
                .extend(ws.merge.items().iter().map(|&p| plan.cands[p as usize]));
            resp.log_det = ws.merge.log_det();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkp_dpp::LowRankKernel;
    use lkp_models::MatrixFactorization;
    use lkp_nn::AdamConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn artifact(n_users: usize, n_items: usize, d: usize) -> RankingArtifact<MatrixFactorization> {
        let mut rng = StdRng::seed_from_u64(7);
        let model = MatrixFactorization::new(n_users, n_items, d, AdamConfig::default(), &mut rng);
        let v = Matrix::from_fn(n_items, d, |r, c| {
            (((r * 13 + c * 5) % 11) as f64) * 0.2 - 1.0
        });
        RankingArtifact::new(model, LowRankKernel::new(v).normalized())
    }

    #[test]
    fn partition_covers_every_item_exactly_once() {
        let art = artifact(6, 37, 4);
        for n in [1, 2, 5, 8, 37, 100] {
            let p = ShardPartition::build(&art, n);
            let eff = n.min(37);
            assert_eq!(p.n_shards(), eff);
            let mut seen = [false; 37];
            for s in 0..eff {
                for &item in p.items(s) {
                    assert!(!seen[item as usize], "item {item} in two shards");
                    seen[item as usize] = true;
                    assert_eq!(p.shard_of(item as usize), s);
                }
            }
            assert!(seen.iter().all(|&b| b), "n={n}");
        }
    }

    #[test]
    fn partition_is_balanced_and_deterministic() {
        let art = artifact(9, 40, 5);
        let a = ShardPartition::build(&art, 7);
        let b = ShardPartition::build(&art, 7);
        assert_eq!(a.shard_of, b.shard_of);
        assert_eq!(a.perm, b.perm);
        let (min, max) = (0..7)
            .map(|s| a.count(s))
            .fold((usize::MAX, 0), |(lo, hi), c| (lo.min(c), hi.max(c)));
        assert!(max - min <= 1, "counts spread: {min}..{max}");
    }

    #[test]
    fn sharded_artifact_split_round_trips() {
        let art = artifact(5, 20, 3);
        let sharded = ShardedArtifact::split(art, 4);
        assert_eq!(sharded.n_shards(), 4);
        assert_eq!(sharded.artifact().n_items(), 20);
        let (art, partition) = sharded.into_parts();
        assert_eq!(art.n_items(), partition.shard_of.len());
    }

    #[test]
    fn composed_keys_are_distinct_within_a_user_population() {
        // (user, shard) composed keys collide only if user ids collide.
        let n_shards = 8;
        let mut seen = std::collections::HashSet::new();
        for user in 0..100 {
            for s in 0..n_shards {
                assert!(seen.insert(compose_key(user, n_shards, s)));
            }
        }
    }

    #[test]
    fn split_candidates_mirrors_shard_of() {
        let art = artifact(4, 30, 3);
        let p = ShardPartition::build(&art, 3);
        let cands: Vec<usize> = (0..30).step_by(2).collect();
        let mut per_shard = Vec::new();
        split_candidates(&p, &cands, &mut per_shard);
        let total: usize = per_shard.iter().map(|l| l.len()).sum();
        assert_eq!(total, cands.len());
        for (s, list) in per_shard.iter().enumerate() {
            for &item in list {
                assert_eq!(p.shard_of(item), s);
            }
        }
    }
}
