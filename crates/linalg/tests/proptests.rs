//! Property-based tests for the linear algebra substrate.
//!
//! Strategy: random well-conditioned matrices are built from random data with
//! bounded magnitude; SPD matrices are built as `G·Gᵀ + αI` so factorizations
//! are exercised away from the singular boundary.

use lkp_linalg::{eigen::SymmetricEigen, lu::Lu, Cholesky, CsrMatrix, Matrix};
use proptest::prelude::*;

/// Random dense matrix with entries in [-2, 2].
fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0..2.0_f64, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Random SPD matrix `G·Gᵀ + 0.5·I` of the given size.
fn spd_strategy(n: usize) -> impl Strategy<Value = Matrix> {
    matrix_strategy(n, n).prop_map(move |g| {
        let mut a = g.matmul(&g.transpose()).expect("square product");
        for i in 0..n {
            a[(i, i)] += 0.5;
        }
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_is_associative(a in matrix_strategy(3, 4), b in matrix_strategy(4, 2), c in matrix_strategy(2, 5)) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.max_abs_diff(&right) < 1e-10);
    }

    #[test]
    fn transpose_of_product_swaps_order(a in matrix_strategy(3, 4), b in matrix_strategy(4, 3)) {
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-12);
    }

    #[test]
    fn lu_solve_then_multiply_roundtrips(a in spd_strategy(5), x in proptest::collection::vec(-3.0..3.0_f64, 5)) {
        let b = a.matvec(&x).unwrap();
        let got = Lu::new(&a).unwrap().solve(&b).unwrap();
        for (g, t) in got.iter().zip(&x) {
            prop_assert!((g - t).abs() < 1e-7, "{g} vs {t}");
        }
    }

    #[test]
    fn lu_det_matches_eigenvalue_product(a in spd_strategy(4)) {
        let det = Lu::new(&a).unwrap().det();
        let eig = SymmetricEigen::new(&a).unwrap();
        let prod: f64 = eig.values.iter().product();
        prop_assert!((det - prod).abs() < 1e-8 * det.abs().max(1.0));
    }

    #[test]
    fn cholesky_log_det_matches_lu(a in spd_strategy(6)) {
        let ld = Cholesky::new(&a).unwrap().log_det();
        let (sign, lu_ld) = Lu::new(&a).unwrap().sign_log_det();
        prop_assert!(sign > 0.0);
        prop_assert!((ld - lu_ld).abs() < 1e-8);
    }

    #[test]
    fn eigen_reconstructs_symmetric_input(g in matrix_strategy(5, 5)) {
        let mut a = g;
        a.symmetrize();
        let eig = SymmetricEigen::new(&a).unwrap();
        prop_assert!(eig.reconstruct().max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn eigen_vectors_orthonormal(a in spd_strategy(5)) {
        let eig = SymmetricEigen::new(&a).unwrap();
        let vtv = eig.vectors.transpose().matmul(&eig.vectors).unwrap();
        prop_assert!(vtv.max_abs_diff(&Matrix::identity(5)) < 1e-9);
    }

    #[test]
    fn spd_eigenvalues_positive(a in spd_strategy(4)) {
        let eig = SymmetricEigen::new(&a).unwrap();
        for &l in &eig.values {
            prop_assert!(l > 0.0, "SPD eigenvalue {l} not positive");
        }
    }

    #[test]
    fn warm_start_agrees_with_cold_on_perturbed_psd(
        a in spd_strategy(6),
        delta in matrix_strategy(6, 6),
        scale in 0.0..1e-3_f64,
    ) {
        // The spectral-cache revisit shape: decompose A, perturb it by a
        // small symmetric delta, and re-solve warm-started from the cached
        // decomposition. Warm and cold must agree to ≤ 1e-10 on the
        // spectrum, the reconstruction, and orthonormality.
        use lkp_linalg::eigen::EigenScratch;
        let seed = SymmetricEigen::new(&a).unwrap();
        let mut b = a.clone();
        let mut sym_delta = delta;
        sym_delta.symmetrize();
        b.add_scaled(scale, &sym_delta).unwrap();

        let mut scratch = EigenScratch::default();
        let mut cold = SymmetricEigen::default();
        cold.compute_into(&b, &mut scratch).unwrap();
        let mut warm = SymmetricEigen::default();
        let used_warm = warm.compute_warm(&b, &seed, &mut scratch).unwrap();
        prop_assert!(used_warm, "a perturbation this small must take the warm path");

        let scale_ref = cold.values.iter().fold(1.0_f64, |m, v| m.max(v.abs()));
        for (w, c) in warm.values.iter().zip(&cold.values) {
            prop_assert!((w - c).abs() <= 1e-10 * scale_ref, "eigenvalue {w} vs {c}");
        }
        prop_assert!(warm.reconstruct().max_abs_diff(&b) <= 1e-10 * scale_ref.max(1.0));
        let vtv = warm.vectors.transpose().matmul(&warm.vectors).unwrap();
        prop_assert!(vtv.max_abs_diff(&Matrix::identity(6)) <= 1e-12);
    }

    #[test]
    fn self_seeded_warm_recompute_tracks_a_drifting_matrix(
        a in spd_strategy(5),
        delta in matrix_strategy(5, 5),
    ) {
        // Drive one decomposition through several small drifts, re-solving
        // warm from itself each time (the cache-slot usage pattern); it must
        // track the exact spectrum throughout.
        use lkp_linalg::eigen::EigenScratch;
        let mut scratch = EigenScratch::default();
        let mut tracked = SymmetricEigen::new(&a).unwrap();
        let mut current = a.clone();
        let mut sym_delta = delta;
        sym_delta.symmetrize();
        for _ in 0..4 {
            current.add_scaled(1e-4, &sym_delta).unwrap();
            tracked.recompute_warm(&current, &mut scratch).unwrap();
            let cold = SymmetricEigen::new(&current).unwrap();
            let scale_ref = cold.values.iter().fold(1.0_f64, |m, v| m.max(v.abs()));
            for (w, c) in tracked.values.iter().zip(&cold.values) {
                prop_assert!((w - c).abs() <= 1e-10 * scale_ref, "{w} vs {c}");
            }
        }
    }

    #[test]
    fn csr_spmm_matches_dense(
        triplets in proptest::collection::vec((0usize..6, 0usize..6, -2.0..2.0_f64), 0..20),
        dense in matrix_strategy(6, 3),
    ) {
        let sp = CsrMatrix::from_triplets(6, 6, &triplets).unwrap();
        let got = sp.spmm(&dense).unwrap();
        let expected = sp.to_dense().matmul(&dense).unwrap();
        prop_assert!(got.max_abs_diff(&expected) < 1e-10);
    }

    #[test]
    fn csr_transpose_is_involution(
        triplets in proptest::collection::vec((0usize..5, 0usize..7, -2.0..2.0_f64), 0..15),
    ) {
        let sp = CsrMatrix::from_triplets(5, 7, &triplets).unwrap();
        let back = sp.transpose().transpose();
        prop_assert!(back.to_dense().max_abs_diff(&sp.to_dense()) < 1e-12);
    }

    #[test]
    fn principal_submatrix_of_spd_is_spd(a in spd_strategy(6), idx in proptest::collection::vec(0usize..6, 1..5)) {
        // Principal submatrices of SPD matrices are SPD (interlacing) — they
        // must Cholesky-factorize. Deduplicate indices first.
        let mut idx = idx;
        idx.sort_unstable();
        idx.dedup();
        let sub = a.principal_submatrix(&idx).unwrap();
        prop_assert!(Cholesky::new(&sub).is_ok());
    }

    #[test]
    fn chunked_dot_matches_scalar_within_1e12(
        pairs in proptest::collection::vec((-3.0..3.0_f64, -3.0..3.0_f64), 0..40),
    ) {
        // The 4-lane accumulator only reassociates the sum; for bounded
        // inputs the result must stay within 1e-12 relative of the strict
        // left-to-right scalar reduction.
        let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let chunked = lkp_linalg::ops::dot(&a, &b);
        let scalar = lkp_linalg::ops::dot_scalar(&a, &b);
        prop_assert!(
            (chunked - scalar).abs() <= 1e-12 * scalar.abs().max(1.0),
            "chunked {} vs scalar {}", chunked, scalar
        );
    }

    #[test]
    fn blocked_axpy_matches_scalar_bitwise(
        pairs in proptest::collection::vec((-3.0..3.0_f64, -3.0..3.0_f64), 0..40),
        alpha in -2.0..2.0_f64,
    ) {
        let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let mut y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let mut y_ref = y.clone();
        lkp_linalg::ops::axpy(alpha, &x, &mut y);
        for (yi, &xi) in y_ref.iter_mut().zip(&x) {
            *yi += alpha * xi;
        }
        for (got, want) in y.iter().zip(&y_ref) {
            prop_assert_eq!(got.to_bits(), want.to_bits());
        }
    }
}
