//! Serving-layer integration tests: the batched `Ranker` must reproduce
//! offline greedy MAP exactly, at any pool width, cache state, and batch
//! shape.

use lkp_core::objective::{LkpKind, LkpObjective};
use lkp_core::{train_diversity_kernel, DiversityKernelConfig, TrainConfig, Trainer};
use lkp_data::{Dataset, SyntheticConfig};
use lkp_dpp::{map, DppKernel, LowRankKernel};
use lkp_models::{MatrixFactorization, Recommender};
use lkp_nn::AdamConfig;
use lkp_serve::{CacheMode, RankRequest, RankResponse, Ranker, RankingArtifact, ServeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn data() -> Dataset {
    lkp_data::synthetic::generate(&SyntheticConfig {
        n_users: 30,
        n_items: 80,
        n_categories: 8,
        mean_interactions: 16.0,
        ..Default::default()
    })
}

/// A briefly-trained model + kernel — enough structure that scores are not
/// symmetric and ties cannot mask ordering bugs.
fn trained(data: &Dataset) -> (MatrixFactorization, LowRankKernel) {
    let kernel = train_diversity_kernel(
        data,
        &DiversityKernelConfig {
            epochs: 3,
            pairs_per_epoch: 48,
            dim: 6,
            ..Default::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(11);
    let mut model = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        12,
        AdamConfig {
            lr: 0.02,
            ..Default::default()
        },
        &mut rng,
    );
    let mut obj = LkpObjective::new(LkpKind::NegativeAware, kernel.clone());
    let trainer = Trainer::new(TrainConfig {
        epochs: 3,
        eval_every: 0,
        patience: 0,
        k: 4,
        n: 4,
        threads: 2,
        ..Default::default()
    });
    trainer.fit(&mut model, &mut obj, data);
    (model, kernel)
}

/// Deterministic pseudo-random candidate pool for a user.
fn candidates(user: usize, n_items: usize, count: usize) -> Vec<usize> {
    (0..count)
        .map(|j| (user * 31 + j * 17 + 7) % n_items)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect()
}

fn requests(data: &Dataset, top_n: usize) -> Vec<RankRequest> {
    (0..data.n_users())
        .map(|u| RankRequest::new(u, candidates(u, data.n_items(), 24), top_n))
        .collect()
}

/// The offline reference: assemble the tailored kernel through the training
/// side's own helper and run the allocating greedy MAP on it.
fn offline_reference(
    model: &MatrixFactorization,
    kernel: &LowRankKernel,
    req: &RankRequest,
) -> Vec<usize> {
    let normalized = kernel.normalized();
    let scores = model.score_items(req.user, &req.candidates);
    let k_sub = normalized.submatrix(&req.candidates).unwrap();
    let tailored: DppKernel = lkp_core::objective::tailored_kernel(&scores, &k_sub).unwrap();
    let result = map::greedy_map(&tailored, req.top_n.min(req.candidates.len())).unwrap();
    result
        .items
        .iter()
        .map(|&idx| req.candidates[idx])
        .collect()
}

#[test]
fn served_lists_match_offline_greedy_map() {
    // Acceptance: the lkp-serve path must produce top-N lists identical to
    // offline greedy_map over the same tailored kernels.
    let data = data();
    let (model, kernel) = trained(&data);
    let artifact = RankingArtifact::snapshot(&model, &kernel);
    let mut ranker = Ranker::new(
        artifact,
        ServeConfig {
            threads: 2,
            ..Default::default()
        },
    );
    let reqs = requests(&data, 8);
    let responses = ranker.rank_batch(&reqs);
    assert_eq!(responses.len(), reqs.len());
    for (req, resp) in reqs.iter().zip(&responses) {
        assert_eq!(resp.user, req.user);
        let expected = offline_reference(&model, &kernel, req);
        assert_eq!(
            resp.items, expected,
            "user {} served list diverged from offline MAP",
            req.user
        );
        assert!(
            !resp.items.is_empty(),
            "user {} got an empty list",
            req.user
        );
    }
}

#[test]
fn serving_is_identical_at_every_pool_width() {
    // Acceptance: pool determinism — 1, 2 and 4 worker threads must serve
    // byte-identical responses (items, log_det bits), cold and warm cache.
    let data = data();
    let (model, kernel) = trained(&data);
    let reqs = requests(&data, 6);
    let mut reference: Option<Vec<RankResponse>> = None;
    for threads in [1usize, 2, 4] {
        let artifact = RankingArtifact::snapshot(&model, &kernel);
        let mut ranker = Ranker::new(
            artifact,
            ServeConfig {
                threads,
                ..Default::default()
            },
        );
        for pass in 0..2 {
            let responses = ranker.rank_batch(&reqs);
            match &reference {
                None => reference = Some(responses),
                Some(want) => {
                    for (got, want) in responses.iter().zip(want) {
                        assert_eq!(
                            got.items, want.items,
                            "threads={threads} pass={pass}: items diverged"
                        );
                        assert_eq!(
                            got.log_det.to_bits(),
                            want.log_det.to_bits(),
                            "threads={threads} pass={pass}: log_det diverged"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn repeat_batches_hit_the_kernel_cache() {
    let data = data();
    let (model, kernel) = trained(&data);
    let mut ranker = Ranker::new(
        RankingArtifact::snapshot(&model, &kernel),
        ServeConfig {
            threads: 2,
            ..Default::default()
        },
    );
    let reqs = requests(&data, 5);
    let cold = ranker.rank_batch(&reqs);
    assert!(cold.iter().all(|r| !r.cache_hit));
    let warm = ranker.rank_batch(&reqs);
    assert!(warm.iter().all(|r| r.cache_hit));
    for (a, b) in cold.iter().zip(&warm) {
        assert_eq!(a.items, b.items);
        assert_eq!(a.log_det.to_bits(), b.log_det.to_bits());
    }
    let (hits, misses) = ranker.cache_stats();
    assert_eq!(hits as usize, reqs.len());
    assert_eq!(misses as usize, reqs.len());
    assert_eq!(
        ranker.cache_bypasses(),
        0,
        "an enabled cache never bypasses"
    );
}

#[test]
fn rank_one_matches_batch_path() {
    let data = data();
    let (model, kernel) = trained(&data);
    let mut ranker = Ranker::new(
        RankingArtifact::snapshot(&model, &kernel),
        ServeConfig {
            threads: 3,
            ..Default::default()
        },
    );
    let reqs = requests(&data, 7);
    let batch = ranker.rank_batch(&reqs);
    for (req, want) in reqs.iter().zip(&batch) {
        let got = ranker.rank_one(req);
        assert_eq!(got.items, want.items);
        assert_eq!(got.log_det.to_bits(), want.log_det.to_bits());
    }
}

#[test]
fn degenerate_requests_serve_empty_lists() {
    let data = data();
    let (model, kernel) = trained(&data);
    let mut ranker = Ranker::new(
        RankingArtifact::snapshot(&model, &kernel),
        ServeConfig {
            threads: 2,
            ..Default::default()
        },
    );
    let n_items = data.n_items();
    let reqs = vec![
        RankRequest::new(0, vec![], 5),                      // no candidates
        RankRequest::new(0, vec![1, 2, 3], 0),               // zero-length list
        RankRequest::new(data.n_users() + 5, vec![1, 2], 2), // unknown user
        RankRequest::new(0, vec![1, n_items + 3], 2),        // out-of-catalog item
        RankRequest::new(1, vec![4, 9, 2], 2),               // valid control
    ];
    let responses = ranker.rank_batch(&reqs);
    for resp in &responses[..4] {
        assert!(resp.items.is_empty());
        assert_eq!(resp.log_det, 0.0);
    }
    assert_eq!(responses[4].items.len(), 2);
}

#[test]
fn duplicate_candidates_never_produce_duplicate_items() {
    // A duplicated candidate row's residual decays only to the jitter
    // floor, which is above greedy's rank cutoff — without dedup the same
    // item could be recommended twice.
    let data = data();
    let (model, kernel) = trained(&data);
    let mut ranker = Ranker::new(
        RankingArtifact::snapshot(&model, &kernel),
        ServeConfig {
            threads: 1,
            ..Default::default()
        },
    );
    let resp = ranker.rank_one(&RankRequest::new(3, vec![5, 9, 5, 14, 9, 22], 4));
    let unique: std::collections::BTreeSet<_> = resp.items.iter().collect();
    assert_eq!(
        unique.len(),
        resp.items.len(),
        "duplicates in {:?}",
        resp.items
    );
    assert_eq!(resp.items.len(), 4);
    // Deduped request must serve exactly like its clean equivalent.
    let clean = ranker.rank_one(&RankRequest::new(3, vec![5, 9, 14, 22], 4));
    assert_eq!(resp.items, clean.items);
    assert_eq!(resp.log_det.to_bits(), clean.log_det.to_bits());
}

#[test]
fn heavily_duplicated_candidates_keep_first_occurrence_order() {
    // Regression for the O(|C|²) dedup fallback: the sort-based rebuild
    // must produce exactly the list the old linear-scan dedup produced —
    // first occurrences, in original request order — so served lists stay
    // bitwise unchanged.
    let data = data();
    let (model, kernel) = trained(&data);
    let mut ranker = Ranker::new(
        RankingArtifact::snapshot(&model, &kernel),
        ServeConfig {
            threads: 1,
            ..Default::default()
        },
    );
    // Duplicates of several multiplicities, interleaved, including
    // back-to-back runs and a duplicate of the final element.
    let dirty = vec![9, 5, 9, 9, 22, 5, 14, 22, 9, 3, 14, 3, 3, 5];
    let clean = vec![9, 5, 22, 14, 3]; // first occurrences, request order
    let got = ranker.rank_one(&RankRequest::new(4, dirty, 4));
    let want = ranker.rank_one(&RankRequest::new(4, clean, 4));
    assert_eq!(got.items, want.items);
    assert_eq!(got.log_det.to_bits(), want.log_det.to_bits());
    let unique: std::collections::BTreeSet<_> = got.items.iter().collect();
    assert_eq!(
        unique.len(),
        got.items.len(),
        "duplicates in {:?}",
        got.items
    );
}

#[test]
fn mixed_rank_one_and_batch_traffic_is_equivalent() {
    // rank_one must serve the same lists as the batch path, and the
    // caller-worker cache state it leaves behind must not change any
    // subsequent batched list — at widths 1/2/4, in both cache modes.
    let data = data();
    let (model, kernel) = trained(&data);
    let reqs = requests(&data, 6);
    // Pure-batch reference (width 1, per-worker cache).
    let mut reference = Ranker::new(
        RankingArtifact::snapshot(&model, &kernel),
        ServeConfig {
            threads: 1,
            ..Default::default()
        },
    );
    let want = reference.rank_batch(&reqs);
    for cache_mode in [CacheMode::PerWorker, CacheMode::Sharded { shards: 4 }] {
        for threads in [1usize, 2, 4] {
            let mut ranker = Ranker::new(
                RankingArtifact::snapshot(&model, &kernel),
                ServeConfig {
                    threads,
                    cache_mode,
                    ..Default::default()
                },
            );
            // Interleave: a few rank_one calls (warming the caller worker's
            // cache for users that batches will later route to *other*
            // workers), then a batch, then more singles, then a batch.
            for req in reqs.iter().take(5) {
                let got = ranker.rank_one(req);
                let reference = &want[reqs.iter().position(|r| r.user == req.user).unwrap()];
                assert_eq!(
                    got.items, reference.items,
                    "mode {cache_mode:?} threads {threads}: rank_one diverged"
                );
                assert_eq!(got.log_det.to_bits(), reference.log_det.to_bits());
            }
            for pass in 0..2 {
                let batch = ranker.rank_batch(&reqs);
                for (got, reference) in batch.iter().zip(&want) {
                    assert_eq!(
                        got.items, reference.items,
                        "mode {cache_mode:?} threads {threads} pass {pass}: batch diverged"
                    );
                    assert_eq!(got.log_det.to_bits(), reference.log_det.to_bits());
                }
                // More singles between the batches.
                for req in reqs.iter().skip(10).take(4) {
                    let got = ranker.rank_one(req);
                    let reference = &want[reqs.iter().position(|r| r.user == req.user).unwrap()];
                    assert_eq!(got.items, reference.items);
                    assert_eq!(got.log_det.to_bits(), reference.log_det.to_bits());
                }
            }
        }
    }
}

#[test]
fn stats_reads_never_materialize_workspaces() {
    // Regression: cache_stats/cache_bypasses used get_or_default on every
    // worker, so a stats read on an idle ranker created empty workspaces
    // (and their caches) and skewed per-worker accounting.
    let data = data();
    let (model, kernel) = trained(&data);
    let mut ranker = Ranker::new(
        RankingArtifact::snapshot(&model, &kernel),
        ServeConfig {
            threads: 4,
            ..Default::default()
        },
    );
    assert_eq!(ranker.resident_workspaces(), 0);
    assert_eq!(ranker.cache_stats(), (0, 0));
    assert_eq!(ranker.cache_bypasses(), 0);
    let detailed = ranker.cache_stats_detailed();
    assert_eq!(detailed.per_shard.len(), 4, "one zero row per worker");
    assert!(detailed
        .per_shard
        .iter()
        .all(|s| *s == lkp_serve::ShardStats::default()));
    assert_eq!(
        ranker.resident_workspaces(),
        0,
        "stats reads must not create serving state on idle workers"
    );
    // Traffic materializes workspaces as before; stats then see them.
    let reqs = requests(&data, 4);
    ranker.rank_batch(&reqs);
    let resident = ranker.resident_workspaces();
    assert!(resident > 0);
    ranker.cache_stats();
    assert_eq!(ranker.resident_workspaces(), resident);

    // The sharded path aggregates per-(user, shard) entries through the same
    // optional-state accessors: idle stats reads (including the new
    // shard_fallbacks counter) still create nothing, and post-traffic
    // accounting sums real per-shard lookups across workers.
    let mut sharded = Ranker::new(
        RankingArtifact::snapshot(&model, &kernel),
        ServeConfig {
            threads: 4,
            artifact_shards: 3,
            ..Default::default()
        },
    );
    assert_eq!(sharded.resident_workspaces(), 0);
    assert_eq!(sharded.cache_stats(), (0, 0));
    assert_eq!(sharded.shard_fallbacks(), 0);
    assert_eq!(sharded.dual_fallbacks(), 0);
    assert_eq!(
        sharded.resident_workspaces(),
        0,
        "sharded stats reads must not create serving state on idle workers"
    );
    sharded.rank_batch(&reqs);
    let resident = sharded.resident_workspaces();
    assert!(resident > 0);
    let (hits, misses) = sharded.cache_stats();
    // Every request fans into per-shard lookups, so the sharded ranker sees
    // at least as many cache events as requests.
    assert!(
        hits + misses >= reqs.len() as u64,
        "per-shard lookups must aggregate: {hits} + {misses}"
    );
    sharded.cache_stats();
    sharded.shard_fallbacks();
    assert_eq!(sharded.resident_workspaces(), resident);
}

#[test]
fn sharded_cache_beats_per_worker_on_shuffled_replays() {
    // The same users replayed at different batch positions land on
    // different workers; per-worker caches re-miss once per worker, the
    // shared cache hits from any worker.
    let data = data();
    let (model, kernel) = trained(&data);
    let reqs = requests(&data, 5);
    let mut shuffled: Vec<RankRequest> = reqs.iter().rev().cloned().collect();
    shuffled.rotate_left(7);
    let mut rates = Vec::new();
    for cache_mode in [CacheMode::PerWorker, CacheMode::Sharded { shards: 4 }] {
        let mut ranker = Ranker::new(
            RankingArtifact::snapshot(&model, &kernel),
            ServeConfig {
                threads: 4,
                cache_mode,
                ..Default::default()
            },
        );
        let first = ranker.rank_batch(&reqs);
        let second = ranker.rank_batch(&shuffled);
        // Both orders serve the same per-user lists.
        for resp in &second {
            let want = first.iter().find(|r| r.user == resp.user).unwrap();
            assert_eq!(resp.items, want.items, "mode {cache_mode:?}");
            assert_eq!(resp.log_det.to_bits(), want.log_det.to_bits());
        }
        let stats = ranker.cache_stats_detailed();
        assert_eq!(
            stats.aggregate.hits + stats.aggregate.misses,
            2 * reqs.len() as u64
        );
        rates.push(stats.hit_rate());
    }
    assert!(
        rates[1] > rates[0],
        "sharded hit rate {} must beat per-worker {} on the shuffled replay",
        rates[1],
        rates[0]
    );
    // Sharded: every distinct pair misses exactly once, process-wide.
    let (_, sharded_misses) = {
        let mut ranker = Ranker::new(
            RankingArtifact::snapshot(&model, &kernel),
            ServeConfig {
                threads: 4,
                cache_mode: CacheMode::Sharded { shards: 4 },
                ..Default::default()
            },
        );
        ranker.rank_batch(&reqs);
        ranker.rank_batch(&shuffled);
        ranker.cache_stats()
    };
    assert_eq!(sharded_misses as usize, reqs.len());
}

#[test]
fn top_n_larger_than_candidates_is_clamped() {
    let data = data();
    let (model, kernel) = trained(&data);
    let mut ranker = Ranker::new(
        RankingArtifact::snapshot(&model, &kernel),
        ServeConfig {
            threads: 1,
            ..Default::default()
        },
    );
    let resp = ranker.rank_one(&RankRequest::new(2, vec![3, 8, 13], 10));
    assert!(resp.items.len() <= 3);
    assert!(!resp.items.is_empty());
}
