//! LkP is model-agnostic: anything implementing `Recommender` can be trained
//! with it. This example plugs a deliberately simple custom model — biased
//! matrix factorization with user/item bias terms — into the LkP trainer.
//!
//! ```text
//! cargo run --release --example custom_model
//! ```

use lkp::linalg::ops::dot;
use lkp::nn::EmbeddingTable;
use lkp::prelude::*;
use rand::SeedableRng;

/// MF with additive user and item biases: `ŷ = ⟨p_u, q_i⟩ + b_u + b_i`.
#[derive(Clone)]
struct BiasedMf {
    users: EmbeddingTable,
    items: EmbeddingTable,
    user_bias: EmbeddingTable,
    item_bias: EmbeddingTable,
}

impl BiasedMf {
    fn new(n_users: usize, n_items: usize, dim: usize, seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cfg = AdamConfig::default();
        BiasedMf {
            users: EmbeddingTable::new(n_users, dim, 0.1, cfg, &mut rng),
            items: EmbeddingTable::new(n_items, dim, 0.1, cfg, &mut rng),
            user_bias: EmbeddingTable::new(n_users, 1, 0.01, cfg, &mut rng),
            item_bias: EmbeddingTable::new(n_items, 1, 0.01, cfg, &mut rng),
        }
    }
}

impl Recommender for BiasedMf {
    fn n_users(&self) -> usize {
        self.users.rows()
    }

    fn n_items(&self) -> usize {
        self.items.rows()
    }

    fn score_items(&self, user: usize, items: &[usize]) -> Vec<f64> {
        let p = self.users.row(user);
        let bu = self.user_bias.row(user)[0];
        items
            .iter()
            .map(|&i| dot(p, self.items.row(i)) + bu + self.item_bias.row(i)[0])
            .collect()
    }

    fn accumulate_score_grads(&mut self, user: usize, items: &[usize], dscores: &[f64]) {
        let dim = self.users.dim();
        let mut dp = vec![0.0; dim];
        let mut dbu = 0.0;
        for (&i, &ds) in items.iter().zip(dscores) {
            let q = self.items.row(i);
            for (a, &b) in dp.iter_mut().zip(q) {
                *a += ds * b;
            }
            let dq: Vec<f64> = self.users.row(user).iter().map(|&x| ds * x).collect();
            self.items.accumulate_grad(i, &dq);
            self.item_bias.accumulate_grad(i, &[ds]);
            dbu += ds;
        }
        self.users.accumulate_grad(user, &dp);
        self.user_bias.accumulate_grad(user, &[dbu]);
    }

    fn step(&mut self) {
        self.users.step();
        self.items.step();
        self.user_bias.step();
        self.item_bias.step();
    }
}

fn main() {
    let data = SyntheticConfig {
        n_users: 200,
        n_items: 250,
        n_categories: 10,
        mean_interactions: 20.0,
        ..Default::default()
    }
    .generate();
    let kernel = train_diversity_kernel(
        &data,
        &DiversityKernelConfig {
            epochs: 8,
            pairs_per_epoch: 192,
            ..Default::default()
        },
    );

    let mut model = BiasedMf::new(data.n_users(), data.n_items(), 24, 5);
    let mut objective = LkpObjective::new(LkpKind::NegativeAware, kernel);
    let report = Trainer::new(TrainConfig {
        epochs: 40,
        eval_every: 10,
        patience: 3,
        ..Default::default()
    })
    .fit(&mut model, &mut objective, &data);

    let metrics = lkp::eval::evaluate_parallel(&model, &data, &[5, 10], 4);
    println!(
        "custom BiasedMf + LkP-NPS: trained {} epochs (best val NDCG@10 {:.4})",
        report.epochs_run, report.best_val_ndcg
    );
    for n in [5, 10] {
        let m = metrics.at(n).expect("cutoff evaluated");
        println!(
            "  @{n}: recall {:.4}  ndcg {:.4}  category-coverage {:.4}  F {:.4}",
            m.recall, m.ndcg, m.category_coverage, m.f_score
        );
    }
}
