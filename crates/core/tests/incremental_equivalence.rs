//! The `incremental_equivalence` CI gate: `Trainer::update` honors its
//! equivalence contract against `Trainer::fit`.
//!
//! * An **empty delta** is a strict no-op at any pool width — the model is
//!   bitwise untouched and the returned state carries the base plan.
//! * A **full delta** (every user changed) under `UpdateRule::Sgd` with
//!   `update_epochs == epochs` is bitwise identical to a frozen-negatives
//!   `fit` on the merged dataset: the delta planner consumes the RNG
//!   draw-for-draw like a full resample and the refresh runs the same epoch
//!   engine.
//! * **Random deltas** freeze unchanged users' instances, carry their
//!   spectral-cache entries across the fit boundary (skip/warm-start
//!   counters move), and land within a small NDCG tolerance of a full
//!   retrain on the merged data.
//! * The **EM-style rule** moves the model through per-instance fixed-point
//!   score steps; `rate = 0` freezes it bitwise.

use lkp_core::objective::{LkpKind, LkpObjective};
use lkp_core::{train_diversity_kernel, DiversityKernelConfig, TrainConfig, Trainer, UpdateRule};
use lkp_data::{Dataset, DatasetDelta, SamplingPolicy, Split, SyntheticConfig};
use lkp_dpp::LowRankKernel;
use lkp_models::{MatrixFactorization, Recommender};
use lkp_nn::AdamConfig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn data() -> Dataset {
    lkp_data::synthetic::generate(&SyntheticConfig {
        n_users: 40,
        n_items: 80,
        n_categories: 8,
        mean_interactions: 18.0,
        ..Default::default()
    })
}

fn kernel(data: &Dataset) -> LowRankKernel {
    train_diversity_kernel(
        data,
        &DiversityKernelConfig {
            epochs: 3,
            pairs_per_epoch: 32,
            dim: 8,
            ..Default::default()
        },
    )
}

fn mf(data: &Dataset) -> MatrixFactorization {
    let mut rng = StdRng::seed_from_u64(11);
    MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        16,
        AdamConfig {
            lr: 0.02,
            ..Default::default()
        },
        &mut rng,
    )
}

fn obj(kernel: &LowRankKernel) -> LkpObjective {
    LkpObjective::new(LkpKind::NegativeAware, kernel.clone())
}

/// Refresh-gate baseline config: frozen negatives (so the base plan is the
/// one every epoch trained on), no validation (exact trajectories).
fn base_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 3,
        batch_size: 16,
        k: 4,
        n: 4,
        sampling_policy: SamplingPolicy::FrozenNegatives,
        eval_every: 0,
        patience: 0,
        threads: 2,
        seed: 99,
        ..Default::default()
    }
}

/// Every model parameter that serving reads, as exact bits.
fn score_bits(model: &MatrixFactorization, n_items: usize) -> Vec<u64> {
    let items: Vec<usize> = (0..n_items).collect();
    let mut bits = Vec::new();
    for user in 0..model.n_users() {
        bits.extend(model.score_items(user, &items).iter().map(|s| s.to_bits()));
    }
    bits
}

/// One previously unobserved item per user — a delta touching *every* user.
fn fresh_item_delta(data: &Dataset) -> DatasetDelta {
    let mut delta = DatasetDelta::new();
    for user in 0..data.n_users() {
        for item in 0..data.n_items() {
            if !data.is_observed(user, item) {
                delta.push(user, item);
                break;
            }
        }
    }
    delta
}

fn val_ndcg(model: &MatrixFactorization, data: &Dataset) -> f64 {
    lkp_eval::evaluate_parallel_on(model, data, &[10], Split::Validation, 2)
        .at(10)
        .unwrap()
        .ndcg
}

#[test]
fn empty_delta_update_is_a_bitwise_noop_at_pool_widths_1_2_4() {
    let data = data();
    let kern = kernel(&data);
    let mut model = mf(&data);
    let (_, base) = Trainer::new(base_cfg()).fit_state(&mut model, &mut obj(&kern), &data);
    let baseline = score_bits(&model, data.n_items());
    for width in [1usize, 2, 4] {
        let mut m = model.clone();
        let trainer = Trainer::new(TrainConfig {
            threads: width,
            update_epochs: 2,
            ..base_cfg()
        });
        let rep = trainer.update(&mut m, &mut obj(&kern), &base, &DatasetDelta::new());
        assert!(rep.no_op, "width {width}: empty delta must be a no-op");
        assert_eq!(rep.report.epochs_run, 0);
        assert_eq!(rep.new_interactions, 0);
        assert_eq!(
            score_bits(&m, data.n_items()),
            baseline,
            "width {width}: model moved on an empty delta"
        );
        assert_eq!(rep.state.plan(), base.plan());
        assert_eq!(rep.state.data().n_users(), data.n_users());
    }
}

#[test]
fn duplicate_only_delta_is_also_a_noop() {
    let data = data();
    let kern = kernel(&data);
    let mut model = mf(&data);
    let (_, base) = Trainer::new(base_cfg()).fit_state(&mut model, &mut obj(&kern), &data);
    let baseline = score_bits(&model, data.n_items());
    // Replay interactions the dataset already holds: dedup drops them all.
    let mut delta = DatasetDelta::new();
    for user in 0..5 {
        delta.push_user(user, &data.user_items(user, Split::Train)[..2]);
    }
    let rep = Trainer::new(base_cfg()).update(&mut model, &mut obj(&kern), &base, &delta);
    assert!(rep.no_op);
    assert_eq!(score_bits(&model, data.n_items()), baseline);
}

#[test]
fn full_delta_update_is_bitwise_a_frozen_negatives_fit_on_merged_data() {
    let data = data();
    let kern = kernel(&data);
    let mut warm = mf(&data);
    let (_, base) = Trainer::new(base_cfg()).fit_state(&mut warm, &mut obj(&kern), &data);

    let delta = fresh_item_delta(&data);
    let (merged, summary) = data.merge_delta(&delta);
    assert_eq!(
        summary.changed_users().len(),
        data.n_users(),
        "delta must touch every user"
    );

    // Side A: incremental update from the warm state.
    let mut a = warm.clone();
    let rep = Trainer::new(TrainConfig {
        update_epochs: 3,
        update_rule: UpdateRule::Sgd,
        ..base_cfg()
    })
    .update(&mut a, &mut obj(&kern), &base, &delta);
    assert_eq!(rep.frozen_instances, 0, "all users changed: nothing frozen");
    assert!(rep.fresh_instances > 0);
    assert_eq!(rep.report.epochs_run, 3);

    // Side B: cold frozen-negatives fit on the merged dataset from the same
    // warm parameters, same seed, same epoch count.
    let mut b = warm.clone();
    Trainer::new(base_cfg()).fit(&mut b, &mut obj(&kern), &merged);

    assert_eq!(
        score_bits(&a, data.n_items()),
        score_bits(&b, data.n_items()),
        "full-delta update diverged from the equivalent fit"
    );
}

/// Shared warm-start fixture for the property tests: one cached base fit,
/// reused across every generated delta (the vendored `proptest!` form only
/// supports item-style tests, so the fixture lives in a `OnceLock`).
struct BaseFixture {
    data: Dataset,
    kern: LowRankKernel,
    warm: MatrixFactorization,
    base: lkp_core::TrainedState,
    warm_bits: Vec<u64>,
    cached_cfg: TrainConfig,
}

fn fixture() -> &'static BaseFixture {
    static BASE: std::sync::OnceLock<BaseFixture> = std::sync::OnceLock::new();
    BASE.get_or_init(|| {
        let data = data();
        let kern = kernel(&data);
        let mut warm = mf(&data);
        let cached_cfg = TrainConfig {
            spectral_tol: 0.05,
            ..base_cfg()
        };
        let (_, base) =
            Trainer::new(cached_cfg.clone()).fit_state(&mut warm, &mut obj(&kern), &data);
        assert!(
            !base.spectral().is_empty(),
            "cached fit must export spectral entries"
        );
        let warm_bits = score_bits(&warm, data.n_items());
        BaseFixture {
            data,
            kern,
            warm,
            base,
            warm_bits,
            cached_cfg,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn random_deltas_carry_spectra_and_stay_within_ndcg_tolerance(
        events in proptest::collection::vec((0usize..40, 0usize..80), 1..10),
    ) {
        let fx = fixture();
        let mut delta = DatasetDelta::new();
        for &(user, item) in &events {
            delta.push(user, item);
        }
        let mut m = fx.warm.clone();
        let rep = Trainer::new(TrainConfig {
            update_epochs: 2,
            ..fx.cached_cfg.clone()
        })
        .update(&mut m, &mut obj(&fx.kern), &fx.base, &delta);

        if rep.no_op {
            // Every event was a duplicate of an observed interaction.
            prop_assert_eq!(score_bits(&m, fx.data.n_items()), fx.warm_bits.clone());
            return Ok(());
        }
        prop_assert_eq!(
            rep.frozen_instances + rep.fresh_instances,
            rep.state.plan().len()
        );
        if rep.frozen_instances > 0 {
            // Unchanged users' spectra crossed the fit boundary and were
            // actually consulted: revisits skip or warm-start, never all-cold.
            prop_assert!(rep.adopted_entries > 0, "no entries adopted");
            let stats = rep.report.spectral_cache;
            prop_assert!(
                stats.skips + stats.warm_starts > 0,
                "adopted entries never hit: {:?}",
                stats
            );
        }
        // Refresh quality: within ε of a full frozen retrain on merged data.
        let (merged, _) = fx.data.merge_delta(&delta);
        let mut full = fx.warm.clone();
        Trainer::new(fx.cached_cfg.clone()).fit(&mut full, &mut obj(&fx.kern), &merged);
        let refreshed = val_ndcg(&m, &merged);
        let retrained = val_ndcg(&full, &merged);
        prop_assert!(
            refreshed + 0.05 >= retrained,
            "refresh NDCG {} fell more than 0.05 below retrain {}",
            refreshed,
            retrained
        );
    }
}

#[test]
fn em_style_update_moves_the_model_and_zero_rate_freezes_it() {
    let data = data();
    let kern = kernel(&data);
    let mut warm = mf(&data);
    let (_, base) = Trainer::new(base_cfg()).fit_state(&mut warm, &mut obj(&kern), &data);
    let warm_bits = score_bits(&warm, data.n_items());

    let mut delta = DatasetDelta::new();
    for user in 0..10 {
        for item in 0..data.n_items() {
            if !data.is_observed(user, item) {
                delta.push(user, item);
                break;
            }
        }
    }

    let mut m = warm.clone();
    let rep = Trainer::new(TrainConfig {
        update_epochs: 2,
        update_rule: UpdateRule::EmStyle { rate: 0.02 },
        ..base_cfg()
    })
    .update(&mut m, &mut obj(&kern), &base, &delta);
    assert!(!rep.no_op);
    assert!(rep.report.history.iter().all(|e| e.mean_loss.is_finite()));
    assert_ne!(
        score_bits(&m, data.n_items()),
        warm_bits,
        "EM update left the model untouched"
    );
    let (merged, _) = data.merge_delta(&delta);
    assert!(val_ndcg(&m, &merged) > 0.0);

    // rate = 0 is a frozen fixed point: parameters must not move at all.
    let mut frozen = warm.clone();
    Trainer::new(TrainConfig {
        update_epochs: 2,
        update_rule: UpdateRule::EmStyle { rate: 0.0 },
        ..base_cfg()
    })
    .update(&mut frozen, &mut obj(&kern), &base, &delta);
    assert_eq!(score_bits(&frozen, data.n_items()), warm_bits);
}
